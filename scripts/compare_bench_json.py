#!/usr/bin/env python3
"""Bench-regression gate: compare BENCH_*.json artifacts against checked-in
baselines and fail on regressions.

Baselines live in `bench-baselines/` (same filenames the perf-track CI job
produces; see bench-baselines/README.md for regeneration). Matching is by
file basename, then by experiment name, then by per-row identity keys.

Two kinds of bands, chosen per metric:

* **deterministic** — persist/fence counts the algorithms guarantee; they
  must stay within a tight ratio band of the baseline in *both*
  directions (an unexplained improvement is as suspicious as a
  regression: it usually means the experiment stopped measuring what it
  claims to).
* **throughput/latency** — wall-clock dependent; CI machines are noisy
  and heterogeneous, so only the regression direction is gated, with a
  deliberately loose factor. The trajectory table (printed for every
  compared metric) is the instrument for spotting slow drift; the gate
  only catches cliffs.

A row present in the baseline but missing from the current artifact FAILS
(silently dropping coverage is the regression this script exists for). A
current artifact with no baseline file is reported — add the baseline.

Usage: compare_bench_json.py --baseline-dir bench-baselines FILE.json ...
"""

import argparse
import json
import os
import sys

# Deterministic counters: current/baseline must stay in [lo, hi].
TIGHT = (0.90, 1.10)
# Throughput (bigger is better): current must be >= lo * baseline.
FLOOR = 0.25
# Latency (smaller is better): current must be <= hi * baseline.
CEIL = 4.0


def band_tight(metric):
    return (metric, "tight", TIGHT)


def band_floor(metric):
    return (metric, "floor", FLOOR)


def band_ceil(metric):
    return (metric, "ceil", CEIL)


# experiment -> (row identity keys, [metric bands])
RULES = {
    "counts": (
        ("algorithm",),
        [
            band_tight("enq_fences"),
            band_tight("deq_fences"),
            band_tight("enq_flushes"),
            band_tight("nt_stores_per_op"),
            band_tight("post_flush_per_op"),
        ],
    ),
    "shards": (
        ("shards",),
        [band_floor("mops"), band_tight("fences_per_op")],
    ),
    # Kill timing makes restart row metrics non-comparable; coverage (the
    # row set itself) is still gated by the missing-row rule.
    "restart": (("algorithm", "shards"), []),
    "fastpath": (
        ("mode",),
        [band_ceil("load_ns"), band_ceil("persist_ns"), band_ceil("map_ref_ns")],
    ),
    "lease": (("shards",), [band_floor("acked_per_sec")]),
    "lease_groups": (("shards",), [band_floor("acked_per_sec")]),
    "group_commit": (
        ("producers", "mode", "window_us"),
        [band_floor("fences_per_sec")],
    ),
    "metrics": (None, []),
    "blackbox": (None, []),
}

# The group-commit layer must keep proving its win: at the highest swept
# producer count, the best coalesced rate over the per-thread rate. Kept
# below the ~2x the experiment shows on quiet hardware — this is a cliff
# detector for "batching silently stopped batching", not a perf SLO.
MIN_GC_SPEEDUP = 1.3


class Gate:
    def __init__(self):
        self.rows = []  # (context, metric, baseline, current, band, ok)
        self.failures = []

    def check(self, ctx, metric, base, cur, kind, bound):
        if kind == "tight":
            lo, hi = bound
            ok = base == cur or (base != 0 and lo <= cur / base <= hi)
            band = f"[{lo:.2f}x, {hi:.2f}x]"
        elif kind == "floor":
            ok = base == 0 or cur >= bound * base
            band = f">= {bound:.2f}x"
        else:  # ceil
            ok = base == 0 or cur <= bound * base
            band = f"<= {bound:.2f}x"
        self.rows.append((ctx, metric, base, cur, band, ok))
        if not ok:
            self.failures.append(f"{ctx}: {metric} {base!r} -> {cur!r} outside {band}")

    def fail(self, message):
        self.failures.append(message)

    def render(self):
        if self.rows:
            wid = max(len(r[0]) for r in self.rows)
            met = max(len(r[1]) for r in self.rows)
            print(f"{'where':<{wid}}  {'metric':<{met}}  {'baseline':>12}  "
                  f"{'current':>12}  {'ratio':>7}  band")
            for ctx, metric, base, cur, band, ok in self.rows:
                ratio = f"{cur / base:.3f}" if base else "-"
                verdict = "" if ok else "  << FAIL"
                print(f"{ctx:<{wid}}  {metric:<{met}}  {base:>12.4g}  "
                      f"{cur:>12.4g}  {ratio:>7}  {band}{verdict}")
        for message in self.failures:
            print(f"FAIL: {message}")


def row_key(row, identity):
    return tuple(row.get(k) for k in identity)


def compare_experiment(gate, name, base_obj, cur_obj, ctx):
    identity, bands = RULES[name]
    if identity is None:
        return
    base_rows = {row_key(r, identity): r for r in base_obj.get("rows", [])}
    cur_rows = {row_key(r, identity): r for r in cur_obj.get("rows", [])}
    for key, base_row in base_rows.items():
        label = ",".join(str(v) for v in key)
        rctx = f"{ctx}[{label}]"
        cur_row = cur_rows.get(key)
        if cur_row is None:
            gate.fail(f"{rctx}: row present in baseline but missing from current run")
            continue
        for metric, kind, bound in bands:
            if metric not in base_row or metric not in cur_row:
                gate.fail(f"{rctx}: metric {metric!r} missing")
                continue
            gate.check(rctx, metric, base_row[metric], cur_row[metric], kind, bound)
    if name == "group_commit":
        speedup = cur_obj.get("speedup", {})
        gate.check(ctx, "speedup", MIN_GC_SPEEDUP, speedup.get("speedup", 0.0),
                   "floor", 1.0)


def compare_file(gate, baseline_path, current_path):
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(current_path, encoding="utf-8") as fh:
        current = json.load(fh)
    name = os.path.basename(current_path)
    # Within a file, experiment objects pair up by (experiment, ordinal):
    # the harness emits them in a deterministic order per verb.
    cur_index = {}
    for obj in current:
        key = obj.get("experiment")
        cur_index.setdefault(key, []).append(obj)
    seen = {}
    for base_obj in baseline:
        experiment = base_obj.get("experiment")
        if experiment not in RULES:
            gate.fail(f"{name}: baseline has unknown experiment {experiment!r}")
            continue
        ordinal = seen.get(experiment, 0)
        seen[experiment] = ordinal + 1
        candidates = cur_index.get(experiment, [])
        if ordinal >= len(candidates):
            gate.fail(f"{name}: experiment {experiment!r} #{ordinal} missing "
                      f"from current run")
            continue
        ctx = f"{name}:{experiment}" + (f"#{ordinal}" if ordinal else "")
        compare_experiment(gate, experiment, base_obj, candidates[ordinal], ctx)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench-baselines")
    parser.add_argument("files", nargs="+")
    args = parser.parse_args(argv[1:])

    gate = Gate()
    for current_path in args.files:
        baseline_path = os.path.join(args.baseline_dir,
                                     os.path.basename(current_path))
        if not os.path.exists(baseline_path):
            print(f"NOTE: no baseline for {current_path} — check one in at "
                  f"{baseline_path}")
            continue
        compare_file(gate, baseline_path, current_path)
    gate.render()
    if gate.failures:
        raise SystemExit(1)
    print(f"bench gate: {len(gate.rows)} metric(s) within bands")


if __name__ == "__main__":
    main(sys.argv)
