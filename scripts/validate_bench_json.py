#!/usr/bin/env python3
"""Validate `harness ... --json` output against the README schema.

The CI perf-track job runs this over every BENCH_*.json artifact before
uploading, so a schema regression is caught on the push that introduces it
rather than when someone later tries to plot the trajectory.

Schema (see "Machine-readable results" in README.md): each file is a JSON
array of experiment objects. Every object carries an "experiment" key naming
its shape; required keys per shape are checked for presence and type. The
schema is additive — unknown keys are allowed, required keys must keep their
meaning and type.

Usage: validate_bench_json.py FILE.json [FILE.json ...]
       validate_bench_json.py --self-test
"""

import json
import numbers
import sys


def is_num(v):
    return isinstance(v, numbers.Real) and not isinstance(v, bool)


def require(obj, key, pred, what, ctx):
    if key not in obj:
        raise SystemExit(f"{ctx}: missing required key {key!r}")
    if not pred(obj[key]):
        raise SystemExit(f"{ctx}: key {key!r} must be {what}, got {obj[key]!r}")


def check_rows(obj, ctx, row_keys):
    require(obj, "rows", lambda v: isinstance(v, list), "an array", ctx)
    for i, row in enumerate(obj["rows"]):
        rctx = f"{ctx} rows[{i}]"
        if not isinstance(row, dict):
            raise SystemExit(f"{rctx}: must be an object")
        for key, pred, what in row_keys:
            require(row, key, pred, what, rctx)


STR = (lambda v: isinstance(v, str), "a string")
NUM = (is_num, "a number")

META_SCHEMA = 2


def check_meta(obj, ctx):
    """Every v2 experiment object carries the shared meta block: schema
    version, backend, sync policy, and the embedded metrics snapshot."""
    require(obj, "meta", lambda v: isinstance(v, dict), "an object", ctx)
    meta = obj["meta"]
    mctx = f"{ctx} meta"
    require(meta, "schema", lambda v: v == META_SCHEMA, f"schema {META_SCHEMA}", mctx)
    require(meta, "backend", lambda v: v in ("sim", "file"), "'sim' or 'file'", mctx)
    require(
        meta,
        "sync",
        lambda v: v is None or isinstance(v, str),
        "a sync-policy key or null",
        mctx,
    )
    require(meta, "metrics", lambda v: isinstance(v, dict), "an object", mctx)
    metrics = meta["metrics"]
    for key in ("counters", "histograms"):
        require(metrics, key, lambda v: isinstance(v, dict), "an object", f"{mctx}.metrics")
    for name, value in metrics["counters"].items():
        if not is_num(value):
            raise SystemExit(f"{mctx}.metrics: counter {name!r} must be a number")
    for name, hist in metrics["histograms"].items():
        hctx = f"{mctx}.metrics.histograms[{name!r}]"
        for key in ("count", "sum", "mean", "p50", "p99"):
            require(hist, key, *NUM, hctx)
        require(hist, "buckets", lambda v: isinstance(v, list), "an array", hctx)


def check_counts(obj, ctx):
    require(obj, "ops", is_num, "a number", ctx)
    require(obj, "shards", is_num, "a number", ctx)
    require(obj, "policy", *STR, ctx)
    check_rows(
        obj,
        ctx,
        [
            ("algorithm", *STR),
            ("enq_fences", *NUM),
            ("deq_fences", *NUM),
            ("enq_flushes", *NUM),
            ("nt_stores_per_op", *NUM),
            ("post_flush_per_op", *NUM),
        ],
    )


def check_shards(obj, ctx):
    for key in ("algorithm", "workload", "policy"):
        require(obj, key, *STR, ctx)
    for key in ("threads", "ops_per_thread", "recovery_threads"):
        require(obj, key, *NUM, ctx)
    check_rows(
        obj,
        ctx,
        [
            ("shards", *NUM),
            ("mops", *NUM),
            ("scaling", *NUM),
            ("fences_per_op", *NUM),
            ("recovered_items", *NUM),
            ("recovery_wall_ms", *NUM),
            ("recovery_critical_path_ms", *NUM),
            ("recovery_sequential_ms", *NUM),
            ("recovery_speedup", *NUM),
            ("per_shard", lambda v: isinstance(v, list), "an array"),
        ],
    )
    for i, row in enumerate(obj["rows"]):
        for j, shard in enumerate(row["per_shard"]):
            sctx = f"{ctx} rows[{i}].per_shard[{j}]"
            for key in ("shard", "fences", "flushes", "recovery_ms"):
                require(shard, key, *NUM, sctx)


def check_restart(obj, ctx):
    check_rows(
        obj,
        ctx,
        [
            ("algorithm", *STR),
            ("shards", *NUM),
            ("policy", *STR),
            ("sync", *STR),
            ("pool_bytes", *NUM),
            ("grow_step", *NUM),
            ("growth_epochs", *NUM),
            ("confirmed_enqueues", *NUM),
            ("confirmed_dequeues", *NUM),
            ("recovered", *NUM),
            ("recovery_ms", *NUM),
        ],
    )
    if "reshard_kill" not in obj:
        raise SystemExit(f"{ctx}: missing required key 'reshard_kill'")
    kill = obj["reshard_kill"]
    if kill is not None:
        for key in ("completed_reshards", "shards_after", "items"):
            require(kill, key, *NUM, f"{ctx} reshard_kill")
        resolution = kill.get("resolution", "absent")
        if resolution not in (None, "rolled-back", "rolled-forward"):
            raise SystemExit(f"{ctx}: bad reshard_kill.resolution {resolution!r}")
    if "lease_kill" not in obj:
        raise SystemExit(f"{ctx}: missing required key 'lease_kill'")
    kill = obj["lease_kill"]
    if kill is not None:
        for key in (
            "confirmed_enqueues",
            "confirmed_acks",
            "held",
            "unacked",
            "redelivered",
            "recovery_ms",
        ):
            require(kill, key, *NUM, f"{ctx} lease_kill")


def check_lease(obj, ctx):
    for key in ("algorithm", "policy", "sync"):
        require(obj, key, *STR, ctx)
    for key in ("ops", "nack_percent"):
        require(obj, key, *NUM, ctx)
    check_rows(
        obj,
        ctx,
        [
            ("shards", *NUM),
            ("wall_ms", *NUM),
            ("acked_per_sec", *NUM),
            ("granted", *NUM),
            ("redelivered", *NUM),
            ("nacked", *NUM),
            ("dead_lettered", *NUM),
            ("compactions", *NUM),
            ("log_records", *NUM),
        ],
    )


def check_lease_groups(obj, ctx):
    for key in ("algorithm", "policy", "sync"):
        require(obj, key, *STR, ctx)
    for key in ("ops", "nack_percent", "consumers", "groups", "work_ns"):
        require(obj, key, *NUM, ctx)
    if obj["consumers"] < 1 or obj["groups"] < 1:
        raise SystemExit(f"{ctx}: consumers and groups must be >= 1")
    check_rows(
        obj,
        ctx,
        [
            ("shards", *NUM),
            ("wall_ms", *NUM),
            ("acked_per_sec", *NUM),
            ("granted", *NUM),
            ("redelivered", *NUM),
            ("nacked", *NUM),
            ("dead_lettered", *NUM),
            ("rotations", *NUM),
            ("segments_retired", *NUM),
            ("log_records", *NUM),
            ("segments", *NUM),
        ],
    )
    for i, row in enumerate(obj["rows"]):
        # Every group acks every item, so the aggregate ack throughput a
        # row reports can never fall below one item: a zero (or negative)
        # rate means the sweep silently did no work.
        if row["acked_per_sec"] <= 0:
            raise SystemExit(f"{ctx} rows[{i}]: acked_per_sec must be positive")


def check_fastpath(obj, ctx):
    require(obj, "ops", is_num, "a number", ctx)
    require(obj, "trials", is_num, "a number", ctx)
    require(
        obj,
        "lock_free_fast_path",
        lambda v: v is True,
        "true (the epoch-scheme marker)",
        ctx,
    )
    check_rows(
        obj,
        ctx,
        [
            ("mode", *STR),
            ("grow_step", *NUM),
            ("load_ns", *NUM),
            ("persist_ns", *NUM),
            ("map_ref_ns", *NUM),
        ],
    )
    modes = [row["mode"] for row in obj["rows"]]
    if "direct" not in modes or "epoch" not in modes:
        raise SystemExit(
            f"{ctx}: fastpath needs both a 'direct' and an 'epoch' row, got {modes!r}"
        )


def check_metrics(obj, ctx):
    require(obj, "counters", is_num, "a number", ctx)
    require(obj, "histograms", is_num, "a number", ctx)
    check_rows(
        obj,
        ctx,
        [
            ("instrument", *STR),
            ("type", lambda v: v in ("counter", "histogram"), "'counter' or 'histogram'"),
        ],
    )
    for i, row in enumerate(obj["rows"]):
        rctx = f"{ctx} rows[{i}]"
        if row["type"] == "counter":
            require(row, "value", *NUM, rctx)
        else:
            for key in ("count", "sum", "p50", "p99"):
                require(row, key, *NUM, rctx)


def check_blackbox(obj, ctx):
    require(obj, "ring", *STR, ctx)
    for key in ("capacity", "torn", "max_seq"):
        require(obj, key, *NUM, ctx)
    check_rows(
        obj,
        ctx,
        [
            ("seq", *NUM),
            ("kind", *STR),
            ("raw_kind", *NUM),
            ("a", *NUM),
            ("b", *NUM),
            ("wall_ns", *NUM),
        ],
    )
    seqs = [row["seq"] for row in obj["rows"]]
    if seqs != sorted(seqs):
        raise SystemExit(f"{ctx}: blackbox rows must be in ascending seq order")


def check_group_commit(obj, ctx):
    """`harness fsweep`: power-fail fence throughput, per-thread msync vs
    coalesced group commit, across producer counts and batch windows."""
    for key in ("fences", "pages"):
        require(obj, key, *NUM, ctx)
    check_rows(
        obj,
        ctx,
        [
            ("producers", *NUM),
            ("mode", lambda v: v in ("per-thread", "group-commit"),
             "'per-thread' or 'group-commit'"),
            ("window_us", lambda v: v is None or is_num(v), "a number or null"),
            ("wall_ms", *NUM),
            ("fences_per_sec", *NUM),
        ],
    )
    modes = {row["mode"] for row in obj["rows"]}
    if modes != {"per-thread", "group-commit"}:
        raise SystemExit(
            f"{ctx}: group_commit needs both fence modes, got {sorted(modes)!r}"
        )
    for i, row in enumerate(obj["rows"]):
        if row["fences_per_sec"] <= 0:
            raise SystemExit(f"{ctx} rows[{i}]: fences_per_sec must be positive")
        if (row["mode"] == "per-thread") != (row["window_us"] is None):
            raise SystemExit(
                f"{ctx} rows[{i}]: window_us must be null exactly for per-thread rows"
            )
    if "speedup" in obj:
        sctx = f"{ctx} speedup"
        for key in ("producers", "speedup", "best_window_us"):
            require(obj["speedup"], key, *NUM, sctx)


CHECKERS = {
    "counts": check_counts,
    "group_commit": check_group_commit,
    "shards": check_shards,
    "restart": check_restart,
    "fastpath": check_fastpath,
    "lease": check_lease,
    "lease_groups": check_lease_groups,
    "metrics": check_metrics,
    "blackbox": check_blackbox,
}


def validate_data(data, path):
    if not isinstance(data, list) or not data:
        raise SystemExit(f"{path}: must be a non-empty JSON array of experiment objects")
    for n, obj in enumerate(data):
        ctx = f"{path}[{n}]"
        if not isinstance(obj, dict):
            raise SystemExit(f"{ctx}: must be an object")
        experiment = obj.get("experiment")
        checker = CHECKERS.get(experiment)
        if checker is None:
            raise SystemExit(
                f"{ctx}: unknown experiment {experiment!r} "
                f"(expected one of {sorted(CHECKERS)})"
            )
        check_meta(obj, ctx)
        checker(obj, ctx)


def validate(path):
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    validate_data(data, path)
    print(f"{path}: {len(data)} experiment object(s) valid")


def self_test():
    """Validates the validator: a known-good document must pass and each
    targeted mutation of it must be rejected. Run from CI so a refactor
    that silently stops checking anything fails the build."""
    import copy

    def meta():
        return {
            "schema": META_SCHEMA,
            "backend": "file",
            "sync": "power-fail",
            "metrics": {
                "counters": {"store.fence": 12},
                "histograms": {
                    "store.msync_batch_pages": {
                        "count": 3, "sum": 9.0, "mean": 3.0,
                        "p50": 3.0, "p99": 4.0, "buckets": [],
                    }
                },
            },
        }

    good = [
        {
            "experiment": "group_commit",
            "meta": meta(),
            "fences": 150,
            "pages": 16,
            "rows": [
                {"producers": 8, "mode": "per-thread", "window_us": None,
                 "wall_ms": 700.0, "fences_per_sec": 1700.0},
                {"producers": 8, "mode": "group-commit", "window_us": 0,
                 "wall_ms": 230.0, "fences_per_sec": 5200.0},
            ],
            "speedup": {"producers": 8, "speedup": 3.05, "best_window_us": 0},
        },
        {
            "experiment": "counts",
            "meta": meta(),
            "ops": 2000,
            "shards": 1,
            "policy": "rr",
            "rows": [
                {"algorithm": "DurableMSQ", "enq_fences": 2.0, "deq_fences": 2.0,
                 "enq_flushes": 3.0, "nt_stores_per_op": 0.0,
                 "post_flush_per_op": 0.0},
            ],
        },
    ]
    validate_data(good, "self-test:good")

    def mutated(apply):
        doc = copy.deepcopy(good)
        apply(doc)
        return doc

    def del_key(obj, key):
        def apply(doc):
            del_from = doc
            for step in obj:
                del_from = del_from[step]
            del del_from[key]
        return apply

    rejects = [
        ("unknown experiment",
         mutated(lambda d: d[0].update(experiment="nonsense"))),
        ("missing meta", mutated(del_key([0], "meta"))),
        ("wrong meta schema",
         mutated(lambda d: d[0]["meta"].update(schema=1))),
        ("missing rows", mutated(del_key([0], "rows"))),
        ("missing row key", mutated(del_key([0, "rows", 0], "fences_per_sec"))),
        ("one-mode sweep", mutated(lambda d: d[0]["rows"].pop())),
        ("zero throughput",
         mutated(lambda d: d[0]["rows"][1].update(fences_per_sec=0))),
        ("window on per-thread row",
         mutated(lambda d: d[0]["rows"][0].update(window_us=5))),
        ("string count",
         mutated(lambda d: d[1]["rows"][0].update(enq_fences="2"))),
        ("non-list document", {"experiment": "counts"}),
    ]
    for what, doc in rejects:
        try:
            validate_data(doc, f"self-test:{what}")
        except SystemExit:
            continue
        raise SystemExit(f"self-test: validator accepted a document with {what}")
    print(f"self-test: 1 good document accepted, {len(rejects)} mutations rejected")


def main(argv):
    if len(argv) < 2:
        raise SystemExit(__doc__.strip().splitlines()[-2])
    if argv[1] == "--self-test":
        self_test()
        return
    for path in argv[1:]:
        validate(path)


if __name__ == "__main__":
    main(sys.argv)
