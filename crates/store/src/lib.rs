//! # store — file-backed persistent pools
//!
//! The `pmem` crate simulates NVRAM in DRAM; this crate makes the same
//! offset-addressed pool API durable for real. A [`FilePool`] is a shared
//! memory mapping of an ordinary file implementing [`pmem::PoolBackend`], so
//! every queue algorithm in the workspace — all of them operate on
//! `Arc<PmemPool>` — runs unchanged on storage that survives an actual
//! process restart:
//!
//! * a **versioned pool-file header** (magic, format version, pool size,
//!   clean/dirty flag, CRC-checked geometry, persistent watermark, root
//!   slots) lets a fresh process validate and reopen a pool with nothing but
//!   the file,
//! * flush/fence map to the **real x86-64 persistence instructions**
//!   (`CLWB`/`CLFLUSHOPT`-style flushes and `SFENCE` via [`pmem::hw`]), and
//!   the [`SyncPolicy`] decides whether fences additionally `msync` for
//!   power-fail durability on non-DAX storage,
//! * a `kill -9` mid-traffic is recoverable: the page cache preserves every
//!   retired store, the header's dirty flag records the unclean shutdown,
//!   and the queue's ordinary `RecoverableQueue::recover` procedure
//!   reconstructs the structure — exercised end to end by this crate's
//!   subprocess crash test and the `harness restart` verb.
//!
//! ```no_run
//! use store::{FileConfig, FilePool};
//!
//! // First life: create a pool file and a queue on it.
//! let pool = FilePool::create("/tmp/queue.pool", FileConfig::with_size(64 << 20))?;
//! let pool = pool.into_pool(); // Arc<PmemPool>, same as the simulator
//! // ... Q::create(pool, cfg), traffic, possibly a crash ...
//!
//! // Second life (new process): reopen and recover.
//! let pool = FilePool::open("/tmp/queue.pool")?;
//! let needs_recovery = !pool.was_clean();
//! let pool = pool.into_pool();
//! // ... Q::recover(pool, cfg) ...
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! The `shard` crate builds its directory-of-pools shard-map manifest on
//! top of this crate (one pool file per shard), using [`crc::crc32`] for
//! manifest integrity.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod crc;
pub mod file_pool;
pub mod mmap;

pub use crc::crc32;
pub use file_pool::{FileConfig, FilePool, SyncPolicy, FORMAT_VERSION, HEADER_LEN, MAGIC};
pub use mmap::MmapRegion;
