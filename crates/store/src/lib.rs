//! # store — file-backed persistent pools
//!
//! The `pmem` crate simulates NVRAM in DRAM; this crate makes the same
//! offset-addressed pool API durable for real. A [`FilePool`] is a shared
//! memory mapping of an ordinary file implementing [`pmem::PoolBackend`], so
//! every queue algorithm in the workspace — all of them operate on
//! `Arc<PmemPool>` — runs unchanged on storage that survives an actual
//! process restart:
//!
//! * a **versioned pool-file header** (magic, format version, pool size,
//!   clean/dirty flag, CRC-checked geometry, persistent watermark, root
//!   slots) lets a fresh process validate and reopen a pool with nothing but
//!   the file,
//! * flush/fence map to the **real x86-64 persistence instructions**
//!   (`CLWB`/`CLFLUSHOPT`-style flushes and `SFENCE` via [`pmem::hw`]), and
//!   the [`SyncPolicy`] decides whether fences additionally `msync` for
//!   power-fail durability on non-DAX storage,
//! * a `kill -9` mid-traffic is recoverable: the page cache preserves every
//!   retired store, the header's dirty flag records the unclean shutdown,
//!   and the queue's ordinary `RecoverableQueue::recover` procedure
//!   reconstructs the structure — exercised end to end by this crate's
//!   subprocess crash test and the `harness restart` verb,
//! * pools configured with a growth step are **elastic**: exhaustion grows
//!   the file (`ftruncate` + `mremap` behind a journaled, crash-atomic
//!   header commit) instead of failing, so a long-lived queue outgrows its
//!   creation-time ceiling — see [`file_pool`](self::file_pool#elastic-growth)
//!   and the grow-under-`SIGKILL` subprocess test,
//! * mapping access is **lock-free**: fixed-size pools dereference one
//!   immutable direct pointer, elastic pools pin the current mapping
//!   generation in a per-thread hazard slot and growth epoch-retires the
//!   superseded mapping — see
//!   [`file_pool`](self::file_pool#lock-free-mapping-access) and the
//!   repository's `docs/PERFORMANCE.md` chapter.
//!
//! ```
//! use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue};
//! use store::{FileConfig, FilePool};
//!
//! let path = std::env::temp_dir().join(format!("store-doc-{}.pool", std::process::id()));
//!
//! // First life: create a pool file and a queue on it.
//! let pool = FilePool::create(&path, FileConfig::with_size(4 << 20))?;
//! let pool = pool.into_pool(); // Arc<PmemPool>, same as the simulator
//! let queue = OptUnlinkedQueue::create(pool, QueueConfig::small_test());
//! queue.enqueue(0, 41);
//! queue.enqueue(0, 42);
//! drop(queue); // orderly close — a kill -9 here would recover identically
//!
//! // Second life (new process): reopen, check cleanliness, recover.
//! let pool = FilePool::open(&path)?;
//! let needs_recovery = !pool.was_clean(); // false after the clean drop
//! assert!(!needs_recovery);
//! let queue = OptUnlinkedQueue::recover(pool.into_pool(), QueueConfig::small_test());
//! assert_eq!(queue.dequeue(0), Some(41));
//! assert_eq!(queue.dequeue(0), Some(42));
//! drop(queue);
//! std::fs::remove_file(&path)?;
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! The `shard` crate builds its directory-of-pools shard-map manifest on
//! top of this crate (one pool file per shard), using [`crc::crc32`] for
//! manifest integrity, and its resharding operation leans on the pool-file
//! helpers here: [`FilePool::read_geometry`] sizes destination pools from
//! the sources' persisted watermarks, and [`copy_pool_file`] produces the
//! scratch copies resharding drains so source pools are never mutated
//! before the commit.
//!
//! On-disk layout: see `docs/FORMATS.md` at the repository root for the
//! byte-level header table and the version-compatibility rule (readers
//! reject unknown major versions).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod crc;
pub mod file_pool;
pub mod mmap;

pub use crc::crc32;
pub use file_pool::{
    copy_pool_file, FileConfig, FilePool, PoolGeometry, SyncPolicy, FORMAT_MINOR, FORMAT_VERSION,
    HEADER_LEN, MAGIC,
};
pub use mmap::MmapRegion;
