//! CRC-32 (IEEE 802.3, the `crc32` of zlib/PNG/gzip) for pool-file headers
//! and shard-map manifests.
//!
//! Table-driven, with the table built at compile time; plenty fast for the
//! metadata-sized inputs it protects (headers and manifests are at most a
//! few KiB, checked once per open/rewrite).

/// The reflected polynomial of CRC-32/IEEE.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = *b"the quick brown fox jumps over the lazy dog";
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&data), clean);
    }
}
