//! The memory-mapped, file-backed persistent pool.
//!
//! A [`FilePool`] implements [`pmem::PoolBackend`] over a shared mapping of
//! an ordinary file, so every queue algorithm in the workspace — they all
//! operate on `Arc<PmemPool>` — runs unchanged on storage that survives a
//! real process restart. Wrap it with [`FilePool::into_pool`] and hand the
//! result to `RecoverableQueue::create` / `recover` exactly like a simulated
//! pool.
//!
//! ## File format (version 1)
//!
//! ```text
//! byte 0                                  byte 4096             4096+pool_size
//! ┌──────────────────────────────────────┬─────────────────────────────┐
//! │ header page                          │ pool bytes                  │
//! │  0  magic      u64  "DQSTORE1"       │ offset-addressed space;     │
//! │  8  version    u32  = 1              │ offset 0 is reserved        │
//! │ 12  header_len u32  = 4096           │ (PRef::NULL), the queue     │
//! │ 16  pool_size  u64                   │ root block and the ssmem    │
//! │ 24  root_slots u32  = 8              │ directory sit at the fixed  │
//! │ 28  geo_crc    u32  CRC-32 of [0,28) │ pmem::layout offsets, the   │
//! │ 32  flags      u32  bit0 = clean     │ heap above HEAP_START       │
//! │ 36  watermark  u32  (atomic)         │                             │
//! │ 64  roots      [u64; 8] (atomic)     │                             │
//! │ ...zero...                           │                             │
//! └──────────────────────────────────────┴─────────────────────────────┘
//! ```
//!
//! The geometry CRC covers only the immutable fields (magic through
//! root-slot count): the mutable words below it — flags, watermark, roots —
//! are each a single naturally-aligned word updated atomically in place, so
//! they are always self-consistent and deliberately outside the checksum.
//!
//! ## Durability model
//!
//! Stores go straight into the shared mapping, i.e. the OS page cache.
//! Against a **process crash** (`kill -9` included) everything already
//! stored is therefore durable — the page cache outlives the process — and
//! the flush/fence discipline costs only the real `CLWB`/`SFENCE`
//! instructions ([`SyncPolicy::ProcessCrash`], the default). Against
//! **power failure** the pool must reach the medium:
//! [`SyncPolicy::PowerFail`] additionally `msync`s, at every fence, the
//! pages the fencing thread flushed since its previous fence — the
//! file-system analogue of the paper's flush+SFENCE discipline. On DAX
//! mounts (real NVRAM mapped cache-coherently) the `CLWB`+`SFENCE` path
//! alone is the durability barrier, and `ProcessCrash` is the right mode.
//! Either way [`PmemPool::sync`] performs a full `msync` + `fsync`
//! checkpoint, and an orderly drop marks the header clean; a killed process
//! leaves the dirty flag set, which [`FilePool::was_clean`] reports on
//! reopen.

use crate::crc::crc32;
use crate::mmap::{page_size, MmapRegion};
use crossbeam_utils::CachePadded;
use pmem::layout::{self, CACHE_LINE};
use pmem::{PmemPool, PoolBackend, MAX_THREADS, ROOT_SLOTS};
use std::cell::UnsafeCell;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// `"DQSTORE1"` in little-endian byte order.
pub const MAGIC: u64 = u64::from_le_bytes(*b"DQSTORE1");

/// Pool-file format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Size of the pool-file header page; pool offset 0 maps to this file byte.
pub const HEADER_LEN: usize = 4096;

// Header field byte offsets (see the module docs for the layout diagram).
const H_MAGIC: usize = 0;
const H_VERSION: usize = 8;
const H_HEADER_LEN: usize = 12;
const H_POOL_SIZE: usize = 16;
const H_ROOT_SLOTS: usize = 24;
const H_GEO_CRC: usize = 28;
const H_FLAGS: usize = 32;
const H_WATERMARK: usize = 36;
const H_ROOTS: usize = 64;

/// Extent of the geometry fields the header CRC covers.
const GEO_LEN: usize = H_GEO_CRC;

/// `flags` bit: the pool was closed in an orderly fashion.
const FLAG_CLEAN: u32 = 1;

/// What a fence must guarantee. See the [module docs](self#durability-model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Durable against process crashes (and against any crash on DAX-mapped
    /// NVRAM): flush/fence execute the real `CLWB`/`SFENCE` instructions
    /// only; stores are already in the OS page cache.
    #[default]
    ProcessCrash,
    /// Durable against power failure on ordinary storage: every fence also
    /// `msync(MS_SYNC)`s the pages its thread flushed since the last fence.
    PowerFail,
}

impl SyncPolicy {
    /// Short identifier used on the command line.
    pub fn key(&self) -> &'static str {
        match self {
            SyncPolicy::ProcessCrash => "process-crash",
            SyncPolicy::PowerFail => "power-fail",
        }
    }

    /// Parses a (case-insensitive) policy name.
    pub fn parse(s: &str) -> Option<SyncPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "process-crash" | "processcrash" | "process" | "cache" => {
                Some(SyncPolicy::ProcessCrash)
            }
            "power-fail" | "powerfail" | "power" | "msync" => Some(SyncPolicy::PowerFail),
            _ => None,
        }
    }
}

/// Configuration of a fresh pool file.
#[derive(Clone, Copy, Debug)]
pub struct FileConfig {
    /// Pool size in bytes (the offset-addressed space, excluding the
    /// header). Rounded up to a whole number of cache lines; must leave room
    /// for the fixed layout regions.
    pub size: usize,
    /// Fence durability policy.
    pub sync: SyncPolicy,
}

impl FileConfig {
    /// A pool of `size` bytes under the default (process-crash) policy.
    pub fn with_size(size: usize) -> Self {
        FileConfig {
            size,
            sync: SyncPolicy::default(),
        }
    }

    /// Overrides the fence durability policy.
    pub fn with_sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }
}

impl Default for FileConfig {
    fn default() -> Self {
        Self::with_size(64 << 20)
    }
}

/// Per-thread pages with outstanding flushes (power-fail policy only);
/// same single-owner-per-tid discipline as the pool's persist API.
#[derive(Default)]
struct PendingPages(UnsafeCell<Vec<usize>>);

// SAFETY: each slot is only accessed by the single thread owning the tid.
unsafe impl Sync for PendingPages {}

/// The validated geometry of an existing pool file, read from its header
/// without mapping the pool (see [`FilePool::read_geometry`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolGeometry {
    /// Pool size in bytes (the offset-addressed space, header excluded).
    pub pool_size: usize,
    /// Persisted allocation watermark: the pool offset below which space
    /// has been handed out. Never below `pmem::layout::HEAP_START`.
    pub watermark: u32,
    /// Whether the last session closed the pool cleanly.
    pub was_clean: bool,
}

impl PoolGeometry {
    /// Heap bytes actually handed out so far — what a copy or reshard of
    /// this pool must at minimum be able to hold.
    pub fn used_bytes(&self) -> usize {
        self.watermark as usize - layout::HEAP_START as usize
    }
}

/// The file-backed pool. See the [module docs](self).
pub struct FilePool {
    map: MmapRegion,
    file: File,
    path: PathBuf,
    size: usize,
    policy: SyncPolicy,
    was_clean: bool,
    pending: Box<[CachePadded<PendingPages>]>,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Validates a pool-file header (magic, format version, geometry CRC,
/// size-vs-file-length, watermark) and returns the decoded geometry.
/// Shared by [`FilePool::open_with_sync`] and [`FilePool::read_geometry`].
fn validate_header(header: &[u8], file_len: u64, path: &Path) -> io::Result<PoolGeometry> {
    let read_u64 = |off: usize| u64::from_le_bytes(header[off..off + 8].try_into().unwrap());
    let read_u32 = |off: usize| u32::from_le_bytes(header[off..off + 4].try_into().unwrap());
    if read_u64(H_MAGIC) != MAGIC {
        return Err(invalid(format!(
            "{}: bad magic {:#018x} (not a durable-queues pool file)",
            path.display(),
            read_u64(H_MAGIC)
        )));
    }
    let version = read_u32(H_VERSION);
    if version != FORMAT_VERSION {
        return Err(invalid(format!(
            "{}: pool-file format version {} (this build reads {})",
            path.display(),
            version,
            FORMAT_VERSION
        )));
    }
    let geo_crc = crc32(&header[..GEO_LEN]);
    if geo_crc != read_u32(H_GEO_CRC) {
        return Err(invalid(format!(
            "{}: header CRC mismatch (stored {:#010x}, computed {:#010x})",
            path.display(),
            read_u32(H_GEO_CRC),
            geo_crc
        )));
    }
    if read_u32(H_HEADER_LEN) as usize != HEADER_LEN
        || read_u32(H_ROOT_SLOTS) as usize != ROOT_SLOTS
    {
        return Err(invalid(format!(
            "{}: unsupported geometry (header_len {}, root_slots {})",
            path.display(),
            read_u32(H_HEADER_LEN),
            read_u32(H_ROOT_SLOTS)
        )));
    }
    let size = read_u64(H_POOL_SIZE) as usize;
    if size > u32::MAX as usize || (HEADER_LEN + size) as u64 > file_len {
        return Err(invalid(format!(
            "{}: header claims {} pool bytes but the file holds {}",
            path.display(),
            size,
            file_len.saturating_sub(HEADER_LEN as u64)
        )));
    }
    let watermark = read_u32(H_WATERMARK);
    if watermark < layout::HEAP_START || watermark as usize > size {
        return Err(invalid(format!(
            "{}: corrupt watermark {} (heap starts at {}, pool size {})",
            path.display(),
            watermark,
            layout::HEAP_START,
            size
        )));
    }
    Ok(PoolGeometry {
        pool_size: size,
        watermark,
        was_clean: read_u32(H_FLAGS) & FLAG_CLEAN != 0,
    })
}

/// Copies a pool file after validating its header, `fsync`ing the copy.
/// Only the live prefix — the header page plus the pool bytes below the
/// persisted watermark — is physically copied; the allocator never hands
/// out (and the pool never writes) space above the watermark, so the tail
/// is left as a sparse hole of zeroes and the copy keeps the source's full
/// length. Returns that length.
///
/// The source must not be open in any process (a torn copy of a live pool
/// would be a silent corruption); resharding uses this to drain source
/// shards from scratch copies without mutating the originals.
pub fn copy_pool_file(src: impl AsRef<Path>, dst: impl AsRef<Path>) -> io::Result<u64> {
    use std::io::Read;
    let src = src.as_ref();
    let geometry = FilePool::read_geometry(src)?;
    let len = std::fs::metadata(src)?.len();
    let live = (HEADER_LEN + geometry.watermark as usize) as u64;
    let mut from = File::open(src)?;
    let mut to = File::create(dst.as_ref())?;
    io::copy(&mut (&mut from).take(live.min(len)), &mut to)?;
    to.set_len(len)?;
    to.sync_all()?;
    Ok(len)
}

impl FilePool {
    /// Creates (or overwrites) a pool file at `path` and opens it. The pool
    /// starts zeroed with the watermark at [`layout::HEAP_START`], dirty
    /// until dropped cleanly.
    pub fn create(path: impl AsRef<Path>, config: FileConfig) -> io::Result<FilePool> {
        let path = path.as_ref().to_path_buf();
        let min = layout::HEAP_START as usize + CACHE_LINE;
        // Ceiling leaves headroom for the cache-line round-up (align_up
        // computes n + align - 1 left to right): anything above
        // u32::MAX - 64 would overflow the 32-bit offset arithmetic.
        let max = u32::MAX as usize - CACHE_LINE;
        let size = layout::align_up(config.size.clamp(min, max) as u32, CACHE_LINE as u32) as usize;
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.set_len((HEADER_LEN + size) as u64)?;
        let map = MmapRegion::map(&file, HEADER_LEN + size)?;
        let pool = FilePool {
            map,
            file,
            path,
            size,
            policy: config.sync,
            was_clean: true,
            pending: new_pending(),
        };
        pool.write_header();
        pool.map.msync(0, HEADER_LEN)?;
        Ok(pool)
    }

    /// Opens an existing pool file, validating magic, format version,
    /// geometry CRC, size and watermark. The previous session's clean flag
    /// is captured in [`was_clean`](Self::was_clean), then the pool is
    /// marked dirty for the new session.
    pub fn open(path: impl AsRef<Path>) -> io::Result<FilePool> {
        Self::open_with_sync(path, SyncPolicy::default())
    }

    /// [`open`](Self::open) with an explicit fence durability policy.
    pub fn open_with_sync(path: impl AsRef<Path>, sync: SyncPolicy) -> io::Result<FilePool> {
        let path = path.as_ref().to_path_buf();
        let file = File::options().read(true).write(true).open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN as u64 {
            return Err(invalid(format!(
                "{}: {} bytes is too short to hold a pool-file header",
                path.display(),
                file_len
            )));
        }
        // Map the header page first: geometry must be validated before the
        // pool size is trusted for the full mapping.
        let header_map = MmapRegion::map(&file, HEADER_LEN)?;
        let header =
            // SAFETY: the mapping is at least HEADER_LEN bytes.
            unsafe { std::slice::from_raw_parts(header_map.as_ptr(), HEADER_LEN) };
        let geometry = validate_header(header, file_len, &path)?;
        drop(header_map);

        let size = geometry.pool_size;
        let map = MmapRegion::map(&file, HEADER_LEN + size)?;
        let pool = FilePool {
            map,
            file,
            path,
            size,
            policy: sync,
            was_clean: geometry.was_clean,
            pending: new_pending(),
        };
        pool.set_flags(false); // dirty while open
        pool.map.msync(0, HEADER_LEN)?;
        Ok(pool)
    }

    /// Reads and validates the header of an existing pool file **without
    /// opening it**: no mapping of the pool space, no dirty-marking, no
    /// side effects on the file. This is how a resharding (or inspection)
    /// pass sizes destination pools from the source pools' persisted
    /// watermarks before committing to anything.
    pub fn read_geometry(path: impl AsRef<Path>) -> io::Result<PoolGeometry> {
        use std::io::Read;
        let path = path.as_ref();
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN as u64 {
            return Err(invalid(format!(
                "{}: {} bytes is too short to hold a pool-file header",
                path.display(),
                file_len
            )));
        }
        let mut header = vec![0u8; HEADER_LEN];
        file.read_exact(&mut header)?;
        validate_header(&header, file_len, path)
    }

    /// Whether the previous session closed this pool cleanly. `true` for a
    /// freshly created pool; `false` after a crash/kill, in which case the
    /// caller should run the queue's `recover` procedure (running it after a
    /// clean shutdown is also always safe).
    pub fn was_clean(&self) -> bool {
        self.was_clean
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fence durability policy in effect.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Wraps this backend in an [`Arc<PmemPool>`] — the handle every queue
    /// constructor takes, so any algorithm in the workspace runs unchanged
    /// on file-backed storage.
    ///
    /// ```
    /// use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue};
    /// use store::{FileConfig, FilePool};
    ///
    /// let path = std::env::temp_dir().join(format!("into-pool-doc-{}.pool", std::process::id()));
    /// let pool = FilePool::create(&path, FileConfig::with_size(4 << 20))?.into_pool();
    /// let queue = OptUnlinkedQueue::create(pool, QueueConfig::small_test());
    /// queue.enqueue(0, 7);
    /// assert_eq!(queue.dequeue(0), Some(7));
    /// drop(queue);
    /// std::fs::remove_file(&path)?;
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn into_pool(self) -> Arc<PmemPool> {
        Arc::new(PmemPool::from_backend(Box::new(self)))
    }

    // ------------------------------------------------------------------
    // Raw access helpers
    // ------------------------------------------------------------------

    #[inline]
    fn check_bounds(&self, off: u32, bytes: u32) {
        debug_assert!(
            off as usize + bytes as usize <= self.size,
            "pool access out of bounds"
        );
        debug_assert_eq!(off % bytes, 0, "unaligned pool access");
    }

    /// The mapped address of pool offset `off`.
    #[inline]
    fn addr(&self, off: u32) -> *mut u8 {
        // SAFETY: callers stay within HEADER_LEN + size (debug-checked).
        unsafe { self.map.as_ptr().add(HEADER_LEN + off as usize) }
    }

    #[inline]
    fn word(&self, off: u32) -> &AtomicU64 {
        self.check_bounds(off, 8);
        // SAFETY: in bounds, 8-byte aligned (the mapping is page aligned),
        // and only ever accessed atomically.
        unsafe { &*(self.addr(off) as *const AtomicU64) }
    }

    #[inline]
    fn header_u32(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off + 4 <= HEADER_LEN && off.is_multiple_of(4));
        // SAFETY: in bounds of the header page, 4-byte aligned.
        unsafe { &*(self.map.as_ptr().add(off) as *const AtomicU32) }
    }

    #[inline]
    fn header_u64(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off + 8 <= HEADER_LEN && off.is_multiple_of(8));
        // SAFETY: in bounds of the header page, 8-byte aligned.
        unsafe { &*(self.map.as_ptr().add(off) as *const AtomicU64) }
    }

    /// Fills in a fresh header (create path; the mapping is zeroed).
    fn write_header(&self) {
        self.header_u64(H_MAGIC).store(MAGIC, Ordering::Relaxed);
        self.header_u32(H_VERSION)
            .store(FORMAT_VERSION, Ordering::Relaxed);
        self.header_u32(H_HEADER_LEN)
            .store(HEADER_LEN as u32, Ordering::Relaxed);
        self.header_u64(H_POOL_SIZE)
            .store(self.size as u64, Ordering::Relaxed);
        self.header_u32(H_ROOT_SLOTS)
            .store(ROOT_SLOTS as u32, Ordering::Relaxed);
        // SAFETY: the header page is mapped and at least GEO_LEN bytes.
        let geo = unsafe { std::slice::from_raw_parts(self.map.as_ptr(), GEO_LEN) };
        self.header_u32(H_GEO_CRC)
            .store(crc32(geo), Ordering::Relaxed);
        self.header_u32(H_FLAGS).store(0, Ordering::Relaxed); // dirty
        self.header_u32(H_WATERMARK)
            .store(layout::HEAP_START, Ordering::Release);
    }

    fn set_flags(&self, clean: bool) {
        let flags = if clean { FLAG_CLEAN } else { 0 };
        self.header_u32(H_FLAGS).store(flags, Ordering::Release);
        // SAFETY: the header page is valid readable memory.
        unsafe { pmem::hw::clflush(self.map.as_ptr().add(H_FLAGS)) };
        pmem::hw::sfence();
    }

    /// Durably persists the header page when the policy demands it (rare
    /// path: watermark movement, root-slot writes, clean/dirty marking).
    fn persist_header(&self) {
        // SAFETY: the header page is valid readable memory.
        unsafe { pmem::hw::persist_range(self.map.as_ptr(), HEADER_LEN) };
        if self.policy == SyncPolicy::PowerFail {
            let _ = self.map.msync(0, HEADER_LEN);
        }
    }

    fn with_pending<R>(&self, tid: usize, f: impl FnOnce(&mut Vec<usize>) -> R) -> R {
        assert!(tid < MAX_THREADS, "tid {tid} exceeds MAX_THREADS");
        // SAFETY: by the persist-API contract only the owner of `tid` calls
        // this, and the borrow is confined to the call.
        f(unsafe { &mut *self.pending[tid].0.get() })
    }
}

fn new_pending() -> Box<[CachePadded<PendingPages>]> {
    (0..MAX_THREADS)
        .map(|_| CachePadded::new(PendingPages::default()))
        .collect()
}

impl Drop for FilePool {
    /// Orderly close: full durability barrier, then mark the header clean.
    /// A killed process never gets here, leaving the dirty flag set.
    fn drop(&mut self) {
        let _ = self.map.msync(0, HEADER_LEN + self.size);
        let _ = self.file.sync_all();
        self.set_flags(true);
        let _ = self.map.msync(0, HEADER_LEN);
        let _ = self.file.sync_all();
    }
}

impl PoolBackend for FilePool {
    fn kind(&self) -> &'static str {
        "file"
    }

    fn len(&self) -> usize {
        self.size
    }

    #[inline]
    fn load_u64(&self, off: u32) -> u64 {
        self.word(off).load(Ordering::Acquire)
    }

    #[inline]
    fn store_u64(&self, off: u32, val: u64) {
        self.word(off).store(val, Ordering::Release)
    }

    #[inline]
    fn cas_u64(&self, off: u32, current: u64, new: u64) -> Result<u64, u64> {
        self.word(off)
            .compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    #[inline]
    fn fetch_add_u64(&self, off: u32, val: u64) -> u64 {
        self.word(off).fetch_add(val, Ordering::AcqRel)
    }

    #[inline]
    fn swap_u64(&self, off: u32, val: u64) -> u64 {
        self.word(off).swap(val, Ordering::AcqRel)
    }

    #[inline]
    fn flush(&self, tid: usize, off: u32) {
        self.check_bounds(off, 8);
        // SAFETY: the line containing `off` is inside the mapping.
        unsafe { pmem::hw::clflush(self.addr(off)) };
        if self.policy == SyncPolicy::PowerFail {
            let page = (HEADER_LEN + off as usize) / page_size();
            self.with_pending(tid, |pending| {
                if pending.last() != Some(&page) {
                    pending.push(page);
                }
            });
        }
    }

    fn sfence(&self, tid: usize) {
        pmem::hw::sfence();
        if self.policy == SyncPolicy::PowerFail {
            let mut pages = self.with_pending(tid, std::mem::take);
            pages.sort_unstable();
            pages.dedup();
            let page = page_size();
            for p in pages {
                let _ = self.map.msync(p * page, page);
            }
        }
    }

    #[inline]
    fn nt_store_u64(&self, tid: usize, off: u32, val: u64) {
        self.check_bounds(off, 8);
        // SAFETY: in bounds, 8-byte aligned; concurrent access to pool words
        // is atomic by contract (a racing movnti would be the caller's
        // single-writer-per-word violation, same as on real hardware).
        unsafe { pmem::hw::nt_store_u64(self.addr(off) as *mut u64, val) };
        if self.policy == SyncPolicy::PowerFail {
            let page = (HEADER_LEN + off as usize) / page_size();
            self.with_pending(tid, |pending| pending.push(page));
        }
    }

    fn persist_now(&self, off: u32) {
        self.check_bounds(off, 8);
        // SAFETY: the line containing `off` is inside the mapping.
        unsafe { pmem::hw::persist_range(self.addr(off), 8) };
        if self.policy == SyncPolicy::PowerFail {
            let page = page_size();
            let start = (HEADER_LEN + off as usize) & !(page - 1);
            let _ = self.map.msync(start, page);
        }
    }

    fn zero_range(&self, off: u32, len: u32) {
        assert_eq!(off % 8, 0);
        assert_eq!(len % 8, 0);
        assert!(off as usize + len as usize <= self.size);
        for i in 0..(len / 8) {
            self.word(off + i * 8).store(0, Ordering::Release);
        }
    }

    fn watermark(&self) -> u32 {
        self.header_u32(H_WATERMARK).load(Ordering::Acquire)
    }

    fn cas_watermark(&self, current: u32, new: u32) -> Result<u32, u32> {
        let r = self.header_u32(H_WATERMARK).compare_exchange(
            current,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        if r.is_ok() {
            // Allocations are rare (the ssmem layer carves whole designated
            // areas); persist the moved watermark eagerly so a reopened pool
            // never re-hands-out reserved space.
            // SAFETY: the header page is valid readable memory.
            unsafe { pmem::hw::clflush(self.map.as_ptr().add(H_WATERMARK)) };
            pmem::hw::sfence();
            if self.policy == SyncPolicy::PowerFail {
                let _ = self.map.msync(0, HEADER_LEN);
            }
        }
        r
    }

    fn root_u64(&self, slot: usize) -> u64 {
        debug_assert!(slot < ROOT_SLOTS);
        self.header_u64(H_ROOTS + slot * 8).load(Ordering::Acquire)
    }

    fn set_root_u64(&self, slot: usize, val: u64) {
        debug_assert!(slot < ROOT_SLOTS);
        self.header_u64(H_ROOTS + slot * 8)
            .store(val, Ordering::Release);
        self.persist_header();
    }

    fn sync(&self) {
        let _ = self.map.msync(0, HEADER_LEN + self.size);
        let _ = self.file.sync_all();
    }

    fn mark_clean(&self, clean: bool) {
        self.set_flags(clean);
        let _ = self.map.msync(0, HEADER_LEN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("store-filepool-{tag}-{}", std::process::id()))
    }

    fn small() -> FileConfig {
        FileConfig::with_size(1 << 20)
    }

    #[test]
    fn create_open_roundtrip_preserves_data_and_watermark() {
        let path = temp_path("roundtrip");
        let off;
        {
            let pool = FilePool::create(&path, small()).unwrap();
            assert!(pool.was_clean());
            let p = pool.into_pool();
            off = p.alloc_raw(64, 64);
            p.store_u64(off, 0xFEED);
            p.flush(0, off);
            p.sfence(0);
            p.set_root_u64(0, off as u64);
        } // clean drop
        {
            let pool = FilePool::open(&path).unwrap();
            assert!(pool.was_clean(), "orderly drop must mark the pool clean");
            let p = pool.into_pool();
            assert_eq!(p.backend_kind(), "file");
            assert_eq!(p.root_u64(0), off as u64);
            assert_eq!(p.load_u64(off), 0xFEED);
            assert!(p.watermark() >= off + 64, "watermark must persist");
            // The watermark protects existing data: a new allocation lands
            // strictly above it.
            assert!(p.alloc_raw(64, 64) >= off + 64);
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dirty_flag_survives_until_clean_close() {
        let path = temp_path("dirty");
        {
            let _pool = FilePool::create(&path, small()).unwrap();
            // Reopening while another handle holds the pool open (or after a
            // kill) must observe the dirty flag.
            let second = FilePool::open(&path).unwrap();
            assert!(!second.was_clean());
        }
        let third = FilePool::open(&path).unwrap();
        assert!(third.was_clean());
        drop(third);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_bad_magic_version_and_crc() {
        use std::io::{Seek, SeekFrom, Write};
        let path = temp_path("validate");
        drop(FilePool::create(&path, small()).unwrap());

        let corrupt_at = |pos: u64, bytes: &[u8]| {
            let mut f = File::options().read(true).write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(pos)).unwrap();
            f.write_all(bytes).unwrap();
        };
        let reopen = || FilePool::open(&path).map(|_| ()).unwrap_err().to_string();

        corrupt_at(0, b"NOTAPOOL");
        assert!(reopen().contains("bad magic"), "{}", reopen());
        corrupt_at(0, b"DQSTORE1");
        // Magic restored but the CRC content changed? No — magic is part of
        // the CRC'd region and was restored bit-for-bit, so this reopens.
        FilePool::open(&path).unwrap();

        corrupt_at(8, &99u32.to_le_bytes());
        assert!(reopen().contains("version"), "{}", reopen());
        corrupt_at(8, &FORMAT_VERSION.to_le_bytes());

        corrupt_at(16, &(123456789u64).to_le_bytes());
        assert!(reopen().contains("CRC"), "{}", reopen());

        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_truncated_files_and_corrupt_watermarks() {
        let path = temp_path("truncate");
        drop(FilePool::create(&path, small()).unwrap());
        let f = File::options().read(true).write(true).open(&path).unwrap();
        f.set_len(HEADER_LEN as u64 + 100).unwrap();
        drop(f);
        let err = FilePool::open(&path).map(|_| ()).unwrap_err().to_string();
        assert!(err.contains("claims"), "{err}");
        fs::remove_file(&path).unwrap();

        let path = temp_path("watermark");
        drop(FilePool::create(&path, small()).unwrap());
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = File::options().read(true).write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(H_WATERMARK as u64)).unwrap();
            f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        }
        let err = FilePool::open(&path).map(|_| ()).unwrap_err().to_string();
        assert!(err.contains("watermark"), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn power_fail_policy_msyncs_without_changing_semantics() {
        let path = temp_path("powerfail");
        {
            let pool = FilePool::create(&path, small().with_sync(SyncPolicy::PowerFail)).unwrap();
            assert_eq!(pool.sync_policy(), SyncPolicy::PowerFail);
            let p = pool.into_pool();
            let off = p.alloc_raw(256, 64);
            for i in 0..32 {
                p.store_u64(off + i * 8, i as u64 + 1);
            }
            p.flush_range(0, off, 256);
            p.sfence(0);
            p.nt_store_u64(0, off, 999);
            p.sfence(0);
            p.persist_now(off + 8);
            p.sync();
            assert_eq!(p.load_u64(off), 999);
            assert_eq!(p.load_u64(off + 8), 2);
        }
        drop(FilePool::open_with_sync(&path, SyncPolicy::PowerFail).unwrap());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomics_and_roots_behave_like_the_sim_backend() {
        let path = temp_path("atomics");
        let pool = FilePool::create(&path, small()).unwrap();
        let p = pool.into_pool();
        let off = p.alloc_raw(64, 64);
        assert_eq!(p.fetch_add_u64(off, 5), 0);
        assert_eq!(p.cas_u64(off, 5, 6), Ok(5));
        assert_eq!(p.cas_u64(off, 5, 7), Err(6));
        assert_eq!(p.swap_u64(off, 100), 6);
        p.zero_range(off, 64);
        assert_eq!(p.load_u64(off), 0);
        p.set_root_u64(3, 0xBEEF);
        assert_eq!(p.root_u64(3), 0xBEEF);
        assert_eq!(p.persistent_u64_at(off), 0);
        p.mark_line_cached(off); // no-op, must not panic
        drop(p);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_geometry_reports_size_watermark_and_cleanliness() {
        let path = temp_path("geometry");
        let off;
        {
            let pool = FilePool::create(&path, small()).unwrap();
            let expected_size = pool.len();
            let p = pool.into_pool();
            off = p.alloc_raw(256, 64);
            // Mid-session: dirty, watermark already moved.
            let geo = FilePool::read_geometry(&path).unwrap();
            assert_eq!(geo.pool_size, expected_size);
            assert!(!geo.was_clean, "open pool reads as dirty");
            assert!(geo.watermark >= off + 256);
            assert_eq!(
                geo.used_bytes(),
                geo.watermark as usize - layout::HEAP_START as usize
            );
        }
        let geo = FilePool::read_geometry(&path).unwrap();
        assert!(geo.was_clean, "orderly drop marks the pool clean");
        assert!(geo.used_bytes() >= 256);
        // Reading the geometry has no side effects: the file still opens
        // clean afterwards.
        assert!(FilePool::open(&path).unwrap().was_clean());
        fs::remove_file(&path).unwrap();

        // Validation errors surface exactly like open's.
        let err = FilePool::read_geometry(&path).map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
        fs::write(&path, b"short").unwrap();
        let err = FilePool::read_geometry(&path).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("too short"), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn copy_pool_file_produces_an_identical_openable_pool() {
        let src = temp_path("copy-src");
        let dst = temp_path("copy-dst");
        {
            let pool = FilePool::create(&src, small()).unwrap().into_pool();
            let off = pool.alloc_raw(64, 64);
            pool.store_u64(off, 0xC0FFEE);
            pool.set_root_u64(0, off as u64);
        }
        let bytes = copy_pool_file(&src, &dst).unwrap();
        assert_eq!(bytes, fs::metadata(&src).unwrap().len());
        let copy = FilePool::open(&dst).unwrap();
        assert!(copy.was_clean());
        let p = copy.into_pool();
        let off = p.root_u64(0) as u32;
        assert_eq!(p.load_u64(off), 0xC0FFEE);
        // Copying a non-pool file is refused before any bytes move.
        fs::write(&src, b"not a pool").unwrap();
        assert!(copy_pool_file(&src, &dst).is_err());
        fs::remove_file(&src).unwrap();
        fs::remove_file(&dst).unwrap();
    }

    #[test]
    fn create_clamps_huge_sizes_without_align_overflow() {
        // u32::MAX used to overflow the cache-line round-up inside create.
        let path = temp_path("huge");
        let pool = FilePool::create(&path, FileConfig::with_size(u32::MAX as usize)).unwrap();
        assert!(pool.len() <= u32::MAX as usize);
        assert_eq!(pool.len() % CACHE_LINE, 0);
        assert!(pool.len() >= (u32::MAX as usize) - 2 * CACHE_LINE);
        drop(pool);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sizes_are_floored_and_aligned() {
        let path = temp_path("sizing");
        let pool = FilePool::create(&path, FileConfig::with_size(10)).unwrap();
        assert!(pool.len() >= layout::HEAP_START as usize + CACHE_LINE);
        assert_eq!(pool.len() % CACHE_LINE, 0);
        assert_eq!(
            pool.path().file_name(),
            path.file_name(),
            "path is recorded"
        );
        drop(pool);
        fs::remove_file(&path).unwrap();
    }
}
