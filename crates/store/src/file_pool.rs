//! The memory-mapped, file-backed persistent pool.
//!
//! A [`FilePool`] implements [`pmem::PoolBackend`] over a shared mapping of
//! an ordinary file, so every queue algorithm in the workspace — they all
//! operate on `Arc<PmemPool>` — runs unchanged on storage that survives a
//! real process restart. Wrap it with [`FilePool::into_pool`] and hand the
//! result to `RecoverableQueue::create` / `recover` exactly like a simulated
//! pool.
//!
//! ## File format (version 1, minor 1)
//!
//! ```text
//! byte 0                                  byte 4096             4096+size
//! ┌──────────────────────────────────────┬─────────────────────────────┐
//! │ header page                          │ pool bytes                  │
//! │   0  magic      u64  "DQSTORE1"      │ offset-addressed space;     │
//! │   8  version    u32  major|minor<<16 │ offset 0 is reserved        │
//! │  12  header_len u32  = 4096          │ (PRef::NULL), the queue     │
//! │  16  pool_size  u64  (creation size) │ root block and the ssmem    │
//! │  24  root_slots u32  = 8             │ directory sit at the fixed  │
//! │  28  geo_crc    u32  CRC-32 of [0,28)│ pmem::layout offsets, the   │
//! │  32  flags      u32  bit0 = clean    │ heap above HEAP_START       │
//! │  36  watermark  u32  (atomic)        │                             │
//! │  40  grown_size u64  (minor ≥ 1)     │ `size` is `pool_size` until │
//! │  48  grow_epoch u32  (minor ≥ 1)     │ the pool grows, then the    │
//! │  52  grow_crc   u32  CRC of [40,52)  │ committed `grown_size`      │
//! │  64  roots      [u64; 8] (atomic)    │                             │
//! │ 128  grow-commit journal (32 B)      │                             │
//! │ ...zero...                           │                             │
//! └──────────────────────────────────────┴─────────────────────────────┘
//! ```
//!
//! The geometry CRC covers only the immutable fields (magic through
//! root-slot count, including the version word): the mutable words below it
//! — flags, watermark, roots — are each a single naturally-aligned word
//! updated atomically in place, so they are always self-consistent and
//! deliberately outside the checksum. The grow record (`grown_size`,
//! `grow_epoch`) carries its own CRC and is rewritten only through the
//! journaled commit protocol described below.
//!
//! ## Lock-free mapping access
//!
//! Every pool operation dereferences the mapping through a wait-free pin:
//! the current mapping generation is published as an atomic descriptor
//! pointer, a reader announces the descriptor it is about to use in its own
//! cache-padded hazard slot, re-checks the pointer, and proceeds — no lock,
//! no contended write, no syscall. A **fixed-size pool (`grow_step == 0`)
//! skips even that**: its mapping can never change, so the per-operation
//! cost is one relaxed load of an immutable pointer — the direct path, and
//! the reason the file backend's steady-state cost is just the flushes the
//! algorithm itself issues. Every operation's bounds are enforced against
//! the pinned generation **in release builds**: an op whose offset
//! postdates the pinned view (possible only nested under an outstanding
//! [`MapRef`](pmem::MapRef)) re-resolves the current generation under the
//! growth lock instead of dereferencing past the stale mapping, and a
//! genuinely out-of-range offset panics. The epoch scheme, its proof
//! obligations and the measured cost are chaptered in
//! `docs/PERFORMANCE.md`.
//!
//! ## Elastic growth
//!
//! A pool created (or opened) with a non-zero growth step is **elastic**: when
//! `try_alloc_raw` runs out of space, the backend extends the file by at
//! least one growth step (`ftruncate`), remaps it, and retries — a queue can
//! outgrow its creation-time watermark ceiling without ever surfacing
//! `PoolExhausted`. Growth never blocks readers (on Unix): the file is
//! extended with `mremap` in place when the kernel allows it (same base
//! pointer, no second VA range — concurrent readers don't even notice) and
//! otherwise duplicated via `mremap(old, 0, new_len, MREMAP_MAYMOVE)`, the
//! new descriptor is published atomically, and the replaced mapping is
//! **epoch-retired**: it is unmapped only once no reader's hazard slot
//! references it. Growth is also **crash-safe**: the durable commit point is
//! a self-checksummed journal record in the header page, persisted after
//! the `ftruncate` and *before* the larger size is published to allocators
//! — the watermark is persisted eagerly on every allocation, so space above
//! the old ceiling must never be handed out ahead of the record that makes
//! the new size survive a crash. A `kill -9` anywhere in the protocol
//! recovers to either the old size (journal absent or torn) or the new size
//! (journal intact, rolled forward on open); no allocation is ever lost,
//! and mapping retirement happens strictly after the commit point, so it
//! can never delay it. The first committed growth bumps the header's minor
//! version to 1, which makes readers that predate the grow record reject
//! the file instead of silently ignoring the grown space.
//!
//! ## Durability model
//!
//! Stores go straight into the shared mapping, i.e. the OS page cache.
//! Against a **process crash** (`kill -9` included) everything already
//! stored is therefore durable — the page cache outlives the process — and
//! the flush/fence discipline costs only the real `CLWB`/`SFENCE`
//! instructions ([`SyncPolicy::ProcessCrash`], the default). Against
//! **power failure** the pool must reach the medium:
//! [`SyncPolicy::PowerFail`] additionally `msync`s, at every fence, the
//! pages the fencing thread flushed since its previous fence — the
//! file-system analogue of the paper's flush+SFENCE discipline. On DAX
//! mounts (real NVRAM mapped cache-coherently) the `CLWB`+`SFENCE` path
//! alone is the durability barrier, and `ProcessCrash` is the right mode.
//! Either way [`PmemPool::sync`] performs a full `msync` + `fsync`
//! checkpoint, and an orderly drop marks the header clean; a killed process
//! leaves the dirty flag set, which [`FilePool::was_clean`] reports on
//! reopen.
//!
//! ## Group commit
//!
//! Under [`SyncPolicy::PowerFail`] every fence pays one `msync` per dirty
//! page, per thread — N producers fencing concurrently issue N independent
//! rounds of syscalls against the same file. [`FileConfig::group_commit`]
//! amortizes that the way write-ahead-log group commit does: a fencing
//! thread publishes its dirty pages to a pool-wide **open batch** and the
//! first thread to find no leader active becomes the **leader** for that
//! batch. The leader (optionally holding the batch open for a configurable
//! window to catch stragglers) takes every participant's pages, sorts,
//! dedups and merges adjacent pages into minimal contiguous runs, issues
//! one `msync` per run, then bumps the pool's **commit sequence** and wakes
//! the batch — every follower returns from its fence having paid zero
//! syscalls. Fences that arrive while a leader is submitting accumulate
//! into the next batch, so even a zero-length window coalesces under load.
//!
//! The durability contract is unchanged: a fence returns only once a batch
//! containing *its* pages has fully `msync`ed (batches commit strictly in
//! order, and a fence's pages are in the batch that was open when it
//! published them). What changes is only who performs the syscalls and how
//! many there are. The `store.fence.{leader,follower,coalesced}` counters
//! and the `store.msync_batch_pages` histogram expose the batching, and
//! backends advertise the mode through [`PoolBackend::fence_hint`].

use crate::crc::crc32;
use crate::mmap::{self, page_size};
use crossbeam_utils::CachePadded;
use obs::flight::EventKind;
use obs::{LazyCounter, LazyHistogram};
use pmem::layout::{self, CACHE_LINE};
use pmem::{MapPin, PmemPool, PoolBackend, MAX_THREADS, ROOT_SLOTS};
use std::cell::UnsafeCell;
use std::collections::BTreeSet;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::ptr;
#[cfg(not(unix))]
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

// Named instruments (see docs/OBSERVABILITY.md for the catalogue). Path
// counters split mapping accesses by which fast path served them; the
// histograms time the two syscall-heavy cold paths.
static MAP_DIRECT: LazyCounter = LazyCounter::new("store.map.direct");
static MAP_EPOCH: LazyCounter = LazyCounter::new("store.map.epoch");
static FENCES: LazyCounter = LazyCounter::new("store.fence");
static GROWTHS: LazyCounter = LazyCounter::new("store.growth");
static GROWTH_NS: LazyHistogram = LazyHistogram::new("store.growth_ns");
static MSYNC_NS: LazyHistogram = LazyHistogram::new("store.msync_ns");
// Group-commit accounting: batches led, fences that rode another thread's
// submission, fences that shared a batch with at least one other fence,
// and how many pages each batched submission covered.
static FENCE_LEADER: LazyCounter = LazyCounter::new("store.fence.leader");
static FENCE_FOLLOWER: LazyCounter = LazyCounter::new("store.fence.follower");
static FENCE_COALESCED: LazyCounter = LazyCounter::new("store.fence.coalesced");
static MSYNC_BATCH_PAGES: LazyHistogram = LazyHistogram::new("store.msync_batch_pages");

/// `"DQSTORE1"` in little-endian byte order.
pub const MAGIC: u64 = u64::from_le_bytes(*b"DQSTORE1");

/// Pool-file **major** format version this build reads and writes (the low
/// 16 bits of the header's version word).
pub const FORMAT_VERSION: u32 = 1;

/// Highest **minor** format version this build reads (the high 16 bits of
/// the version word). Minor 0 = the original fixed-size layout; minor 1
/// adds the grow record. Files that have never grown keep minor 0, so they
/// stay readable by builds that predate elastic growth; the first committed
/// growth bumps the minor, which those old readers reject.
pub const FORMAT_MINOR: u32 = 1;

/// Size of the pool-file header page; pool offset 0 maps to this file byte.
pub const HEADER_LEN: usize = 4096;

// Header field byte offsets (see the module docs for the layout diagram).
const H_MAGIC: usize = 0;
const H_VERSION: usize = 8;
const H_HEADER_LEN: usize = 12;
const H_POOL_SIZE: usize = 16;
const H_ROOT_SLOTS: usize = 24;
const H_GEO_CRC: usize = 28;
const H_FLAGS: usize = 32;
const H_WATERMARK: usize = 36;
const H_GROWN_SIZE: usize = 40;
const H_GROW_EPOCH: usize = 48;
const H_GROW_CRC: usize = 52;
const H_ROOTS: usize = 64;
/// Grow-commit journal: the durable commit point of a growth. 24 bytes of
/// record (`version`, `geo_crc`, `grown_size`, `grow_epoch`, `grow_crc` —
/// the exact values the home fields will take) followed by a CRC-32 of
/// those 24 bytes. All-zero (or torn) = no commit in flight.
const H_JOURNAL: usize = 128;
const JOURNAL_LEN: usize = 32;

/// Extent of the geometry fields the header CRC covers.
const GEO_LEN: usize = H_GEO_CRC;

/// Extent of the grow record the grow CRC covers.
const GROW_RECORD: std::ops::Range<usize> = H_GROWN_SIZE..H_GROW_CRC;

/// `flags` bit: the pool was closed in an orderly fashion.
const FLAG_CLEAN: u32 = 1;

/// Largest representable pool size: offsets are 32-bit and `align_up`
/// needs headroom for the cache-line round-up.
const MAX_POOL_SIZE: usize = u32::MAX as usize - CACHE_LINE;

/// What a fence must guarantee. See the [module docs](self#durability-model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Durable against process crashes (and against any crash on DAX-mapped
    /// NVRAM): flush/fence execute the real `CLWB`/`SFENCE` instructions
    /// only; stores are already in the OS page cache.
    #[default]
    ProcessCrash,
    /// Durable against power failure on ordinary storage: every fence also
    /// `msync(MS_SYNC)`s the pages its thread flushed since the last fence.
    PowerFail,
}

impl SyncPolicy {
    /// Short identifier used on the command line.
    pub fn key(&self) -> &'static str {
        match self {
            SyncPolicy::ProcessCrash => "process-crash",
            SyncPolicy::PowerFail => "power-fail",
        }
    }

    /// Parses a (case-insensitive) policy name.
    pub fn parse(s: &str) -> Option<SyncPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "process-crash" | "processcrash" | "process" | "cache" => {
                Some(SyncPolicy::ProcessCrash)
            }
            "power-fail" | "powerfail" | "power" | "msync" => Some(SyncPolicy::PowerFail),
            _ => None,
        }
    }
}

/// Configuration of a fresh pool file.
#[derive(Clone, Copy, Debug)]
pub struct FileConfig {
    /// Pool size in bytes (the offset-addressed space, excluding the
    /// header). Rounded up to a whole number of cache lines; must leave room
    /// for the fixed layout regions.
    pub size: usize,
    /// Fence durability policy.
    pub sync: SyncPolicy,
    /// Growth step in bytes. `0` (the default) keeps the pool fixed-size:
    /// exhaustion surfaces as `PoolExhausted` exactly as before. Non-zero
    /// makes the pool elastic — on exhaustion the file is extended by at
    /// least this many bytes (more if one allocation needs more) and the
    /// allocation retried. See the [module docs](self#elastic-growth).
    pub grow_step: usize,
    /// Power-fail group commit: `Some(window_ns)` coalesces concurrent
    /// threads' fence `msync`s into one batched submission per commit
    /// (`window_ns` extra nanoseconds a leader holds the batch open for
    /// stragglers; `0` submits immediately and still coalesces under
    /// load). `None` (the default) keeps the per-thread discipline: every
    /// fencing thread `msync`s its own pages. Ignored under
    /// [`SyncPolicy::ProcessCrash`], whose fences never `msync`. See the
    /// [module docs](self#group-commit).
    pub group_commit: Option<u64>,
}

impl FileConfig {
    /// A pool of `size` bytes under the default (process-crash) policy.
    pub fn with_size(size: usize) -> Self {
        FileConfig {
            size,
            sync: SyncPolicy::default(),
            grow_step: 0,
            group_commit: None,
        }
    }

    /// Overrides the fence durability policy.
    pub fn with_sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// Enables elastic growth with the given step (`0` disables it).
    pub fn with_growth(mut self, grow_step: usize) -> Self {
        self.grow_step = grow_step;
        self
    }

    /// Sets the power-fail group-commit window (`Some(window_ns)`) or
    /// restores the per-thread fence discipline (`None`).
    pub fn with_group_commit(mut self, group_commit: Option<u64>) -> Self {
        self.group_commit = group_commit;
        self
    }
}

impl Default for FileConfig {
    fn default() -> Self {
        Self::with_size(64 << 20)
    }
}

/// Shared state of the power-fail group-commit protocol: one per pool,
/// present only when [`FileConfig::group_commit`] is set. Fencing threads
/// publish their dirty pages to the open batch under the mutex; the first
/// one to find no leader active becomes the leader, coalesces every
/// participant's pages into minimal contiguous `msync` calls, bumps the
/// commit sequence and wakes the batch. See the
/// [module docs](self#group-commit).
struct GroupCommit {
    state: Mutex<GcState>,
    cv: Condvar,
    /// Extra nanoseconds a leader holds the batch open for stragglers
    /// before submitting. `0` submits immediately (arrivals during the
    /// leader's `msync` still coalesce into the next batch).
    window_ns: u64,
    /// Deterministic crash point (`DQ_FENCE_ABORT_BEFORE_WAKE=N`, read at
    /// pool construction): the process aborts on the `N`th *coalesced*
    /// batch, after its `msync`s complete but before the commit sequence
    /// advances — no follower of that batch may have observed durability.
    abort_before_wake: Option<u64>,
    /// Coalesced (≥ 2 fences) batches submitted so far; drives the crash
    /// point above and the once-per-pool flight-recorder event.
    coalesced_batches: AtomicU64,
}

/// Mutex-protected core of [`GroupCommit`]. Invariant: whenever
/// `leader_active` is `false`, `commit_seq == open_batch - 1` — so a
/// waiter that finds no leader and an uncommitted batch is necessarily
/// part of the *open* batch and can lead it. Batches therefore commit
/// strictly in order.
struct GcState {
    /// Pages published by fences of the currently open batch.
    pending: Vec<usize>,
    /// Fences participating in the currently open batch.
    fences: u64,
    /// Number of the currently open batch (first batch is 1).
    open_batch: u64,
    /// Highest batch number whose batched `msync` has fully completed.
    commit_seq: u64,
    /// Whether a leader is currently submitting a batch.
    leader_active: bool,
}

impl GroupCommit {
    fn new(window_ns: u64) -> GroupCommit {
        GroupCommit {
            state: Mutex::new(GcState {
                pending: Vec::new(),
                fences: 0,
                open_batch: 1,
                commit_seq: 0,
                leader_active: false,
            }),
            cv: Condvar::new(),
            window_ns,
            abort_before_wake: std::env::var("DQ_FENCE_ABORT_BEFORE_WAKE")
                .ok()
                .and_then(|v| v.parse().ok()),
            coalesced_batches: AtomicU64::new(0),
        }
    }
}

/// Per-thread pages with outstanding flushes (power-fail policy only);
/// same single-owner-per-tid discipline as the pool's persist API.
#[derive(Default)]
struct PendingPages(UnsafeCell<Vec<usize>>);

// SAFETY: each slot is only accessed by the single thread owning the tid.
unsafe impl Sync for PendingPages {}

/// The validated geometry of an existing pool file, read from its header
/// without mapping the pool (see [`FilePool::read_geometry`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolGeometry {
    /// Effective pool size in bytes (the offset-addressed space, header
    /// excluded) — the committed grown size for pools that have grown, the
    /// creation size otherwise. Resharding sizes destination pools from
    /// this, so grown sources are never under-provisioned.
    pub pool_size: usize,
    /// Creation-time pool size (the header's immutable `pool_size` field).
    pub base_size: usize,
    /// Committed growth epoch: how many times the pool has grown. `0` for a
    /// pool that has never grown (minor version 0).
    pub growth_epoch: u32,
    /// Persisted allocation watermark: the pool offset below which space
    /// has been handed out. Never below `pmem::layout::HEAP_START`.
    pub watermark: u32,
    /// Whether the last session closed the pool cleanly.
    pub was_clean: bool,
}

impl PoolGeometry {
    /// Heap bytes actually handed out so far — what a copy or reshard of
    /// this pool must at minimum be able to hold.
    pub fn used_bytes(&self) -> usize {
        self.watermark as usize - layout::HEAP_START as usize
    }
}

/// A raw view of one mapping generation: base pointer plus the pool size
/// it was published with. All header/word access goes through these
/// accessors; validity is guaranteed by whoever produced the view (a
/// reader pin, the growth lock, or `&mut` exclusivity).
#[derive(Clone, Copy)]
struct RawMap {
    base: *mut u8,
    /// Pool size in bytes this generation was published with.
    size: usize,
}

impl RawMap {
    /// Debug-only re-check; the release-mode bounds guarantee comes from
    /// `FilePool::map_for`, which hands out a view only after proving it
    /// covers the access (re-resolving the current generation if not).
    #[inline]
    fn check_bounds(&self, off: u32, bytes: u32) {
        debug_assert!(
            off as usize + bytes as usize <= self.size,
            "pool access out of bounds"
        );
        debug_assert_eq!(off % bytes, 0, "unaligned pool access");
    }

    /// The mapped address of pool offset `off`.
    #[inline]
    fn addr(&self, off: u32) -> *mut u8 {
        // SAFETY: callers stay within HEADER_LEN + size (debug-checked).
        unsafe { self.base.add(HEADER_LEN + off as usize) }
    }

    #[inline]
    fn word(&self, off: u32) -> &AtomicU64 {
        self.check_bounds(off, 8);
        // SAFETY: in bounds, 8-byte aligned (the mapping is page aligned),
        // and only ever accessed atomically.
        unsafe { &*(self.addr(off) as *const AtomicU64) }
    }

    #[inline]
    fn header_u32(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off + 4 <= HEADER_LEN && off.is_multiple_of(4));
        // SAFETY: in bounds of the header page, 4-byte aligned.
        unsafe { &*(self.base.add(off) as *const AtomicU32) }
    }

    #[inline]
    fn header_u64(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off + 8 <= HEADER_LEN && off.is_multiple_of(8));
        // SAFETY: in bounds of the header page, 8-byte aligned.
        unsafe { &*(self.base.add(off) as *const AtomicU64) }
    }

    /// A byte slice of the header range `r` (for CRC computation).
    fn header_bytes(&self, r: std::ops::Range<usize>) -> &[u8] {
        debug_assert!(r.end <= HEADER_LEN);
        // SAFETY: the header page is mapped and valid for HEADER_LEN bytes.
        unsafe { std::slice::from_raw_parts(self.base.add(r.start), r.end - r.start) }
    }

    fn set_flags(&self, clean: bool) {
        let flags = if clean { FLAG_CLEAN } else { 0 };
        self.header_u32(H_FLAGS).store(flags, Ordering::Release);
        // SAFETY: the header page is valid readable memory.
        unsafe { pmem::hw::clflush(self.base.add(H_FLAGS)) };
        pmem::hw::sfence();
    }
}

/// One generation of the mapping. Readers pin a descriptor through their
/// hazard slot; growth publishes a new one and retires the old.
struct MapDesc {
    raw: RawMap,
    /// Bytes mapped at `raw.base` when this generation was created — what
    /// an unmap of this base must release.
    map_len: usize,
}

/// A retired mapping generation awaiting reclamation. `unmap` is false
/// when the descriptor's base is owned by a newer generation (in-place
/// extension keeps the base; only the descriptor itself is stale).
struct Retired {
    desc: Box<MapDesc>,
    unmap: bool,
}

/// Per-thread hazard slot: which descriptor this thread is currently
/// dereferencing, plus a same-thread nesting depth so a pool operation
/// running under an outstanding `MapRef` reuses (and never prematurely
/// clears) the announcement.
struct PinSlot {
    pinned: AtomicPtr<MapDesc>,
    /// Owner-thread only (the slot lease is thread-local).
    depth: UnsafeCell<u32>,
    /// Lease tenure that last pinned through this slot (owner-thread
    /// only; hand-over between successive owners is synchronized by the
    /// lease free-list mutex). A slot whose `depth` is non-zero under a
    /// *different* tenure was inherited from a thread that died with a
    /// leaked (`mem::forget`) `MapRef` still announced — `pin` detects
    /// that and resets the slot instead of silently running every op of
    /// the new owner against the dead view's generation.
    tenure: UnsafeCell<u64>,
}

// SAFETY: `pinned` is atomic; `depth`/`tenure` are only accessed by the
// single thread holding the slot's lease (see `reader_slot`).
unsafe impl Sync for PinSlot {}

/// Reader slots outnumber the pool's `MAX_THREADS` worker tids because any
/// thread (not just workers with a tid) may touch a pool.
const PIN_SLOTS: usize = 4 * MAX_THREADS;

/// The process-wide thread → hazard-slot lease, returned as
/// `(slot index, lease tenure)`. Slots are recycled through a free list
/// when threads exit, so long-lived processes that churn threads never
/// exhaust the `PIN_SLOTS` space; each acquisition — recycled or fresh —
/// gets a process-unique tenure id, which is how `MapTable::pin` tells a
/// legitimate same-thread nested pin from a slot inherited dirty from a
/// dead thread that leaked a `MapRef`. The same slot index is used on
/// every pool (each pool has its own slot array), which keeps the lease a
/// single thread-local.
fn reader_slot() -> (usize, u64) {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    static TENURE: AtomicU64 = AtomicU64::new(1);
    static FREE: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    struct Lease(usize, u64);
    impl Drop for Lease {
        fn drop(&mut self) {
            FREE.lock().unwrap().push(self.0);
        }
    }
    thread_local! {
        static LEASE: Lease = {
            let idx = FREE.lock().unwrap().pop().unwrap_or_else(|| {
                let idx = NEXT.fetch_add(1, Ordering::Relaxed);
                assert!(
                    idx < PIN_SLOTS,
                    "more than {PIN_SLOTS} threads concurrently using file pools"
                );
                idx
            });
            Lease(idx, TENURE.fetch_add(1, Ordering::Relaxed))
        };
    }
    LEASE.with(|l| (l.0, l.1))
}

/// The lock-free mapping table: the published current descriptor, the
/// readers' hazard slots, and the retirement list. See the
/// [module docs](self#lock-free-mapping-access).
struct MapTable {
    /// The current mapping generation (`Box::into_raw`; owned here).
    current: AtomicPtr<MapDesc>,
    /// Pool size of the current generation, mirrored out of it so `len()`
    /// needs no pin.
    size: AtomicUsize,
    /// Fixed-size pool (`grow_step == 0`): the mapping is immutable, so
    /// readers skip the hazard protocol entirely — the direct path.
    direct: bool,
    slots: Box<[CachePadded<PinSlot>]>,
    retired: Mutex<Vec<Retired>>,
    /// Serializes growth. Readers never take it.
    grow: Mutex<()>,
    /// Non-Unix only: the heap-buffer mapping stand-in is not coherent
    /// across two buffers, so growth there briefly gates new pins while
    /// the old buffer is written back and re-read (see `grow_to`).
    #[cfg(not(unix))]
    growing: AtomicBool,
}

// SAFETY: the raw descriptor pointers are owned by this table (Box);
// mapped memory is only accessed through atomics, and the hazard protocol
// (or &mut exclusivity) guarantees no use-after-unmap.
unsafe impl Send for MapTable {}
unsafe impl Sync for MapTable {}

impl MapTable {
    fn new(base: *mut u8, map_len: usize, size: usize, direct: bool) -> MapTable {
        let desc = Box::new(MapDesc {
            raw: RawMap { base, size },
            map_len,
        });
        MapTable {
            current: AtomicPtr::new(Box::into_raw(desc)),
            size: AtomicUsize::new(size),
            direct,
            slots: (0..PIN_SLOTS)
                .map(|_| {
                    CachePadded::new(PinSlot {
                        pinned: AtomicPtr::new(ptr::null_mut()),
                        depth: UnsafeCell::new(0),
                        tenure: UnsafeCell::new(0),
                    })
                })
                .collect(),
            retired: Mutex::new(Vec::new()),
            grow: Mutex::new(()),
            #[cfg(not(unix))]
            growing: AtomicBool::new(false),
        }
    }

    /// Pool size of the current generation (no pin required).
    #[inline]
    fn size(&self) -> usize {
        self.size.load(Ordering::Acquire)
    }

    /// Pins the current mapping generation for this thread and returns its
    /// raw view plus the hazard slot to release (None on the direct path).
    #[inline]
    fn pin(&self) -> (RawMap, Option<usize>) {
        if self.direct {
            MAP_DIRECT.incr();
            // Fixed-size pool: the descriptor is immutable for the pool's
            // lifetime, so one relaxed load is the whole fast path.
            let d = self.current.load(Ordering::Relaxed);
            // SAFETY: never retired or freed while the pool is alive.
            return (unsafe { (*d).raw }, None);
        }
        MAP_EPOCH.incr();
        let (idx, tenure) = reader_slot();
        let slot = &self.slots[idx];
        // SAFETY: `depth`/`tenure` belong to this thread's slot lease
        // alone (hand-over between leases goes through the free-list
        // mutex, which orders the accesses).
        let depth = unsafe { &mut *slot.depth.get() };
        let owner = unsafe { &mut *slot.tenure.get() };
        if *depth > 0 {
            if *owner == tenure {
                // Nested pin (a pool op under an outstanding MapRef): the
                // slot already protects a descriptor; reuse it rather
                // than re-announcing, so the inner unpin cannot strip the
                // outer pin's protection.
                *depth += 1;
                let d = slot.pinned.load(Ordering::Relaxed);
                // SAFETY: protected by this very slot since the outer pin.
                return (unsafe { (*d).raw }, Some(idx));
            }
            // The slot was inherited from a thread that died with a
            // leaked (`mem::forget`) `MapRef` still announced. That view
            // is unreachable forever (a MapRef cannot leave its thread),
            // so reset the slot: otherwise this thread would run every
            // op against the dead view's generation and keep it
            // unreclaimable for the pool's lifetime.
            *depth = 0;
            slot.pinned.store(ptr::null_mut(), Ordering::Release);
        }
        *owner = tenure;
        #[cfg(not(unix))]
        while self.growing.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        loop {
            let d = self.current.load(Ordering::SeqCst);
            // Hazard announcement: publish which descriptor this thread is
            // about to dereference, then re-check that it is still
            // current. Once the re-check passes, a grower's reclaim scan —
            // which runs strictly after its SeqCst publish of the new
            // descriptor — is guaranteed to observe the announcement.
            slot.pinned.store(d, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == d {
                *depth = 1;
                // SAFETY: announced-then-rechecked: cannot be reclaimed
                // while this slot references it.
                return (unsafe { (*d).raw }, Some(idx));
            }
        }
    }

    /// Releases a pin taken by [`pin`](Self::pin).
    #[inline]
    fn unpin(&self, idx: usize) {
        let slot = &self.slots[idx];
        // SAFETY: owner thread only.
        let depth = unsafe { &mut *slot.depth.get() };
        *depth -= 1;
        if *depth == 0 {
            slot.pinned.store(ptr::null_mut(), Ordering::Release);
        }
    }

    /// Publishes `desc` as the current generation and retires the old one.
    /// Growth-lock holder only.
    fn install(&self, desc: Box<MapDesc>, unmap_old: bool) {
        let size = desc.raw.size;
        let old = self.current.swap(Box::into_raw(desc), Ordering::SeqCst);
        self.size.store(size, Ordering::Release);
        // SAFETY: `old` came from Box::into_raw at its own install (or
        // `new`) and just became unreachable for new pins.
        let desc = unsafe { Box::from_raw(old) };
        self.retired.lock().unwrap().push(Retired {
            desc,
            unmap: unmap_old,
        });
    }

    /// Frees every retired generation no hazard slot still references.
    /// Opportunistic: called after each growth; `MapTable::drop` sweeps
    /// whatever is left.
    fn reclaim(&self) {
        let mut retired = self.retired.lock().unwrap();
        retired.retain(|r| {
            let p = &*r.desc as *const MapDesc as *mut MapDesc;
            let pinned = self
                .slots
                .iter()
                .any(|s| s.pinned.load(Ordering::SeqCst) == p);
            if !pinned && r.unmap {
                // SAFETY: the descriptor left `current` at retire time and
                // the scan above saw no announcement of it, so no present
                // or future reader can reference this mapping.
                unsafe { mmap::raw::unmap(r.desc.raw.base, r.desc.map_len) };
            }
            pinned
        });
    }

    /// Non-Unix growth only: whether the calling thread's own hazard
    /// slot is pinned. Growing through `drain_readers` would then spin
    /// on that slot forever — `grow_to` refuses up front instead.
    #[cfg(not(unix))]
    fn self_pinned(&self) -> bool {
        let (idx, _) = reader_slot();
        !self.slots[idx].pinned.load(Ordering::Relaxed).is_null()
    }

    /// Non-Unix growth only: waits until every hazard slot is clear. New
    /// pins are held off by the `growing` gate and the caller has
    /// verified its own slot is unpinned (`self_pinned`), so this
    /// terminates once every *other* thread's in-flight use drains.
    #[cfg(not(unix))]
    fn drain_readers(&self) {
        for slot in self.slots.iter() {
            while !slot.pinned.load(Ordering::Acquire).is_null() {
                std::hint::spin_loop();
            }
        }
    }
}

impl Drop for MapTable {
    fn drop(&mut self) {
        // Exclusive access: no pins can exist anymore. The current
        // generation always owns its base; retired ones only when their
        // `unmap` flag says so.
        // SAFETY: `current` is always a live Box::into_raw pointer.
        let cur = unsafe { Box::from_raw(*self.current.get_mut()) };
        // SAFETY: the current generation's base/map_len name exactly one
        // live mapping, and nothing references it after this drop.
        unsafe { mmap::raw::unmap(cur.raw.base, cur.map_len) };
        for r in self.retired.get_mut().unwrap().drain(..) {
            if r.unmap {
                // SAFETY: as above, for a moved-aside retired mapping.
                unsafe { mmap::raw::unmap(r.desc.raw.base, r.desc.map_len) };
            }
        }
    }
}

/// A pinned per-operation view of the mapping — what the old mapping
/// `RwLock` read guard used to be, now wait-free. Derefs to [`RawMap`]
/// for all accessors; dropping releases the hazard slot.
struct Map<'a> {
    raw: RawMap,
    pool: &'a FilePool,
    slot: Option<usize>,
    /// Slow path only (`FilePool::map_slow`): holding the growth lock is
    /// what keeps `raw` the current, un-retirable generation.
    _grow: Option<std::sync::MutexGuard<'a, ()>>,
}

impl Map<'_> {
    /// Synchronously writes `[offset, offset + len)` of the mapping
    /// (mapping-relative, header included) back to the file.
    fn msync(&self, offset: usize, len: usize) -> io::Result<()> {
        self.pool.msync_raw(&self.raw, offset, len)
    }
}

impl std::ops::Deref for Map<'_> {
    type Target = RawMap;
    fn deref(&self) -> &RawMap {
        &self.raw
    }
}

impl Drop for Map<'_> {
    fn drop(&mut self) {
        if let Some(idx) = self.slot {
            self.pool.maps.unpin(idx);
        }
    }
}

/// The file-backed pool. See the [module docs](self).
pub struct FilePool {
    /// The lock-free mapping table: current generation, hazard slots,
    /// retirement list.
    maps: MapTable,
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    grow_step: usize,
    was_clean: bool,
    pending: Box<[CachePadded<PendingPages>]>,
    /// Power-fail group commit; `None` keeps the per-thread fence path.
    group: Option<GroupCommit>,
    /// Test-support `msync` oracle (`DQ_TRACK_MSYNC`, read at pool
    /// construction): every page any `msync` on this pool covered, file
    /// page numbers. See [`synced_pages`](Self::synced_pages).
    synced: Option<Mutex<BTreeSet<usize>>>,
}

/// Reads the `DQ_TRACK_MSYNC` test-support gate at pool construction.
fn msync_tracker() -> Option<Mutex<BTreeSet<usize>>> {
    std::env::var_os("DQ_TRACK_MSYNC").map(|_| Mutex::new(BTreeSet::new()))
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The five header words a growth commits, as staged in the journal.
#[derive(Clone, Copy)]
struct GrowCommit {
    version: u32,
    geo_crc: u32,
    grown_size: u64,
    grow_epoch: u32,
    grow_crc: u32,
}

impl GrowCommit {
    fn to_bytes(self) -> [u8; 24] {
        let mut b = [0u8; 24];
        b[0..4].copy_from_slice(&self.version.to_le_bytes());
        b[4..8].copy_from_slice(&self.geo_crc.to_le_bytes());
        b[8..16].copy_from_slice(&self.grown_size.to_le_bytes());
        b[16..20].copy_from_slice(&self.grow_epoch.to_le_bytes());
        b[20..24].copy_from_slice(&self.grow_crc.to_le_bytes());
        b
    }
}

/// Decodes the grow-commit journal, returning the staged record only if its
/// CRC matches and it names a real growth (epoch > 0). A torn or absent
/// record reads as `None`: the commit never happened.
fn read_journal(header: &[u8]) -> Option<GrowCommit> {
    let read_u32 = |off: usize| u32::from_le_bytes(header[off..off + 4].try_into().unwrap());
    let read_u64 = |off: usize| u64::from_le_bytes(header[off..off + 8].try_into().unwrap());
    if crc32(&header[H_JOURNAL..H_JOURNAL + 24]) != read_u32(H_JOURNAL + 24) {
        return None;
    }
    let rec = GrowCommit {
        version: read_u32(H_JOURNAL),
        geo_crc: read_u32(H_JOURNAL + 4),
        grown_size: read_u64(H_JOURNAL + 8),
        grow_epoch: read_u32(H_JOURNAL + 16),
        grow_crc: read_u32(H_JOURNAL + 20),
    };
    (rec.grow_epoch > 0).then_some(rec)
}

/// Env-gated deterministic crash point for the grow protocol's subprocess
/// tests (same pattern as `shard`'s `DQ_RESHARD_ABORT_AFTER_*` points):
/// when the named variable is set, the process dies on the spot — no
/// unwinding, no destructors — exactly like a `kill -9` landing there.
fn grow_abort_point(name: &str) {
    if std::env::var_os(name).is_some() {
        std::process::abort();
    }
}

/// Validates a pool-file header (magic, format version, geometry CRC,
/// grow record, size-vs-file-length, watermark) and returns the decoded
/// geometry plus whether a grow-commit journal record is pending (the crash
/// landed between a growth's commit point and its home-field rewrite; the
/// journal's values supersede the home fields and `open` rolls them
/// forward). Shared by [`FilePool::open_with_growth`] and
/// [`FilePool::read_geometry`].
fn validate_header(header: &[u8], file_len: u64, path: &Path) -> io::Result<(PoolGeometry, bool)> {
    // Splice a pending commit's values over the home fields before
    // validating, so a journal-committed growth reads exactly like a fully
    // home-written one.
    let journal = read_journal(header);
    let mut image = [0u8; H_JOURNAL];
    image.copy_from_slice(&header[..H_JOURNAL]);
    if let Some(rec) = journal {
        image[H_VERSION..H_VERSION + 4].copy_from_slice(&rec.version.to_le_bytes());
        image[H_GEO_CRC..H_GEO_CRC + 4].copy_from_slice(&rec.geo_crc.to_le_bytes());
        image[H_GROWN_SIZE..H_GROWN_SIZE + 8].copy_from_slice(&rec.grown_size.to_le_bytes());
        image[H_GROW_EPOCH..H_GROW_EPOCH + 4].copy_from_slice(&rec.grow_epoch.to_le_bytes());
        image[H_GROW_CRC..H_GROW_CRC + 4].copy_from_slice(&rec.grow_crc.to_le_bytes());
    }
    let header = &image[..];
    let read_u64 = |off: usize| u64::from_le_bytes(header[off..off + 8].try_into().unwrap());
    let read_u32 = |off: usize| u32::from_le_bytes(header[off..off + 4].try_into().unwrap());
    if read_u64(H_MAGIC) != MAGIC {
        return Err(invalid(format!(
            "{}: bad magic {:#018x} (not a durable-queues pool file)",
            path.display(),
            read_u64(H_MAGIC)
        )));
    }
    let version = read_u32(H_VERSION);
    let (major, minor) = (version & 0xFFFF, version >> 16);
    if major != FORMAT_VERSION || minor > FORMAT_MINOR {
        return Err(invalid(format!(
            "{}: pool-file format version {}.{} (this build reads {}.0 through {}.{})",
            path.display(),
            major,
            minor,
            FORMAT_VERSION,
            FORMAT_VERSION,
            FORMAT_MINOR
        )));
    }
    let geo_crc = crc32(&header[..GEO_LEN]);
    if geo_crc != read_u32(H_GEO_CRC) {
        return Err(invalid(format!(
            "{}: header CRC mismatch (stored {:#010x}, computed {:#010x})",
            path.display(),
            read_u32(H_GEO_CRC),
            geo_crc
        )));
    }
    if read_u32(H_HEADER_LEN) as usize != HEADER_LEN
        || read_u32(H_ROOT_SLOTS) as usize != ROOT_SLOTS
    {
        return Err(invalid(format!(
            "{}: unsupported geometry (header_len {}, root_slots {})",
            path.display(),
            read_u32(H_HEADER_LEN),
            read_u32(H_ROOT_SLOTS)
        )));
    }
    let base_size = read_u64(H_POOL_SIZE) as usize;
    if base_size > u32::MAX as usize || (HEADER_LEN + base_size) as u64 > file_len {
        return Err(invalid(format!(
            "{}: header claims {} pool bytes but the file holds {}",
            path.display(),
            base_size,
            file_len.saturating_sub(HEADER_LEN as u64)
        )));
    }
    let (size, growth_epoch) = if minor >= 1 {
        if crc32(&header[GROW_RECORD]) != read_u32(H_GROW_CRC) {
            return Err(invalid(format!(
                "{}: grow-record CRC mismatch (stored {:#010x}, computed {:#010x})",
                path.display(),
                read_u32(H_GROW_CRC),
                crc32(&header[GROW_RECORD])
            )));
        }
        let grown = read_u64(H_GROWN_SIZE);
        let epoch = read_u32(H_GROW_EPOCH);
        if epoch == 0
            || (grown as usize) < base_size
            || grown > u32::MAX as u64
            || HEADER_LEN as u64 + grown > file_len
        {
            return Err(invalid(format!(
                "{}: corrupt grow record (grown_size {}, epoch {}, base size {}, file length {})",
                path.display(),
                grown,
                epoch,
                base_size,
                file_len
            )));
        }
        (grown as usize, epoch)
    } else {
        (base_size, 0)
    };
    let watermark = read_u32(H_WATERMARK);
    if watermark < layout::HEAP_START || watermark as usize > size {
        return Err(invalid(format!(
            "{}: corrupt watermark {} (heap starts at {}, pool size {})",
            path.display(),
            watermark,
            layout::HEAP_START,
            size
        )));
    }
    Ok((
        PoolGeometry {
            pool_size: size,
            base_size,
            growth_epoch,
            watermark,
            was_clean: read_u32(H_FLAGS) & FLAG_CLEAN != 0,
        },
        journal.is_some(),
    ))
}

/// Copies a pool file after validating its header, `fsync`ing the copy.
/// Only the live prefix — the header page plus the pool bytes below the
/// persisted watermark — is physically copied; the allocator never hands
/// out (and the pool never writes) space above the watermark, so the tail
/// is left as a sparse hole of zeroes and the copy keeps the source's full
/// length. Returns that length.
///
/// The source must not be open in any process (a torn copy of a live pool
/// would be a silent corruption); resharding uses this to drain source
/// shards from scratch copies without mutating the originals.
pub fn copy_pool_file(src: impl AsRef<Path>, dst: impl AsRef<Path>) -> io::Result<u64> {
    use std::io::Read;
    let src = src.as_ref();
    let geometry = FilePool::read_geometry(src)?;
    let len = std::fs::metadata(src)?.len();
    let live = (HEADER_LEN + geometry.watermark as usize) as u64;
    let mut from = File::open(src)?;
    let mut to = File::create(dst.as_ref())?;
    io::copy(&mut (&mut from).take(live.min(len)), &mut to)?;
    to.set_len(len)?;
    to.sync_all()?;
    Ok(len)
}

impl FilePool {
    /// Creates (or overwrites) a pool file at `path` and opens it. The pool
    /// starts zeroed with the watermark at [`layout::HEAP_START`], dirty
    /// until dropped cleanly.
    pub fn create(path: impl AsRef<Path>, config: FileConfig) -> io::Result<FilePool> {
        let path = path.as_ref().to_path_buf();
        let min = layout::HEAP_START as usize + CACHE_LINE;
        // Ceiling leaves headroom for the cache-line round-up (align_up
        // computes n + align - 1 left to right): anything above
        // u32::MAX - 64 would overflow the 32-bit offset arithmetic.
        let size = layout::align_up(
            config.size.clamp(min, MAX_POOL_SIZE) as u32,
            CACHE_LINE as u32,
        ) as usize;
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.set_len((HEADER_LEN + size) as u64)?;
        let base = mmap::raw::map(&file, HEADER_LEN + size)?;
        let pool = FilePool {
            maps: MapTable::new(base, HEADER_LEN + size, size, config.grow_step == 0),
            file,
            path,
            policy: config.sync,
            grow_step: config.grow_step,
            was_clean: true,
            pending: new_pending(),
            group: config.group_commit.map(GroupCommit::new),
            synced: msync_tracker(),
        };
        pool.write_header(size);
        pool.map().msync(0, HEADER_LEN)?;
        Ok(pool)
    }

    /// Opens an existing pool file, validating magic, format version,
    /// geometry CRC, grow record, size and watermark. The previous session's
    /// clean flag is captured in [`was_clean`](Self::was_clean), then the
    /// pool is marked dirty for the new session. A growth whose commit was
    /// journaled but not home-written when the last session died is rolled
    /// forward here.
    pub fn open(path: impl AsRef<Path>) -> io::Result<FilePool> {
        Self::open_with_sync(path, SyncPolicy::default())
    }

    /// [`open`](Self::open) with an explicit fence durability policy.
    pub fn open_with_sync(path: impl AsRef<Path>, sync: SyncPolicy) -> io::Result<FilePool> {
        Self::open_with_growth(path, sync, 0)
    }

    /// [`open`](Self::open) with an explicit fence durability policy and
    /// growth step (`0` = fixed-size; growth is a runtime property, not
    /// recorded in the file, so each session chooses its own step).
    pub fn open_with_growth(
        path: impl AsRef<Path>,
        sync: SyncPolicy,
        grow_step: usize,
    ) -> io::Result<FilePool> {
        Self::open_with_config(
            path,
            FileConfig::with_size(0)
                .with_sync(sync)
                .with_growth(grow_step),
        )
    }

    /// [`open`](Self::open) with the full [`FileConfig`] — fence policy,
    /// growth step and group-commit window. Like growth, group commit is a
    /// runtime property each session chooses for itself; `config.size` is
    /// ignored (an existing pool's geometry comes from its header).
    pub fn open_with_config(path: impl AsRef<Path>, config: FileConfig) -> io::Result<FilePool> {
        let path = path.as_ref().to_path_buf();
        let file = File::options().read(true).write(true).open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN as u64 {
            return Err(invalid(format!(
                "{}: {} bytes is too short to hold a pool-file header",
                path.display(),
                file_len
            )));
        }
        // Read the header page first: geometry must be validated before the
        // pool size is trusted for the full mapping.
        let mut header = vec![0u8; HEADER_LEN];
        {
            use std::io::Read;
            (&file).read_exact(&mut header)?;
        }
        let (geometry, journal_pending) = validate_header(&header, file_len, &path)?;

        let size = geometry.pool_size;
        let base = mmap::raw::map(&file, HEADER_LEN + size)?;
        let pool = FilePool {
            maps: MapTable::new(base, HEADER_LEN + size, size, config.grow_step == 0),
            file,
            path,
            policy: config.sync,
            grow_step: config.grow_step,
            was_clean: geometry.was_clean,
            pending: new_pending(),
            group: config.group_commit.map(GroupCommit::new),
            synced: msync_tracker(),
        };
        if journal_pending {
            pool.roll_forward_grow();
        }
        let map = pool.map();
        map.set_flags(false); // dirty while open
        map.msync(0, HEADER_LEN)?;
        drop(map);
        Ok(pool)
    }

    /// Reads and validates the header of an existing pool file **without
    /// opening it**: no mapping of the pool space, no dirty-marking, no
    /// side effects on the file. This is how a resharding (or inspection)
    /// pass sizes destination pools from the source pools' persisted
    /// watermarks before committing to anything. A pending grow-commit
    /// journal is honoured virtually (the reported size is the committed
    /// grown size) but not rolled forward.
    pub fn read_geometry(path: impl AsRef<Path>) -> io::Result<PoolGeometry> {
        use std::io::Read;
        let path = path.as_ref();
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN as u64 {
            return Err(invalid(format!(
                "{}: {} bytes is too short to hold a pool-file header",
                path.display(),
                file_len
            )));
        }
        let mut header = vec![0u8; HEADER_LEN];
        file.read_exact(&mut header)?;
        validate_header(&header, file_len, path).map(|(geometry, _)| geometry)
    }

    /// Whether the previous session closed this pool cleanly. `true` for a
    /// freshly created pool; `false` after a crash/kill, in which case the
    /// caller should run the queue's `recover` procedure (running it after a
    /// clean shutdown is also always safe).
    pub fn was_clean(&self) -> bool {
        self.was_clean
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fence durability policy in effect.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.policy
    }

    /// The configured growth step in bytes (`0` = fixed-size).
    pub fn grow_step(&self) -> usize {
        self.grow_step
    }

    /// The committed growth epoch: how many growths have reached their
    /// commit point over this pool file's lifetime (`0` = never grown).
    pub fn growth_epoch(&self) -> u32 {
        self.map().header_u32(H_GROW_EPOCH).load(Ordering::Acquire)
    }

    /// A direct-pointer view of the pool space (see [`pmem::MapRef`]).
    ///
    /// On an elastic pool the view holds a hazard pin: it stays valid
    /// across concurrent growth (the replaced mapping is not unmapped
    /// until the view drops), but offsets allocated *after* a growth may
    /// exceed its pinned bounds — the view's own accessors panic on them;
    /// drop and re-take the view to observe the grown mapping. (Pool
    /// operations issued through [`PoolBackend`] while the view is held
    /// are not so limited: past-the-view offsets re-resolve the current
    /// mapping.) On a fixed-size pool (`grow_step == 0`) the mapping
    /// is immutable, so the view is unpinned and free to hold: the
    /// zero-synchronization direct path.
    ///
    /// ```
    /// use pmem::PoolBackend;
    /// use store::{FileConfig, FilePool};
    ///
    /// let path = std::env::temp_dir().join(format!("mapref-doc-{}.pool", std::process::id()));
    /// // Default FileConfig: grow_step == 0, the direct path.
    /// let pool = FilePool::create(&path, FileConfig::with_size(4 << 20))?.into_pool();
    /// let off = pool.alloc_raw(64, 64);
    /// pool.store_u64(off, 7);
    ///
    /// let view = pool.map_ref().expect("file pools expose their mapping");
    /// assert!(!view.is_pinned(), "grow_step == 0 hands out the unpinned direct path");
    /// assert_eq!(view.atomic_u64(off).load(std::sync::atomic::Ordering::Acquire), 7);
    ///
    /// drop(view);
    /// drop(pool);
    /// std::fs::remove_file(&path)?;
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn map_ref(&self) -> pmem::MapRef<'_> {
        let map = self.map();
        let (raw, slot) = (map.raw, map.slot);
        std::mem::forget(map); // keep the pin; MapRef::drop releases it
                               // SAFETY: the mapping stays valid until the pin is released — or,
                               // on the unpinned direct path, for the pool's whole lifetime,
                               // which the returned borrow of `self` covers. Pool offset 0 is the
                               // first byte after the header.
        unsafe {
            pmem::MapRef::new(
                raw.base.add(HEADER_LEN),
                raw.size,
                slot.map(|s| (self as &dyn MapPin, s)),
            )
        }
    }

    /// Wraps this backend in an [`Arc<PmemPool>`] — the handle every queue
    /// constructor takes, so any algorithm in the workspace runs unchanged
    /// on file-backed storage.
    ///
    /// ```
    /// use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue};
    /// use store::{FileConfig, FilePool};
    ///
    /// let path = std::env::temp_dir().join(format!("into-pool-doc-{}.pool", std::process::id()));
    /// let pool = FilePool::create(&path, FileConfig::with_size(4 << 20))?.into_pool();
    /// let queue = OptUnlinkedQueue::create(pool, QueueConfig::small_test());
    /// queue.enqueue(0, 7);
    /// assert_eq!(queue.dequeue(0), Some(7));
    /// drop(queue);
    /// std::fs::remove_file(&path)?;
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn into_pool(self) -> Arc<PmemPool> {
        Arc::new(PmemPool::from_backend(Box::new(self)))
    }

    // ------------------------------------------------------------------
    // Growth
    // ------------------------------------------------------------------

    /// Grows the pool so its size is at least `min_len` bytes, extending by
    /// at least the configured growth step. Returns `Ok(true)` when the pool
    /// now holds `min_len` bytes (including when a concurrent growth already
    /// got there), `Ok(false)` when it cannot (growth disabled, or `min_len`
    /// exceeds the 32-bit offset ceiling). The protocol — `ftruncate`,
    /// journaled header commit, `mremap` + epoch-retired publish — is
    /// described in the [module docs](self#elastic-growth); readers are
    /// never blocked, and a crash at any point recovers to either the old
    /// or the new size with no allocation lost.
    pub fn grow_to(&self, min_len: usize) -> io::Result<bool> {
        let _grow = self.maps.grow.lock().unwrap();
        // SAFETY: only the growth-lock holder retires descriptors, so the
        // current one stays alive (and current) for this whole scope.
        let cur = unsafe { &*self.maps.current.load(Ordering::Acquire) };
        let old_size = cur.raw.size;
        if old_size >= min_len {
            return Ok(true); // a concurrent growth already satisfied us
        }
        if self.grow_step == 0 {
            return Ok(false);
        }
        let target = min_len
            .max(old_size.saturating_add(self.grow_step))
            .min(MAX_POOL_SIZE);
        let new_size = layout::align_up(target as u32, CACHE_LINE as u32) as usize;
        if new_size < min_len {
            return Ok(false); // even the offset ceiling cannot satisfy this
        }
        // The non-Unix fallback must drain every pinned reader before it
        // can swap heap buffers — including, fatally, a pin held by this
        // very thread (a growth triggered by an allocation under an
        // outstanding MapRef would spin on its own hazard slot forever).
        // Refuse up front, before any durable side effect.
        #[cfg(not(unix))]
        if self.maps.self_pinned() {
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "cannot grow the pool: the calling thread holds a pinned mapping \
                 view (MapRef); drop it before allocating past the current size",
            ));
        }

        let _growth_timer = GROWTH_NS.start_timer();

        // 1. Extend the file. Its new length must be durable before the
        //    commit record can claim space inside it.
        self.file.set_len((HEADER_LEN + new_size) as u64)?;
        self.file.sync_all()?;
        grow_abort_point("DQ_GROW_ABORT_AFTER_TRUNCATE");

        // 2. Compose the commit: the grow record, plus the minor-version
        //    bump (with its re-covered geometry CRC) that makes pre-growth
        //    readers reject the file rather than ignore the grown space.
        let version = FORMAT_VERSION | (FORMAT_MINOR << 16);
        let mut geo = [0u8; GEO_LEN];
        geo.copy_from_slice(cur.raw.header_bytes(0..GEO_LEN));
        geo[H_VERSION..H_VERSION + 4].copy_from_slice(&version.to_le_bytes());
        let mut grow = [0u8; 12];
        grow[0..8].copy_from_slice(&(new_size as u64).to_le_bytes());
        let epoch = cur.raw.header_u32(H_GROW_EPOCH).load(Ordering::Acquire) + 1;
        grow[8..12].copy_from_slice(&epoch.to_le_bytes());
        let commit = GrowCommit {
            version,
            geo_crc: crc32(&geo),
            grown_size: new_size as u64,
            grow_epoch: epoch,
            grow_crc: crc32(&grow),
        };

        // 3. Journal record — the durable commit point — persisted through
        //    the still-published old mapping, strictly *before* the larger
        //    size becomes visible to allocators: the watermark is
        //    persisted eagerly on every allocation, so space above the old
        //    ceiling must never be handed out ahead of the record that
        //    makes the new size survive a crash.
        let record = commit.to_bytes();
        for (i, chunk) in record.chunks(8).enumerate() {
            cur.raw.header_u64(H_JOURNAL + i * 8).store(
                u64::from_le_bytes(chunk.try_into().unwrap()),
                Ordering::Release,
            );
        }
        cur.raw.header_u32(H_JOURNAL + 24).store(
            crc32(cur.raw.header_bytes(H_JOURNAL..H_JOURNAL + 24)),
            Ordering::Release,
        );
        self.persist_header(&cur.raw);
        // The journal record above is the durable commit point — log it to
        // the flight ring before the crash-injection hook so a kill "right
        // after commit" is visible in a post-mortem `harness blackbox`.
        GROWTHS.incr();
        obs::flight::record(EventKind::PoolGrowthCommit, epoch as u64, new_size as u64);
        grow_abort_point("DQ_GROW_ABORT_AFTER_COMMIT");

        // 4. Home fields (idempotent with open's journal roll-forward),
        //    then retire the journal — still through the old mapping.
        self.write_grow_home(&cur.raw, commit);

        // 5. Remap and publish. Mapping retirement happens strictly after
        //    the commit point, so reclamation can never delay it. Should
        //    the remap itself fail, the growth is already durably
        //    committed on disk but unpublished: this session keeps serving
        //    the old size and a reopen sees the new one.
        let new_map_len = HEADER_LEN + new_size;
        #[cfg(unix)]
        {
            // Common case: extend the mapping in place — same base, no
            // second VA range, concurrent readers never notice. Fallback:
            // duplicate the shared mapping (mremap old_size == 0 on Linux,
            // a second mmap of the same pages elsewhere); the old mapping
            // stays intact for still-pinned readers and is epoch-retired.
            let extended =
                unsafe { mmap::raw::extend_in_place(cur.raw.base, cur.map_len, new_map_len) };
            let (base, in_place) = if extended {
                (cur.raw.base, true)
            } else {
                (
                    // SAFETY: `cur` is the live mapping of this pool's file,
                    // which step 1 extended past new_map_len bytes.
                    unsafe { mmap::raw::remap_dup(&self.file, cur.raw.base, new_map_len)? },
                    false,
                )
            };
            self.maps.install(
                Box::new(MapDesc {
                    raw: RawMap {
                        base,
                        size: new_size,
                    },
                    map_len: new_map_len,
                }),
                !in_place,
            );
        }
        #[cfg(not(unix))]
        {
            // The heap-buffer stand-in is not coherent across two buffers,
            // so the fallback platform briefly gates new pins, drains the
            // hazard slots, writes the old buffer back and re-reads it at
            // the new length. Unix never takes this path.
            self.maps.growing.store(true, Ordering::Release);
            self.maps.drain_readers();
            let remapped = self
                .msync_raw(&cur.raw, 0, HEADER_LEN + old_size)
                .and_then(|()| mmap::raw::map(&self.file, new_map_len));
            let base = match remapped {
                Ok(base) => base,
                Err(e) => {
                    self.maps.growing.store(false, Ordering::Release);
                    return Err(e);
                }
            };
            self.maps.install(
                Box::new(MapDesc {
                    raw: RawMap {
                        base,
                        size: new_size,
                    },
                    map_len: new_map_len,
                }),
                true,
            );
            self.maps.growing.store(false, Ordering::Release);
        }
        self.maps.reclaim();
        Ok(true)
    }

    /// Writes a grow commit's five home fields and clears the journal; the
    /// tail of [`grow_to`](Self::grow_to) and of the roll-forward in `open`.
    fn write_grow_home(&self, raw: &RawMap, commit: GrowCommit) {
        raw.header_u32(H_VERSION)
            .store(commit.version, Ordering::Release);
        raw.header_u32(H_GEO_CRC)
            .store(commit.geo_crc, Ordering::Release);
        raw.header_u64(H_GROWN_SIZE)
            .store(commit.grown_size, Ordering::Release);
        raw.header_u32(H_GROW_EPOCH)
            .store(commit.grow_epoch, Ordering::Release);
        raw.header_u32(H_GROW_CRC)
            .store(commit.grow_crc, Ordering::Release);
        self.persist_header(raw);
        for off in (H_JOURNAL..H_JOURNAL + JOURNAL_LEN).step_by(8) {
            raw.header_u64(off).store(0, Ordering::Release);
        }
        self.persist_header(raw);
    }

    /// Rolls a journaled-but-not-home-written growth forward (open path;
    /// the crash landed between the commit point and the home rewrite).
    fn roll_forward_grow(&self) {
        let map = self.map();
        let commit = read_journal(map.header_bytes(0..HEADER_LEN))
            .expect("roll_forward_grow called without a valid journal");
        self.write_grow_home(&map, commit);
    }

    // ------------------------------------------------------------------
    // Raw access helpers
    // ------------------------------------------------------------------

    /// Pins the current mapping for one operation — the wait-free fast
    /// path (one relaxed load on fixed-size pools, a hazard announcement
    /// on elastic ones; see [`MapTable::pin`]).
    #[inline]
    fn map(&self) -> Map<'_> {
        let (raw, slot) = self.maps.pin();
        Map {
            raw,
            pool: self,
            slot,
            _grow: None,
        }
    }

    /// Pins a mapping view guaranteed to cover the pool-space access
    /// `[off, off + bytes)`, enforcing the bound in release builds. A
    /// top-level pin always covers every allocated offset (sizes are
    /// monotonic and the pinned generation is current at announce time),
    /// so the check only fails on the nested-pin path — a pool op running
    /// under an outstanding [`MapRef`](pmem::MapRef) whose generation
    /// predates a growth — and the op then re-resolves through the
    /// current generation ([`map_slow`](Self::map_slow)) instead of
    /// dereferencing past the stale mapping. A genuinely out-of-bounds
    /// offset panics rather than touching unmapped memory.
    #[inline]
    fn map_for(&self, off: u32, bytes: u32) -> Map<'_> {
        let map = self.map();
        if off as usize + bytes as usize <= map.size {
            map
        } else {
            drop(map);
            self.map_slow(off as usize + bytes as usize)
        }
    }

    /// The re-resolution slow path of [`map_for`](Self::map_for): a view
    /// of the *current* generation, kept current (and un-retired) by
    /// holding the growth lock for the view's lifetime. Only reached
    /// when an offset allocated after a growth is accessed under a
    /// `MapRef` pinned before it — rare enough that serializing against
    /// growth costs nothing.
    #[cold]
    fn map_slow(&self, end: usize) -> Map<'_> {
        let guard = self.maps.grow.lock().unwrap();
        // SAFETY: under the growth lock the current descriptor can be
        // neither replaced nor retired.
        let raw = unsafe { (*self.maps.current.load(Ordering::Acquire)).raw };
        assert!(
            end <= raw.size,
            "pool access out of bounds (access end {end}, pool size {})",
            raw.size
        );
        Map {
            raw,
            pool: self,
            slot: None,
            _grow: Some(guard),
        }
    }

    /// Synchronously writes `[offset, offset + len)` of `raw`'s mapping
    /// (mapping-relative, header included) back to the file.
    fn msync_raw(&self, raw: &RawMap, offset: usize, len: usize) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        assert!(
            offset
                .checked_add(len)
                .is_some_and(|end| end <= HEADER_LEN + raw.size),
            "msync range out of bounds"
        );
        if let Some(tracker) = &self.synced {
            let page = page_size();
            let mut synced = tracker.lock().unwrap();
            synced.extend(offset / page..(offset + len).div_ceil(page));
        }
        // SAFETY: bounds-checked against the pinned view, whose mapping is
        // live for at least HEADER_LEN + size bytes.
        unsafe { mmap::raw::msync(&self.file, raw.base, offset, len) }
    }

    /// Test support (`DQ_TRACK_MSYNC`): every file page number any `msync`
    /// on this pool has covered, sorted. Empty when the gate was unset at
    /// construction. The per-thread and group-commit fence paths must
    /// produce identical sets for identical flush/fence histories — the
    /// fence-semantics property tests compare exactly this.
    pub fn synced_pages(&self) -> Vec<usize> {
        self.synced
            .as_ref()
            .map(|t| t.lock().unwrap().iter().copied().collect())
            .unwrap_or_default()
    }

    /// Durably persists the header page when the policy demands it (rare
    /// path: watermark movement, root-slot writes, clean/dirty marking,
    /// growth commits).
    fn persist_header(&self, raw: &RawMap) {
        // SAFETY: the header page is valid readable memory.
        unsafe { pmem::hw::persist_range(raw.base, HEADER_LEN) };
        if self.policy == SyncPolicy::PowerFail {
            let _ = self.msync_raw(raw, 0, HEADER_LEN);
        }
    }

    /// Fills in a fresh header (create path; the mapping is zeroed).
    fn write_header(&self, size: usize) {
        let state = self.map();
        state.header_u64(H_MAGIC).store(MAGIC, Ordering::Relaxed);
        state
            .header_u32(H_VERSION)
            .store(FORMAT_VERSION, Ordering::Relaxed); // minor 0 until grown
        state
            .header_u32(H_HEADER_LEN)
            .store(HEADER_LEN as u32, Ordering::Relaxed);
        state
            .header_u64(H_POOL_SIZE)
            .store(size as u64, Ordering::Relaxed);
        state
            .header_u32(H_ROOT_SLOTS)
            .store(ROOT_SLOTS as u32, Ordering::Relaxed);
        let geo_crc = crc32(state.header_bytes(0..GEO_LEN));
        state
            .header_u32(H_GEO_CRC)
            .store(geo_crc, Ordering::Relaxed);
        state.header_u32(H_FLAGS).store(0, Ordering::Relaxed); // dirty
        state
            .header_u32(H_WATERMARK)
            .store(layout::HEAP_START, Ordering::Release);
    }

    fn with_pending<R>(&self, tid: usize, f: impl FnOnce(&mut Vec<usize>) -> R) -> R {
        assert!(tid < MAX_THREADS, "tid {tid} exceeds MAX_THREADS");
        // SAFETY: by the persist-API contract only the owner of `tid` calls
        // this, and the borrow is confined to the call.
        f(unsafe { &mut *self.pending[tid].0.get() })
    }

    /// The classic power-fail fence tail: the fencing thread `msync`s its
    /// own dirty pages, one page at a time. `pages` is sorted, deduped and
    /// non-empty.
    fn fence_per_thread(&self, pages: Vec<usize>) {
        let page = page_size();
        let last = *pages.last().unwrap();
        let _msync_timer = MSYNC_NS.start_timer();
        // The flushed pages may postdate the generation a held
        // MapRef has pinned; span-check so the msync targets a
        // mapping that actually covers them.
        let state = self.span_checked_map((last + 1) * page);
        for p in pages {
            let _ = state.msync(p * page, page);
        }
    }

    /// The group-commit arm of [`sfence`](PoolBackend::sfence): publishes
    /// this fence's pages to the pool-wide open batch; one participant per
    /// batch leads, submitting a single coalesced round of `msync`s for
    /// everyone. A fence only returns once a batch *containing its pages*
    /// has fully committed — the durability contract is identical to the
    /// per-thread path. `pages` is sorted, deduped and non-empty.
    fn fence_grouped(&self, gc: &GroupCommit, pages: Vec<usize>) {
        let mut st = gc.state.lock().unwrap();
        st.pending.extend_from_slice(&pages);
        st.fences += 1;
        let my_batch = st.open_batch;
        loop {
            if st.commit_seq >= my_batch {
                // A leader's submission covered this fence's pages.
                FENCE_FOLLOWER.incr();
                return;
            }
            if !st.leader_active {
                // GcState's invariant: no leader + my batch uncommitted
                // means my_batch == open_batch. Lead it.
                st.leader_active = true;
                if gc.window_ns > 0 {
                    // Hold the batch open for stragglers — without the
                    // lock, so they can publish their pages meanwhile.
                    drop(st);
                    std::thread::sleep(std::time::Duration::from_nanos(gc.window_ns));
                    st = gc.state.lock().unwrap();
                }
                let batch = std::mem::take(&mut st.pending);
                let fences = std::mem::take(&mut st.fences);
                st.open_batch += 1;
                drop(st);
                self.submit_batch(gc, batch, fences);
                let mut st = gc.state.lock().unwrap();
                st.commit_seq = my_batch;
                st.leader_active = false;
                gc.cv.notify_all();
                return;
            }
            st = gc.cv.wait(st).unwrap();
        }
    }

    /// Leader half of group commit: coalesces a batch's pages into minimal
    /// contiguous runs and `msync`s each run once. Runs outside the batch
    /// mutex — followers wait on the condvar, new fences accumulate into
    /// the next batch.
    fn submit_batch(&self, gc: &GroupCommit, mut pages: Vec<usize>, fences: u64) {
        FENCE_LEADER.incr();
        pages.sort_unstable();
        pages.dedup();
        // The leader itself always contributed pages, so the batch is
        // never empty.
        let last = *pages.last().unwrap();
        let page = page_size();
        let _msync_timer = MSYNC_NS.start_timer();
        let state = self.span_checked_map((last + 1) * page);
        MSYNC_BATCH_PAGES.record(pages.len() as u64);
        if fences >= 2 {
            FENCE_COALESCED.add(fences);
            if gc.coalesced_batches.fetch_add(1, Ordering::Relaxed) == 0 {
                // Once per pool, not per batch: the flight ring is tiny
                // and a hot producer workload commits millions of batches.
                obs::flight::record(EventKind::FenceGroupCommit, fences, pages.len() as u64);
            }
        }
        let mut run = (pages[0], pages[0]);
        for &p in &pages[1..] {
            if p == run.1 + 1 {
                run.1 = p;
            } else {
                let _ = state.msync(run.0 * page, (run.1 - run.0 + 1) * page);
                run = (p, p);
            }
        }
        let _ = state.msync(run.0 * page, (run.1 - run.0 + 1) * page);
        // Deterministic crash point for the power-fail tests: die with the
        // batch synced but its followers still parked — a survivor of this
        // kill must find every page the batch promised already durable,
        // and no follower may have acked work past this point.
        if let Some(target) = gc.abort_before_wake {
            if fences >= 2 && gc.coalesced_batches.load(Ordering::Relaxed) >= target {
                std::process::abort();
            }
        }
    }

    /// A map guaranteed to cover `[0, end)` of the pool file (mapping
    /// coordinates, header included): flushed pages may postdate the
    /// generation a held MapRef pinned, so fences span-check before
    /// `msync`ing.
    fn span_checked_map(&self, end: usize) -> Map<'_> {
        let state = self.map();
        if end <= HEADER_LEN + state.size {
            state
        } else {
            drop(state);
            self.map_slow(end - HEADER_LEN)
        }
    }
}

fn new_pending() -> Box<[CachePadded<PendingPages>]> {
    (0..MAX_THREADS)
        .map(|_| CachePadded::new(PendingPages::default()))
        .collect()
}

impl Drop for FilePool {
    /// Orderly close: full durability barrier, then mark the header clean.
    /// A killed process never gets here, leaving the dirty flag set.
    fn drop(&mut self) {
        // SAFETY: &mut self — no pins exist; the current descriptor is
        // live until MapTable::drop unmaps it after this body.
        let raw = unsafe { (*self.maps.current.load(Ordering::Acquire)).raw };
        let _ = self.msync_raw(&raw, 0, HEADER_LEN + raw.size);
        let _ = self.file.sync_all();
        raw.set_flags(true);
        let _ = self.msync_raw(&raw, 0, HEADER_LEN);
        let _ = self.file.sync_all();
    }
}

impl MapPin for FilePool {
    fn unpin_map(&self, token: usize) {
        self.maps.unpin(token);
    }
}

impl PoolBackend for FilePool {
    fn kind(&self) -> &'static str {
        "file"
    }

    fn len(&self) -> usize {
        self.maps.size()
    }

    #[inline]
    fn load_u64(&self, off: u32) -> u64 {
        self.map_for(off, 8).word(off).load(Ordering::Acquire)
    }

    #[inline]
    fn store_u64(&self, off: u32, val: u64) {
        self.map_for(off, 8).word(off).store(val, Ordering::Release)
    }

    #[inline]
    fn cas_u64(&self, off: u32, current: u64, new: u64) -> Result<u64, u64> {
        self.map_for(off, 8).word(off).compare_exchange(
            current,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        )
    }

    #[inline]
    fn fetch_add_u64(&self, off: u32, val: u64) -> u64 {
        self.map_for(off, 8)
            .word(off)
            .fetch_add(val, Ordering::AcqRel)
    }

    #[inline]
    fn swap_u64(&self, off: u32, val: u64) -> u64 {
        self.map_for(off, 8).word(off).swap(val, Ordering::AcqRel)
    }

    #[inline]
    fn flush(&self, tid: usize, off: u32) {
        let state = self.map_for(off, 8);
        state.check_bounds(off, 8);
        // SAFETY: the line containing `off` is inside the mapping.
        unsafe { pmem::hw::clflush(state.addr(off)) };
        drop(state);
        if self.policy == SyncPolicy::PowerFail {
            let page = (HEADER_LEN + off as usize) / page_size();
            self.with_pending(tid, |pending| {
                if pending.last() != Some(&page) {
                    pending.push(page);
                }
            });
        }
    }

    fn sfence(&self, tid: usize) {
        FENCES.incr();
        pmem::hw::sfence();
        if self.policy == SyncPolicy::PowerFail {
            let mut pages = self.with_pending(tid, std::mem::take);
            pages.sort_unstable();
            pages.dedup();
            if pages.is_empty() {
                return;
            }
            match &self.group {
                Some(gc) => self.fence_grouped(gc, pages),
                None => self.fence_per_thread(pages),
            }
        }
    }

    fn fence_hint(&self) -> pmem::FenceHint {
        match &self.group {
            Some(gc) => pmem::FenceHint::GroupCommit {
                window_ns: gc.window_ns,
            },
            None => pmem::FenceHint::PerThread,
        }
    }

    #[inline]
    fn nt_store_u64(&self, tid: usize, off: u32, val: u64) {
        let state = self.map_for(off, 8);
        state.check_bounds(off, 8);
        // SAFETY: in bounds, 8-byte aligned; concurrent access to pool words
        // is atomic by contract (a racing movnti would be the caller's
        // single-writer-per-word violation, same as on real hardware).
        unsafe { pmem::hw::nt_store_u64(state.addr(off) as *mut u64, val) };
        drop(state);
        if self.policy == SyncPolicy::PowerFail {
            let page = (HEADER_LEN + off as usize) / page_size();
            self.with_pending(tid, |pending| pending.push(page));
        }
    }

    fn persist_now(&self, off: u32) {
        let state = self.map_for(off, 8);
        state.check_bounds(off, 8);
        // SAFETY: the line containing `off` is inside the mapping.
        unsafe { pmem::hw::persist_range(state.addr(off), 8) };
        if self.policy == SyncPolicy::PowerFail {
            let page = page_size();
            let start = (HEADER_LEN + off as usize) & !(page - 1);
            let _ = state.msync(start, page);
        }
    }

    fn zero_range(&self, off: u32, len: u32) {
        assert_eq!(off % 8, 0);
        assert_eq!(len % 8, 0);
        let state = self.map_for(off, len);
        for i in 0..(len / 8) {
            state.word(off + i * 8).store(0, Ordering::Release);
        }
    }

    fn watermark(&self) -> u32 {
        self.map().header_u32(H_WATERMARK).load(Ordering::Acquire)
    }

    fn cas_watermark(&self, current: u32, new: u32) -> Result<u32, u32> {
        let state = self.map();
        let r = state.header_u32(H_WATERMARK).compare_exchange(
            current,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        if r.is_ok() {
            // Allocations are rare (the ssmem layer carves whole designated
            // areas); persist the moved watermark eagerly so a reopened pool
            // never re-hands-out reserved space.
            // SAFETY: the header page is valid readable memory.
            unsafe { pmem::hw::clflush(state.base.add(H_WATERMARK)) };
            pmem::hw::sfence();
            if self.policy == SyncPolicy::PowerFail {
                let _ = state.msync(0, HEADER_LEN);
            }
        }
        r
    }

    fn try_grow(&self, min_len: usize) -> bool {
        match self.grow_to(min_len) {
            Ok(grown) => grown,
            Err(e) => {
                // The caller surfaces PoolExhausted, which would otherwise
                // bury a real filesystem failure (ENOSPC, mmap) as a sizing
                // problem; growth is rare, so a stderr line is affordable.
                eprintln!(
                    "store: growing pool {} to {} bytes failed: {e}",
                    self.path.display(),
                    min_len
                );
                false
            }
        }
    }

    fn growth_epoch(&self) -> u32 {
        FilePool::growth_epoch(self)
    }

    fn root_u64(&self, slot: usize) -> u64 {
        debug_assert!(slot < ROOT_SLOTS);
        self.map()
            .header_u64(H_ROOTS + slot * 8)
            .load(Ordering::Acquire)
    }

    fn set_root_u64(&self, slot: usize, val: u64) {
        debug_assert!(slot < ROOT_SLOTS);
        let state = self.map();
        state
            .header_u64(H_ROOTS + slot * 8)
            .store(val, Ordering::Release);
        self.persist_header(&state);
    }

    fn sync(&self) {
        let state = self.map();
        let _ = state.msync(0, HEADER_LEN + state.size);
        let _ = self.file.sync_all();
    }

    fn mark_clean(&self, clean: bool) {
        let state = self.map();
        state.set_flags(clean);
        let _ = state.msync(0, HEADER_LEN);
    }

    fn map_ref(&self) -> Option<pmem::MapRef<'_>> {
        Some(FilePool::map_ref(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("store-filepool-{tag}-{}", std::process::id()))
    }

    fn small() -> FileConfig {
        FileConfig::with_size(1 << 20)
    }

    #[test]
    fn create_open_roundtrip_preserves_data_and_watermark() {
        let path = temp_path("roundtrip");
        let off;
        {
            let pool = FilePool::create(&path, small()).unwrap();
            assert!(pool.was_clean());
            let p = pool.into_pool();
            off = p.alloc_raw(64, 64);
            p.store_u64(off, 0xFEED);
            p.flush(0, off);
            p.sfence(0);
            p.set_root_u64(0, off as u64);
        } // clean drop
        {
            let pool = FilePool::open(&path).unwrap();
            assert!(pool.was_clean(), "orderly drop must mark the pool clean");
            let p = pool.into_pool();
            assert_eq!(p.backend_kind(), "file");
            assert_eq!(p.root_u64(0), off as u64);
            assert_eq!(p.load_u64(off), 0xFEED);
            assert!(p.watermark() >= off + 64, "watermark must persist");
            // The watermark protects existing data: a new allocation lands
            // strictly above it.
            assert!(p.alloc_raw(64, 64) >= off + 64);
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_fences_are_durable_and_advertised() {
        let path = temp_path("gc-roundtrip");
        let off;
        {
            let pool = FilePool::create(
                &path,
                small()
                    .with_sync(SyncPolicy::PowerFail)
                    .with_group_commit(Some(0)),
            )
            .unwrap();
            assert_eq!(
                PoolBackend::fence_hint(&pool),
                pmem::FenceHint::GroupCommit { window_ns: 0 }
            );
            let p = pool.into_pool();
            assert_eq!(
                p.fence_hint(),
                pmem::FenceHint::GroupCommit { window_ns: 0 }
            );
            off = p.alloc_raw(64, 64);
            p.store_u64(off, 0xC0A1E5CE);
            p.flush(0, off);
            p.sfence(0); // a lone fence leads its own batch of one
            p.set_root_u64(0, off as u64);
        }
        {
            let pool = FilePool::open(&path).unwrap();
            assert_eq!(PoolBackend::fence_hint(&pool), pmem::FenceHint::PerThread);
            let p = pool.into_pool();
            assert_eq!(p.root_u64(0), off as u64);
            assert_eq!(p.load_u64(off), 0xC0A1E5CE);
        }
        fs::remove_file(&path).unwrap();
    }

    /// With a 2 ms batch window and barrier-synchronized producers, at
    /// least one fence must ride another thread's submission. (Counter
    /// deltas are `>=` because instruments are process-global.)
    #[test]
    #[cfg(feature = "instrument")]
    fn group_commit_coalesces_concurrent_fences() {
        use std::sync::Barrier;
        let path = temp_path("gc-coalesce");
        let before = obs::snapshot();
        {
            let pool = FilePool::create(
                &path,
                small()
                    .with_sync(SyncPolicy::PowerFail)
                    .with_group_commit(Some(2_000_000)),
            )
            .unwrap();
            let p = pool.into_pool();
            let threads = 4;
            let fences = 16u64;
            let barrier = Barrier::new(threads);
            std::thread::scope(|s| {
                for tid in 0..threads {
                    let (p, barrier) = (&p, &barrier);
                    s.spawn(move || {
                        let base = p.alloc_raw(fences as u32 * 64, 64);
                        barrier.wait();
                        for i in 0..fences {
                            let off = base + i as u32 * 64;
                            p.store_u64(off, ((tid as u64) << 32) | i);
                            p.flush(tid, off);
                            p.sfence(tid);
                        }
                    });
                }
            });
        }
        let after = obs::snapshot();
        let leaders = after.counter("store.fence.leader") - before.counter("store.fence.leader");
        let followers =
            after.counter("store.fence.follower") - before.counter("store.fence.follower");
        assert!(leaders >= 1, "some fence must have led a batch");
        assert!(
            followers >= 1,
            "4 synchronized producers under a 2 ms window must coalesce \
             (leaders {leaders}, followers {followers})"
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dirty_flag_survives_until_clean_close() {
        let path = temp_path("dirty");
        {
            let _pool = FilePool::create(&path, small()).unwrap();
            // Reopening while another handle holds the pool open (or after a
            // kill) must observe the dirty flag.
            let second = FilePool::open(&path).unwrap();
            assert!(!second.was_clean());
        }
        let third = FilePool::open(&path).unwrap();
        assert!(third.was_clean());
        drop(third);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_bad_magic_version_and_crc() {
        use std::io::{Seek, SeekFrom, Write};
        let path = temp_path("validate");
        drop(FilePool::create(&path, small()).unwrap());

        let corrupt_at = |pos: u64, bytes: &[u8]| {
            let mut f = File::options().read(true).write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(pos)).unwrap();
            f.write_all(bytes).unwrap();
        };
        let reopen = || FilePool::open(&path).map(|_| ()).unwrap_err().to_string();

        corrupt_at(0, b"NOTAPOOL");
        assert!(reopen().contains("bad magic"), "{}", reopen());
        corrupt_at(0, b"DQSTORE1");
        // Magic restored but the CRC content changed? No — magic is part of
        // the CRC'd region and was restored bit-for-bit, so this reopens.
        FilePool::open(&path).unwrap();

        corrupt_at(8, &99u32.to_le_bytes());
        assert!(reopen().contains("version"), "{}", reopen());
        // An unknown minor version is rejected too (the geometry CRC is
        // recomputed so the minor check itself is what trips).
        let bad_minor = FORMAT_VERSION | ((FORMAT_MINOR + 1) << 16);
        corrupt_at(8, &bad_minor.to_le_bytes());
        let mut geo = fs::read(&path).unwrap()[..GEO_LEN].to_vec();
        geo[H_VERSION..H_VERSION + 4].copy_from_slice(&bad_minor.to_le_bytes());
        corrupt_at(H_GEO_CRC as u64, &crc32(&geo).to_le_bytes());
        assert!(reopen().contains("version 1.2"), "{}", reopen());
        corrupt_at(8, &FORMAT_VERSION.to_le_bytes());

        corrupt_at(16, &(123456789u64).to_le_bytes());
        assert!(reopen().contains("CRC"), "{}", reopen());

        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_truncated_files_and_corrupt_watermarks() {
        let path = temp_path("truncate");
        drop(FilePool::create(&path, small()).unwrap());
        let f = File::options().read(true).write(true).open(&path).unwrap();
        f.set_len(HEADER_LEN as u64 + 100).unwrap();
        drop(f);
        let err = FilePool::open(&path).map(|_| ()).unwrap_err().to_string();
        assert!(err.contains("claims"), "{err}");
        fs::remove_file(&path).unwrap();

        let path = temp_path("watermark");
        drop(FilePool::create(&path, small()).unwrap());
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = File::options().read(true).write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(H_WATERMARK as u64)).unwrap();
            f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        }
        let err = FilePool::open(&path).map(|_| ()).unwrap_err().to_string();
        assert!(err.contains("watermark"), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn power_fail_policy_msyncs_without_changing_semantics() {
        let path = temp_path("powerfail");
        {
            let pool = FilePool::create(&path, small().with_sync(SyncPolicy::PowerFail)).unwrap();
            assert_eq!(pool.sync_policy(), SyncPolicy::PowerFail);
            let p = pool.into_pool();
            let off = p.alloc_raw(256, 64);
            for i in 0..32 {
                p.store_u64(off + i * 8, i as u64 + 1);
            }
            p.flush_range(0, off, 256);
            p.sfence(0);
            p.nt_store_u64(0, off, 999);
            p.sfence(0);
            p.persist_now(off + 8);
            p.sync();
            assert_eq!(p.load_u64(off), 999);
            assert_eq!(p.load_u64(off + 8), 2);
        }
        drop(FilePool::open_with_sync(&path, SyncPolicy::PowerFail).unwrap());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomics_and_roots_behave_like_the_sim_backend() {
        let path = temp_path("atomics");
        let pool = FilePool::create(&path, small()).unwrap();
        let p = pool.into_pool();
        let off = p.alloc_raw(64, 64);
        assert_eq!(p.fetch_add_u64(off, 5), 0);
        assert_eq!(p.cas_u64(off, 5, 6), Ok(5));
        assert_eq!(p.cas_u64(off, 5, 7), Err(6));
        assert_eq!(p.swap_u64(off, 100), 6);
        p.zero_range(off, 64);
        assert_eq!(p.load_u64(off), 0);
        p.set_root_u64(3, 0xBEEF);
        assert_eq!(p.root_u64(3), 0xBEEF);
        assert_eq!(p.persistent_u64_at(off), 0);
        p.mark_line_cached(off); // no-op, must not panic
        drop(p);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_geometry_reports_size_watermark_and_cleanliness() {
        let path = temp_path("geometry");
        let off;
        {
            let pool = FilePool::create(&path, small()).unwrap();
            let expected_size = pool.len();
            let p = pool.into_pool();
            off = p.alloc_raw(256, 64);
            // Mid-session: dirty, watermark already moved.
            let geo = FilePool::read_geometry(&path).unwrap();
            assert_eq!(geo.pool_size, expected_size);
            assert_eq!(geo.base_size, expected_size);
            assert_eq!(geo.growth_epoch, 0);
            assert!(!geo.was_clean, "open pool reads as dirty");
            assert!(geo.watermark >= off + 256);
            assert_eq!(
                geo.used_bytes(),
                geo.watermark as usize - layout::HEAP_START as usize
            );
        }
        let geo = FilePool::read_geometry(&path).unwrap();
        assert!(geo.was_clean, "orderly drop marks the pool clean");
        assert!(geo.used_bytes() >= 256);
        // Reading the geometry has no side effects: the file still opens
        // clean afterwards.
        assert!(FilePool::open(&path).unwrap().was_clean());
        fs::remove_file(&path).unwrap();

        // Validation errors surface exactly like open's.
        let err = FilePool::read_geometry(&path).map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
        fs::write(&path, b"short").unwrap();
        let err = FilePool::read_geometry(&path).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("too short"), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn copy_pool_file_produces_an_identical_openable_pool() {
        let src = temp_path("copy-src");
        let dst = temp_path("copy-dst");
        {
            let pool = FilePool::create(&src, small()).unwrap().into_pool();
            let off = pool.alloc_raw(64, 64);
            pool.store_u64(off, 0xC0FFEE);
            pool.set_root_u64(0, off as u64);
        }
        let bytes = copy_pool_file(&src, &dst).unwrap();
        assert_eq!(bytes, fs::metadata(&src).unwrap().len());
        let copy = FilePool::open(&dst).unwrap();
        assert!(copy.was_clean());
        let p = copy.into_pool();
        let off = p.root_u64(0) as u32;
        assert_eq!(p.load_u64(off), 0xC0FFEE);
        // Copying a non-pool file is refused before any bytes move.
        fs::write(&src, b"not a pool").unwrap();
        assert!(copy_pool_file(&src, &dst).is_err());
        fs::remove_file(&src).unwrap();
        fs::remove_file(&dst).unwrap();
    }

    #[test]
    fn create_clamps_huge_sizes_without_align_overflow() {
        // u32::MAX used to overflow the cache-line round-up inside create.
        let path = temp_path("huge");
        let pool = FilePool::create(&path, FileConfig::with_size(u32::MAX as usize)).unwrap();
        assert!(pool.len() <= u32::MAX as usize);
        assert_eq!(pool.len() % CACHE_LINE, 0);
        assert!(pool.len() >= (u32::MAX as usize) - 2 * CACHE_LINE);
        drop(pool);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sizes_are_floored_and_aligned() {
        let path = temp_path("sizing");
        let pool = FilePool::create(&path, FileConfig::with_size(10)).unwrap();
        assert!(pool.len() >= layout::HEAP_START as usize + CACHE_LINE);
        assert_eq!(pool.len() % CACHE_LINE, 0);
        assert_eq!(
            pool.path().file_name(),
            path.file_name(),
            "path is recorded"
        );
        drop(pool);
        fs::remove_file(&path).unwrap();
    }

    // ------------------------------------------------------------------
    // Growth
    // ------------------------------------------------------------------

    /// A 256 KiB pool that grows in 256 KiB steps.
    fn tiny_elastic() -> FileConfig {
        FileConfig::with_size(256 << 10).with_growth(256 << 10)
    }

    #[test]
    fn grow_to_extends_preserves_data_and_bumps_the_epoch() {
        let path = temp_path("grow");
        let pool = FilePool::create(&path, tiny_elastic()).unwrap();
        let base = pool.len();
        assert_eq!(pool.growth_epoch(), 0);
        assert_eq!(pool.grow_step(), 256 << 10);
        let p = pool.into_pool();
        let off = p.alloc_raw(64, 64);
        p.store_u64(off, 0xDA7A);

        // Exhaust the base size through the public allocation API: the pool
        // grows instead of failing.
        let mut last = off;
        while (last as usize) < base {
            last = p.alloc_raw(4096, 64);
        }
        assert!(p.len() > base, "pool must have grown");
        assert_eq!(p.growth_epoch(), 1);
        assert_eq!(p.load_u64(off), 0xDA7A, "pre-growth data survives remap");
        p.store_u64(last, 0x600D);
        assert_eq!(p.load_u64(last), 0x600D, "grown space is addressable");

        drop(p); // clean close
        let geo = FilePool::read_geometry(&path).unwrap();
        assert_eq!(geo.growth_epoch, 1);
        assert_eq!(geo.base_size, base);
        assert!(geo.pool_size > base);
        assert!(geo.was_clean);

        // Reopen: the grown size is the effective size, the data is intact.
        let pool = FilePool::open(&path).unwrap();
        assert_eq!(pool.len(), geo.pool_size);
        assert_eq!(pool.growth_epoch(), 1);
        let p = pool.into_pool();
        assert_eq!(p.load_u64(off), 0xDA7A);
        assert_eq!(p.load_u64(last), 0x600D);
        drop(p);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn growth_bumps_the_minor_version_so_old_readers_reject() {
        let path = temp_path("grow-minor");
        {
            let pool = FilePool::create(&path, tiny_elastic()).unwrap();
            let want = pool.len() + 1;
            assert!(pool.grow_to(want).unwrap());
            assert!(pool.len() >= want);
        }
        // A reader that predates elastic growth compares the whole version
        // word against 1 — a grown file's word is 1 | (1 << 16), so it is
        // rejected instead of silently ignoring the grown space.
        let header = fs::read(&path).unwrap();
        let version = u32::from_le_bytes(header[H_VERSION..H_VERSION + 4].try_into().unwrap());
        assert_eq!(version, FORMAT_VERSION | (FORMAT_MINOR << 16));
        assert_ne!(version, 1, "pre-growth readers must reject this file");
        // This build accepts it, with the geometry CRC re-covering the new
        // version word.
        let geo = FilePool::read_geometry(&path).unwrap();
        assert_eq!(geo.growth_epoch, 1);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ungrown_pools_keep_minor_zero_for_old_readers() {
        let path = temp_path("grow-compat");
        drop(FilePool::create(&path, tiny_elastic()).unwrap());
        let header = fs::read(&path).unwrap();
        let version = u32::from_le_bytes(header[H_VERSION..H_VERSION + 4].try_into().unwrap());
        assert_eq!(
            version, 1,
            "never-grown files stay readable by minor-0 readers"
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn grow_to_is_refused_on_fixed_pools_and_past_the_offset_ceiling() {
        let path = temp_path("grow-fixed");
        let pool = FilePool::create(&path, small()).unwrap();
        let len = pool.len();
        assert!(!pool.grow_to(len * 2).unwrap(), "grow_step 0 = fixed size");
        assert!(
            pool.grow_to(len).unwrap(),
            "already-satisfied requests succeed even on fixed pools"
        );
        assert_eq!(pool.len(), len);
        assert_eq!(pool.growth_epoch(), 0);
        drop(pool);
        fs::remove_file(&path).unwrap();

        let path = temp_path("grow-ceiling");
        let pool = FilePool::create(&path, tiny_elastic()).unwrap();
        assert!(
            !pool.grow_to(usize::MAX).unwrap(),
            "past the u32 offset ceiling"
        );
        drop(pool);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn repeated_growth_accumulates_epochs_across_reopens() {
        let path = temp_path("grow-epochs");
        let mut expected = 0u32;
        let mut sizes = Vec::new();
        for _ in 0..3 {
            let pool = if expected == 0 {
                FilePool::create(&path, tiny_elastic()).unwrap()
            } else {
                FilePool::open_with_growth(&path, SyncPolicy::default(), 256 << 10).unwrap()
            };
            assert_eq!(pool.growth_epoch(), expected);
            let want = pool.len() + 1;
            assert!(pool.grow_to(want).unwrap());
            expected += 1;
            assert_eq!(pool.growth_epoch(), expected);
            sizes.push(pool.len());
        }
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_pending_grow_journal_is_honoured_and_rolled_forward() {
        use std::io::{Seek, SeekFrom, Write};
        let path = temp_path("grow-journal");
        {
            let pool = FilePool::create(&path, tiny_elastic()).unwrap();
            let want = pool.len() + 1;
            assert!(pool.grow_to(want).unwrap());
        }
        // Rewind the home fields to their pre-growth values and re-stage the
        // commit in the journal — the exact on-disk state of a crash between
        // the commit point and the home-field rewrite.
        let bytes = fs::read(&path).unwrap();
        let grown = u64::from_le_bytes(bytes[H_GROWN_SIZE..H_GROWN_SIZE + 8].try_into().unwrap());
        let commit = GrowCommit {
            version: u32::from_le_bytes(bytes[H_VERSION..H_VERSION + 4].try_into().unwrap()),
            geo_crc: u32::from_le_bytes(bytes[H_GEO_CRC..H_GEO_CRC + 4].try_into().unwrap()),
            grown_size: grown,
            grow_epoch: 1,
            grow_crc: u32::from_le_bytes(bytes[H_GROW_CRC..H_GROW_CRC + 4].try_into().unwrap()),
        };
        let mut old_geo = bytes[..GEO_LEN].to_vec();
        old_geo[H_VERSION..H_VERSION + 4].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        {
            let mut f = File::options().read(true).write(true).open(&path).unwrap();
            let record = commit.to_bytes();
            f.seek(SeekFrom::Start(H_JOURNAL as u64)).unwrap();
            f.write_all(&record).unwrap();
            f.write_all(&crc32(&record).to_le_bytes()).unwrap();
            // Home fields back to minor 0 / no grow record.
            f.seek(SeekFrom::Start(H_VERSION as u64)).unwrap();
            f.write_all(&FORMAT_VERSION.to_le_bytes()).unwrap();
            f.seek(SeekFrom::Start(H_GEO_CRC as u64)).unwrap();
            f.write_all(&crc32(&old_geo).to_le_bytes()).unwrap();
            f.seek(SeekFrom::Start(H_GROWN_SIZE as u64)).unwrap();
            f.write_all(&[0u8; 16]).unwrap();
        }
        // read_geometry honours the journal virtually...
        let geo = FilePool::read_geometry(&path).unwrap();
        assert_eq!(geo.growth_epoch, 1);
        assert_eq!(geo.pool_size as u64, grown);
        // ...and open rolls it forward durably.
        drop(FilePool::open(&path).unwrap());
        let bytes = fs::read(&path).unwrap();
        assert_eq!(
            u64::from_le_bytes(bytes[H_GROWN_SIZE..H_GROWN_SIZE + 8].try_into().unwrap()),
            grown,
            "home fields rewritten from the journal"
        );
        assert!(
            bytes[H_JOURNAL..H_JOURNAL + JOURNAL_LEN]
                .iter()
                .all(|&b| b == 0),
            "journal retired after roll-forward"
        );
        let geo = FilePool::read_geometry(&path).unwrap();
        assert_eq!(geo.growth_epoch, 1);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn a_torn_grow_journal_is_ignored() {
        use std::io::{Seek, SeekFrom, Write};
        let path = temp_path("grow-torn");
        drop(FilePool::create(&path, tiny_elastic()).unwrap());
        {
            // Garbage where the journal lives: the CRC cannot match, so the
            // record reads as "no commit in flight".
            let mut f = File::options().read(true).write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(H_JOURNAL as u64)).unwrap();
            f.write_all(&[0xAB; JOURNAL_LEN]).unwrap();
        }
        let geo = FilePool::read_geometry(&path).unwrap();
        assert_eq!(geo.growth_epoch, 0, "torn journal = commit never happened");
        let pool = FilePool::open(&path).unwrap();
        assert_eq!(pool.growth_epoch(), 0);
        drop(pool);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pool_exhausted_diagnostics_report_the_file_pools_true_state() {
        let path = temp_path("exhaust-diag");
        let pool = FilePool::create(&path, small()).unwrap();
        let capacity = pool.len();
        let p = pool.into_pool();
        let err = loop {
            match p.try_alloc_raw(8192, 64) {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.requested, 8192, "requested bytes surface");
        assert_eq!(err.align, 64);
        assert_eq!(err.capacity, capacity, "capacity is the pool size");
        assert_eq!(err.watermark, p.watermark(), "watermark is the live one");
        assert!(err.watermark as usize <= capacity);
        let rendered = err.to_string();
        for needle in ["requested 8192 bytes", "watermark", "capacity", "free"] {
            assert!(rendered.contains(needle), "{rendered}");
        }
        drop(p);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn growth_is_safe_under_concurrent_traffic() {
        // Writers hammer already-allocated words while other threads force
        // repeated growths: the remap-and-retire protocol must never lose
        // a committed store or hand out overlapping space.
        let path = temp_path("grow-race");
        let pool = FilePool::create(
            &path,
            FileConfig::with_size(256 << 10).with_growth(64 << 10),
        )
        .unwrap();
        let p = pool.into_pool();
        let slots: Vec<u32> = (0..8).map(|_| p.alloc_raw(64, 64)).collect();
        std::thread::scope(|scope| {
            for (tid, &slot) in slots.iter().enumerate() {
                let p = &p;
                scope.spawn(move || {
                    for i in 1..=500u64 {
                        p.store_u64(slot, i);
                        p.flush(tid, slot);
                        p.sfence(tid);
                        if i % 50 == 0 {
                            // Force allocation pressure from this thread too.
                            let off = p.alloc_raw(4096, 64);
                            p.store_u64(off, i);
                        }
                    }
                });
            }
        });
        for &slot in &slots {
            assert_eq!(p.load_u64(slot), 500);
        }
        assert!(p.growth_epoch() >= 1, "the race must have grown the pool");
        drop(p);
        fs::remove_file(&path).unwrap();
    }
}
