//! A minimal shared file mapping.
//!
//! The offline build has no `libc` crate, so on Unix the handful of calls a
//! pool file needs (`mmap`, `munmap`, `msync`, `getpagesize`) are declared
//! directly against the C library that `std` already links. On other
//! platforms a heap buffer stands in: the file is read at map time and
//! written back on [`MmapRegion::msync`]/drop — the API works everywhere,
//! but only the Unix mapping gives kill-`SIGKILL` durability (stores land in
//! the OS page cache the moment they retire, so they survive the process).

use std::fs::File;
use std::io;

/// A writable shared mapping of the leading `len` bytes of a file.
pub struct MmapRegion {
    ptr: *mut u8,
    len: usize,
    #[cfg(not(unix))]
    file: File,
    #[cfg(not(unix))]
    layout: std::alloc::Layout,
}

// SAFETY: the region is only accessed through atomics (or during
// single-threaded setup) by its users; the raw pointer itself is safe to
// move between threads.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const MAP_SHARED: i32 = 1;
    pub const MS_SYNC: i32 = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn msync(addr: *mut c_void, len: usize, flags: i32) -> i32;
        pub fn getpagesize() -> i32;
    }

    #[cfg(target_os = "linux")]
    pub const MREMAP_MAYMOVE: i32 = 1;

    #[cfg(target_os = "linux")]
    extern "C" {
        pub fn mremap(
            old_address: *mut c_void,
            old_size: usize,
            new_size: usize,
            flags: i32,
        ) -> *mut c_void;
    }
}

/// The system page size (granularity of [`MmapRegion::msync`] rounding).
pub fn page_size() -> usize {
    #[cfg(unix)]
    // SAFETY: getpagesize has no preconditions.
    unsafe {
        sys::getpagesize() as usize
    }
    #[cfg(not(unix))]
    4096
}

impl MmapRegion {
    /// Maps the leading `len` bytes of `file`, shared and read-write. The
    /// file must already be at least `len` bytes long.
    pub fn map(file: &File, len: usize) -> io::Result<MmapRegion> {
        assert!(len > 0, "cannot map an empty region");
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a valid open file descriptor; len > 0; a shared
            // file mapping has no other preconditions. The kernel validates
            // the rest and reports failure as MAP_FAILED.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ | sys::PROT_WRITE,
                    sys::MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(MmapRegion {
                ptr: ptr as *mut u8,
                len,
            })
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let layout = std::alloc::Layout::from_size_align(len, 4096)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            // SAFETY: layout has non-zero size.
            let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
            if ptr.is_null() {
                return Err(io::Error::new(io::ErrorKind::OutOfMemory, "alloc failed"));
            }
            let mut f = file.try_clone()?;
            f.seek(SeekFrom::Start(0))?;
            // SAFETY: ptr is valid for len bytes, exclusively owned here.
            let buf = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
            f.read_exact(buf)?;
            Ok(MmapRegion {
                ptr,
                len,
                file: f,
                layout,
            })
        }
    }

    /// Base pointer of the mapping.
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the mapping is empty (never: `map` rejects len 0).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Synchronously writes the pages overlapping `[offset, offset + len)`
    /// back to the file (`msync(MS_SYNC)`); the range is rounded out to page
    /// boundaries.
    pub fn msync(&self, offset: usize, len: usize) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "msync range out of bounds"
        );
        #[cfg(unix)]
        {
            let page = page_size();
            let start = offset & !(page - 1);
            let end = offset + len;
            // SAFETY: [start, end) is page-rounded and inside the mapping.
            let rc = unsafe {
                sys::msync(
                    self.ptr.add(start) as *mut std::ffi::c_void,
                    end - start,
                    sys::MS_SYNC,
                )
            };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(offset as u64))?;
            // SAFETY: in-bounds read of the owned buffer.
            let buf = unsafe { std::slice::from_raw_parts(self.ptr.add(offset), len) };
            f.write_all(buf)?;
            f.flush()
        }
    }
}

/// Unowned mapping primitives for `file_pool`'s epoch-retired mapping
/// table, which manages mapping lifetimes itself (a replaced mapping must
/// outlive the last reader pinned on it, so RAII ownership à la
/// [`MmapRegion`] is the wrong shape there).
///
/// On Unix these are thin wrappers over `mmap`/`munmap`/`msync`, plus the
/// two Linux `mremap` forms growth uses: in-place extension (base pointer
/// unchanged, no second VA range) and shared-mapping duplication (the old
/// mapping stays intact for still-pinned readers). On non-Unix platforms
/// the same API is backed by page-aligned heap buffers with explicit file
/// write-back, exactly like the [`MmapRegion`] stand-in.
pub(crate) mod raw {
    use super::page_size;
    use std::fs::File;
    use std::io;

    /// Maps the leading `len` bytes of `file`, shared and read-write.
    pub fn map(file: &File, len: usize) -> io::Result<*mut u8> {
        assert!(len > 0, "cannot map an empty region");
        #[cfg(unix)]
        {
            use super::sys;
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a valid open file descriptor; len > 0; a shared
            // file mapping has no other preconditions.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ | sys::PROT_WRITE,
                    sys::MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(ptr as *mut u8)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let layout = buf_layout(len)?;
            // SAFETY: layout has non-zero size.
            let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
            if ptr.is_null() {
                return Err(io::Error::new(io::ErrorKind::OutOfMemory, "alloc failed"));
            }
            let mut f = file.try_clone()?;
            f.seek(SeekFrom::Start(0))?;
            // SAFETY: ptr is valid for len bytes, exclusively owned here.
            let buf = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
            f.read_exact(buf)?;
            Ok(ptr)
        }
    }

    /// Releases a mapping created by [`map`] (or [`remap_dup`], or extended
    /// in place to `len` bytes).
    ///
    /// # Safety
    ///
    /// `ptr`/`len` must name exactly one live mapping from this module, and
    /// nothing may reference it afterwards.
    pub unsafe fn unmap(ptr: *mut u8, len: usize) {
        #[cfg(unix)]
        // SAFETY: per the caller contract.
        unsafe {
            super::sys::munmap(ptr as *mut std::ffi::c_void, len);
        }
        #[cfg(not(unix))]
        // SAFETY: allocated with exactly this layout in `map`/`remap_dup`.
        unsafe {
            std::alloc::dealloc(ptr, buf_layout(len).unwrap());
        }
    }

    /// Synchronously writes the pages of `[offset, offset + len)` (rounded
    /// out to page boundaries) back to the file. `file` is the backing file
    /// — unused on Unix, where the kernel knows it from the mapping.
    ///
    /// # Safety
    ///
    /// `base` must be a live mapping covering `offset + len` bytes.
    pub unsafe fn msync(file: &File, base: *mut u8, offset: usize, len: usize) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        #[cfg(unix)]
        {
            let _ = file;
            let page = page_size();
            let start = offset & !(page - 1);
            let end = offset + len;
            // SAFETY: [start, end) is page-rounded and, per the caller
            // contract, inside the mapping.
            let rc = unsafe {
                super::sys::msync(
                    base.add(start) as *mut std::ffi::c_void,
                    end - start,
                    super::sys::MS_SYNC,
                )
            };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom, Write};
            let _ = page_size();
            let mut f = file.try_clone()?;
            f.seek(SeekFrom::Start(offset as u64))?;
            // SAFETY: in-bounds read of the caller's buffer.
            let buf = unsafe { std::slice::from_raw_parts(base.add(offset), len) };
            f.write_all(buf)?;
            f.flush()
        }
    }

    /// Attempts to extend a live mapping from `old_len` to `new_len` bytes
    /// **without moving its base** (Linux `mremap` with no flags). Returns
    /// `true` on success — the common, cheapest growth path: readers keep
    /// using the same base pointer and no second VA range ever exists.
    /// Always `false` off Linux.
    ///
    /// # Safety
    ///
    /// `base`/`old_len` must name a live mapping from this module; the
    /// backing file must already be at least `new_len` bytes long.
    pub unsafe fn extend_in_place(base: *mut u8, old_len: usize, new_len: usize) -> bool {
        #[cfg(target_os = "linux")]
        {
            // SAFETY: per the caller contract; without MREMAP_MAYMOVE the
            // kernel either extends at the same address or fails cleanly.
            let ptr =
                unsafe { super::sys::mremap(base as *mut std::ffi::c_void, old_len, new_len, 0) };
            ptr as *mut u8 == base && ptr as isize != -1
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (base, old_len, new_len);
            false
        }
    }

    /// Creates a **second** mapping of the file, `new_len` bytes long,
    /// leaving the old mapping at `base` fully intact — the growth path
    /// when in-place extension fails. On Linux this is
    /// `mremap(base, 0, new_len, MREMAP_MAYMOVE)`: with `old_size == 0` on
    /// a shared mapping the kernel *duplicates* instead of moving, which
    /// needs no second walk of the file and is why still-pinned readers of
    /// the old mapping stay valid. Elsewhere it falls back to a fresh
    /// `mmap` of the same file (same pages via the page cache, so the two
    /// mappings are coherent), or to alloc-and-read on non-Unix (the caller
    /// must have written the old buffer back first).
    ///
    /// # Safety
    ///
    /// `base` must name a live shared mapping of `file` from this module;
    /// the file must already be at least `new_len` bytes long.
    pub unsafe fn remap_dup(file: &File, base: *mut u8, new_len: usize) -> io::Result<*mut u8> {
        #[cfg(target_os = "linux")]
        {
            // SAFETY: per the caller contract; old_size 0 + MAYMOVE
            // duplicates a shared mapping without touching the original.
            let ptr = unsafe {
                super::sys::mremap(
                    base as *mut std::ffi::c_void,
                    0,
                    new_len,
                    super::sys::MREMAP_MAYMOVE,
                )
            };
            if ptr as isize != -1 {
                return Ok(ptr as *mut u8);
            }
            // Old kernels may refuse the duplication form; a plain second
            // mapping of the file is equivalent (same page-cache pages).
            map(file, new_len)
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = base;
            map(file, new_len)
        }
    }

    #[cfg(not(unix))]
    fn buf_layout(len: usize) -> io::Result<std::alloc::Layout> {
        std::alloc::Layout::from_size_align(len, 4096)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: ptr/len are exactly the mapping created in `map`.
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
        #[cfg(not(unix))]
        {
            let _ = self.msync(0, self.len);
            // SAFETY: allocated with exactly this layout in `map`.
            unsafe { std::alloc::dealloc(self.ptr, self.layout) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Seek, SeekFrom, Write};

    fn temp_file(len: u64) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!(
            "store-mmap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut f = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        f.set_len(len).unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        (path, f)
    }

    #[test]
    fn mapping_reads_and_writes_the_file() {
        let (path, mut f) = temp_file(8192);
        f.write_all(b"hello").unwrap();
        f.flush().unwrap();
        {
            let region = MmapRegion::map(&f, 8192).unwrap();
            // SAFETY: in-bounds of the mapping.
            let bytes = unsafe { std::slice::from_raw_parts_mut(region.as_ptr(), 8192) };
            assert_eq!(&bytes[..5], b"hello");
            bytes[0] = b'H';
            bytes[4096] = 0xAB;
            region.msync(0, 8192).unwrap();
        }
        let mut back = vec![0u8; 8192];
        f.seek(SeekFrom::Start(0)).unwrap();
        f.read_exact(&mut back).unwrap();
        assert_eq!(&back[..5], b"Hello");
        assert_eq!(back[4096], 0xAB);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn page_size_is_a_power_of_two() {
        let p = page_size();
        assert!(p.is_power_of_two() && p >= 4096);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn msync_rejects_out_of_bounds_ranges() {
        let (path, f) = temp_file(4096);
        let region = MmapRegion::map(&f, 4096).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            region.msync(4000, 200).unwrap()
        }));
        std::fs::remove_file(path).unwrap();
        std::panic::resume_unwind(result.unwrap_err());
    }
}
