//! A minimal shared file mapping.
//!
//! The offline build has no `libc` crate, so on Unix the handful of calls a
//! pool file needs (`mmap`, `munmap`, `msync`, `getpagesize`) are declared
//! directly against the C library that `std` already links. On other
//! platforms a heap buffer stands in: the file is read at map time and
//! written back on [`MmapRegion::msync`]/drop — the API works everywhere,
//! but only the Unix mapping gives kill-`SIGKILL` durability (stores land in
//! the OS page cache the moment they retire, so they survive the process).

use std::fs::File;
use std::io;

/// A writable shared mapping of the leading `len` bytes of a file.
pub struct MmapRegion {
    ptr: *mut u8,
    len: usize,
    #[cfg(not(unix))]
    file: File,
    #[cfg(not(unix))]
    layout: std::alloc::Layout,
}

// SAFETY: the region is only accessed through atomics (or during
// single-threaded setup) by its users; the raw pointer itself is safe to
// move between threads.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const MAP_SHARED: i32 = 1;
    pub const MS_SYNC: i32 = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn msync(addr: *mut c_void, len: usize, flags: i32) -> i32;
        pub fn getpagesize() -> i32;
    }
}

/// The system page size (granularity of [`MmapRegion::msync`] rounding).
pub fn page_size() -> usize {
    #[cfg(unix)]
    // SAFETY: getpagesize has no preconditions.
    unsafe {
        sys::getpagesize() as usize
    }
    #[cfg(not(unix))]
    4096
}

impl MmapRegion {
    /// Maps the leading `len` bytes of `file`, shared and read-write. The
    /// file must already be at least `len` bytes long.
    pub fn map(file: &File, len: usize) -> io::Result<MmapRegion> {
        assert!(len > 0, "cannot map an empty region");
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: fd is a valid open file descriptor; len > 0; a shared
            // file mapping has no other preconditions. The kernel validates
            // the rest and reports failure as MAP_FAILED.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ | sys::PROT_WRITE,
                    sys::MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(MmapRegion {
                ptr: ptr as *mut u8,
                len,
            })
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let layout = std::alloc::Layout::from_size_align(len, 4096)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            // SAFETY: layout has non-zero size.
            let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
            if ptr.is_null() {
                return Err(io::Error::new(io::ErrorKind::OutOfMemory, "alloc failed"));
            }
            let mut f = file.try_clone()?;
            f.seek(SeekFrom::Start(0))?;
            // SAFETY: ptr is valid for len bytes, exclusively owned here.
            let buf = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
            f.read_exact(buf)?;
            Ok(MmapRegion {
                ptr,
                len,
                file: f,
                layout,
            })
        }
    }

    /// Base pointer of the mapping.
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the mapping is empty (never: `map` rejects len 0).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Synchronously writes the pages overlapping `[offset, offset + len)`
    /// back to the file (`msync(MS_SYNC)`); the range is rounded out to page
    /// boundaries.
    pub fn msync(&self, offset: usize, len: usize) -> io::Result<()> {
        if len == 0 {
            return Ok(());
        }
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "msync range out of bounds"
        );
        #[cfg(unix)]
        {
            let page = page_size();
            let start = offset & !(page - 1);
            let end = offset + len;
            // SAFETY: [start, end) is page-rounded and inside the mapping.
            let rc = unsafe {
                sys::msync(
                    self.ptr.add(start) as *mut std::ffi::c_void,
                    end - start,
                    sys::MS_SYNC,
                )
            };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
        #[cfg(not(unix))]
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(offset as u64))?;
            // SAFETY: in-bounds read of the owned buffer.
            let buf = unsafe { std::slice::from_raw_parts(self.ptr.add(offset), len) };
            f.write_all(buf)?;
            f.flush()
        }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: ptr/len are exactly the mapping created in `map`.
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
        #[cfg(not(unix))]
        {
            let _ = self.msync(0, self.len);
            // SAFETY: allocated with exactly this layout in `map`.
            unsafe { std::alloc::dealloc(self.ptr, self.layout) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Seek, SeekFrom, Write};

    fn temp_file(len: u64) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!(
            "store-mmap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut f = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        f.set_len(len).unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        (path, f)
    }

    #[test]
    fn mapping_reads_and_writes_the_file() {
        let (path, mut f) = temp_file(8192);
        f.write_all(b"hello").unwrap();
        f.flush().unwrap();
        {
            let region = MmapRegion::map(&f, 8192).unwrap();
            // SAFETY: in-bounds of the mapping.
            let bytes = unsafe { std::slice::from_raw_parts_mut(region.as_ptr(), 8192) };
            assert_eq!(&bytes[..5], b"hello");
            bytes[0] = b'H';
            bytes[4096] = 0xAB;
            region.msync(0, 8192).unwrap();
        }
        let mut back = vec![0u8; 8192];
        f.seek(SeekFrom::Start(0)).unwrap();
        f.read_exact(&mut back).unwrap();
        assert_eq!(&back[..5], b"Hello");
        assert_eq!(back[4096], 0xAB);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn page_size_is_a_power_of_two() {
        let p = page_size();
        assert!(p.is_power_of_two() && p >= 4096);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn msync_rejects_out_of_bounds_ranges() {
        let (path, f) = temp_file(4096);
        let region = MmapRegion::map(&f, 4096).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            region.msync(4000, 200).unwrap()
        }));
        std::fs::remove_file(path).unwrap();
        std::panic::resume_unwind(result.unwrap_err());
    }
}
