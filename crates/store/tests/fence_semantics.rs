//! Power-fail fence semantics: the group-commit path must sync exactly
//! what the per-thread path would.
//!
//! The contract under test ("synced-page oracle"):
//!
//! 1. **Per fence**: when `sfence(tid)` returns, every page that `tid`
//!    flushed since its previous fence has been `msync`ed. (Group commit
//!    may sync *more* — other producers' pages riding the same batch —
//!    never less.)
//! 2. **In total**: a per-thread pool and a group-commit pool driven
//!    through the same flush/fence interleaving end up having synced
//!    exactly the same set of file pages — batching changes *when* pages
//!    reach the disk, not *which* pages do.
//!
//! Observed via the `DQ_TRACK_MSYNC` test-support tracker
//! ([`FilePool::synced_pages`]), which records the file page numbers of
//! every `msync` range the pool issues. The sets are read **before** the
//! pools close (a clean close syncs everything).

use pmem::PoolBackend;
use proptest::prelude::*;
use std::collections::BTreeSet;
use store::mmap::page_size;
use store::{FileConfig, FilePool, SyncPolicy, HEADER_LEN};

/// Distinct data pages the interleavings touch.
const PAGES: usize = 16;
/// Logical producers (tids) an interleaving is spread over.
const TIDS: usize = 3;
/// Op encoding: `0..PAGES` = flush that data page, `PAGES` = fence.
const FENCE_OP: usize = PAGES;

fn temp_pool(tag: &str, group_commit: Option<u64>) -> (std::path::PathBuf, FilePool) {
    // Read at pool construction; safe API on edition 2021.
    std::env::set_var("DQ_TRACK_MSYNC", "1");
    let path = std::env::temp_dir().join(format!(
        "store-fence-sem-{tag}-{}-{:?}.pool",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    let pool = FilePool::create(
        &path,
        FileConfig::with_size((PAGES + 2) * page_size())
            .with_sync(SyncPolicy::PowerFail)
            .with_group_commit(group_commit),
    )
    .expect("create fence-semantics pool");
    (path, pool)
}

/// File page number data page `idx` lands on (the header occupies the
/// pages below `HEADER_LEN`).
fn file_page(idx: usize) -> usize {
    (HEADER_LEN + idx * page_size()) / page_size()
}

/// Drives one pool through the interleaving on a single OS thread (the
/// per-tid dirty-page slots allow one driver to own several tids), and
/// checks contract (1) at every fence. Returns the pool's final synced
/// set and the model's expected set.
fn drive(
    pool: &FilePool,
    ops: &[(usize, usize)],
) -> Result<(BTreeSet<usize>, BTreeSet<usize>), TestCaseError> {
    let mut pending: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); TIDS];
    // Pool creation itself syncs the header page.
    let mut expected: BTreeSet<usize> = [0].into();
    for &(tid, op) in ops {
        if op == FENCE_OP {
            expected.extend(std::mem::take(&mut pending[tid]));
            pool.sfence(tid);
            let synced: BTreeSet<usize> = pool.synced_pages().into_iter().collect();
            prop_assert!(
                expected.is_subset(&synced),
                "fence returned with unsynced pages: expected {:?} within {:?}",
                expected,
                synced
            );
        } else {
            let off = (op * page_size()) as u32;
            pool.store_u64(off, (tid * PAGES + op) as u64);
            pool.flush(tid, off);
            pending[tid].insert(file_page(op));
        }
    }
    // Close out every tid so both pools finish with no dirty residue.
    for (tid, dirty) in pending.iter_mut().enumerate() {
        expected.extend(std::mem::take(dirty));
        pool.sfence(tid);
    }
    let synced: BTreeSet<usize> = pool.synced_pages().into_iter().collect();
    Ok((synced, expected))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contracts (1) and (2) over arbitrary flush/fence interleavings:
    /// the group-commit pool (zero window, so batches form only from
    /// genuinely concurrent fences — here, none) and the per-thread pool
    /// must sync identical page sets, and both must match the model.
    #[test]
    fn group_commit_syncs_exactly_the_per_thread_pages(
        ops in proptest::collection::vec((0usize..TIDS, 0usize..FENCE_OP + 1), 1..80),
    ) {
        let (path_a, per_thread) = temp_pool("per-thread", None);
        let (path_b, grouped) = temp_pool("grouped", Some(0));
        let (synced_a, expected_a) = drive(&per_thread, &ops)?;
        let (synced_b, expected_b) = drive(&grouped, &ops)?;
        prop_assert_eq!(&expected_a, &expected_b);
        prop_assert_eq!(
            &synced_a,
            &expected_a,
            "per-thread pool synced a different page set than the model"
        );
        prop_assert_eq!(
            &synced_b,
            &expected_b,
            "group-commit pool synced a different page set than the model"
        );
        drop(per_thread);
        drop(grouped);
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }
}

/// Contract (1) under real concurrency: producers with private pages
/// fence through a windowed group-commit pool from separate OS threads;
/// every page a returned fence covered must be in the synced set, and no
/// page outside the flushed universe may appear.
#[test]
fn concurrent_group_commit_fences_only_sync_flushed_pages() {
    let (path, pool) = temp_pool("concurrent", Some(50_000));
    let producers = 4usize;
    let per = PAGES / producers;
    std::thread::scope(|scope| {
        for tid in 0..producers {
            let pool = &pool;
            scope.spawn(move || {
                for round in 0..20u64 {
                    for k in 0..per {
                        let idx = tid * per + k;
                        let off = (idx * page_size()) as u32;
                        pool.store_u64(off, round);
                        pool.flush(tid, off);
                    }
                    pool.sfence(tid);
                    let synced: BTreeSet<usize> = pool.synced_pages().into_iter().collect();
                    for k in 0..per {
                        assert!(
                            synced.contains(&file_page(tid * per + k)),
                            "tid {tid}'s fence returned before its pages synced"
                        );
                    }
                }
            });
        }
    });
    let synced: BTreeSet<usize> = pool.synced_pages().into_iter().collect();
    let universe: BTreeSet<usize> = [0].into_iter().chain((0..PAGES).map(file_page)).collect();
    assert_eq!(
        synced, universe,
        "group commit synced pages nobody flushed (or missed flushed ones)"
    );
    drop(pool);
    let _ = std::fs::remove_file(&path);
}
