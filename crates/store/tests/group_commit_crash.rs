//! Deterministic crash inside a coalesced commit: a child process dies at
//! the group-commit layer's env-gated abort point
//! (`DQ_FENCE_ABORT_BEFORE_WAKE`) — after the leader `msync`ed a batch
//! that coalesced ≥ 2 fences, but *before* it bumped the commit sequence
//! and woke the followers. The worst spot for the protocol:
//!
//! * every value a producer acked rode a fully committed batch, so the
//!   survivor must read back each producer's cell at **or past** its last
//!   acked sequence;
//! * the followers parked in the dying batch never returned from
//!   `sfence`, so nothing past the abort was ever acked.
//!
//! Producers ack each sequence to a per-tid log *after* its fence
//! returns, exactly like the SIGKILL suites.

use durable_queues::testkit::subprocess::{read_acks, scratch_dir, AckLog, ChildProc};
use std::path::Path;
use store::{FileConfig, FilePool, SyncPolicy};

const ENV_DIR: &str = "STORE_GC_ABORT_CHILD_DIR";
const ABORT_VAR: &str = "DQ_FENCE_ABORT_BEFORE_WAKE";
const PRODUCERS: usize = 4;

// ---------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------

/// Hidden child entry point (no-op unless the parent set the env gate).
#[test]
fn gc_abort_child_entry() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    run_child(Path::new(&dir));
}

fn run_child(dir: &Path) {
    // A wide batch window so the four producers' fences reliably land in
    // one batch; the abort point (read at pool construction, set by the
    // parent) fires on the first batch that coalesced ≥ 2 of them.
    let pool = FilePool::create(
        dir.join("pool.dq"),
        FileConfig::with_size(4 << 20)
            .with_sync(SyncPolicy::PowerFail)
            .with_group_commit(Some(1_000_000)),
    )
    .expect("child: create pool")
    .into_pool();
    let region = pool.alloc_raw(PRODUCERS as u32 * 64, 64);
    pool.set_root_u64(0, region as u64);
    std::thread::scope(|scope| {
        for tid in 0..PRODUCERS {
            let pool = &pool;
            let mut log = AckLog::create(dir.join(format!("ack-{tid}.log")));
            scope.spawn(move || {
                let cell = region + tid as u32 * 64;
                // Far more than the abort lets us finish; a clean exit here
                // fails the parent's run_to_abort.
                for seq in 1..=1_000_000u64 {
                    pool.store_u64(cell, seq);
                    pool.flush(tid, cell);
                    pool.sfence(tid);
                    log.record("E", seq);
                }
            });
        }
    });
}

// ---------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------

#[test]
fn abort_between_batched_msync_and_wakeup_loses_no_acked_value() {
    let dir = scratch_dir("store-gc-abort");
    // Arm the abort at the 25th coalesced batch, not the first, so real
    // acked traffic precedes the crash and the cell assertions below have
    // teeth.
    let status = ChildProc::new("gc_abort_child_entry")
        .env(ENV_DIR, &dir)
        .env(ABORT_VAR, "25")
        .run_to_abort();
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        assert_eq!(
            status.signal(),
            Some(libc_sigabrt()),
            "child must die at the abort point, not elsewhere: {status}"
        );
    }
    #[cfg(not(unix))]
    let _ = status;

    let pool = FilePool::open(dir.join("pool.dq")).expect("reopen pool file");
    assert!(
        !pool.was_clean(),
        "an aborted process leaves the pool dirty"
    );
    let pool = pool.into_pool();
    let region = pool.root_u64(0) as u32;
    assert_ne!(region, 0, "child died before publishing its region root");
    let mut acked_total = 0usize;
    for tid in 0..PRODUCERS {
        let acks = read_acks(&dir.join(format!("ack-{tid}.log")), "E");
        acked_total += acks.len();
        // Acks are strictly sequential per producer; the cell must be at
        // or past the last fence the producer saw complete (later,
        // unacked stores may share the page).
        if let Some(&last) = acks.last() {
            let cell = pool.load_u64(region + tid as u32 * 64);
            assert!(
                cell >= last,
                "producer {tid} acked seq {last} but the pool reads {cell}"
            );
        }
    }
    assert!(
        acked_total > 0,
        "no fence ever acked before the abort — the round proved nothing"
    );
    eprintln!("[gc-abort] {acked_total} acked fences across {PRODUCERS} producers");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[cfg(unix)]
fn libc_sigabrt() -> i32 {
    6
}
