//! Crash-safe elastic growth, end to end: a child process drives an
//! enqueue-only workload on a **deliberately tiny** pool whose growth step
//! forces repeated `ftruncate` + remap + header-commit cycles, and the
//! parent crashes it at three different points:
//!
//! * a real `SIGKILL` mid-growth-traffic (nondeterministic landing point),
//! * a deterministic abort **after the `ftruncate`, before the commit
//!   record** (`DQ_GROW_ABORT_AFTER_TRUNCATE`) — the reopened pool must
//!   come back at the *old* size, with the over-long file tolerated,
//! * a deterministic abort **after the commit record, before the home-field
//!   rewrite** (`DQ_GROW_ABORT_AFTER_COMMIT`) — the reopened pool must roll
//!   the journal forward and come back at the *new* size.
//!
//! In every case the recovered queue must hold every confirmed enqueue
//! exactly once, in FIFO order, with at most one unconfirmed in-flight
//! extra — and the pool must keep growing after recovery.

use durable_queues::testkit::subprocess::{
    kill_and_reap, read_unique_acks, scratch_dir, wait_until, AckLog, ChildProc,
};
use durable_queues::{
    DurableMsQueue, DurableQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue,
};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use store::{FileConfig, FilePool, SyncPolicy, HEADER_LEN};

const ENV_DIR: &str = "STORE_GROW_CHILD_DIR";
const ENV_ALGO: &str = "STORE_GROW_CHILD_ALGO";

/// Small enough that the queue outgrows it within a few thousand enqueues.
const BASE_BYTES: usize = 256 << 10;
const GROW_STEP: usize = 256 << 10;

fn queue_config() -> QueueConfig {
    QueueConfig {
        max_threads: 4,
        area_size: 64 << 10,
    }
}

// ---------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------

/// Hidden child entry point: runs only when the parent re-executes this test
/// binary with the env vars set; a no-op test otherwise.
#[test]
fn grow_child_entry() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let algo = std::env::var(ENV_ALGO).unwrap_or_else(|_| "opt_unlinked".into());
    let pool = FilePool::create(
        Path::new(&dir).join("pool.dq"),
        FileConfig::with_size(BASE_BYTES).with_growth(GROW_STEP),
    )
    .expect("child: create pool")
    .into_pool();
    match algo.as_str() {
        "durable_msq" => drive_enqueues(DurableMsQueue::create(pool, queue_config()), &dir),
        "opt_unlinked" => drive_enqueues(OptUnlinkedQueue::create(pool, queue_config()), &dir),
        other => panic!("child: unknown algorithm {other}"),
    }
}

/// A single enqueuer acknowledging every completed enqueue with one write
/// syscall, so the parent knows exactly which operations were confirmed.
/// Runs until the pool's growth protocol aborts it (abort rounds) or the
/// parent kills it (SIGKILL round); enqueue-only traffic keeps allocation
/// pressure constant, so growths keep coming.
fn drive_enqueues<Q: DurableQueue>(queue: Q, dir: impl AsRef<Path>) {
    let mut enq_log = AckLog::create(dir.as_ref().join("enq.log"));
    for seq in 1..=u64::MAX {
        queue.enqueue(0, seq);
        enq_log.record("E", seq);
    }
}

// ---------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------

/// Child builder; `abort_env` is one of the file pool's deterministic grow
/// crash points (or `None` for a parent-timed SIGKILL).
fn grow_child(dir: &Path, algo: &str, abort_env: Option<&str>) -> ChildProc {
    ChildProc::new("grow_child_entry")
        .env(ENV_DIR, dir)
        .env(ENV_ALGO, algo)
        .abort_at(abort_env)
}

/// Reopens the pool (rolling any pending grow commit forward), recovers the
/// queue, and validates the linearizable suffix for the enqueue-only child:
/// every confirmed enqueue recovered exactly once, FIFO order, at most one
/// unconfirmed in-flight extra. Returns the recovered pool's growth epoch
/// after proving the pool **keeps growing** post-recovery.
fn recover_and_validate<Q: RecoverableQueue>(dir: &Path, expect_epoch: Option<u32>) -> u32 {
    let pool = FilePool::open_with_growth(dir.join("pool.dq"), SyncPolicy::default(), GROW_STEP)
        .expect("reopen pool file");
    assert!(
        !pool.was_clean(),
        "a killed child must leave the pool dirty"
    );
    let epoch = pool.growth_epoch();
    if let Some(expected) = expect_epoch {
        assert_eq!(epoch, expected, "recovered growth epoch");
    }
    let pool = pool.into_pool();
    assert_eq!(pool.growth_epoch(), epoch);
    let queue = Q::recover(Arc::clone(&pool), queue_config());

    let acked: BTreeSet<u64> = read_unique_acks(&dir.join("enq.log"), "E");
    let drained: Vec<u64> = std::iter::from_fn(|| queue.dequeue(0)).collect();
    for pair in drained.windows(2) {
        assert!(
            pair[0] < pair[1],
            "FIFO violated across the restart: {} before {}",
            pair[0],
            pair[1]
        );
    }
    let r_set: BTreeSet<u64> = drained.iter().copied().collect();
    assert_eq!(r_set.len(), drained.len(), "duplicated item in the residue");
    let missing: Vec<u64> = acked
        .iter()
        .filter(|v| !r_set.contains(v))
        .copied()
        .collect();
    assert!(
        missing.is_empty(),
        "{} confirmed enqueues lost (growth must never lose an allocation): {:?}",
        missing.len(),
        &missing[..missing.len().min(10)]
    );
    let extras = r_set.difference(&acked).count();
    assert!(
        extras <= 1,
        "{extras} unconfirmed in-flight extras recovered"
    );
    assert!(
        acked.len() >= 500,
        "the kill landed before meaningful traffic ({} acks)",
        acked.len()
    );

    // The recovered pool is still elastic: keep enqueueing until it grows
    // past the inherited epoch.
    let mut enqueued = 0u64;
    while pool.growth_epoch() == epoch {
        // Distinct from the child's sequence space, so a bug that resurrects
        // child items would still be caught by the dedup check above.
        queue.enqueue(0, u64::MAX - enqueued);
        enqueued += 1;
        assert!(
            enqueued < 500_000,
            "pool refused to grow again after recovery"
        );
    }
    assert_eq!(pool.growth_epoch(), epoch + 1);
    epoch
}

/// SIGKILL lands at a parent-chosen (nondeterministic) point once the file
/// has been extended at least twice.
fn sigkill_round<Q: RecoverableQueue>(algo: &str) {
    let dir = scratch_dir(&format!("store-grow-kill-{algo}"));
    let mut child = grow_child(&dir, algo, None).spawn();
    let pool_path = dir.join("pool.dq");
    wait_until(&mut child, Duration::from_secs(120), "two growths", || {
        std::fs::metadata(&pool_path).map(|m| m.len()).unwrap_or(0)
            >= (HEADER_LEN + BASE_BYTES + 2 * GROW_STEP) as u64
    });
    kill_and_reap(&mut child);

    // At least one growth must have committed (the file was extended twice;
    // only the in-flight one may be uncommitted).
    let epoch = recover_and_validate::<Q>(&dir, None);
    assert!(
        epoch >= 1,
        "committed growth epoch after two truncates: {epoch}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic crash at one of the grow protocol's env-gated points; the
/// child aborts itself, the parent just reaps it.
fn abort_round(abort_env: &str, expect_epoch: u32) {
    let dir = scratch_dir(&format!("store-grow-abort-{expect_epoch}"));
    grow_child(&dir, "opt_unlinked", Some(abort_env)).run_to_abort();

    let geo = FilePool::read_geometry(dir.join("pool.dq")).unwrap();
    assert_eq!(geo.growth_epoch, expect_epoch, "epoch visible before open");
    let file_len = std::fs::metadata(dir.join("pool.dq")).unwrap().len();
    assert!(
        file_len >= (HEADER_LEN + BASE_BYTES + GROW_STEP) as u64,
        "the ftruncate ran before the crash point"
    );
    if expect_epoch == 0 {
        assert_eq!(
            geo.pool_size, geo.base_size,
            "uncommitted growth recovers to the old size"
        );
    } else {
        assert!(
            geo.pool_size >= geo.base_size + GROW_STEP,
            "committed growth recovers to the new size"
        );
    }
    recover_and_validate::<OptUnlinkedQueue>(&dir, Some(expect_epoch));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_msq_grows_across_a_sigkill() {
    sigkill_round::<DurableMsQueue>("durable_msq");
}

#[test]
fn opt_unlinked_grows_across_a_sigkill() {
    sigkill_round::<OptUnlinkedQueue>("opt_unlinked");
}

#[test]
fn crash_after_ftruncate_recovers_to_the_old_size() {
    abort_round("DQ_GROW_ABORT_AFTER_TRUNCATE", 0);
}

#[test]
fn crash_after_commit_record_rolls_the_growth_forward() {
    abort_round("DQ_GROW_ABORT_AFTER_COMMIT", 1);
}
