//! Real process-restart recovery: a child process drives traffic on a
//! file-backed pool, the parent SIGKILLs it mid-traffic, reopens the pool
//! file in *this* process and checks a linearizable suffix — every
//! confirmed enqueue survives exactly once, no confirmed dequeue is
//! resurrected, and FIFO order holds.
//!
//! Protocol: the child appends `E <seq>` / `D <val>` acknowledgment lines to
//! plain log files *after* the corresponding queue operation returns. An
//! append that reached the kernel survives the kill just like the pool's
//! page-cache writes do, so the parent knows exactly which operations were
//! confirmed:
//!
//! * confirmed enqueues (`E` lines) must be recovered or confirmedly
//!   dequeued — except at most one in-flight dequeue per dequeuer thread
//!   whose ack was lost to the kill,
//! * confirmed dequeues (`D` lines) must NOT be recovered again,
//! * unconfirmed enqueues (at most one per enqueuer thread) may appear, but
//!   at most once,
//! * the drained remainder must be in FIFO (strictly increasing) order.

use durable_queues::testkit::subprocess::{
    kill_and_reap, read_acks, scratch_dir, wait_for_lines, AckLog, ChildProc,
};
use durable_queues::{
    DurableMsQueue, DurableQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue,
};
use std::collections::BTreeSet;
use std::path::Path;
use std::process::Child;
use std::sync::Arc;
use std::time::Duration;
use store::{FileConfig, FilePool, SyncPolicy};

const ENV_DIR: &str = "STORE_CRASH_CHILD_DIR";
const ENV_ALGO: &str = "STORE_CRASH_CHILD_ALGO";
/// When set, the child runs the pool under `SyncPolicy::PowerFail` with
/// group commit at this batch window (nanoseconds).
const ENV_GC: &str = "STORE_CRASH_CHILD_GC";

fn queue_config() -> QueueConfig {
    QueueConfig {
        max_threads: 8,
        area_size: 1 << 20,
    }
}

// ---------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------

/// Hidden child entry point: runs only when the parent re-executes this test
/// binary with the env vars set; a no-op test otherwise.
#[test]
fn crash_child_entry() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let algo = std::env::var(ENV_ALGO).unwrap_or_else(|_| "durable_msq".into());
    run_child(Path::new(&dir), &algo);
}

fn run_child(dir: &Path, algo: &str) {
    let mut config = FileConfig::with_size(256 << 20);
    if let Ok(window) = std::env::var(ENV_GC) {
        config = config
            .with_sync(SyncPolicy::PowerFail)
            .with_group_commit(Some(window.parse().expect("bad GC window")));
    }
    let pool = FilePool::create(dir.join("pool.dq"), config)
        .expect("child: create pool")
        .into_pool();
    match algo {
        "durable_msq" => drive_traffic(DurableMsQueue::create(pool, queue_config()), dir),
        "opt_unlinked" => drive_traffic(OptUnlinkedQueue::create(pool, queue_config()), dir),
        other => panic!("child: unknown algorithm {other}"),
    }
}

/// One enqueuer (tid 0) and one dequeuer (tid 1), each acknowledging every
/// completed operation with a log line before issuing the next.
fn drive_traffic<Q: DurableQueue>(queue: Q, dir: &Path) {
    let mut enq_log = AckLog::create(dir.join("enq.log"));
    let mut deq_log = AckLog::create(dir.join("deq.log"));
    std::thread::scope(|scope| {
        let q = &queue;
        scope.spawn(move || {
            // Far more than the parent lets us finish before the kill. Each
            // ack is one write syscall, so the kill can tear at most the
            // final line.
            for seq in 1..=2_000_000u64 {
                q.enqueue(0, seq);
                enq_log.record("E", seq);
            }
        });
        scope.spawn(move || loop {
            if let Some(v) = q.dequeue(1) {
                deq_log.record("D", v);
            }
        });
    });
}

// ---------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------

fn spawn_child(dir: &Path, algo: &str, group_commit: Option<u64>) -> Child {
    let mut child = ChildProc::new("crash_child_entry");
    child = child.env(ENV_DIR, dir).env(ENV_ALGO, algo);
    if let Some(window_ns) = group_commit {
        child = child.env(ENV_GC, window_ns.to_string());
    }
    child.spawn()
}

struct SuffixCheck {
    confirmed_enqueues: usize,
    confirmed_dequeues: usize,
    recovered: usize,
}

/// Drains `queue` and checks the linearizable-suffix conditions against the
/// child's ack logs. `enqueuers`/`dequeuers` bound the per-thread in-flight
/// windows.
fn check_linearizable_suffix(
    queue: &dyn DurableQueue,
    dir: &Path,
    enqueuers: usize,
    dequeuers: usize,
    require_fifo: bool,
) -> SuffixCheck {
    let acked_e: Vec<u64> = read_acks(&dir.join("enq.log"), "E");
    let acked_d: Vec<u64> = read_acks(&dir.join("deq.log"), "D");
    let drained: Vec<u64> = std::iter::from_fn(|| queue.dequeue(0)).collect();

    // No value may come out twice — neither within the drain nor across the
    // confirmed dequeues.
    let mut seen = BTreeSet::new();
    for &v in acked_d.iter().chain(&drained) {
        assert!(seen.insert(v), "item {v} dequeued twice (duplication)");
    }

    let e_set: BTreeSet<u64> = acked_e.iter().copied().collect();
    assert_eq!(e_set.len(), acked_e.len(), "enqueue acks must be unique");
    let d_set: BTreeSet<u64> = acked_d.iter().copied().collect();
    let r_set: BTreeSet<u64> = drained.iter().copied().collect();

    // Confirmed enqueues survive: everything acked, not confirmedly
    // dequeued, and not recovered can only be an in-flight dequeue whose ack
    // was killed — at most one per dequeuer thread.
    let missing: Vec<u64> = e_set
        .iter()
        .filter(|v| !d_set.contains(v) && !r_set.contains(v))
        .copied()
        .collect();
    assert!(
        missing.len() <= dequeuers,
        "{} confirmed items lost (> {} in-flight dequeues): {:?}",
        missing.len(),
        dequeuers,
        &missing[..missing.len().min(10)]
    );

    // Unconfirmed enqueues (ack lost to the kill): at most one per enqueuer.
    let extras: Vec<u64> = r_set.difference(&e_set).copied().collect();
    assert!(
        extras.len() <= enqueuers,
        "{} recovered items were never confirmed enqueued (> {} in-flight enqueues): {:?}",
        extras.len(),
        enqueuers,
        &extras[..extras.len().min(10)]
    );

    // Confirmed dequeues stay dequeued.
    let resurrected: Vec<u64> = r_set.intersection(&d_set).copied().collect();
    assert!(
        resurrected.is_empty(),
        "confirmed dequeues resurrected: {resurrected:?}"
    );

    if require_fifo {
        for pair in drained.windows(2) {
            assert!(
                pair[0] < pair[1],
                "FIFO violated across restart: {} before {}",
                pair[0],
                pair[1]
            );
        }
    }

    SuffixCheck {
        confirmed_enqueues: acked_e.len(),
        confirmed_dequeues: acked_d.len(),
        recovered: drained.len(),
    }
}

fn crash_round<Q: RecoverableQueue>(algo: &str) {
    crash_round_with::<Q>(algo, None)
}

fn crash_round_with<Q: RecoverableQueue>(algo: &str, group_commit: Option<u64>) {
    let tag = if group_commit.is_some() { "-gc" } else { "" };
    let dir = scratch_dir(&format!("store-crash-{algo}{tag}"));

    let mut child = spawn_child(&dir, algo, group_commit);
    wait_for_lines(
        &mut child,
        &dir.join("enq.log"),
        500,
        Duration::from_secs(60),
    );
    kill_and_reap(&mut child);

    let pool = FilePool::open(dir.join("pool.dq")).expect("reopen pool file");
    assert!(
        !pool.was_clean(),
        "a SIGKILLed process must leave the pool dirty"
    );
    let queue = Q::recover(pool.into_pool(), queue_config());
    let check = check_linearizable_suffix(&queue, &dir, 1, 1, true);
    eprintln!(
        "[{algo}] confirmed enqueues {}, confirmed dequeues {}, recovered {}",
        check.confirmed_enqueues, check.confirmed_dequeues, check.recovered
    );
    assert!(
        check.confirmed_enqueues >= 500,
        "kill landed before real traffic"
    );
    assert!(
        check.recovered + check.confirmed_dequeues + 1 >= check.confirmed_enqueues,
        "recovered {} + dequeued {} cannot cover {} confirmed enqueues",
        check.recovered,
        check.confirmed_dequeues,
        check.confirmed_enqueues
    );

    // The recovered queue is a working queue: post-restart traffic flows.
    queue.enqueue(0, u64::MAX);
    assert_eq!(queue.dequeue(0), Some(u64::MAX));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_durable_msq_recovers_without_loss_or_duplication() {
    crash_round::<DurableMsQueue>("durable_msq");
}

#[test]
fn killed_opt_unlinked_recovers_without_loss_or_duplication() {
    crash_round::<OptUnlinkedQueue>("opt_unlinked");
}

/// The same SIGKILL matrix with the child's pool running power-fail sync
/// behind the group-commit layer: batching fences across the enqueuer and
/// dequeuer must not weaken the linearizable-suffix contract. Zero window
/// (batches form only from genuinely concurrent fences) keeps traffic fast.
#[test]
fn killed_group_commit_durable_msq_recovers_without_loss_or_duplication() {
    crash_round_with::<DurableMsQueue>("durable_msq", Some(0));
}

/// As above with a real batch window, so most fences ride a leader's
/// coalesced msync rather than their own.
#[test]
fn killed_group_commit_opt_unlinked_recovers_without_loss_or_duplication() {
    crash_round_with::<OptUnlinkedQueue>("opt_unlinked", Some(100_000));
}

/// The non-crash baseline of the same protocol: a child that is allowed to
/// finish cleanly must leave a pool whose recovered content is *exactly*
/// enqueued-minus-dequeued with no windows.
#[test]
fn clean_restart_recovers_exact_content() {
    let dir = std::env::temp_dir().join(format!("store-clean-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    {
        let pool = FilePool::create(dir.join("pool.dq"), FileConfig::with_size(32 << 20))
            .unwrap()
            .into_pool();
        let queue = DurableMsQueue::create(Arc::clone(&pool), queue_config());
        for i in 1..=5_000u64 {
            queue.enqueue(0, i);
        }
        for _ in 0..1_234 {
            queue.dequeue(0).unwrap();
        }
    }

    let pool = FilePool::open(dir.join("pool.dq")).unwrap();
    assert!(pool.was_clean());
    let queue = DurableMsQueue::recover(pool.into_pool(), queue_config());
    let drained: Vec<u64> = std::iter::from_fn(|| queue.dequeue(0)).collect();
    assert_eq!(drained, (1_235..=5_000).collect::<Vec<_>>());

    std::fs::remove_dir_all(&dir).unwrap();
}
