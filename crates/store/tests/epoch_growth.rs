//! The lock-free mapping fast path under concurrent growth.
//!
//! `store::FilePool` publishes its mapping through an epoch/hazard scheme:
//! readers pin the current mapping generation in a per-thread slot, growth
//! publishes a new generation (`mremap`) and retires the old one, and a
//! retired mapping is unmapped only once no slot references it. These tests
//! attack the three claims that scheme makes:
//!
//! * **readers race growth safely** — threads hammer loads/stores/flushes
//!   (and raw `MapRef` reads) while allocation pressure forces growth after
//!   growth; no torn value, no lost store, no out-of-thin-air read,
//! * **a `MapRef` outlives the mapping it pinned** — a view taken before a
//!   growth still reads correct data afterwards, because retirement waits
//!   for it, while growth itself never waits for pinned readers,
//! * **retirement never delays the commit point** — a child process pins
//!   readers *forever* and then grows; killed at the commit record, the
//!   reopened pool still rolls the growth forward: the journal was durable
//!   before retirement was even attempted.

use pmem::PoolBackend;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use store::{FileConfig, FilePool, SyncPolicy};

const ENV_DIR: &str = "STORE_EPOCH_PIN_CHILD_DIR";

fn test_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "store-epoch-{tag}-{}-{:?}.pool",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Readers (pool ops and raw `MapRef` reads) race repeated growths. Every
/// slot's value only ever increases, so any read through a wrong, stale or
/// recycled mapping shows up as a non-monotonic or out-of-range value.
#[test]
fn readers_race_growth_without_stale_or_torn_reads() {
    let path = test_path("race");
    let pool = FilePool::create(
        &path,
        FileConfig::with_size(256 << 10).with_growth(64 << 10),
    )
    .unwrap()
    .into_pool();
    let slots: Vec<u32> = (0..4).map(|_| pool.alloc_raw(64, 64)).collect();
    const ROUNDS: u64 = 4000;
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writers: monotonically increasing values, flushed and fenced,
        // plus allocation pressure so growths keep coming.
        for (tid, &slot) in slots.iter().enumerate() {
            let (pool, stop) = (&pool, &stop);
            scope.spawn(move || {
                for i in 1..=ROUNDS {
                    pool.store_u64(slot, i);
                    pool.flush(tid, slot);
                    pool.sfence(tid);
                    if i % 100 == 0 {
                        let off = pool.alloc_raw(4096, 64);
                        pool.store_u64(off, i);
                    }
                }
                stop.store(true, Ordering::Release);
            });
        }
        // Readers: per-op pins via load_u64, plus held pins via map_ref —
        // both must only ever observe monotonically increasing values.
        for r in 0..4 {
            let (pool, stop, slots) = (&pool, &stop, &slots);
            scope.spawn(move || {
                let mut last = vec![0u64; slots.len()];
                while !stop.load(Ordering::Acquire) {
                    for (j, &slot) in slots.iter().enumerate() {
                        let v = if r % 2 == 0 {
                            pool.load_u64(slot)
                        } else {
                            let view = pool.map_ref().expect("file pool exposes its mapping");
                            assert!(view.is_pinned(), "elastic pools must pin");
                            view.atomic_u64(slot).load(Ordering::Acquire)
                        };
                        assert!(
                            v >= last[j] && v <= ROUNDS,
                            "slot {j} went backwards or out of range: {} -> {v}",
                            last[j]
                        );
                        last[j] = v;
                    }
                }
            });
        }
    });
    for &slot in &slots {
        assert_eq!(pool.load_u64(slot), ROUNDS);
    }
    assert!(
        pool.growth_epoch() >= 2,
        "the race must have grown the pool repeatedly, got epoch {}",
        pool.growth_epoch()
    );
    drop(pool);
    std::fs::remove_file(&path).unwrap();
}

/// A `MapRef` taken before a growth pins its mapping generation: the view
/// keeps its pre-growth bounds and data, growth publishes the larger
/// mapping around it without waiting, and a fresh view sees the new size.
/// Unix-only: the non-Unix heap-buffer fallback deliberately drains pinned
/// readers before swapping buffers, so a held view there blocks growth.
#[cfg(unix)]
#[test]
fn a_map_ref_held_across_growth_stays_valid_and_never_blocks_it() {
    let path = test_path("pin");
    let pool = FilePool::create(
        &path,
        FileConfig::with_size(256 << 10).with_growth(256 << 10),
    )
    .unwrap();
    let off = {
        // Reserve one word through the backend's own watermark protocol.
        let w = pool.watermark();
        pool.cas_watermark(w, w + 64).unwrap();
        w
    };
    pool.store_u64(off, 0xA11A);
    let old_len = pool.len();

    // Readers pin views and hold them across the growth; the grower must
    // not wait for them (a wait would deadlock this single test thread's
    // barrier-free structure below — growth runs on the pinning thread).
    let view = pool.map_ref();
    assert!(view.is_pinned());
    assert_eq!(view.len(), old_len);
    // Nested pool ops under the held view reuse the same hazard slot.
    assert_eq!(pool.load_u64(off), 0xA11A);

    for _ in 0..3 {
        let want = pool.len() + 1;
        assert!(pool.grow_to(want).unwrap(), "growth with a pinned reader");
    }
    assert!(pool.len() > old_len);
    assert_eq!(pool.growth_epoch(), 3);

    // The held view still reads the pre-growth generation correctly...
    assert_eq!(view.len(), old_len, "a pinned view keeps its bounds");
    assert_eq!(view.atomic_u64(off).load(Ordering::Acquire), 0xA11A);
    // ...and stays coherent with writes made through the grown pool (both
    // generations map the same file pages).
    pool.store_u64(off, 0xB22B);
    assert_eq!(view.atomic_u64(off).load(Ordering::Acquire), 0xB22B);
    drop(view);

    let fresh = pool.map_ref();
    assert_eq!(fresh.len(), pool.len(), "a fresh view sees the grown size");
    assert_eq!(fresh.atomic_u64(off).load(Ordering::Acquire), 0xB22B);
    drop(fresh);

    drop(pool);
    std::fs::remove_file(&path).unwrap();
}

/// Pool ops issued under a held `MapRef` whose generation predates a
/// growth must not trust the stale view's bounds: an offset allocated
/// after the growth re-resolves the current generation (release-mode
/// checked) instead of dereferencing past the pinned mapping — the
/// nested-pin path would otherwise read/write unmapped memory whenever
/// growth had moved the base.
#[cfg(unix)]
#[test]
fn pool_ops_past_a_pinned_views_bounds_resolve_the_current_generation() {
    let path = test_path("stale-bounds");
    let pool = FilePool::create(
        &path,
        FileConfig::with_size(256 << 10).with_growth(256 << 10),
    )
    .unwrap();
    let old_len = pool.len();
    let view = pool.map_ref();
    assert!(view.is_pinned());

    // Grow while the view pins the old generation, then touch space that
    // only exists in the new one.
    assert!(pool.grow_to(old_len + 1).unwrap());
    assert!(pool.len() > old_len);
    let off = old_len as u32; // first byte past the pinned view's bounds

    pool.store_u64(off, 7);
    assert_eq!(pool.load_u64(off), 7);
    assert_eq!(pool.cas_u64(off, 7, 8), Ok(7));
    assert_eq!(pool.fetch_add_u64(off, 2), 8);
    assert_eq!(pool.swap_u64(off, 11), 10);
    pool.flush(0, off);
    pool.sfence(0);
    pool.persist_now(off);
    pool.zero_range(off, 64);
    assert_eq!(pool.load_u64(off), 0);

    // The held view keeps its pre-growth bounds throughout.
    assert_eq!(view.len(), old_len);
    drop(view);
    drop(pool);
    std::fs::remove_file(&path).unwrap();
}

/// A genuinely out-of-range offset must panic — in release builds too —
/// rather than dereference past the mapping.
#[test]
#[should_panic(expected = "out of bounds")]
fn a_genuinely_out_of_bounds_op_panics_instead_of_dereferencing() {
    let path = test_path("oob");
    let pool = FilePool::create(&path, FileConfig::with_size(256 << 10)).unwrap();
    let len = pool.len() as u32;
    let _ = std::fs::remove_file(&path);
    pool.load_u64(len); // one word past the end
}

/// `MapRef::addr` validates the whole access span, not just the first
/// byte: a multi-byte access starting near the tail is refused.
#[test]
fn map_ref_addr_validates_the_whole_access_span() {
    let path = test_path("addr-span");
    let pool = FilePool::create(&path, FileConfig::with_size(256 << 10)).unwrap();
    let view = pool.map_ref();
    let len = view.len();
    // In-bounds spans are fine, up to and including the very last byte...
    assert!(!view.addr(0, len).is_null());
    assert!(!view.addr(len as u32 - 8, 8).is_null());
    // ...but a span that merely *starts* in bounds is refused, as are
    // empty spans (no one-past-the-end pointers).
    let oob = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        view.addr(len as u32 - 4, 8)
    }));
    assert!(oob.is_err(), "a span overrunning the view must panic");
    let empty = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| view.addr(0, 0)));
    assert!(empty.is_err(), "zero-length spans must panic");
    drop(view);
    drop(pool);
    std::fs::remove_file(&path).unwrap();
}

/// A thread that leaks (`mem::forget`) a pinned view and exits hands its
/// recycled hazard slot to the next thread in a dirty state (depth > 0,
/// stale generation announced). The lease-tenure check must detect that
/// and start clean: the new tenant's ops run against the current
/// generation, and the dead view's generation becomes reclaimable.
#[cfg(unix)]
#[test]
fn a_leaked_view_from_a_dead_thread_does_not_poison_its_recycled_slot() {
    let path = test_path("leak");
    let pool = FilePool::create(
        &path,
        FileConfig::with_size(256 << 10).with_growth(256 << 10),
    )
    .unwrap();
    let old_len = pool.len();
    std::thread::scope(|scope| {
        // Dies with the pin still announced.
        scope
            .spawn(|| {
                let view = pool.map_ref();
                assert!(view.is_pinned());
                std::mem::forget(view);
            })
            .join()
            .unwrap();
        assert!(pool.grow_to(old_len + 1).unwrap());
        // A fresh thread very likely inherits the leaked slot (the free
        // list is LIFO); either way its ops must see the grown pool.
        scope
            .spawn(|| {
                let off = old_len as u32;
                pool.store_u64(off, 0xFACE);
                assert_eq!(pool.load_u64(off), 0xFACE);
                let view = pool.map_ref();
                assert_eq!(
                    view.len(),
                    pool.len(),
                    "a fresh pin must see the current generation, not the dead view's"
                );
            })
            .join()
            .unwrap();
    });
    drop(pool);
    std::fs::remove_file(&path).unwrap();
}

/// Hidden child entry point for the retirement-vs-commit round: pins
/// reader views that are never released, then grows. The parent sets
/// `DQ_GROW_ABORT_AFTER_COMMIT`, so the process dies at the journal's
/// persist — before the new mapping is published and before retirement of
/// the old one is even attempted.
#[test]
fn epoch_pin_child_entry() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let pool = Arc::new(
        FilePool::create(
            Path::new(&dir).join("pool.dq"),
            FileConfig::with_size(256 << 10).with_growth(256 << 10),
        )
        .expect("child: create pool"),
    );
    // Four reader threads pin the mapping and hold the pin forever.
    let pinned = Arc::new(Barrier::new(5));
    for _ in 0..4 {
        let (pool, pinned) = (Arc::clone(&pool), Arc::clone(&pinned));
        std::thread::spawn(move || {
            let view = pool.map_ref();
            assert!(view.is_pinned());
            pinned.wait();
            loop {
                std::thread::park(); // hold the pin until the abort
            }
        });
    }
    pinned.wait();
    // All four pins are announced. The growth must reach (and die at) its
    // commit point regardless — if retirement gated the commit, this call
    // would instead spin on the pinned slots and the parent would time out
    // waiting for the abort.
    let want = pool.len() + 1;
    let _ = pool.grow_to(want);
    unreachable!("DQ_GROW_ABORT_AFTER_COMMIT must abort inside grow_to");
}

/// The SIGKILL round: with readers pinned forever, the growth's journal
/// record still commits durably (the child dies exactly there), and a
/// reopen rolls it forward — retirement never delays the commit point.
#[test]
fn pinned_readers_never_delay_the_grow_commit_point() {
    let dir = durable_queues::testkit::subprocess::scratch_dir("store-epoch-commit");
    durable_queues::testkit::subprocess::ChildProc::new("epoch_pin_child_entry")
        .env(ENV_DIR, &dir)
        .abort_at(Some("DQ_GROW_ABORT_AFTER_COMMIT"))
        .run_to_abort();

    // The journal record was persisted with four readers pinned: the
    // commit happened, retirement did not — and recovery honours it.
    let geo = FilePool::read_geometry(dir.join("pool.dq")).unwrap();
    assert_eq!(geo.growth_epoch, 1, "commit point reached despite pins");
    assert!(
        geo.pool_size >= geo.base_size + (256 << 10),
        "journaled growth recovers to the new size"
    );
    let pool =
        FilePool::open_with_growth(dir.join("pool.dq"), SyncPolicy::default(), 256 << 10).unwrap();
    assert!(!pool.was_clean());
    assert_eq!(pool.growth_epoch(), 1);
    assert_eq!(pool.len(), geo.pool_size);
    drop(pool);
    let _ = std::fs::remove_dir_all(&dir);
}
