//! A durable queue on a real pool file: create, fill, close, reopen,
//! recover, drain — two "process lives" in one example.
//!
//! ```bash
//! cargo run --release -p store --example file_backed_queue
//! ```

use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue};
use pmem::PoolBackend;
use store::{FileConfig, FilePool};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join(format!("file_backed_queue-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("queue.pool");
    let cfg = QueueConfig::small_test();

    // ---- first life: create a pool file and leave data behind -----------
    {
        let pool = FilePool::create(&path, FileConfig::with_size(32 << 20))?;
        println!(
            "created {} ({} MiB pool, file backend)",
            path.display(),
            pool.len() >> 20,
        );
        let queue = OptUnlinkedQueue::create(pool.into_pool(), cfg);
        for i in 1..=1000u64 {
            queue.enqueue(0, i);
        }
        for _ in 0..250 {
            queue.dequeue(0);
        }
        println!("first life: enqueued 1000, dequeued 250, dropping cleanly");
    } // queue + pool dropped: header marked clean

    // ---- second life: a different "process" reopens the same file ------
    {
        let pool = FilePool::open(&path)?;
        println!(
            "reopened {} (previous shutdown clean: {})",
            path.display(),
            pool.was_clean()
        );
        let queue = OptUnlinkedQueue::recover(pool.into_pool(), cfg);
        let mut drained = 0u64;
        let mut expected = 251u64;
        while let Some(v) = queue.dequeue(0) {
            assert_eq!(v, expected, "FIFO order must survive the restart");
            expected += 1;
            drained += 1;
        }
        assert_eq!(drained, 750, "exactly the undequeued suffix survives");
        println!("second life: recovered and drained {drained} items in order — OK");
    }

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
