//! The `harness restart` verb: a real kill-`SIGKILL`-and-reopen round.
//!
//! The parent spawns a child process (this same binary, hidden
//! `restart-child` verb) that creates a **file-backed** queue — a single
//! pool file, or an N-shard directory with a shard-map manifest — and
//! drives enqueue/dequeue traffic, acknowledging every completed operation
//! with one `write(2)` line to an ack log. Once enough operations are
//! confirmed the parent SIGKILLs the child mid-traffic, reopens the pool
//! file(s) in-process via `store::FilePool` (+ the manifest for shard
//! directories), runs the algorithm's ordinary `recover()` and validates a
//! linearizable suffix:
//!
//! * every confirmed enqueue is recovered or confirmedly dequeued (up to
//!   one in-flight dequeue whose ack the kill destroyed),
//! * no confirmed dequeue is resurrected,
//! * at most one unconfirmed in-flight enqueue appears, exactly once,
//! * per-shard FIFO order holds in the residue.

use crate::algorithms::Algorithm;
use crate::with_recoverable;
use durable_queues::{DurableQueue, QueueConfig, RecoverableQueue};
use shard::{RecoveryOrchestrator, RoutePolicy, ShardConfig, ShardedQueue};
use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};
use store::{FileConfig, FilePool, SyncPolicy};

/// Configuration of one restart round (parent and child read the same).
#[derive(Clone, Debug)]
pub struct RestartConfig {
    /// The algorithm under test.
    pub algorithm: Algorithm,
    /// Number of shards: 1 = a single pool file, >1 = a manifest directory.
    pub shards: usize,
    /// Working directory holding the pool file(s) and ack logs.
    pub dir: PathBuf,
    /// Per-pool file size in bytes.
    pub pool_bytes: usize,
    /// Per-pool growth step in bytes (`0` = fixed-size pools). With a
    /// deliberately undersized `--pool-bytes` this exercises elastic growth
    /// under kill: the child outgrows its creation-time ceiling mid-traffic
    /// and the kill can land inside the grow protocol itself.
    pub grow_step: usize,
    /// Fence durability policy of the file pools.
    pub sync: SyncPolicy,
    /// Power-fail group-commit window in nanoseconds for the child's pools
    /// (`None` = per-thread fences). The kill then lands with batched
    /// `msync` submissions in flight, which is exactly the protocol window
    /// the round must prove safe.
    pub group_commit: Option<u64>,
    /// Confirmed enqueues to wait for before the kill.
    pub min_acks: usize,
    /// Routing policy for sharded rounds.
    pub policy: RoutePolicy,
}

impl Default for RestartConfig {
    fn default() -> Self {
        RestartConfig {
            algorithm: Algorithm::DurableMsq,
            shards: 1,
            dir: std::env::temp_dir().join(format!("harness-restart-{}", std::process::id())),
            pool_bytes: 128 << 20,
            grow_step: 0,
            sync: SyncPolicy::ProcessCrash,
            group_commit: None,
            min_acks: 2_000,
            policy: RoutePolicy::RoundRobin,
        }
    }
}

fn queue_config() -> QueueConfig {
    QueueConfig {
        max_threads: 8,
        area_size: 1 << 20,
    }
}

const POOL_FILE: &str = "pool.dq";

// ---------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------

/// The hidden `restart-child` verb: creates the file-backed queue and
/// drives traffic until killed. Never returns under normal operation.
pub fn run_child(cfg: &RestartConfig) {
    std::fs::create_dir_all(&cfg.dir).expect("restart-child: create dir");
    // The crash-surviving flight recorder rides next to the pool file(s):
    // every lifecycle event the child hits (growth commits, reshard phases,
    // lease settlements) lands in BLACKBOX.ring, where the parent — and
    // `harness blackbox` after any real crash — can replay it post-SIGKILL.
    let recorder =
        obs::flight::FlightRecorder::create_or_open(&cfg.dir, obs::flight::DEFAULT_CAPACITY)
            .expect("restart-child: create flight recorder");
    obs::flight::install(recorder);
    with_recoverable!(cfg.algorithm, Q => {
        let file_cfg = FileConfig::with_size(cfg.pool_bytes)
            .with_sync(cfg.sync)
            .with_growth(cfg.grow_step)
            .with_group_commit(cfg.group_commit);
        if cfg.shards == 1 {
            let pool = FilePool::create(cfg.dir.join(POOL_FILE), file_cfg)
                .expect("restart-child: create pool")
                .into_pool();
            drive_traffic(&Q::create(pool, queue_config()), &cfg.dir);
        } else {
            let orch = RecoveryOrchestrator::new(cfg.shards);
            let queue: ShardedQueue<Q> = orch
                .create_dir(
                    &cfg.dir,
                    ShardConfig {
                        shards: cfg.shards,
                        queue: queue_config(),
                        pool: pmem::PoolConfig::test_with_size(cfg.pool_bytes),
                        policy: cfg.policy,
                    },
                    file_cfg,
                )
                .expect("restart-child: create shard dir");
            drive_traffic(&queue, &cfg.dir);
        }
    });
}

/// One enqueuer (tid 0) + one dequeuer (tid 1); each op is acknowledged
/// with a single `write` after it returns, so the parent knows exactly
/// which operations completed. The dequeuer is throttled to half the
/// enqueue rate, so the kill always finds a substantial residue for
/// recovery to reconstruct (an empty queue would recover trivially).
fn drive_traffic<Q: DurableQueue>(queue: &Q, dir: &Path) {
    use std::sync::atomic::{AtomicU64, Ordering};
    let mut enq_log = std::fs::File::create(dir.join("enq.log")).expect("restart-child: enq log");
    let mut deq_log = std::fs::File::create(dir.join("deq.log")).expect("restart-child: deq log");
    let enq_count = AtomicU64::new(0);
    let deq_count = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let (enq_count, deq_count) = (&enq_count, &deq_count);
        scope.spawn(move || {
            for seq in 1..=u64::MAX {
                queue.enqueue(0, seq);
                enq_log
                    .write_all(format!("E {seq}\n").as_bytes())
                    .expect("restart-child: enq ack");
                enq_count.fetch_add(1, Ordering::Relaxed);
            }
        });
        scope.spawn(move || loop {
            if deq_count.load(Ordering::Relaxed) * 2 + 8 < enq_count.load(Ordering::Relaxed) {
                if let Some(v) = queue.dequeue(1) {
                    deq_log
                        .write_all(format!("D {v}\n").as_bytes())
                        .expect("restart-child: deq ack");
                    deq_count.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                std::hint::spin_loop();
            }
        });
    });
}

// ---------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------

/// Outcome of a restart round (also the line printed per round).
#[derive(Clone, Debug)]
pub struct RestartOutcome {
    /// Confirmed (acknowledged) enqueues at kill time.
    pub confirmed_enqueues: usize,
    /// Confirmed dequeues at kill time.
    pub confirmed_dequeues: usize,
    /// Items drained from the recovered queue.
    pub recovered: usize,
    /// Wall-clock recovery time (file open + `recover()`, all shards).
    pub recovery: Duration,
    /// Committed pool growths inherited across the restart, summed over all
    /// shards (`0` for rounds whose pools never outgrew `--pool-bytes`).
    pub growth_epochs: u64,
    /// Valid lifecycle events replayed from the child's `BLACKBOX.ring`
    /// after the kill (torn tail records excluded).
    pub blackbox_events: u64,
}

/// Runs one full round: spawn, wait for progress, SIGKILL, reopen,
/// recover, validate. Panics (non-zero exit) on any violated guarantee.
pub fn run_round(cfg: &RestartConfig) -> RestartOutcome {
    assert!(cfg.shards >= 1, "--shards must be >= 1");
    // Work in a round-owned subdirectory: `--dir` may be a pre-existing
    // user directory, and this function deletes its working tree before
    // and after the round.
    let cfg = RestartConfig {
        dir: cfg.dir.join(format!(
            "round-{}-{}shards",
            cfg.algorithm.name().replace([' ', '(', ')'], ""),
            cfg.shards
        )),
        ..cfg.clone()
    };
    let cfg = &cfg;
    let _ = std::fs::remove_dir_all(&cfg.dir);
    std::fs::create_dir_all(&cfg.dir).expect("create restart dir");

    let exe = std::env::current_exe().expect("harness binary path");
    let mut args: Vec<String> = [
        "restart-child",
        "--algo",
        cfg.algorithm.name(),
        "--shards",
        &cfg.shards.to_string(),
        "--dir",
        cfg.dir.to_str().expect("utf-8 dir"),
        "--pool-bytes",
        &cfg.pool_bytes.to_string(),
        "--grow-step",
        &cfg.grow_step.to_string(),
        "--sync",
        cfg.sync.key(),
        "--policy",
        cfg.policy.key(),
    ]
    .map(String::from)
    .to_vec();
    if let Some(window_ns) = cfg.group_commit {
        // The CLI flag speaks microseconds (see `harness --help`).
        args.push("--group-commit".into());
        args.push((window_ns / 1_000).to_string());
    }
    let mut child = Command::new(exe)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn restart child");

    let deadline = Instant::now() + Duration::from_secs(120);
    // Cheap progress probe: count newlines only — the full (uniqueness-
    // checking) parse runs once, after the kill, not on every poll tick.
    while count_ack_lines(&cfg.dir.join("enq.log")) < cfg.min_acks {
        if let Some(status) = child.try_wait().expect("poll restart child") {
            panic!("restart child exited prematurely ({status}) before reaching traffic");
        }
        assert!(
            Instant::now() < deadline,
            "restart child reached no traffic within 120s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL restart child");
    child.wait().expect("reap restart child");

    // `recovery` times file open + `recover()` only; the drain and FIFO
    // validation below are checker work, not restart latency.
    let (drained, recovery, growth_epochs) = with_recoverable!(cfg.algorithm, Q => {
        if cfg.shards == 1 {
            let begun = Instant::now();
            let pool =
                FilePool::open_with_growth(cfg.dir.join(POOL_FILE), cfg.sync, cfg.grow_step)
                    .expect("reopen pool file");
            assert!(!pool.was_clean(), "SIGKILL must leave the pool dirty");
            let growths = pool.growth_epoch() as u64;
            let queue = Q::recover(pool.into_pool(), queue_config());
            let recovery = begun.elapsed();
            let drained: Vec<u64> = std::iter::from_fn(|| queue.dequeue(0)).collect();
            for pair in drained.windows(2) {
                assert!(pair[0] < pair[1], "FIFO violated across the restart");
            }
            (drained, recovery, growths)
        } else {
            let orch = RecoveryOrchestrator::new(cfg.shards);
            let begun = Instant::now();
            let (queue, report, manifest) = orch
                .open_dir_with_growth::<Q>(&cfg.dir, queue_config(), cfg.sync, cfg.grow_step)
                .expect("recover shard directory");
            let recovery = begun.elapsed();
            assert!(report.wall <= recovery, "report covers the recover() part");
            assert_eq!(manifest.shards(), cfg.shards, "manifest shard count");
            let growths = report.total_growth_epochs();
            let mut drained = Vec::new();
            for i in 0..cfg.shards {
                let mut last = None;
                while let Some(v) = queue.shard(i).dequeue(0) {
                    if let Some(prev) = last {
                        assert!(v > prev, "shard {i}: FIFO violated across the restart");
                    }
                    last = Some(v);
                    drained.push(v);
                }
            }
            (drained, recovery, growths)
        }
    });

    let acked_e = read_acks(&cfg.dir.join("enq.log"));
    let acked_d = read_acks(&cfg.dir.join("deq.log"));
    validate_suffix(&acked_e, &acked_d, &drained);
    assert!(
        acked_e.len() >= cfg.min_acks,
        "kill landed before the requested traffic"
    );

    // The flight recorder must survive the SIGKILL exactly like the pool
    // files: the ring replays with a valid header, and every pool growth
    // the reopened pools inherited shows up as a PoolGrowthCommit event
    // written *before* the growth's commit fence could be interrupted.
    let ring = obs::flight::replay(&obs::flight::FlightRecorder::ring_path(&cfg.dir))
        .expect("replay BLACKBOX.ring after SIGKILL");
    let growth_events = ring
        .of_kind(obs::flight::EventKind::PoolGrowthCommit)
        .count() as u64;
    assert!(
        growth_events >= growth_epochs,
        "blackbox lost growth commits: ring has {growth_events}, pools report {growth_epochs}"
    );

    let _ = std::fs::remove_dir_all(&cfg.dir);
    RestartOutcome {
        confirmed_enqueues: acked_e.len(),
        confirmed_dequeues: acked_d.len(),
        recovered: drained.len(),
        recovery,
        growth_epochs,
        blackbox_events: ring.events.len() as u64,
    }
}

/// The linearizable-suffix conditions, with the 1-enqueuer/1-dequeuer
/// in-flight windows of [`drive_traffic`].
fn validate_suffix(acked_e: &BTreeSet<u64>, acked_d: &BTreeSet<u64>, drained: &[u64]) {
    let r_set: BTreeSet<u64> = drained.iter().copied().collect();
    assert_eq!(r_set.len(), drained.len(), "duplicated item in the residue");
    let resurrected: Vec<u64> = r_set.intersection(acked_d).copied().collect();
    assert!(
        resurrected.is_empty(),
        "confirmed dequeues resurrected: {resurrected:?}"
    );
    let missing: Vec<u64> = acked_e
        .iter()
        .filter(|v| !acked_d.contains(v) && !r_set.contains(v))
        .copied()
        .collect();
    assert!(
        missing.len() <= 1,
        "{} confirmed items lost: {:?}",
        missing.len(),
        &missing[..missing.len().min(10)]
    );
    let extras: Vec<u64> = r_set.difference(acked_e).copied().collect();
    assert!(
        extras.len() <= 1,
        "{} unconfirmed extras recovered: {:?}",
        extras.len(),
        &extras[..extras.len().min(10)]
    );
}

/// Completed ack lines so far — newline count only, for the wait loop.
fn count_ack_lines(path: &Path) -> usize {
    std::fs::read(path)
        .map(|raw| raw.iter().filter(|&&b| b == b'\n').count())
        .unwrap_or(0)
}

/// Parses complete `<tag> <number>` ack lines; a torn trailing line counts
/// as unacknowledged (exactly what it is).
fn read_acks(path: &Path) -> BTreeSet<u64> {
    let Ok(raw) = std::fs::read(path) else {
        return BTreeSet::new();
    };
    let text = String::from_utf8_lossy(&raw);
    let mut out = BTreeSet::new();
    for line in text.split_inclusive('\n') {
        let Some(body) = line.strip_suffix('\n') else {
            break;
        };
        let num = body
            .get(1..)
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or_else(|| panic!("malformed ack line {body:?}"));
        assert!(out.insert(num), "duplicate ack {num}");
    }
    out
}

/// Renders the collected restart rounds — plus the reshard-kill and
/// lease-kill rounds when they ran — as one machine-readable JSON
/// experiment object (schema documented in the README under
/// "Machine-readable results"), matching the experiment-object shape of
/// `counts` and `shards`.
pub fn restart_json(
    rounds: &[(RestartConfig, RestartOutcome)],
    reshard: Option<&crate::reshard::ReshardKillOutcome>,
    lease: Option<&crate::lease_verb::LeaseKillOutcome>,
) -> String {
    // All rounds of one invocation share the sync policy (they derive from
    // one base config), so the first round's key is the meta-level one.
    let sync = rounds.first().map(|(cfg, _)| cfg.sync.key());
    let mut obj = crate::jsonio::ExperimentObject::new("restart", "file", sync);
    for (cfg, outcome) in rounds {
        obj.row(format!(
            "{{\"algorithm\": \"{}\", \"shards\": {}, \"policy\": \"{}\", \"sync\": \"{}\", \
             \"pool_bytes\": {}, \"grow_step\": {}, \"group_commit_us\": {}, \"mapping\": \"{}\", \
             \"growth_epochs\": {}, \"blackbox_events\": {}, \
             \"confirmed_enqueues\": {}, \"confirmed_dequeues\": {}, \"recovered\": {}, \
             \"recovery_ms\": {}}}",
            cfg.algorithm.name(),
            cfg.shards,
            cfg.policy.key(),
            cfg.sync.key(),
            cfg.pool_bytes,
            cfg.grow_step,
            cfg.group_commit
                .map(|ns| (ns / 1_000).to_string())
                .unwrap_or_else(|| String::from("null")),
            if cfg.grow_step == 0 {
                "direct"
            } else {
                "epoch-pinned"
            },
            outcome.growth_epochs,
            outcome.blackbox_events,
            outcome.confirmed_enqueues,
            outcome.confirmed_dequeues,
            outcome.recovered,
            outcome.recovery.as_secs_f64() * 1e3,
        ));
    }
    match reshard {
        Some(o) => {
            let resolution = match o.resolved {
                Some(shard::ReshardResolution::RolledBack { .. }) => "\"rolled-back\"",
                Some(shard::ReshardResolution::RolledForward { .. }) => "\"rolled-forward\"",
                None => "null",
            };
            obj.section(
                "reshard_kill",
                format!(
                    "{{\"completed_reshards\": {}, \"resolution\": {}, \
                     \"shards_after\": {}, \"items\": {}}}",
                    o.completed_reshards, resolution, o.shards_after, o.items,
                ),
            );
        }
        None => obj.section("reshard_kill", String::from("null")),
    }
    match lease {
        Some(o) => obj.section(
            "lease_kill",
            format!(
                "{{\"confirmed_enqueues\": {}, \"confirmed_acks\": {}, \
                 \"held\": {}, \"unacked\": {}, \"redelivered\": {}, \"recovery_ms\": {}}}",
                o.confirmed_enqueues,
                o.confirmed_acks,
                o.held,
                o.unacked,
                o.redelivered,
                o.recovery.as_secs_f64() * 1e3,
            ),
        ),
        None => obj.section("lease_kill", String::from("null")),
    }
    obj.finish()
}

/// Renders one round's outcome as the verb's report line.
pub fn render_outcome(cfg: &RestartConfig, outcome: &RestartOutcome) -> String {
    let growth = match outcome.growth_epochs {
        0 => String::new(),
        n => format!(" (pool grew x{n} past its creation ceiling, epoch-pinned mapping)"),
    };
    let mapping = if cfg.grow_step == 0 {
        " [direct mapping]"
    } else {
        ""
    };
    let mapping = format!(
        "{mapping}{}",
        match cfg.group_commit {
            Some(ns) => format!(" [group-commit {}us]", ns / 1_000),
            None => String::new(),
        }
    );
    format!(
        "restart {} x{} [{}{}]: {} confirmed enqueues, {} confirmed dequeues, \
         {} recovered in {:.3} ms — no loss, no duplication, FIFO intact{} \
         [{} blackbox event(s) survived the kill]\n",
        cfg.algorithm.name(),
        cfg.shards,
        cfg.sync.key(),
        mapping,
        outcome.confirmed_enqueues,
        outcome.confirmed_dequeues,
        outcome.recovered,
        outcome.recovery.as_secs_f64() * 1e3,
        growth,
        outcome.blackbox_events,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_validation_accepts_legal_windows() {
        let e: BTreeSet<u64> = (1..=10).collect();
        let d: BTreeSet<u64> = [1, 2].into_iter().collect();
        // 3 lost in-flight (1 allowed is violated at 2+ -> use exactly 1):
        let drained: Vec<u64> = (4..=11).collect(); // 3 missing, 11 is an extra
        validate_suffix(&e, &d, &drained);
    }

    #[test]
    #[should_panic(expected = "resurrected")]
    fn suffix_validation_rejects_resurrection() {
        let e: BTreeSet<u64> = (1..=5).collect();
        let d: BTreeSet<u64> = [1].into_iter().collect();
        validate_suffix(&e, &d, &[1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "lost")]
    fn suffix_validation_rejects_loss() {
        let e: BTreeSet<u64> = (1..=10).collect();
        let d = BTreeSet::new();
        validate_suffix(&e, &d, &[9, 10]);
    }

    #[test]
    #[should_panic(expected = "duplicated")]
    fn suffix_validation_rejects_duplication() {
        let e: BTreeSet<u64> = (1..=5).collect();
        let d = BTreeSet::new();
        validate_suffix(&e, &d, &[1, 2, 2, 3, 4, 5]);
    }

    #[test]
    fn restart_json_is_well_formed_with_and_without_reshard() {
        let rounds = vec![
            (
                RestartConfig::default(),
                RestartOutcome {
                    confirmed_enqueues: 2_000,
                    confirmed_dequeues: 990,
                    recovered: 1_011,
                    recovery: Duration::from_millis(3),
                    growth_epochs: 0,
                    blackbox_events: 0,
                },
            ),
            (
                RestartConfig {
                    shards: 4,
                    algorithm: Algorithm::OptUnlinked,
                    ..RestartConfig::default()
                },
                RestartOutcome {
                    confirmed_enqueues: 2_100,
                    confirmed_dequeues: 1_000,
                    recovered: 1_101,
                    recovery: Duration::from_millis(2),
                    growth_epochs: 3,
                    blackbox_events: 7,
                },
            ),
        ];
        let json = restart_json(&rounds, None, None);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
        assert!(json.contains("\"experiment\": \"restart\""));
        assert!(json.contains("\"reshard_kill\": null"));
        assert!(json.contains("\"lease_kill\": null"));
        assert_eq!(json.matches("\"algorithm\"").count(), 2);
        assert!(json.contains("\"sync\": \"process-crash\""));
        assert!(json.contains("\"growth_epochs\": 0"));
        assert!(json.contains("\"growth_epochs\": 3"));
        assert!(json.contains("\"grow_step\": 0"));

        let reshard = crate::reshard::ReshardKillOutcome {
            completed_reshards: 3,
            resolved: Some(shard::ReshardResolution::RolledForward { from: 4, to: 2 }),
            shards_after: 2,
            items: 2_000,
        };
        let lease = crate::lease_verb::LeaseKillOutcome {
            confirmed_enqueues: 5_000,
            confirmed_acks: 1_200,
            held: 170,
            unacked: 180,
            redelivered: 181,
            recovery: Duration::from_millis(4),
        };
        let json = restart_json(&rounds, Some(&reshard), Some(&lease));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"resolution\": \"rolled-forward\""));
        assert!(json.contains("\"shards_after\": 2"));
        assert!(json.contains("\"lease_kill\": {\"confirmed_enqueues\": 5000"));
        assert!(json.contains("\"redelivered\": 181"));
    }
}
