//! Command-line harness that regenerates the paper's evaluation.
//!
//! ```text
//! harness fig2 [--workload random|pairs|enqueues|dequeues|prodcons|all]
//!              [--threads 1,2,4,8,12,16] [--ops N] [--initial-size N]
//!              [--algorithms OptUnlinkedQ,DurableMSQ,...]
//!              [--nvram-read-ns N] [--quick]
//! harness counts [--ops N]
//! harness crashtest [--threads N] [--ops N] [--rounds N]
//! harness all [--quick]
//! ```

use harness::algorithms::Algorithm;
use harness::checker::{check_all, CrashCheckConfig};
use harness::counts::{persist_counts_table, render_counts};
use harness::runner::{render_panel, run_panel, SweepConfig};
use harness::workloads::Workload;
use pmem::LatencyModel;
use std::collections::HashMap;
use std::process::exit;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                i += 1;
                args[i].clone()
            } else {
                String::from("true")
            };
            flags.insert(name.to_string(), value);
        }
        i += 1;
    }
    flags
}

fn sweep_from_flags(flags: &HashMap<String, String>) -> SweepConfig {
    let mut sweep = if flags.contains_key("quick") {
        SweepConfig::quick()
    } else {
        SweepConfig::paper_like()
    };
    if let Some(t) = flags.get("threads") {
        sweep.threads = t
            .split(',')
            .map(|s| s.trim().parse().expect("bad --threads"))
            .collect();
    }
    if let Some(ops) = flags.get("ops") {
        sweep.ops_per_thread = ops.parse().expect("bad --ops");
    }
    if let Some(init) = flags.get("initial-size") {
        sweep.initial_size = Some(init.parse().expect("bad --initial-size"));
    }
    if let Some(ns) = flags.get("nvram-read-ns") {
        sweep.latency.nvram_read_ns = ns.parse().expect("bad --nvram-read-ns");
    }
    if flags.contains_key("no-latency") {
        sweep.latency = LatencyModel::ZERO;
    }
    if let Some(algs) = flags.get("algorithms") {
        sweep.algorithms = algs
            .split(',')
            .map(|s| Algorithm::parse(s).unwrap_or_else(|| panic!("unknown algorithm {s}")))
            .collect();
    }
    sweep
}

fn workloads_from_flags(flags: &HashMap<String, String>) -> Vec<Workload> {
    match flags.get("workload").map(|s| s.as_str()) {
        None | Some("all") => Workload::all(),
        Some(key) => vec![Workload::parse(key).unwrap_or_else(|| {
            eprintln!(
                "unknown workload '{key}' (expected random|pairs|enqueues|dequeues|prodcons|all)"
            );
            exit(2);
        })],
    }
}

fn cmd_fig2(flags: &HashMap<String, String>) {
    let sweep = sweep_from_flags(flags);
    for workload in workloads_from_flags(flags) {
        let rows = run_panel(workload, &sweep);
        print!("{}", render_panel(workload, &sweep, &rows));
    }
}

fn cmd_counts(flags: &HashMap<String, String>) {
    let ops = flags
        .get("ops")
        .map(|s| s.parse().expect("bad --ops"))
        .unwrap_or(2_000);
    let rows = persist_counts_table(ops);
    print!("{}", render_counts(&rows));
}

fn cmd_crashtest(flags: &HashMap<String, String>) {
    let mut cfg = CrashCheckConfig::default();
    if let Some(t) = flags.get("threads") {
        cfg.threads = t.parse().expect("bad --threads");
    }
    if let Some(o) = flags.get("ops") {
        cfg.ops_per_thread = o.parse().expect("bad --ops");
    }
    if let Some(r) = flags.get("rounds") {
        cfg.rounds = r.parse().expect("bad --rounds");
    }
    check_all(&cfg);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(|s| s.as_str()).unwrap_or("help");
    let flags = parse_flags(&args[1.min(args.len())..]);
    match command {
        "fig2" => cmd_fig2(&flags),
        "counts" => cmd_counts(&flags),
        "crashtest" => cmd_crashtest(&flags),
        "all" => {
            cmd_counts(&flags);
            cmd_fig2(&flags);
        }
        _ => {
            eprintln!(
                "usage: harness <fig2|counts|crashtest|all> [flags]\n\
                 \n\
                 fig2       regenerate the Figure 2 panels (throughput + ratio tables)\n\
                 counts     per-operation persistence counts (experiments E7/E8)\n\
                 crashtest  durable-linearizability crash checks for every queue\n\
                 all        counts followed by every fig2 panel\n\
                 \n\
                 common flags: --quick --workload W --threads 1,2,4 --ops N\n\
                               --initial-size N --algorithms A,B --nvram-read-ns N --no-latency"
            );
            exit(2);
        }
    }
}
