//! Command-line harness that regenerates the paper's evaluation.
//!
//! ```text
//! harness fig2 [--workload random|pairs|enqueues|dequeues|prodcons|all]
//!              [--threads 1,2,4,8,12,16] [--ops N] [--initial-size N]
//!              [--prefill N] [--algorithms OptUnlinkedQ,DurableMSQ,...]
//!              [--shards N] [--policy rr|keyhash|load]
//!              [--nvram-read-ns N] [--quick]
//! harness counts [--ops N] [--shards N]
//! harness fastpath [--ops N] [--trials N] [--pool-bytes N] [--grow-step N]
//!                  [--quick] [--json PATH]
//! harness crashtest [--threads N] [--ops N] [--rounds N]
//! harness shards [--shards 1,2,4,8] [--workload W] [--algorithm A]
//!                [--threads N] [--ops N] [--policy rr|keyhash|load]
//!                [--recovery-threads N] [--quick]
//! harness all [--quick]
//! ```

use harness::algorithms::Algorithm;
use harness::checker::{check_all, CrashCheckConfig};
use harness::counts::{
    counts_json, persist_counts_table, persist_counts_table_sharded, render_counts,
};
use harness::fastpath::{self, fastpath_json, render_fastpath, run_fastpath};
use harness::fsweep::{self, fsweep_json, render_fsweep, run_fsweep};
use harness::jsonio::JsonSink;
use harness::lease_verb::{
    lease_groups_json, lease_json, render_lease, render_lease_groups, render_lease_kill_outcome,
    run_lease, run_lease_child, run_lease_groups, run_lease_kill_round, LeaseVerbConfig,
};
use harness::obs_verbs::{
    blackbox_json, metrics_json, render_blackbox, resolve_ring_path, warmed_snapshot,
};
use harness::reshard::{
    render_kill_outcome, run_reshard, run_reshard_child, run_reshard_kill_round, ReshardVerbConfig,
};
use harness::restart::{render_outcome, restart_json, run_child, run_round, RestartConfig};
use harness::runner::{render_panel, run_panel, BackendChoice, SweepConfig};
use harness::shard_sweep::{
    render_shard_sweep, run_shard_sweep, shard_sweep_json, ShardSweepConfig,
};
use harness::workloads::Workload;
use pmem::LatencyModel;
use shard::RoutePolicy;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::exit;
use store::SyncPolicy;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                i += 1;
                args[i].clone()
            } else {
                String::from("true")
            };
            flags.insert(name.to_string(), value);
        }
        i += 1;
    }
    flags
}

fn sweep_from_flags(flags: &HashMap<String, String>) -> SweepConfig {
    let mut sweep = if flags.contains_key("quick") {
        SweepConfig::quick()
    } else {
        SweepConfig::paper_like()
    };
    if let Some(t) = flags.get("threads") {
        sweep.threads = t
            .split(',')
            .map(|s| s.trim().parse().expect("bad --threads"))
            .collect();
    }
    if let Some(ops) = flags.get("ops") {
        sweep.ops_per_thread = ops.parse().expect("bad --ops");
    }
    if let Some(init) = flags.get("initial-size") {
        sweep.initial_size = Some(init.parse().expect("bad --initial-size"));
    }
    if let Some(ns) = flags.get("nvram-read-ns") {
        sweep.latency.nvram_read_ns = ns.parse().expect("bad --nvram-read-ns");
    }
    if flags.contains_key("no-latency") {
        sweep.latency = LatencyModel::ZERO;
    }
    if let Some(algs) = flags.get("algorithms") {
        sweep.algorithms = algs
            .split(',')
            .map(|s| Algorithm::parse(s).unwrap_or_else(|| panic!("unknown algorithm {s}")))
            .collect();
    }
    if let Some(p) = flags.get("prefill") {
        sweep.prefill = Some(p.parse().expect("bad --prefill"));
    }
    if let Some(p) = flags.get("policy") {
        sweep.policy = parse_policy(p);
    }
    if let Some(p) = flags.get("pool-bytes") {
        sweep.pool_bytes = p.parse().expect("bad --pool-bytes");
    }
    if let Some(g) = flags.get("grow-step") {
        sweep.grow_step = g.parse().expect("bad --grow-step");
    }
    sweep.backend = backend_from_flags(flags);
    sweep
}

fn parse_sync(flags: &HashMap<String, String>) -> SyncPolicy {
    match flags.get("sync") {
        None => SyncPolicy::default(),
        Some(s) => SyncPolicy::parse(s).unwrap_or_else(|| {
            eprintln!("unknown sync policy '{s}' (expected process-crash|power-fail)");
            exit(2);
        }),
    }
}

/// `--group-commit [WINDOW_US]` (file backend, power-fail sync): bare flag
/// means window 0 (submit the batch as soon as a leader claims it); a value
/// is the batch window in microseconds. Returned in nanoseconds, the unit
/// [`store::FileConfig::group_commit`] takes.
fn parse_group_commit(flags: &HashMap<String, String>) -> Option<u64> {
    flags.get("group-commit").map(|v| {
        if v == "true" {
            0
        } else {
            let us: u64 = v.parse().expect("bad --group-commit");
            us * 1_000
        }
    })
}

/// `--backend {sim,file}` plus the file backend's `--dir PATH`,
/// `--sync process-crash|power-fail` and `--group-commit` companions.
fn backend_from_flags(flags: &HashMap<String, String>) -> BackendChoice {
    match flags.get("backend").map(|s| s.as_str()) {
        None | Some("sim") => BackendChoice::Sim,
        Some("file") => BackendChoice::File {
            dir: flags.get("dir").map(PathBuf::from).unwrap_or_else(|| {
                std::env::temp_dir().join(format!("harness-pools-{}", std::process::id()))
            }),
            sync: parse_sync(flags),
            group_commit: parse_group_commit(flags),
        },
        Some(other) => {
            eprintln!("unknown backend '{other}' (expected sim|file)");
            exit(2);
        }
    }
}

fn parse_policy(s: &str) -> RoutePolicy {
    RoutePolicy::parse(s).unwrap_or_else(|| {
        eprintln!("unknown routing policy '{s}' (expected rr|keyhash|load)");
        exit(2);
    })
}

/// Parses `--shards` as a comma-separated list of counts ≥ 1, so the same
/// flag value works for every subcommand (and for `all`, which forwards one
/// flag map to counts, fig2 and the shard sweep). Absent: `[1]`.
fn shards_from_flags(flags: &HashMap<String, String>) -> Vec<usize> {
    let Some(s) = flags.get("shards") else {
        return vec![1];
    };
    let counts: Vec<usize> = s
        .split(',')
        .map(|v| v.trim().parse().expect("bad --shards"))
        .collect();
    for &c in &counts {
        if c == 0 {
            eprintln!("--shards values must be >= 1");
            exit(2);
        }
    }
    counts
}

fn workloads_from_flags(flags: &HashMap<String, String>) -> Vec<Workload> {
    match flags.get("workload").map(|s| s.as_str()) {
        None | Some("all") => Workload::all(),
        Some(key) => vec![Workload::parse(key).unwrap_or_else(|| {
            eprintln!(
                "unknown workload '{key}' (expected random|pairs|enqueues|dequeues|prodcons|all)"
            );
            exit(2);
        })],
    }
}

fn cmd_fig2(flags: &HashMap<String, String>) {
    let mut sweep = sweep_from_flags(flags);
    for shards in shards_from_flags(flags) {
        sweep.shards = shards;
        for workload in workloads_from_flags(flags) {
            let rows = run_panel(workload, &sweep);
            print!("{}", render_panel(workload, &sweep, &rows));
        }
    }
}

fn cmd_counts(flags: &HashMap<String, String>) {
    let ops = flags
        .get("ops")
        .map(|s| s.parse().expect("bad --ops"))
        .unwrap_or(2_000);
    let policy = flags
        .get("policy")
        .map(|p| parse_policy(p))
        .unwrap_or_default();
    let mut json = JsonSink::from_flags(flags);
    for shards in shards_from_flags(flags) {
        let rows = if shards > 1 {
            println!(
                "(measured through a {shards}-shard ShardedQueue, {} routing, counters aggregated)",
                policy.key()
            );
            persist_counts_table_sharded(ops, shards, policy)
        } else {
            persist_counts_table(ops)
        };
        print!("{}", render_counts(&rows));
        json.push(counts_json(&rows, ops, shards, policy));
    }
    json.write();
}

fn cmd_shards(flags: &HashMap<String, String>) {
    let mut cfg = if flags.contains_key("quick") {
        ShardSweepConfig::quick()
    } else {
        ShardSweepConfig::paper_like()
    };
    if flags.contains_key("shards") {
        cfg.shard_counts = shards_from_flags(flags);
    }
    // `--threads` and `--workload` accept the same forms fig2 does (comma
    // lists, `all`) — one sweep table is printed per combination. This also
    // keeps `harness all <fig2 flags>` working end to end.
    let thread_counts: Vec<usize> = match flags.get("threads") {
        None => vec![cfg.threads],
        Some(t) => t
            .split(',')
            .map(|s| s.trim().parse().expect("bad --threads"))
            .collect(),
    };
    let workloads = match flags.get("workload").map(|s| s.as_str()) {
        None => vec![cfg.workload],
        Some(_) => workloads_from_flags(flags),
    };
    if let Some(o) = flags.get("ops") {
        cfg.ops_per_thread = o.parse().expect("bad --ops");
    }
    if let Some(a) = flags.get("algorithm") {
        cfg.algorithm = Algorithm::parse(a).unwrap_or_else(|| panic!("unknown algorithm {a}"));
    }
    if let Some(p) = flags.get("policy") {
        cfg.policy = parse_policy(p);
    }
    if let Some(r) = flags.get("recovery-threads") {
        cfg.recovery_threads = r.parse().expect("bad --recovery-threads");
    }
    if flags.contains_key("no-latency") {
        cfg.latency = LatencyModel::ZERO;
    }
    let mut json = JsonSink::from_flags(flags);
    for workload in workloads {
        for &threads in &thread_counts {
            let cfg = ShardSweepConfig {
                threads,
                workload,
                ..cfg.clone()
            };
            let rows = run_shard_sweep(&cfg);
            print!("{}", render_shard_sweep(&cfg, &rows));
            json.push(shard_sweep_json(&cfg, &rows));
        }
    }
    json.write();
}

/// Builds a [`RestartConfig`] from the shared flag map (used by both the
/// parent `restart` verb and the hidden `restart-child`).
fn restart_config(flags: &HashMap<String, String>) -> RestartConfig {
    let mut cfg = RestartConfig::default();
    if let Some(a) = flags.get("algo").or_else(|| flags.get("algorithm")) {
        cfg.algorithm = Algorithm::parse(a).unwrap_or_else(|| panic!("unknown algorithm {a}"));
    }
    if let Some(s) = flags.get("shards") {
        cfg.shards = s.parse().expect("bad --shards");
        assert!(cfg.shards >= 1, "--shards must be >= 1");
    }
    if let Some(d) = flags.get("dir") {
        cfg.dir = PathBuf::from(d);
    }
    if let Some(p) = flags.get("pool-bytes") {
        cfg.pool_bytes = p.parse().expect("bad --pool-bytes");
    }
    if let Some(g) = flags.get("grow-step") {
        cfg.grow_step = g.parse().expect("bad --grow-step");
    }
    if let Some(m) = flags.get("min-acks") {
        cfg.min_acks = m.parse().expect("bad --min-acks");
    }
    if let Some(p) = flags.get("policy") {
        cfg.policy = parse_policy(p);
    }
    cfg.sync = parse_sync(flags);
    cfg.group_commit = parse_group_commit(flags);
    if flags.contains_key("quick") {
        cfg.min_acks = cfg.min_acks.min(500);
        cfg.pool_bytes = cfg.pool_bytes.min(64 << 20);
    }
    cfg
}

fn cmd_restart(flags: &HashMap<String, String>) {
    let base = restart_config(flags);
    // Default plan: the ratio baseline and one second-amendment queue, each
    // as a single pool and as a 4-shard manifest directory — the full
    // kill-and-reopen matrix, capped by a SIGKILL-mid-reshard round.
    // `--algo`/`--shards` narrow it to one kill-and-reopen round.
    let narrowed = flags.contains_key("algo")
        || flags.contains_key("algorithm")
        || flags.contains_key("shards");
    let rounds: Vec<RestartConfig> = if narrowed {
        vec![base.clone()]
    } else {
        // run_round namespaces each round under a `round-<algo>-<N>shards`
        // subdirectory of `dir`, so the rounds share `base.dir` safely.
        [Algorithm::DurableMsq, Algorithm::OptUnlinked]
            .into_iter()
            .flat_map(|algorithm| {
                [1usize, 4].map(|shards| RestartConfig {
                    algorithm,
                    shards,
                    ..base.clone()
                })
            })
            .collect()
    };
    println!(
        "=== restart: SIGKILL mid-traffic, reopen pool file(s), recover, validate ===\n\
         ({} round(s), {} confirmed enqueues before each kill{})",
        rounds.len(),
        base.min_acks,
        if narrowed {
            ""
        } else {
            ", plus reshard and leased-consumer kills"
        }
    );
    let mut json = JsonSink::from_flags(flags);
    let mut outcomes = Vec::new();
    for cfg in &rounds {
        let outcome = run_round(cfg);
        print!("{}", render_outcome(cfg, &outcome));
        outcomes.push((cfg.clone(), outcome));
    }
    // The structural-rewrite coverage: kill a child inside reshard_dir and
    // recover the directory to a consistent pre- or post-reshard state.
    let reshard_outcome = if narrowed {
        None
    } else {
        let outcome =
            run_reshard_kill_round(base.algorithm, &base.dir, base.sync, base.min_acks as u64);
        print!("{}", render_kill_outcome(base.algorithm, &outcome));
        Some(outcome)
    };
    // The peek-lock coverage: SIGKILL a consumer holding live leases and
    // validate redelivery, ack retirement and the dead-letter queue.
    let lease_outcome = if narrowed {
        None
    } else {
        let outcome = run_lease_kill_round(
            base.algorithm,
            &base.dir,
            base.sync,
            base.group_commit,
            base.min_acks.min(1_000),
        );
        print!("{}", render_lease_kill_outcome(base.algorithm, &outcome));
        Some(outcome)
    };
    json.push(restart_json(
        &outcomes,
        reshard_outcome.as_ref(),
        lease_outcome.as_ref(),
    ));
    json.write();
    println!("restart: all rounds passed");
}

fn cmd_reshard(flags: &HashMap<String, String>) {
    let mut cfg = ReshardVerbConfig::default();
    let Some(to) = flags.get("to") else {
        eprintln!("reshard: --to N' is required");
        exit(2);
    };
    cfg.to = to.parse().expect("bad --to");
    assert!(cfg.to >= 1, "--to must be >= 1");
    if let Some(d) = flags.get("dir") {
        cfg.dir = PathBuf::from(d);
    } else {
        eprintln!("reshard: --dir PATH is required");
        exit(2);
    }
    if let Some(a) = flags.get("algo").or_else(|| flags.get("algorithm")) {
        cfg.algorithm = Algorithm::parse(a).unwrap_or_else(|| panic!("unknown algorithm {a}"));
    }
    if let Some(c) = flags.get("create") {
        cfg.create = Some(c.parse().expect("bad --create"));
    }
    if let Some(i) = flags.get("items") {
        cfg.items = i.parse().expect("bad --items");
    }
    if let Some(p) = flags.get("policy") {
        cfg.policy = parse_policy(p);
    }
    if let Some(p) = flags.get("pool-bytes") {
        cfg.pool_bytes = p.parse().expect("bad --pool-bytes");
    }
    cfg.sync = parse_sync(flags);
    cfg.verify = flags.contains_key("verify");
    if let Some(e) = flags.get("expect") {
        cfg.expect = Some(e.parse().expect("bad --expect"));
    }
    if let Some(k) = flags.get("key-shift") {
        cfg.key_shift = Some(k.parse().expect("bad --key-shift"));
    }
    run_reshard(&cfg);
}

fn cmd_lease(flags: &HashMap<String, String>) {
    let mut cfg = if flags.contains_key("quick") {
        LeaseVerbConfig::quick()
    } else {
        LeaseVerbConfig::default()
    };
    if flags.contains_key("shards") {
        cfg.shard_counts = shards_from_flags(flags);
    }
    if let Some(o) = flags.get("ops") {
        cfg.ops = o.parse().expect("bad --ops");
    }
    if let Some(n) = flags.get("nack-percent") {
        cfg.nack_percent = n.parse().expect("bad --nack-percent");
        assert!(cfg.nack_percent <= 100, "--nack-percent must be <= 100");
    }
    if let Some(a) = flags.get("algo").or_else(|| flags.get("algorithm")) {
        cfg.algorithm = Algorithm::parse(a).unwrap_or_else(|| panic!("unknown algorithm {a}"));
    }
    if let Some(d) = flags.get("dir") {
        cfg.dir = PathBuf::from(d);
    }
    if let Some(p) = flags.get("policy") {
        cfg.policy = parse_policy(p);
    }
    if let Some(p) = flags.get("pool-bytes") {
        cfg.pool_bytes = p.parse().expect("bad --pool-bytes");
    }
    if let Some(c) = flags.get("consumers") {
        cfg.consumers = c.parse().expect("bad --consumers");
        assert!(cfg.consumers >= 1, "--consumers must be >= 1");
    }
    if let Some(g) = flags.get("groups") {
        cfg.groups = g.parse().expect("bad --groups");
        assert!(cfg.groups >= 1, "--groups must be >= 1");
    }
    if let Some(w) = flags.get("work-ns") {
        cfg.work_ns = w.parse().expect("bad --work-ns");
    }
    cfg.sync = parse_sync(flags);
    cfg.group_commit = parse_group_commit(flags);
    let mut json = JsonSink::from_flags(flags);
    if cfg.is_grouped() {
        let rows = run_lease_groups(&cfg);
        print!("{}", render_lease_groups(&cfg, &rows));
        json.push(lease_groups_json(&cfg, &rows));
    } else {
        let rows = run_lease(&cfg);
        print!("{}", render_lease(&cfg, &rows));
        json.push(lease_json(&cfg, &rows));
    }
    json.write();
}

fn cmd_fastpath(flags: &HashMap<String, String>) {
    let cfg = fastpath::config_from_flags(flags);
    let mut json = JsonSink::from_flags(flags);
    let rows = run_fastpath(&cfg);
    print!("{}", render_fastpath(&cfg, &rows));
    json.push(fastpath_json(&cfg, &rows));
    json.write();
}

fn cmd_fsweep(flags: &HashMap<String, String>) {
    let cfg = fsweep::config_from_flags(flags);
    let mut json = JsonSink::from_flags(flags);
    let rows = run_fsweep(&cfg);
    print!("{}", render_fsweep(&cfg, &rows));
    json.push(fsweep_json(&cfg, &rows));
    json.write();
}

fn cmd_metrics(flags: &HashMap<String, String>) {
    let ops = flags
        .get("ops")
        .map(|s| s.parse().expect("bad --ops"))
        .unwrap_or(10_000);
    let dir = flags.get("dir").map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("harness-metrics-{}", std::process::id()))
    });
    let sync = parse_sync(flags);
    let snap = warmed_snapshot(ops, dir, sync);
    let mut json = JsonSink::from_flags(flags);
    if flags.contains_key("json") {
        json.push(metrics_json(&snap, sync));
        json.write();
    } else {
        print!("{}", obs::export::prometheus(&snap));
    }
}

fn cmd_blackbox(positional: Option<&str>, flags: &HashMap<String, String>) {
    let target = flags
        .get("dir")
        .map(String::as_str)
        .or(positional)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            eprintln!(
                "blackbox: pass the deployment directory (or ring file): harness blackbox DIR"
            );
            exit(2);
        });
    let path = resolve_ring_path(&target);
    let replay = obs::flight::replay(&path).unwrap_or_else(|e| {
        eprintln!("blackbox: {e}");
        exit(1);
    });
    print!("{}", render_blackbox(&path, &replay));
    let mut json = JsonSink::from_flags(flags);
    json.push(blackbox_json(&path, &replay));
    json.write();
}

fn cmd_crashtest(flags: &HashMap<String, String>) {
    let mut cfg = CrashCheckConfig::default();
    if let Some(t) = flags.get("threads") {
        cfg.threads = t.parse().expect("bad --threads");
    }
    if let Some(o) = flags.get("ops") {
        cfg.ops_per_thread = o.parse().expect("bad --ops");
    }
    if let Some(r) = flags.get("rounds") {
        cfg.rounds = r.parse().expect("bad --rounds");
    }
    check_all(&cfg);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(|s| s.as_str()).unwrap_or("help");
    let flags = parse_flags(&args[1.min(args.len())..]);
    match command {
        "fig2" => cmd_fig2(&flags),
        "counts" => cmd_counts(&flags),
        "crashtest" => cmd_crashtest(&flags),
        "shards" => cmd_shards(&flags),
        "restart" => cmd_restart(&flags),
        "reshard" => cmd_reshard(&flags),
        "fastpath" => cmd_fastpath(&flags),
        "fsweep" => cmd_fsweep(&flags),
        "lease" => cmd_lease(&flags),
        "metrics" => cmd_metrics(&flags),
        "blackbox" => cmd_blackbox(
            args.get(1)
                .filter(|a| !a.starts_with("--"))
                .map(String::as_str),
            &flags,
        ),
        // Hidden: the process `restart` spawns, kills and recovers from.
        "restart-child" => run_child(&restart_config(&flags)),
        // Hidden: the leased consumer the restart verb SIGKILLs mid-lease.
        "lease-child" => {
            let cfg = restart_config(&flags);
            run_lease_child(cfg.algorithm, &cfg.dir, cfg.sync, cfg.group_commit);
        }
        // Hidden: the process the reshard-kill round spawns and kills.
        "reshard-child" => {
            let cfg = restart_config(&flags);
            let items = flags
                .get("items")
                .map(|s| s.parse().expect("bad --items"))
                .unwrap_or(2_000);
            run_reshard_child(cfg.algorithm, &cfg.dir, cfg.sync, items);
        }
        "all" => {
            // `--json` is per-experiment; with `all` the sweeps would race
            // for one file, so require an explicit subcommand for it.
            let mut flags = flags;
            flags.remove("json");
            cmd_counts(&flags);
            cmd_fig2(&flags);
            cmd_shards(&flags);
        }
        _ => {
            eprintln!(
                "usage: harness <fig2|counts|crashtest|shards|restart|reshard|fastpath|fsweep|lease|metrics|blackbox|all> [flags]\n\
                 \n\
                 fig2       regenerate the Figure 2 panels (throughput + ratio tables)\n\
                 counts     per-operation persistence counts (experiments E7/E8)\n\
                 crashtest  durable-linearizability crash checks for every queue\n\
                 shards     shard-scaling sweep: aggregate throughput, per-shard\n\
                            persist counts and parallel crash-recovery latency\n\
                 restart    spawn a child on file-backed pool(s), SIGKILL it\n\
                            mid-traffic, reopen + recover() in-process and\n\
                            validate no loss / no duplication / FIFO; ends with\n\
                            SIGKILL-mid-reshard and SIGKILL-mid-lease rounds\n\
                 reshard    split/merge a file-backed shard directory to --to N'\n\
                            (crash-safe two-phase manifest protocol)\n\
                 fastpath   time the file pool's direct vs epoch-pinned mapping\n\
                            modes (per-op load / persist / map_ref costs)\n\
                 fsweep     power-fail fence throughput sweep: per-thread\n\
                            msync vs group commit, across producer counts\n\
                            and batch windows (--producers 1,2,4,8\n\
                            --windows 0,50,200 --fences N --pages K)\n\
                 lease      peek-lock producer/consumer throughput through a\n\
                            leased deployment (ack rate, redelivery, compaction);\n\
                            --groups G / --consumers N switch to the consumer-\n\
                            group deployment (every group sees every item,\n\
                            consumers within a group compete)\n\
                 metrics    drive a short leased workload, then dump the\n\
                            process-global instruments (Prometheus text, or a\n\
                            metrics experiment object with --json)\n\
                 blackbox   replay a crash-surviving BLACKBOX.ring and\n\
                            pretty-print the lifecycle events that survived\n\
                 all        counts, every fig2 panel, then the shard sweep\n\
                 \n\
                 common flags: --quick --workload W --threads 1,2,4 --ops N\n\
                               --initial-size N --prefill N --algorithms A,B\n\
                               --shards 1,2,4,8 --policy rr|keyhash|load\n\
                               --recovery-threads N --nvram-read-ns N --no-latency\n\
                 backends:     --backend sim|file --dir PATH\n\
                               --sync process-crash|power-fail   (file backend)\n\
                               --group-commit [WINDOW_US]   (power-fail file\n\
                               pools: coalesce concurrent fences into one\n\
                               msync batch; bare flag = 0us window)\n\
                               --pool-bytes N --grow-step N   (file pools grow by\n\
                               >= N bytes on exhaustion; 0 = fixed size)\n\
                 lease:        --ops N --nack-percent P --shards 1,2,4\n\
                               --consumers N --groups G --work-ns X\n\
                 output:       --json PATH   (counts, shards, restart, fastpath,\n\
                               fsweep, lease, metrics, blackbox: JSON array\n\
                               of experiment objects; schema in README)\n\
                 restart:      --algo A --shards N --min-acks N --pool-bytes N\n\
                               --grow-step N  (undersized pools grow under kill)\n\
                 reshard:      --dir D --to N' [--algo A] [--create N --items M]\n\
                               [--verify] [--expect M] [--key-shift B]\n\
                               [--policy P] [--sync S]"
            );
            exit(2);
        }
    }
}
