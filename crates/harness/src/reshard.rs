//! The `harness reshard` verb: split or merge a file-backed shard
//! directory on the command line, plus the SIGKILL-mid-reshard round the
//! `restart` verb runs.
//!
//! ```text
//! harness reshard --dir D --to N' [--algo A] [--create N --items M]
//!                 [--policy P] [--sync S] [--verify] [--expect M]
//!                 [--key-shift B]
//! ```
//!
//! With `--create N` (and no manifest in `--dir`) the verb first creates an
//! N-shard directory seeded with `--items` known items, then reshards it to
//! `--to` and verifies the full item set survived — the zero-loss check CI
//! runs. On a pre-existing directory, `--verify` drains every destination
//! shard, checks for duplicates (and `--expect M` for the exact count),
//! and restores the items in order, so the verification is non-destructive.
//!
//! Key-hash directories re-route each drained item by its key; the verb
//! decodes keys as `item >> key_shift` (default 0: the item is its own
//! key, with a warning, since a directory whose keys live in the items'
//! high bits must pass the real shift to keep per-key FIFO).

use crate::algorithms::Algorithm;
use crate::with_recoverable;
use durable_queues::{DurableQueue, QueueConfig, RecoverableQueue};
use shard::{
    resolve_reshard, RecoveryOrchestrator, ReshardReport, RoutePolicy, ShardConfig, ShardedQueue,
};
use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};
use store::{FileConfig, SyncPolicy};

/// Configuration of one `harness reshard` invocation.
#[derive(Clone, Debug)]
pub struct ReshardVerbConfig {
    /// The shard directory to reshard.
    pub dir: PathBuf,
    /// Destination shard count.
    pub to: usize,
    /// The algorithm stored in the directory.
    pub algorithm: Algorithm,
    /// Create the directory first with this many shards (requires the
    /// directory to have no manifest yet).
    pub create: Option<usize>,
    /// Items to seed when creating (values `1..=items`).
    pub items: u64,
    /// Routing policy when creating.
    pub policy: RoutePolicy,
    /// Fence durability policy of the pool files.
    pub sync: SyncPolicy,
    /// Per-pool file size in bytes when creating.
    pub pool_bytes: usize,
    /// Drain-and-restore every destination shard after the reshard to
    /// check for loss/duplication (automatic when the verb seeded the
    /// directory itself).
    pub verify: bool,
    /// With `--verify`: assert the directory holds exactly this many items.
    pub expect: Option<u64>,
    /// Key decoder for key-hash directories: an item's key is `item >>
    /// key_shift` (0 = the item is its own key). `None` assumes identity
    /// and warns when the directory routes by key hash, because items
    /// whose keys are encoded in their high bits would be re-routed by
    /// the wrong key and lose per-key FIFO for future keyed enqueues.
    pub key_shift: Option<u32>,
}

impl Default for ReshardVerbConfig {
    fn default() -> Self {
        ReshardVerbConfig {
            dir: std::env::temp_dir().join(format!("harness-reshard-{}", std::process::id())),
            to: 2,
            algorithm: Algorithm::OptUnlinked,
            create: None,
            items: 10_000,
            policy: RoutePolicy::RoundRobin,
            sync: SyncPolicy::ProcessCrash,
            pool_bytes: 64 << 20,
            verify: false,
            expect: None,
            key_shift: None,
        }
    }
}

fn queue_config() -> QueueConfig {
    QueueConfig {
        max_threads: 8,
        area_size: 1 << 20,
    }
}

/// Drains every shard of `queue` (recording the items in per-shard order)
/// and immediately re-enqueues them shard by shard, so the directory's
/// content and per-shard order are unchanged. Returns the drained items.
fn drain_and_restore<Q: RecoverableQueue>(queue: &ShardedQueue<Q>) -> Vec<u64> {
    let mut all = Vec::new();
    for i in 0..queue.shard_count() {
        let start = all.len();
        while let Some(v) = queue.shard(i).dequeue(0) {
            all.push(v);
        }
        for &v in &all[start..] {
            queue.shard(i).enqueue(0, v);
        }
    }
    all
}

/// Runs one `harness reshard` invocation end to end; panics (non-zero
/// exit) on any violated guarantee. Returns the reshard report.
pub fn run_reshard(cfg: &ReshardVerbConfig) -> ReshardReport {
    let orch = RecoveryOrchestrator::available_parallelism();
    let manifest_exists = cfg.dir.join(shard::MANIFEST_FILE).exists();
    let seeded = match cfg.create {
        Some(shards) if !manifest_exists => {
            with_recoverable!(cfg.algorithm, Q => {
                let queue: ShardedQueue<Q> = orch
                    .create_dir(
                        &cfg.dir,
                        ShardConfig {
                            shards,
                            queue: queue_config(),
                            pool: pmem::PoolConfig::test_with_size(cfg.pool_bytes),
                            policy: cfg.policy,
                        },
                        FileConfig::with_size(cfg.pool_bytes).with_sync(cfg.sync),
                    )
                    .expect("reshard: create directory");
                // Under key-hash routing a plain enqueue hashes the thread
                // id, which would pile every seeded item onto one shard;
                // seed each item under its own key instead, matching the
                // identity key extraction the reshard uses.
                use durable_queues::KeyedQueue;
                let key_shift = cfg.key_shift.unwrap_or(0);
                for v in 1..=cfg.items {
                    match cfg.policy {
                        RoutePolicy::KeyHash => queue.enqueue_keyed(0, v >> key_shift, v),
                        _ => queue.enqueue(0, v),
                    }
                }
            });
            println!(
                "created {} with {} shards ({} routing), seeded {} items",
                cfg.dir.display(),
                shards,
                cfg.policy.key(),
                cfg.items
            );
            true
        }
        Some(_) => {
            println!(
                "{} already holds a manifest; resharding it as-is",
                cfg.dir.display()
            );
            false
        }
        None => false,
    };

    if cfg.key_shift.is_none() {
        if let Ok(manifest) = shard::ShardManifest::read(&cfg.dir) {
            if manifest.policy == RoutePolicy::KeyHash {
                eprintln!(
                    "reshard: key-hash directory, assuming each item is its own key; \
                     pass --key-shift B if keys live in the items' high bits, or \
                     per-key FIFO will not survive for future keyed enqueues"
                );
            }
        }
    }
    let key_shift = cfg.key_shift.unwrap_or(0);
    let report = with_recoverable!(cfg.algorithm, Q => orch
        .reshard_dir_with::<Q>(&cfg.dir, cfg.to, queue_config(), None, |v| v >> key_shift)
        .expect("reshard failed"));
    println!("reshard {}: {}", cfg.algorithm.name(), report.summary());

    if seeded || cfg.verify {
        let drained = with_recoverable!(cfg.algorithm, Q => {
            let (queue, _, manifest) = orch
                .open_dir_with_sync::<Q>(&cfg.dir, queue_config(), cfg.sync)
                .expect("reopen resharded directory");
            assert_eq!(manifest.shards(), cfg.to, "manifest must record the new count");
            drain_and_restore(&queue)
        });
        let unique: BTreeSet<u64> = drained.iter().copied().collect();
        assert_eq!(unique.len(), drained.len(), "duplicated item after reshard");
        if seeded {
            let expected: BTreeSet<u64> = (1..=cfg.items).collect();
            assert_eq!(unique, expected, "item set changed across the reshard");
        }
        if let Some(expect) = cfg.expect {
            assert_eq!(
                drained.len() as u64,
                expect,
                "directory holds {} items, expected {expect}",
                drained.len()
            );
        }
        println!(
            "verified: {} items across {} shards, no loss, no duplication",
            drained.len(),
            cfg.to
        );
    }
    report
}

// ---------------------------------------------------------------------
// The SIGKILL-mid-reshard round of `harness restart`
// ---------------------------------------------------------------------

const KEYS: u64 = 8;

fn encode(key: u64, seq: u64) -> u64 {
    (key << 32) | seq
}

/// The hidden `reshard-child` verb: seeds a 4-shard key-hash directory
/// (keys encoded in the items), then reshards it in an endless
/// 4 -> 2 -> 8 -> 4 cycle until killed, acknowledging every completed
/// reshard with one line in `reshard.log`.
pub fn run_reshard_child(algorithm: Algorithm, dir: &Path, sync: SyncPolicy, items: u64) {
    std::fs::create_dir_all(dir).expect("reshard-child: create dir");
    let orch = RecoveryOrchestrator::new(4);
    let per_key = (items / KEYS).max(1);
    with_recoverable!(algorithm, Q => {
        if !dir.join(shard::MANIFEST_FILE).exists() {
            let queue: ShardedQueue<Q> = orch
                .create_dir(
                    dir,
                    ShardConfig {
                        shards: 4,
                        queue: queue_config(),
                        pool: pmem::PoolConfig::test_with_size(32 << 20),
                        policy: RoutePolicy::KeyHash,
                    },
                    FileConfig::with_size(32 << 20).with_sync(sync),
                )
                .expect("reshard-child: create dir");
            use durable_queues::KeyedQueue;
            for seq in 1..=per_key {
                for key in 0..KEYS {
                    queue.enqueue_keyed(0, key, encode(key, seq));
                }
            }
            drop(queue);
            std::fs::write(dir.join("seeded"), b"ok").expect("reshard-child: seeded marker");
        }
        let mut progress = std::fs::File::options()
            .create(true)
            .append(true)
            .open(dir.join("reshard.log"))
            .expect("reshard-child: progress log");
        for to in [2usize, 8, 4].into_iter().cycle() {
            let report = orch
                .reshard_dir_with::<Q>(dir, to, queue_config(), None, |v| v >> 32)
                .expect("reshard-child: reshard");
            progress
                .write_all(format!("R {} {}\n", report.from, report.to).as_bytes())
                .expect("reshard-child: progress ack");
        }
    });
}

/// Outcome of one SIGKILL-mid-reshard round.
#[derive(Clone, Debug)]
pub struct ReshardKillOutcome {
    /// Completed reshards before the kill.
    pub completed_reshards: usize,
    /// How the interrupted reshard was resolved, if one was in flight.
    pub resolved: Option<shard::ReshardResolution>,
    /// Shard count the directory recovered to.
    pub shards_after: usize,
    /// Items validated after recovery.
    pub items: u64,
}

/// Spawns a `reshard-child`, SIGKILLs it at an unpredictable point inside
/// a reshard, then recovers the directory in-process and validates that
/// the item set and per-key FIFO order survived. Panics on any violation.
pub fn run_reshard_kill_round(
    algorithm: Algorithm,
    base_dir: &Path,
    sync: SyncPolicy,
    items: u64,
) -> ReshardKillOutcome {
    let dir = base_dir.join("round-reshard");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create reshard round dir");
    let per_key = (items / KEYS).max(1);

    let exe = std::env::current_exe().expect("harness binary path");
    let mut child = Command::new(exe)
        .args([
            "reshard-child",
            "--algo",
            algorithm.name(),
            "--dir",
            dir.to_str().expect("utf-8 dir"),
            "--sync",
            sync.key(),
            "--items",
            &items.to_string(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn reshard child");

    let count_lines = |path: &Path| {
        std::fs::read(path)
            .map(|raw| raw.iter().filter(|&&b| b == b'\n').count())
            .unwrap_or(0)
    };
    let deadline = Instant::now() + Duration::from_secs(120);
    while !dir.join("seeded").exists() || count_lines(&dir.join("reshard.log")) < 1 {
        if let Some(status) = child.try_wait().expect("poll reshard child") {
            panic!("reshard child exited prematurely ({status}) before resharding");
        }
        assert!(
            Instant::now() < deadline,
            "reshard child made no progress within 120s"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // Land the kill at an unpredictable point inside the next reshard.
    std::thread::sleep(Duration::from_millis(std::process::id() as u64 % 13));
    child.kill().expect("SIGKILL reshard child");
    child.wait().expect("reap reshard child");
    let completed_reshards = count_lines(&dir.join("reshard.log"));

    let resolved = resolve_reshard(&dir).expect("resolve interrupted reshard");
    let orch = RecoveryOrchestrator::new(4);
    let (shards_after, drained) = with_recoverable!(algorithm, Q => {
        let (queue, _, manifest) = orch
            .open_dir_with_sync::<Q>(&dir, queue_config(), sync)
            .expect("recover resharded directory");
        (manifest.shards(), drain_and_restore(&queue))
    });
    assert!(
        [2usize, 4, 8].contains(&shards_after),
        "unexpected shard count {shards_after}"
    );

    // Exact multiset + per-key FIFO: the kill must never lose, duplicate
    // or reorder a key's items, whichever way the reshard resolved.
    let mut last_seq = std::collections::HashMap::new();
    let mut counts = std::collections::HashMap::new();
    for v in &drained {
        let (key, seq) = (v >> 32, v & 0xFFFF_FFFF);
        if let Some(prev) = last_seq.insert(key, seq) {
            assert!(
                seq > prev,
                "per-key FIFO violated for key {key} across the reshard kill"
            );
        }
        *counts.entry(key).or_insert(0u64) += 1;
    }
    for key in 0..KEYS {
        assert_eq!(
            counts.get(&key).copied().unwrap_or(0),
            per_key,
            "key {key} lost or duplicated items across the reshard kill"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    ReshardKillOutcome {
        completed_reshards,
        resolved,
        shards_after,
        items: drained.len() as u64,
    }
}

/// Renders one reshard-kill round's outcome as the verb's report line.
pub fn render_kill_outcome(algorithm: Algorithm, outcome: &ReshardKillOutcome) -> String {
    format!(
        "reshard-kill {}: {} completed reshards, then SIGKILL mid-reshard; {} -> {} shards, \
         {} items intact, per-key FIFO preserved\n",
        algorithm.name(),
        outcome.completed_reshards,
        outcome
            .resolved
            .map_or("no reshard in flight".to_string(), |r| r.summary()),
        outcome.shards_after,
        outcome.items,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshard_verb_seeds_splits_and_verifies() {
        let dir = std::env::temp_dir().join(format!("harness-reshard-verb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ReshardVerbConfig {
            dir: dir.clone(),
            to: 4,
            create: Some(2),
            items: 600,
            pool_bytes: 8 << 20,
            ..ReshardVerbConfig::default()
        };
        let report = run_reshard(&cfg);
        assert_eq!((report.from, report.to), (2, 4));
        assert_eq!(report.items_moved, 600);
        // Second invocation on the now-existing directory: merge back with
        // an exact-count verification (the non-destructive path).
        let cfg = ReshardVerbConfig {
            dir: dir.clone(),
            to: 1,
            create: None,
            verify: true,
            expect: Some(600),
            ..cfg
        };
        let report = run_reshard(&cfg);
        assert_eq!((report.from, report.to), (4, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reshard_verb_spreads_keyhash_seeds_and_honors_key_shift() {
        let dir = std::env::temp_dir().join(format!("harness-reshard-kh-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ReshardVerbConfig {
            dir: dir.clone(),
            to: 2,
            create: Some(4),
            items: 400,
            policy: RoutePolicy::KeyHash,
            pool_bytes: 8 << 20,
            key_shift: Some(3),
            ..ReshardVerbConfig::default()
        };
        let report = run_reshard(&cfg);
        assert_eq!((report.from, report.to), (4, 2));
        assert_eq!(report.items_moved, 400);
        // Keyed seeding spread the items: after the merge, both shards
        // hold something (identity seeding under keyhash would have put
        // everything on thread-0's shard).
        let orch = RecoveryOrchestrator::new(2);
        let (queue, _, _) = orch
            .open_dir::<durable_queues::OptUnlinkedQueue>(&dir, queue_config())
            .unwrap();
        for i in 0..2 {
            assert!(
                queue.shard(i).dequeue(0).is_some(),
                "shard {i} is empty — keyed seeding failed to spread"
            );
        }
        drop(queue);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drain_and_restore_is_identity_on_shard_content() {
        use durable_queues::OptUnlinkedQueue;
        let q = ShardedQueue::<OptUnlinkedQueue>::create(ShardConfig {
            shards: 4,
            queue: QueueConfig::small_test(),
            pool: pmem::PoolConfig::test_with_size(8 << 20),
            policy: RoutePolicy::RoundRobin,
        });
        for i in 1..=100u64 {
            q.enqueue(0, i);
        }
        let drained = drain_and_restore(&q);
        assert_eq!(drained.len(), 100);
        // The queue still holds everything, in the same per-shard order.
        let again = drain_and_restore(&q);
        assert_eq!(drained, again);
    }
}
