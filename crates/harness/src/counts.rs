//! Experiment E7/E8: per-operation persistence-event counts.
//!
//! The paper's analytic claims (Sections 5–6): UnlinkedQ, LinkedQ,
//! OptUnlinkedQ and OptLinkedQ execute exactly one blocking persist operation
//! per queue operation (the Cohen et al. lower bound), and the two Opt queues
//! additionally perform zero accesses to explicitly flushed cache lines
//! (which Section 2.1 shows is simultaneously achievable). This module
//! measures those quantities for every implemented queue.

use crate::algorithms::Algorithm;
use crate::with_recoverable;
use durable_queues::testkit::{self, persist_counts, PersistCounts};
use durable_queues::{
    DurableMsQueue, IzraelevitzQueue, LinkedQueue, MsQueue, NvTraverseQueue, OptLinkedQueue,
    OptUnlinkedQueue, QueueConfig, RecoverableQueue, UnlinkedQueue,
};
use pmem::PoolConfig;
use ptm::{OneFileLiteQueue, RedoOptLiteQueue};
use shard::{RoutePolicy, ShardConfig, ShardedQueue};

/// Per-operation persistence profile of one algorithm.
pub struct CountsRow {
    /// The algorithm measured.
    pub algorithm: Algorithm,
    /// Measured averages (enqueue phase, dequeue phase, combined).
    pub counts: PersistCounts,
}

/// Measures every implemented algorithm over `ops` single-threaded
/// enqueue/dequeue pairs.
pub fn persist_counts_table(ops: u64) -> Vec<CountsRow> {
    Algorithm::all()
        .into_iter()
        .map(|algorithm| CountsRow {
            algorithm,
            counts: match algorithm {
                Algorithm::Msq => persist_counts::<MsQueue>(ops),
                Algorithm::DurableMsq => persist_counts::<DurableMsQueue>(ops),
                Algorithm::Izraelevitz => persist_counts::<IzraelevitzQueue>(ops),
                Algorithm::NvTraverse => persist_counts::<NvTraverseQueue>(ops),
                Algorithm::Unlinked => persist_counts::<UnlinkedQueue>(ops),
                Algorithm::Linked => persist_counts::<LinkedQueue>(ops),
                Algorithm::OptUnlinked => persist_counts::<OptUnlinkedQueue>(ops),
                Algorithm::OptLinked => persist_counts::<OptLinkedQueue>(ops),
                Algorithm::OneFileLite => persist_counts::<OneFileLiteQueue>(ops),
                Algorithm::RedoOptLite => persist_counts::<RedoOptLiteQueue>(ops),
            },
        })
        .collect()
}

/// Like [`persist_counts_table`], but measured through a [`ShardedQueue`]
/// with `shards` shards (counters aggregated across every shard's pool).
/// Verifies that sharding leaves the per-operation persist profile of the
/// inner algorithm intact: shards never share a flush or a fence.
pub fn persist_counts_table_sharded(
    ops: u64,
    shards: usize,
    policy: RoutePolicy,
) -> Vec<CountsRow> {
    Algorithm::all()
        .into_iter()
        .map(|algorithm| CountsRow {
            algorithm,
            counts: with_recoverable!(algorithm, Q => sharded_counts::<Q>(ops, shards, policy)),
        })
        .collect()
}

/// Per-operation persistence costs of `Q` behind a sharded front — the same
/// measurement recipe as the unsharded table, over aggregated counters.
fn sharded_counts<Q: RecoverableQueue>(
    ops: u64,
    shards: usize,
    policy: RoutePolicy,
) -> PersistCounts {
    let q = ShardedQueue::<Q>::create(ShardConfig {
        shards,
        queue: QueueConfig {
            max_threads: 8,
            area_size: 2 << 20,
        },
        pool: PoolConfig::test_with_size(32 << 20),
        policy,
    });
    testkit::persist_counts_on(&q, ops)
}

/// Renders the counts table as one machine-readable JSON experiment object
/// (schema documented in the README under "Machine-readable results").
pub fn counts_json(rows: &[CountsRow], ops: u64, shards: usize, policy: RoutePolicy) -> String {
    let mut obj = crate::jsonio::ExperimentObject::new("counts", "sim", None);
    obj.field("ops", ops);
    obj.field("shards", shards);
    obj.str_field("policy", policy.key());
    for row in rows {
        let c = &row.counts;
        obj.row(format!(
            "{{\"algorithm\": \"{}\", \"enq_fences\": {}, \"deq_fences\": {}, \
             \"enq_flushes\": {}, \"nt_stores_per_op\": {}, \"post_flush_per_op\": {}}}",
            row.algorithm.name(),
            c.enqueue.fences,
            c.dequeue.fences,
            c.enqueue.flushes,
            c.total.nt_stores,
            c.total.post_flush_accesses,
        ));
    }
    obj.finish()
}

/// Renders the counts table.
pub fn render_counts(rows: &[CountsRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "\n=== Persistence operations per queue operation (single-threaded steady state) ===\n",
    );
    out.push_str(&format!(
        "{:<16}{:>14}{:>14}{:>14}{:>14}{:>18}\n",
        "queue", "enq fences", "deq fences", "enq flushes", "nt-stores/op", "post-flush/op"
    ));
    for row in rows {
        let c = &row.counts;
        out.push_str(&format!(
            "{:<16}{:>14.2}{:>14.2}{:>14.2}{:>14.2}{:>18.3}\n",
            row.algorithm.name(),
            c.enqueue.fences,
            c.dequeue.fences,
            c.enqueue.flushes,
            c.total.nt_stores,
            c.total.post_flush_accesses,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_table_reproduces_the_papers_analytic_claims() {
        let rows = persist_counts_table(400);
        let get = |a: Algorithm| rows.iter().find(|r| r.algorithm == a).unwrap();

        // The four new queues meet the one-fence lower bound.
        for alg in [
            Algorithm::Unlinked,
            Algorithm::Linked,
            Algorithm::OptUnlinked,
            Algorithm::OptLinked,
        ] {
            let c = &get(alg).counts;
            assert!(
                (c.enqueue.fences - 1.0).abs() < 0.05,
                "{}: {}",
                alg.name(),
                c.enqueue.fences
            );
            assert!(
                (c.dequeue.fences - 1.0).abs() < 0.05,
                "{}: {}",
                alg.name(),
                c.dequeue.fences
            );
        }
        // The second amendment eliminates post-flush accesses; the first does not.
        assert_eq!(
            get(Algorithm::OptUnlinked).counts.total.post_flush_accesses,
            0.0
        );
        assert_eq!(
            get(Algorithm::OptLinked).counts.total.post_flush_accesses,
            0.0
        );
        assert!(get(Algorithm::Unlinked).counts.total.post_flush_accesses > 0.5);
        assert!(get(Algorithm::DurableMsq).counts.total.post_flush_accesses > 0.5);
        // The baselines fence more than the lower bound.
        assert!(get(Algorithm::DurableMsq).counts.enqueue.fences > 1.5);
        assert!(get(Algorithm::Izraelevitz).counts.enqueue.fences > 3.0);
        // The volatile queue persists nothing.
        assert_eq!(get(Algorithm::Msq).counts.total.fences, 0.0);

        let rendered = render_counts(&rows);
        assert!(rendered.contains("OptLinkedQ"));
    }

    #[test]
    fn counts_json_is_well_formed_and_complete() {
        let rows = persist_counts_table(50);
        let json = counts_json(&rows, 50, 4, RoutePolicy::KeyHash);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
        assert!(json.contains("\"experiment\": \"counts\""));
        assert!(json.contains("\"shards\": 4"));
        assert!(json.contains("\"policy\": \"keyhash\""));
        for alg in Algorithm::all() {
            assert!(json.contains(alg.name()), "missing {}", alg.name());
        }
        // One row object per algorithm, comma-separated except the last.
        assert_eq!(
            json.matches("\"algorithm\"").count(),
            Algorithm::all().len()
        );
        assert!(!json.contains("}\n  ],")); // no trailing comma artifacts
    }

    #[test]
    fn sharding_preserves_the_per_op_persist_profile() {
        // Behind 4 shards, the second-amendment queue still pays exactly one
        // fence per operation and zero post-flush accesses — shards add
        // throughput, not persist cost.
        let counts = super::sharded_counts::<OptUnlinkedQueue>(400, 4, RoutePolicy::RoundRobin);
        assert!((counts.enqueue.fences - 1.0).abs() < 0.05);
        assert!((counts.dequeue.fences - 1.0).abs() < 0.05);
        assert_eq!(counts.total.post_flush_accesses, 0.0);
    }
}
