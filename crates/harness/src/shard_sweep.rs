//! The shard-scaling sweep: a Figure-2-style experiment with the shard
//! count, rather than the thread count, on the x axis.
//!
//! For each shard count the sweep runs one workload at a fixed thread count
//! on a `ShardedQueue` of the chosen algorithm, reporting aggregate
//! throughput, per-shard persist counts (so the persist cost of scaling is
//! attributable shard by shard), and — because a sharded deployment must
//! also *restart* fast — a crash of every shard followed by parallel
//! recovery, timed per shard.

use crate::algorithms::Algorithm;
use crate::with_recoverable;
use crate::workloads::{run_workload, RunConfig, Workload};
use durable_queues::{DurableQueue, QueueConfig, RecoverableQueue};
use pmem::{LatencyModel, PoolConfig, StatsSnapshot};
use shard::{RecoveryOrchestrator, RecoveryReport, RoutePolicy, ShardConfig, ShardedQueue};
use std::sync::Arc;

/// Configuration of one shard-scaling sweep.
#[derive(Clone, Debug)]
pub struct ShardSweepConfig {
    /// Shard counts to sweep (the x axis).
    pub shard_counts: Vec<usize>,
    /// Worker threads at every point.
    pub threads: usize,
    /// Operations per thread at every point.
    pub ops_per_thread: u64,
    /// Total pool budget in bytes, split evenly across the shards.
    pub pool_bytes: usize,
    /// Latency model of the simulated NVRAM.
    pub latency: LatencyModel,
    /// Designated-area size for the node allocator.
    pub area_size: u32,
    /// The algorithm being scaled.
    pub algorithm: Algorithm,
    /// The workload driven at every point.
    pub workload: Workload,
    /// Routing policy.
    pub policy: RoutePolicy,
    /// Worker threads of the recovery orchestrator.
    pub recovery_threads: usize,
    /// Seed for the workload mixes.
    pub seed: u64,
}

impl ShardSweepConfig {
    /// The default sweep: 1/2/4/8 shards of `OptUnlinkedQ` under the
    /// enqueue-dequeue-pairs workload at 4 threads, Optane-like latencies.
    pub fn paper_like() -> Self {
        ShardSweepConfig {
            shard_counts: vec![1, 2, 4, 8],
            threads: 4,
            ops_per_thread: 20_000,
            pool_bytes: 256 << 20,
            latency: LatencyModel::optane_like(),
            area_size: 1 << 20,
            algorithm: Algorithm::OptUnlinked,
            workload: Workload::Pairs,
            policy: RoutePolicy::RoundRobin,
            recovery_threads: 8,
            seed: 0x54A2,
        }
    }

    /// A small sweep for smoke tests and CI.
    pub fn quick() -> Self {
        ShardSweepConfig {
            ops_per_thread: 2_000,
            pool_bytes: 64 << 20,
            ..Self::paper_like()
        }
    }
}

/// One measured point of the shard-scaling sweep.
#[derive(Clone, Debug)]
pub struct ShardScalingRow {
    /// The shard count of this row.
    pub shards: usize,
    /// Aggregate throughput in million operations per second.
    pub mops: f64,
    /// Blocking persists per operation, aggregated over all shards.
    pub fences_per_op: f64,
    /// Persistence counters of each shard during the measured phase.
    pub per_shard: Vec<StatsSnapshot>,
    /// Items left in the queue when the crash hit (what recovery rebuilt).
    pub recovered_items: u64,
    /// Timing of the crash-recovery campaign run after the workload.
    pub recovery: RecoveryReport,
}

/// Runs the whole sweep.
pub fn run_shard_sweep(cfg: &ShardSweepConfig) -> Vec<ShardScalingRow> {
    cfg.shard_counts
        .iter()
        .map(|&shards| with_recoverable!(cfg.algorithm, Q => measure_shard_point::<Q>(cfg, shards)))
        .collect()
}

/// Measures one (algorithm, shard count) point: workload, then crash, then
/// parallel recovery.
fn measure_shard_point<Q: RecoverableQueue + 'static>(
    cfg: &ShardSweepConfig,
    shards: usize,
) -> ShardScalingRow {
    let shard_cfg = ShardConfig::balanced(
        shards,
        QueueConfig {
            max_threads: cfg.threads.max(1),
            area_size: cfg.area_size,
        },
        cfg.pool_bytes,
        PoolConfig {
            size: cfg.pool_bytes,
            latency: cfg.latency,
            deferred_persist: true,
            eviction_probability: 0.0,
            eviction_seed: cfg.seed,
        },
        cfg.policy,
    );
    let queue = Arc::new(ShardedQueue::<Q>::create(shard_cfg));
    let dyn_queue: Arc<dyn DurableQueue> = Arc::clone(&queue) as Arc<dyn DurableQueue>;
    let run_cfg = RunConfig {
        threads: cfg.threads,
        ops_per_thread: cfg.ops_per_thread,
        initial_size: cfg
            .workload
            .default_initial_size(cfg.threads, cfg.ops_per_thread),
        seed: cfg.seed,
    };
    // Warm-up pass (unmeasured): carves every shard's designated areas and
    // — via the drain — retires every warm-up node into the free lists, so
    // the measured pass sees the steady state the paper's timed runs
    // measure, not N shards' worth of one-time allocator setup.
    let _ = run_workload(&dyn_queue, cfg.workload, &run_cfg);
    while dyn_queue.dequeue(0).is_some() {}
    let result = run_workload(&dyn_queue, cfg.workload, &run_cfg);
    let per_shard = queue.per_shard_stats();
    let per_op = result.stats.per_op(result.total_ops);

    // Crash every shard coherently and recover them in parallel.
    let orchestrator = RecoveryOrchestrator::new(cfg.recovery_threads);
    let (recovered, recovery) = orchestrator.crash_and_recover(&queue);
    let mut recovered_items = 0u64;
    while recovered.dequeue(0).is_some() {
        recovered_items += 1;
    }

    ShardScalingRow {
        shards,
        mops: result.mops(),
        fences_per_op: per_op.fences,
        per_shard,
        recovered_items,
        recovery,
    }
}

/// Renders the sweep as one machine-readable JSON experiment object (schema
/// documented in the README under "Machine-readable results").
pub fn shard_sweep_json(cfg: &ShardSweepConfig, rows: &[ShardScalingRow]) -> String {
    let base = rows.first().map(|r| r.mops).unwrap_or(0.0);
    let mut obj = crate::jsonio::ExperimentObject::new("shards", "sim", None);
    obj.str_field("algorithm", cfg.algorithm.name());
    obj.str_field("workload", cfg.workload.key());
    obj.field("threads", cfg.threads);
    obj.field("ops_per_thread", cfg.ops_per_thread);
    obj.str_field("policy", cfg.policy.key());
    obj.field("recovery_threads", cfg.recovery_threads);
    for row in rows {
        let per_shard: Vec<String> = row
            .per_shard
            .iter()
            .zip(&row.recovery.per_shard)
            .enumerate()
            .map(|(s, (stats, rec))| {
                format!(
                    "{{\"shard\": {s}, \"fences\": {}, \"flushes\": {}, \"recovery_ms\": {}}}",
                    stats.fences,
                    stats.flushes,
                    rec.latency.as_secs_f64() * 1e3,
                )
            })
            .collect();
        obj.row(format!(
            "{{\"shards\": {}, \"mops\": {}, \"scaling\": {}, \"fences_per_op\": {}, \
             \"recovered_items\": {}, \"recovery_wall_ms\": {}, \
             \"recovery_critical_path_ms\": {}, \"recovery_sequential_ms\": {}, \
             \"recovery_speedup\": {}, \"per_shard\": [{}]}}",
            row.shards,
            row.mops,
            if base > 0.0 { row.mops / base } else { 0.0 },
            row.fences_per_op,
            row.recovered_items,
            row.recovery.wall.as_secs_f64() * 1e3,
            row.recovery.critical_path().as_secs_f64() * 1e3,
            row.recovery.sequential_cost().as_secs_f64() * 1e3,
            row.recovery.speedup(),
            per_shard.join(", "),
        ));
    }
    obj.finish()
}

/// Renders the sweep as a scaling table plus per-shard persist counts.
pub fn render_shard_sweep(cfg: &ShardSweepConfig, rows: &[ShardScalingRow]) -> String {
    let mut out = format!(
        "\n=== Shard scaling — {} — {} ({} threads, {} routing) ===\n",
        cfg.workload.name(),
        cfg.algorithm.name(),
        cfg.threads,
        cfg.policy.key()
    );
    out.push_str(&format!(
        "{:>7}{:>10}{:>9}{:>11}{:>13}{:>14}{:>15}{:>10}\n",
        "shards",
        "Mops/s",
        "scaling",
        "fences/op",
        "recovered",
        "rec-wall(ms)",
        "rec-shard(ms)",
        "rec-par"
    ));
    let base = rows.first().map(|r| r.mops).unwrap_or(0.0);
    for row in rows {
        out.push_str(&format!(
            "{:>7}{:>10.3}{:>8.2}x{:>11.3}{:>13}{:>14.3}{:>15.3}{:>9.2}x\n",
            row.shards,
            row.mops,
            if base > 0.0 { row.mops / base } else { 0.0 },
            row.fences_per_op,
            row.recovered_items,
            row.recovery.wall.as_secs_f64() * 1e3,
            row.recovery.critical_path().as_secs_f64() * 1e3,
            row.recovery.speedup(),
        ));
    }
    out.push_str("\nper-shard persist counts (measured phase):\n");
    for row in rows {
        out.push_str(&format!("  {} shard(s):", row.shards));
        for (i, s) in row.per_shard.iter().enumerate() {
            out.push_str(&format!(
                " [{}] fences={} flushes={}",
                i, s.fences, s.flushes
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ShardSweepConfig {
        ShardSweepConfig {
            shard_counts: vec![1, 2],
            threads: 2,
            ops_per_thread: 300,
            pool_bytes: 32 << 20,
            latency: LatencyModel::ZERO,
            area_size: 256 * 1024,
            algorithm: Algorithm::OptUnlinked,
            workload: Workload::Pairs,
            policy: RoutePolicy::RoundRobin,
            recovery_threads: 2,
            seed: 3,
        }
    }

    #[test]
    fn sweep_produces_one_row_per_shard_count_with_recovery() {
        let cfg = tiny();
        let rows = run_shard_sweep(&cfg);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.mops > 0.0);
            assert_eq!(row.per_shard.len(), row.shards);
            assert_eq!(row.recovery.per_shard.len(), row.shards);
            // Pairs leaves the 10 pre-fill items (plus at most a small
            // imbalance) in the queue; recovery must find them again.
            assert!(row.recovered_items >= 1, "nothing recovered");
        }
        let rendered = render_shard_sweep(&cfg, &rows);
        assert!(rendered.contains("Shard scaling"));
        assert!(rendered.contains("per-shard persist counts"));
    }

    #[test]
    fn shard_sweep_json_is_well_formed_and_complete() {
        let cfg = tiny();
        let rows = run_shard_sweep(&cfg);
        let json = shard_sweep_json(&cfg, &rows);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
        assert!(json.contains("\"experiment\": \"shards\""));
        assert!(json.contains("\"workload\": \"pairs\""));
        assert!(json.contains("\"recovery_speedup\""));
        assert_eq!(json.matches("\"shards\":").count(), rows.len());
        // Per-shard arrays carry one entry per shard of the row.
        assert_eq!(
            json.matches("\"shard\":").count(),
            rows.iter().map(|r| r.shards).sum::<usize>()
        );
    }

    #[test]
    fn every_algorithm_survives_a_small_sharded_sweep_point() {
        for alg in [Algorithm::DurableMsq, Algorithm::RedoOptLite] {
            let cfg = ShardSweepConfig {
                algorithm: alg,
                shard_counts: vec![2],
                ..tiny()
            };
            let rows = run_shard_sweep(&cfg);
            assert_eq!(rows[0].per_shard.len(), 2, "{}", alg.name());
        }
    }
}
