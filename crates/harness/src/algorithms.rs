//! The set of evaluated queue algorithms, as named in the paper's Figure 2.

use durable_queues::{
    DurableMsQueue, DurableQueue, IzraelevitzQueue, LinkedQueue, MsQueue, NvTraverseQueue,
    OptLinkedQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue, UnlinkedQueue,
};
use pmem::PmemPool;
use ptm::{OneFileLiteQueue, RedoOptLiteQueue};
use shard::{ShardConfig, ShardedQueue};
use std::sync::Arc;

/// Dispatches from a runtime [`Algorithm`] value to its concrete
/// [`RecoverableQueue`] type: `with_recoverable!(alg, Q => expr)` evaluates
/// `expr` with `Q` bound to the algorithm's type. This is how generic
/// compositions (`ShardedQueue<Q>`, `persist_counts::<Q>`) are driven from
/// command-line algorithm names.
#[macro_export]
macro_rules! with_recoverable {
    ($alg:expr, $Q:ident => $body:expr) => {{
        use $crate::algorithms::Algorithm;
        match $alg {
            Algorithm::Msq => {
                type $Q = $crate::durable_queues::MsQueue;
                $body
            }
            Algorithm::DurableMsq => {
                type $Q = $crate::durable_queues::DurableMsQueue;
                $body
            }
            Algorithm::Izraelevitz => {
                type $Q = $crate::durable_queues::IzraelevitzQueue;
                $body
            }
            Algorithm::NvTraverse => {
                type $Q = $crate::durable_queues::NvTraverseQueue;
                $body
            }
            Algorithm::Unlinked => {
                type $Q = $crate::durable_queues::UnlinkedQueue;
                $body
            }
            Algorithm::Linked => {
                type $Q = $crate::durable_queues::LinkedQueue;
                $body
            }
            Algorithm::OptUnlinked => {
                type $Q = $crate::durable_queues::OptUnlinkedQueue;
                $body
            }
            Algorithm::OptLinked => {
                type $Q = $crate::durable_queues::OptLinkedQueue;
                $body
            }
            Algorithm::OneFileLite => {
                type $Q = $crate::ptm::OneFileLiteQueue;
                $body
            }
            Algorithm::RedoOptLite => {
                type $Q = $crate::ptm::RedoOptLiteQueue;
                $body
            }
        }
    }};
}

/// Every queue algorithm the harness can run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Volatile Michael–Scott queue (not in the paper's figure; reference only).
    Msq,
    /// Thinned Friedman et al. queue — the ratio baseline of Figure 2.
    DurableMsq,
    /// General-transform baseline.
    Izraelevitz,
    /// NVTraverse baseline.
    NvTraverse,
    /// First amendment, unlinked.
    Unlinked,
    /// First amendment, linked.
    Linked,
    /// Second amendment, unlinked.
    OptUnlinked,
    /// Second amendment, linked.
    OptLinked,
    /// PTM baseline with eager log persistence (stands in for OneFileQ).
    OneFileLite,
    /// PTM baseline with batched log persistence (stands in for RedoOptQ).
    RedoOptLite,
}

impl Algorithm {
    /// The nine durable queues evaluated in the paper's Figure 2 (in the
    /// legend's order), i.e. everything except the volatile MSQ.
    pub fn figure2_set() -> Vec<Algorithm> {
        vec![
            Algorithm::OptUnlinked,
            Algorithm::OptLinked,
            Algorithm::Unlinked,
            Algorithm::Linked,
            Algorithm::DurableMsq,
            Algorithm::Izraelevitz,
            Algorithm::NvTraverse,
            Algorithm::OneFileLite,
            Algorithm::RedoOptLite,
        ]
    }

    /// Every implemented algorithm.
    pub fn all() -> Vec<Algorithm> {
        let mut v = vec![Algorithm::Msq];
        v.extend(Self::figure2_set());
        v
    }

    /// The algorithm's display name (the paper's legend label where one exists).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Msq => "MSQ (volatile)",
            Algorithm::DurableMsq => "DurableMSQ",
            Algorithm::Izraelevitz => "IzraelevitzQ",
            Algorithm::NvTraverse => "NVTraverseQ",
            Algorithm::Unlinked => "UnlinkedQ",
            Algorithm::Linked => "LinkedQ",
            Algorithm::OptUnlinked => "OptUnlinkedQ",
            Algorithm::OptLinked => "OptLinkedQ",
            Algorithm::OneFileLite => "OneFileLiteQ",
            Algorithm::RedoOptLite => "RedoOptLiteQ",
        }
    }

    /// Parses a (case-insensitive) algorithm name.
    pub fn parse(s: &str) -> Option<Algorithm> {
        let k = s
            .to_ascii_lowercase()
            .replace(['-', '_', ' ', '(', ')'], "");
        Some(match k.as_str() {
            "msq" | "msqvolatile" => Algorithm::Msq,
            "durablemsq" | "friedman" => Algorithm::DurableMsq,
            "izraelevitz" | "izraelevitzq" => Algorithm::Izraelevitz,
            "nvtraverse" | "nvtraverseq" => Algorithm::NvTraverse,
            "unlinked" | "unlinkedq" => Algorithm::Unlinked,
            "linked" | "linkedq" => Algorithm::Linked,
            "optunlinked" | "optunlinkedq" => Algorithm::OptUnlinked,
            "optlinked" | "optlinkedq" => Algorithm::OptLinked,
            "onefile" | "onefilelite" | "onefileliteq" | "onefileq" => Algorithm::OneFileLite,
            "redoopt" | "redooptlite" | "redooptliteq" | "redooptq" => Algorithm::RedoOptLite,
            _ => return None,
        })
    }

    /// Builds a fresh queue of this algorithm on `pool`.
    pub fn create(&self, pool: Arc<PmemPool>, config: QueueConfig) -> Arc<dyn DurableQueue> {
        match self {
            Algorithm::Msq => Arc::new(MsQueue::create(pool, config)),
            Algorithm::DurableMsq => Arc::new(DurableMsQueue::create(pool, config)),
            Algorithm::Izraelevitz => Arc::new(IzraelevitzQueue::create(pool, config)),
            Algorithm::NvTraverse => Arc::new(NvTraverseQueue::create(pool, config)),
            Algorithm::Unlinked => Arc::new(UnlinkedQueue::create(pool, config)),
            Algorithm::Linked => Arc::new(LinkedQueue::create(pool, config)),
            Algorithm::OptUnlinked => Arc::new(OptUnlinkedQueue::create(pool, config)),
            Algorithm::OptLinked => Arc::new(OptLinkedQueue::create(pool, config)),
            Algorithm::OneFileLite => Arc::new(OneFileLiteQueue::create(pool, config)),
            Algorithm::RedoOptLite => Arc::new(RedoOptLiteQueue::create(pool, config)),
        }
    }

    /// Runs this algorithm's recovery procedure on a crashed-and-restarted
    /// pool.
    pub fn recover(&self, pool: Arc<PmemPool>, config: QueueConfig) -> Arc<dyn DurableQueue> {
        match self {
            Algorithm::Msq => Arc::new(MsQueue::recover(pool, config)),
            Algorithm::DurableMsq => Arc::new(DurableMsQueue::recover(pool, config)),
            Algorithm::Izraelevitz => Arc::new(IzraelevitzQueue::recover(pool, config)),
            Algorithm::NvTraverse => Arc::new(NvTraverseQueue::recover(pool, config)),
            Algorithm::Unlinked => Arc::new(UnlinkedQueue::recover(pool, config)),
            Algorithm::Linked => Arc::new(LinkedQueue::recover(pool, config)),
            Algorithm::OptUnlinked => Arc::new(OptUnlinkedQueue::recover(pool, config)),
            Algorithm::OptLinked => Arc::new(OptLinkedQueue::recover(pool, config)),
            Algorithm::OneFileLite => Arc::new(OneFileLiteQueue::recover(pool, config)),
            Algorithm::RedoOptLite => Arc::new(RedoOptLiteQueue::recover(pool, config)),
        }
    }

    /// Builds a fresh [`ShardedQueue`] of this algorithm: `config.shards`
    /// shards, each on its own fresh pool.
    pub fn create_sharded(&self, config: ShardConfig) -> Arc<dyn DurableQueue> {
        with_recoverable!(*self, Q => Arc::new(ShardedQueue::<Q>::create(config)))
    }

    /// Builds a fresh **file-backed** [`ShardedQueue`] of this algorithm in
    /// `dir`: one pool file per shard plus the shard-map manifest (see
    /// `shard::RecoveryOrchestrator::create_dir`).
    pub fn create_sharded_dir(
        &self,
        dir: &std::path::Path,
        config: ShardConfig,
        file: store::FileConfig,
    ) -> Arc<dyn DurableQueue> {
        let orch = shard::RecoveryOrchestrator::new(config.shards);
        with_recoverable!(*self, Q => Arc::new(
            orch.create_dir::<Q>(dir, config, file)
                .expect("create file-backed shard directory")
        ))
    }

    /// Whether the paper evaluates the algorithm on every workload. The PTM
    /// baselines are evaluated only on the first two workloads ("we had
    /// problems running it on the other workloads" — Section 10); we follow
    /// suit because their fixed node region is not sized for the
    /// multi-million-element pre-fills.
    pub fn supports_large_prefill(&self) -> bool {
        !matches!(self, Algorithm::OneFileLite | Algorithm::RedoOptLite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolConfig;

    #[test]
    fn parse_roundtrips_every_name() {
        for alg in Algorithm::all() {
            assert_eq!(Algorithm::parse(alg.name()), Some(alg), "{}", alg.name());
        }
        assert_eq!(Algorithm::parse("nonsense"), None);
    }

    #[test]
    fn figure2_set_has_nine_queues_and_excludes_msq() {
        let set = Algorithm::figure2_set();
        assert_eq!(set.len(), 9);
        assert!(!set.contains(&Algorithm::Msq));
    }

    #[test]
    fn every_algorithm_builds_and_works() {
        for alg in Algorithm::all() {
            let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(16 << 20)));
            let q = alg.create(pool, QueueConfig::small_test());
            q.enqueue(0, 1);
            q.enqueue(0, 2);
            assert_eq!(q.dequeue(0), Some(1), "{}", alg.name());
            assert_eq!(q.dequeue(0), Some(2));
            assert_eq!(q.dequeue(0), None);
        }
    }

    #[test]
    fn every_durable_algorithm_recovers_its_content() {
        for alg in Algorithm::figure2_set() {
            let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(16 << 20)));
            let q = alg.create(Arc::clone(&pool), QueueConfig::small_test());
            for i in 1..=10 {
                q.enqueue(0, i);
            }
            assert_eq!(q.dequeue(0), Some(1));
            let recovered_pool = Arc::new(pool.simulate_crash());
            let r = alg.recover(recovered_pool, QueueConfig::small_test());
            let rest: Vec<u64> = std::iter::from_fn(|| r.dequeue(0)).collect();
            assert_eq!(rest, (2..=10).collect::<Vec<_>>(), "{}", alg.name());
        }
    }
}
