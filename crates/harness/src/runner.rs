//! Thread sweeps over (workload × algorithm) — the machinery that
//! regenerates the panels of the paper's Figure 2.

use crate::algorithms::Algorithm;
use crate::workloads::{run_workload, RunConfig, Workload};
use durable_queues::QueueConfig;
use pmem::{LatencyModel, PmemPool, PoolConfig};
use shard::{RoutePolicy, ShardConfig};
use std::path::PathBuf;
use std::sync::Arc;
use store::{FileConfig, FilePool, SyncPolicy};

/// Which pool backend a sweep runs on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// The simulated in-DRAM pool with the configured latency model (the
    /// paper's setup).
    #[default]
    Sim,
    /// Memory-mapped pool files under `dir` (one file per measured point,
    /// one file per shard for sharded points; removed after each point).
    /// The simulated latency model is ignored: file pools pay their real
    /// flush/fence/`msync` costs.
    File {
        /// Directory the per-point pool files are created in.
        dir: PathBuf,
        /// Fence durability policy of the pool files.
        sync: SyncPolicy,
        /// Power-fail group-commit window in nanoseconds (`None` =
        /// per-thread fences); see [`store::FileConfig::group_commit`].
        group_commit: Option<u64>,
    },
}

/// Configuration of a full panel sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Thread counts to sweep (the x axis).
    pub threads: Vec<usize>,
    /// Operations per thread at each point.
    pub ops_per_thread: u64,
    /// Initial queue size; `None` uses the workload's paper default.
    pub initial_size: Option<u64>,
    /// Overrides the dequeue-only pre-fill only (the paper's 12M-item
    /// pre-fill, scaled); unlike `initial_size` it leaves the other panels'
    /// initial sizes at their defaults.
    pub prefill: Option<u64>,
    /// Pool size in bytes for every run (split across shards when
    /// `shards > 1`).
    pub pool_bytes: usize,
    /// Growth step in bytes for file-backed pools (`0` = fixed-size, the
    /// default). Lets a deliberately undersized `--pool-bytes` panel run to
    /// completion through elastic growth; ignored by the simulated backend,
    /// which is always fixed-size.
    pub grow_step: usize,
    /// Latency model of the simulated NVRAM.
    pub latency: LatencyModel,
    /// Designated-area size for the node allocator.
    pub area_size: u32,
    /// Algorithms to include (columns).
    pub algorithms: Vec<Algorithm>,
    /// Number of shards each queue is partitioned into (1 = the paper's
    /// unsharded setup).
    pub shards: usize,
    /// Routing policy used when `shards > 1`.
    pub policy: RoutePolicy,
    /// Pool backend every point runs on (simulated or file-backed).
    pub backend: BackendChoice,
    /// Seed for the workload mixes.
    pub seed: u64,
}

impl SweepConfig {
    /// A sweep approximating the paper's setup (1–16 threads, Optane-like
    /// latencies). Operation counts are per-point and chosen so a full panel
    /// completes in seconds rather than the paper's 5-second timed runs.
    pub fn paper_like() -> Self {
        SweepConfig {
            threads: vec![1, 2, 4, 8, 12, 16],
            ops_per_thread: 20_000,
            initial_size: None,
            prefill: None,
            pool_bytes: 256 << 20,
            grow_step: 0,
            latency: LatencyModel::optane_like(),
            area_size: 4 << 20,
            algorithms: Algorithm::figure2_set(),
            shards: 1,
            policy: RoutePolicy::RoundRobin,
            backend: BackendChoice::Sim,
            seed: 0xF162,
        }
    }

    /// A small sweep for smoke tests and CI.
    pub fn quick() -> Self {
        SweepConfig {
            threads: vec![1, 2, 4],
            ops_per_thread: 2_000,
            initial_size: None,
            prefill: None,
            pool_bytes: 64 << 20,
            grow_step: 0,
            latency: LatencyModel::optane_like(),
            area_size: 1 << 20,
            algorithms: Algorithm::figure2_set(),
            shards: 1,
            policy: RoutePolicy::RoundRobin,
            backend: BackendChoice::Sim,
            seed: 0xF162,
        }
    }

    /// The initial queue size for `workload` at one sweep point, after the
    /// `--initial-size` and `--prefill` overrides.
    pub fn initial_size_for(&self, workload: Workload, threads: usize) -> u64 {
        self.initial_size
            .or(match workload {
                Workload::DequeueOnly => self.prefill,
                _ => None,
            })
            .unwrap_or_else(|| workload.default_initial_size(threads, self.ops_per_thread))
    }
}

/// One measured cell of a panel.
#[derive(Clone, Copy, Debug)]
pub struct PanelCell {
    /// The algorithm measured.
    pub algorithm: Algorithm,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Blocking persists per operation observed during the run.
    pub fences_per_op: f64,
    /// Post-flush accesses per operation observed during the run.
    pub post_flush_per_op: f64,
}

/// One row (thread count) of a panel.
#[derive(Clone, Debug)]
pub struct PanelRow {
    /// The thread count of this row.
    pub threads: usize,
    /// Measured cells, in the order of `SweepConfig::algorithms` (algorithms
    /// that do not run this workload are omitted).
    pub cells: Vec<PanelCell>,
}

impl PanelRow {
    /// The cell for `alg`, if it was measured.
    pub fn cell(&self, alg: Algorithm) -> Option<&PanelCell> {
        self.cells.iter().find(|c| c.algorithm == alg)
    }

    /// Throughput of `alg` relative to DurableMSQ in the same row — the
    /// paper's right-hand graphs.
    pub fn ratio_to_durable_msq(&self, alg: Algorithm) -> Option<f64> {
        let base = self.cell(Algorithm::DurableMsq)?.mops;
        Some(self.cell(alg)?.mops / base)
    }
}

/// Returns `true` if the paper evaluates `alg` on `workload` (the PTM
/// baselines appear only in the first two panels).
pub fn algorithm_runs_workload(alg: Algorithm, workload: Workload) -> bool {
    match alg {
        Algorithm::OneFileLite | Algorithm::RedoOptLite => {
            matches!(workload, Workload::RandomOps | Workload::Pairs)
        }
        _ => true,
    }
}

/// Measures a single (algorithm, workload, threads) point on a fresh pool.
pub fn measure_point(
    alg: Algorithm,
    workload: Workload,
    threads: usize,
    sweep: &SweepConfig,
) -> PanelCell {
    let queue_cfg = QueueConfig {
        max_threads: threads.max(1),
        area_size: sweep.area_size,
    };
    let pool_cfg = PoolConfig {
        size: sweep.pool_bytes,
        latency: sweep.latency,
        deferred_persist: true,
        eviction_probability: 0.0,
        eviction_seed: sweep.seed,
    };
    // Path of this point's file-backed pool (file backend only), removed
    // after the measurement so a sweep does not accumulate pool files.
    let mut cleanup: Option<(PathBuf, bool)> = None;
    let point_tag = || {
        format!(
            "{}-{}-{}t",
            workload.key(),
            alg.name().replace([' ', '(', ')'], ""),
            threads
        )
    };
    let queue = if sweep.shards > 1 {
        let shard_cfg = ShardConfig::balanced(
            sweep.shards,
            queue_cfg,
            sweep.pool_bytes,
            pool_cfg,
            sweep.policy,
        );
        match &sweep.backend {
            BackendChoice::Sim => alg.create_sharded(shard_cfg),
            BackendChoice::File {
                dir,
                sync,
                group_commit,
            } => {
                let subdir = dir.join(format!("{}-{}shards", point_tag(), sweep.shards));
                cleanup = Some((subdir.clone(), true));
                let file_cfg = FileConfig::with_size(shard_cfg.pool.size)
                    .with_sync(*sync)
                    .with_growth(sweep.grow_step)
                    .with_group_commit(*group_commit);
                alg.create_sharded_dir(&subdir, shard_cfg, file_cfg)
            }
        }
    } else {
        let pool = match &sweep.backend {
            BackendChoice::Sim => Arc::new(PmemPool::new(pool_cfg)),
            BackendChoice::File {
                dir,
                sync,
                group_commit,
            } => {
                std::fs::create_dir_all(dir).expect("create --dir");
                let path = dir.join(format!("{}.pool", point_tag()));
                cleanup = Some((path.clone(), false));
                FilePool::create(
                    &path,
                    FileConfig::with_size(sweep.pool_bytes)
                        .with_sync(*sync)
                        .with_growth(sweep.grow_step)
                        .with_group_commit(*group_commit),
                )
                .expect("create pool file")
                .into_pool()
            }
        };
        alg.create(pool, queue_cfg)
    };
    let run_cfg = RunConfig {
        threads,
        ops_per_thread: sweep.ops_per_thread,
        initial_size: sweep.initial_size_for(workload, threads),
        seed: sweep.seed,
    };
    let result = run_workload(&queue, workload, &run_cfg);
    let per_op = result.stats.per_op(result.total_ops);
    drop(queue); // close file pools before deleting their backing files
    if let Some((path, is_dir)) = cleanup {
        let _ = if is_dir {
            std::fs::remove_dir_all(&path)
        } else {
            std::fs::remove_file(&path)
        };
    }
    PanelCell {
        algorithm: alg,
        mops: result.mops(),
        fences_per_op: per_op.fences,
        post_flush_per_op: per_op.post_flush_accesses,
    }
}

/// Runs a whole panel: every configured algorithm at every thread count.
pub fn run_panel(workload: Workload, sweep: &SweepConfig) -> Vec<PanelRow> {
    sweep
        .threads
        .iter()
        .map(|&threads| PanelRow {
            threads,
            cells: sweep
                .algorithms
                .iter()
                .filter(|&&alg| algorithm_runs_workload(alg, workload))
                .map(|&alg| measure_point(alg, workload, threads, sweep))
                .collect(),
        })
        .collect()
}

/// Renders a panel as two text tables: absolute throughput (left graph of the
/// paper's panel) and ratio to DurableMSQ (right graph).
pub fn render_panel(workload: Workload, sweep: &SweepConfig, rows: &[PanelRow]) -> String {
    let mut out = String::new();
    let algs: Vec<Algorithm> = sweep.algorithms.clone();
    let mut sharding = if sweep.shards > 1 {
        format!(" [{} shards, {} routing]", sweep.shards, sweep.policy.key())
    } else {
        String::new()
    };
    if let BackendChoice::File { sync, .. } = &sweep.backend {
        sharding.push_str(&format!(" [file backend, {}]", sync.key()));
    }
    let header = |title: &str| {
        let mut s = format!("\n=== {}{} — {} ===\n", workload.name(), sharding, title);
        s.push_str(&format!("{:>8}", "threads"));
        for alg in &algs {
            s.push_str(&format!("{:>15}", alg.name()));
        }
        s.push('\n');
        s
    };

    out.push_str(&header("throughput (Mops/s)"));
    for row in rows {
        out.push_str(&format!("{:>8}", row.threads));
        for alg in &algs {
            match row.cell(*alg) {
                Some(c) => out.push_str(&format!("{:>15.3}", c.mops)),
                None => out.push_str(&format!("{:>15}", "-")),
            }
        }
        out.push('\n');
    }

    out.push_str(&header("ops per DurableMSQ ops"));
    for row in rows {
        out.push_str(&format!("{:>8}", row.threads));
        for alg in &algs {
            match row.ratio_to_durable_msq(*alg) {
                Some(r) => out.push_str(&format!("{:>15.2}", r)),
                None => out.push_str(&format!("{:>15}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> SweepConfig {
        SweepConfig {
            threads: vec![1, 2],
            ops_per_thread: 400,
            initial_size: None,
            prefill: None,
            pool_bytes: 32 << 20,
            grow_step: 0,
            latency: LatencyModel::ZERO,
            area_size: 256 * 1024,
            algorithms: vec![
                Algorithm::DurableMsq,
                Algorithm::OptUnlinked,
                Algorithm::RedoOptLite,
            ],
            shards: 1,
            policy: RoutePolicy::RoundRobin,
            backend: BackendChoice::Sim,
            seed: 11,
        }
    }

    #[test]
    fn panel_produces_one_row_per_thread_count() {
        let sweep = tiny_sweep();
        let rows = run_panel(Workload::Pairs, &sweep);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.cells.len(), 3);
            assert!(row.ratio_to_durable_msq(Algorithm::OptUnlinked).unwrap() > 0.0);
        }
        let rendered = render_panel(Workload::Pairs, &sweep, &rows);
        assert!(rendered.contains("OptUnlinkedQ"));
        assert!(rendered.contains("ops per DurableMSQ ops"));
    }

    #[test]
    fn ptm_queues_are_skipped_outside_the_first_two_workloads() {
        assert!(algorithm_runs_workload(
            Algorithm::RedoOptLite,
            Workload::Pairs
        ));
        assert!(!algorithm_runs_workload(
            Algorithm::RedoOptLite,
            Workload::EnqueueOnly
        ));
        let sweep = tiny_sweep();
        let rows = run_panel(Workload::EnqueueOnly, &sweep);
        assert_eq!(rows[0].cells.len(), 2, "PTM queue should be skipped");
        let rendered = render_panel(Workload::EnqueueOnly, &sweep, &rows);
        assert!(rendered.contains("-"));
    }

    #[test]
    fn sharded_points_run_and_aggregate_stats() {
        let mut sweep = tiny_sweep();
        sweep.shards = 4;
        let cell = measure_point(Algorithm::OptUnlinked, Workload::Pairs, 2, &sweep);
        assert!(cell.mops > 0.0);
        // Aggregated across shards the fence count stays close to the
        // one-per-op bound (a dequeue that scans an empty shard pays an
        // extra fence, so exact equality is not expected).
        assert!(
            cell.fences_per_op >= 0.9 && cell.fences_per_op < 2.5,
            "fences/op {}",
            cell.fences_per_op
        );
        let rendered = render_panel(Workload::Pairs, &sweep, &[]);
        assert!(rendered.contains("[4 shards, rr routing]"));
    }

    #[test]
    fn prefill_override_applies_to_dequeue_only_alone() {
        let mut sweep = tiny_sweep();
        sweep.prefill = Some(5000);
        assert_eq!(sweep.initial_size_for(Workload::DequeueOnly, 2), 5000);
        assert_eq!(sweep.initial_size_for(Workload::Pairs, 2), 10);
        sweep.initial_size = Some(77);
        assert_eq!(sweep.initial_size_for(Workload::DequeueOnly, 2), 77);
        assert_eq!(sweep.initial_size_for(Workload::Pairs, 2), 77);
    }

    #[test]
    fn file_backend_points_run_and_clean_up_after_themselves() {
        let dir = std::env::temp_dir().join(format!("runner-file-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sweep = tiny_sweep();
        sweep.backend = BackendChoice::File {
            dir: dir.clone(),
            sync: SyncPolicy::ProcessCrash,
            group_commit: None,
        };
        // Single pool file per point.
        let cell = measure_point(Algorithm::DurableMsq, Workload::Pairs, 1, &sweep);
        assert!(cell.mops > 0.0);
        assert!(
            (cell.fences_per_op - 2.0).abs() < 1.0,
            "real fences counted"
        );
        // Sharded: a manifest directory per point.
        sweep.shards = 2;
        let cell = measure_point(Algorithm::OptUnlinked, Workload::Pairs, 2, &sweep);
        assert!(cell.mops > 0.0);
        // Every per-point file/directory was removed after its measurement.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| rd.map(|e| e.unwrap().path()).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let rendered = render_panel(Workload::Pairs, &sweep, &[]);
        assert!(rendered.contains("[file backend, process-crash]"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn undersized_file_pools_grow_instead_of_exhausting() {
        let dir = std::env::temp_dir().join(format!("runner-grow-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sweep = tiny_sweep();
        // Far below a single designated area: without growth the very first
        // allocation would abort the run with PoolExhausted.
        sweep.pool_bytes = 1 << 16;
        sweep.grow_step = 4 << 20;
        sweep.backend = BackendChoice::File {
            dir: dir.clone(),
            sync: SyncPolicy::ProcessCrash,
            group_commit: None,
        };
        let cell = measure_point(Algorithm::OptUnlinked, Workload::Pairs, 2, &sweep);
        assert!(cell.mops > 0.0, "the point must complete via growth");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_op_fence_counts_surface_in_the_cells() {
        let sweep = tiny_sweep();
        let cell = measure_point(Algorithm::OptUnlinked, Workload::Pairs, 1, &sweep);
        assert!(
            (cell.fences_per_op - 1.0).abs() < 0.1,
            "fences/op {}",
            cell.fences_per_op
        );
        assert_eq!(cell.post_flush_per_op, 0.0);
    }
}
