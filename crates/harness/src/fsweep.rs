//! The `fsweep` experiment: power-fail fence throughput, per-thread vs
//! group commit.
//!
//! Under [`store::SyncPolicy::PowerFail`] every fence `msync`s the fencing
//! thread's dirty pages — N producers fencing concurrently issue N
//! independent rounds of syscalls against the same pool file, all
//! serialized by the kernel on the file's mapping locks. The group-commit
//! layer ([`store::FileConfig::group_commit`]) batches those rounds: one
//! leader per commit submits every concurrent producer's pages as minimal
//! contiguous ranges.
//!
//! This sweep measures exactly that amortization: `producers` threads each
//! dirty `pages` private pages and fence, `fences` times over, and the
//! aggregate fence rate (`producers * fences / wall`) is reported per
//! producer count × fence mode (per-thread, plus one group-commit mode per
//! configured window). The JSON object (`"experiment": "group_commit"`)
//! feeds the perf-track regression gate.

use std::sync::Arc;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use pmem::PmemPool;
use store::{FileConfig, FilePool, SyncPolicy};

/// Configuration for the [`run_fsweep`] measurement.
#[derive(Clone, Debug)]
pub struct FsweepConfig {
    /// Producer counts to sweep (one table block each).
    pub producers: Vec<usize>,
    /// Fences each producer performs per measured point.
    pub fences: u64,
    /// Distinct private pages each producer dirties before every fence.
    pub pages: usize,
    /// Group-commit windows to sweep, in microseconds (`0` = submit
    /// immediately). The per-thread baseline always runs too.
    pub windows_us: Vec<u64>,
    /// Pool file size in bytes.
    pub pool_bytes: usize,
}

impl Default for FsweepConfig {
    fn default() -> Self {
        FsweepConfig {
            producers: vec![1, 2, 4, 8],
            fences: 400,
            pages: 16,
            windows_us: vec![0, 50, 200],
            pool_bytes: 16 << 20,
        }
    }
}

impl FsweepConfig {
    /// CI-sized variant: small enough for the perf-track smoke lane.
    pub fn quick() -> Self {
        FsweepConfig {
            producers: vec![1, 2, 4, 8],
            fences: 150,
            windows_us: vec![0, 100],
            pool_bytes: 8 << 20,
            ..FsweepConfig::default()
        }
    }
}

/// One measured (producer count × fence mode) point.
#[derive(Clone, Debug)]
pub struct FsweepRow {
    /// Concurrent fencing producers.
    pub producers: usize,
    /// `"per-thread"` or `"group-commit"`.
    pub mode: &'static str,
    /// Group-commit window in microseconds (`None` for the per-thread row).
    pub window_us: Option<u64>,
    /// Wall-clock time of the point.
    pub wall: Duration,
    /// Aggregate fence rate: `producers * fences / wall`.
    pub fences_per_sec: f64,
}

fn sweep_pool(tag: &str, cfg: &FsweepConfig, group_commit: Option<u64>) -> Arc<PmemPool> {
    let path =
        std::env::temp_dir().join(format!("harness-fsweep-{tag}-{}.pool", std::process::id()));
    let pool = FilePool::create(
        &path,
        FileConfig::with_size(cfg.pool_bytes)
            .with_sync(SyncPolicy::PowerFail)
            .with_group_commit(group_commit),
    )
    .expect("fsweep: create pool file")
    .into_pool();
    // The mapping keeps the file alive; nothing is left behind in $TMPDIR.
    #[cfg(unix)]
    let _ = std::fs::remove_file(&path);
    #[cfg(not(unix))]
    let _ = path;
    pool
}

/// Runs one point: `producers` threads each flush `pages` private pages
/// and fence, `fences` times, all against one power-fail pool.
fn measure(
    cfg: &FsweepConfig,
    producers: usize,
    mode: &'static str,
    window_us: Option<u64>,
) -> FsweepRow {
    let tag = format!("{producers}p-{mode}{}", window_us.unwrap_or(0));
    let pool = sweep_pool(&tag, cfg, window_us.map(|us| us * 1_000));
    let page = store::mmap::page_size() as u32;
    // One contiguous region, producer `t` owning pages [t*K, (t+1)*K) of
    // it: adjacent across producers, so a coalesced batch merges into few
    // contiguous msync ranges — the geometry the group-commit layer is
    // built to exploit.
    let region = pool.alloc_raw(producers as u32 * cfg.pages as u32 * page, 64);
    let barrier = Barrier::new(producers + 1);
    let mut wall = Duration::ZERO;
    std::thread::scope(|scope| {
        for tid in 0..producers {
            let (pool, barrier) = (&pool, &barrier);
            let pages = cfg.pages;
            let fences = cfg.fences;
            scope.spawn(move || {
                let base = region + (tid * pages) as u32 * page;
                barrier.wait();
                for i in 0..fences {
                    for k in 0..pages {
                        let off = base + k as u32 * page;
                        pool.store_u64(off, i);
                        pool.flush(tid, off);
                    }
                    pool.sfence(tid);
                }
                barrier.wait();
            });
        }
        barrier.wait(); // release the producers together
        let started = Instant::now();
        barrier.wait(); // all producers done
        wall = started.elapsed();
    });
    let total = (producers as u64 * cfg.fences) as f64;
    FsweepRow {
        producers,
        mode,
        window_us,
        wall,
        fences_per_sec: total / wall.as_secs_f64(),
    }
}

/// Runs the full sweep: per producer count, the per-thread baseline plus
/// one group-commit row per configured window.
pub fn run_fsweep(cfg: &FsweepConfig) -> Vec<FsweepRow> {
    assert!(!cfg.producers.is_empty(), "fsweep: no producer counts");
    assert!(cfg.fences > 0 && cfg.pages > 0, "fsweep: empty measurement");
    let mut rows = Vec::new();
    for &producers in &cfg.producers {
        rows.push(measure(cfg, producers, "per-thread", None));
        for &us in &cfg.windows_us {
            rows.push(measure(cfg, producers, "group-commit", Some(us)));
        }
    }
    rows
}

/// The headline number: at the highest swept producer count, the best
/// group-commit rate over the per-thread rate. Returns
/// `(producers, speedup, best_window_us)`.
pub fn speedup_at_max(rows: &[FsweepRow]) -> Option<(usize, f64, u64)> {
    let max_p = rows.iter().map(|r| r.producers).max()?;
    let base = rows
        .iter()
        .find(|r| r.producers == max_p && r.window_us.is_none())?;
    let best = rows
        .iter()
        .filter(|r| r.producers == max_p && r.window_us.is_some())
        .max_by(|a, b| a.fences_per_sec.total_cmp(&b.fences_per_sec))?;
    Some((
        max_p,
        best.fences_per_sec / base.fences_per_sec,
        best.window_us.unwrap_or(0),
    ))
}

/// Renders the sweep as the verb's report table.
pub fn render_fsweep(cfg: &FsweepConfig, rows: &[FsweepRow]) -> String {
    let mut out = format!(
        "\n=== fsweep: power-fail fence throughput, {} fences x {} pages per producer ===\n\
         {:<11}{:<14}{:>11}{:>11}{:>15}\n",
        cfg.fences, cfg.pages, "producers", "mode", "window us", "wall ms", "fences/s (agg)"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11}{:<14}{:>11}{:>11.1}{:>15.0}\n",
            r.producers,
            r.mode,
            r.window_us
                .map(|us| us.to_string())
                .unwrap_or_else(|| String::from("-")),
            r.wall.as_secs_f64() * 1e3,
            r.fences_per_sec,
        ));
    }
    if let Some((producers, speedup, window)) = speedup_at_max(rows) {
        out.push_str(&format!(
            "group-commit speedup at {producers} producers: {speedup:.2}x \
             (best window {window} us)\n"
        ));
    }
    out
}

/// Renders the rows as one machine-readable JSON experiment object
/// (`"experiment": "group_commit"`; schema documented in the README under
/// "Machine-readable results").
pub fn fsweep_json(cfg: &FsweepConfig, rows: &[FsweepRow]) -> String {
    let mut obj = crate::jsonio::ExperimentObject::new("group_commit", "file", Some("power-fail"));
    obj.field("fences", cfg.fences);
    obj.field("pages", cfg.pages);
    for r in rows {
        obj.row(format!(
            "{{\"producers\": {}, \"mode\": \"{}\", \"window_us\": {}, \
             \"wall_ms\": {}, \"fences_per_sec\": {}}}",
            r.producers,
            r.mode,
            r.window_us
                .map(|us| us.to_string())
                .unwrap_or_else(|| String::from("null")),
            r.wall.as_secs_f64() * 1e3,
            r.fences_per_sec,
        ));
    }
    if let Some((producers, speedup, window)) = speedup_at_max(rows) {
        obj.section(
            "speedup",
            format!(
                "{{\"producers\": {producers}, \"speedup\": {speedup}, \
                 \"best_window_us\": {window}}}"
            ),
        );
    }
    obj.finish()
}

/// Parses the `fsweep` verb's flags into a config (shared with tests).
pub fn config_from_flags(flags: &std::collections::HashMap<String, String>) -> FsweepConfig {
    let mut cfg = if flags.contains_key("quick") {
        FsweepConfig::quick()
    } else {
        FsweepConfig::default()
    };
    if let Some(p) = flags.get("producers") {
        cfg.producers = p
            .split(',')
            .map(|s| s.trim().parse().expect("bad --producers"))
            .collect();
    }
    if let Some(f) = flags.get("fences") {
        cfg.fences = f.parse().expect("bad --fences");
    }
    if let Some(p) = flags.get("pages") {
        cfg.pages = p.parse().expect("bad --pages");
    }
    if let Some(w) = flags.get("windows") {
        cfg.windows_us = w
            .split(',')
            .map(|s| s.trim().parse().expect("bad --windows"))
            .collect();
    }
    if let Some(p) = flags.get("pool-bytes") {
        cfg.pool_bytes = p.parse().expect("bad --pool-bytes");
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FsweepConfig {
        FsweepConfig {
            producers: vec![1, 2],
            fences: 20,
            pages: 4,
            windows_us: vec![0],
            pool_bytes: 4 << 20,
        }
    }

    #[test]
    fn fsweep_measures_both_modes_per_producer_count() {
        let cfg = tiny();
        let rows = run_fsweep(&cfg);
        assert_eq!(rows.len(), 4); // 2 producer counts x (baseline + 1 window)
        for r in &rows {
            assert!(r.fences_per_sec > 0.0 && r.fences_per_sec.is_finite());
        }
        assert_eq!(rows[0].mode, "per-thread");
        assert_eq!(rows[1].mode, "group-commit");
        let (producers, speedup, window) = speedup_at_max(&rows).unwrap();
        assert_eq!(producers, 2);
        assert_eq!(window, 0);
        assert!(speedup > 0.0);
        let rendered = render_fsweep(&cfg, &rows);
        assert!(rendered.contains("per-thread"));
        assert!(rendered.contains("group-commit speedup at 2 producers"));
    }

    #[test]
    fn fsweep_json_is_well_formed() {
        let cfg = tiny();
        let rows = run_fsweep(&cfg);
        let json = fsweep_json(&cfg, &rows);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"experiment\": \"group_commit\""));
        assert!(json.contains("\"mode\": \"per-thread\""));
        assert!(json.contains("\"mode\": \"group-commit\""));
        assert!(json.contains("\"window_us\": null"));
        assert!(json.contains("\"speedup\":"));
    }

    #[test]
    fn flags_override_the_defaults() {
        let mut flags = std::collections::HashMap::new();
        flags.insert("quick".into(), "true".into());
        flags.insert("producers".into(), "1,4".into());
        flags.insert("windows".into(), "0,25".into());
        flags.insert("fences".into(), "33".into());
        let cfg = config_from_flags(&flags);
        assert_eq!(cfg.producers, vec![1, 4]);
        assert_eq!(cfg.windows_us, vec![0, 25]);
        assert_eq!(cfg.fences, 33);
        assert_eq!(cfg.pages, FsweepConfig::quick().pages);
    }
}
