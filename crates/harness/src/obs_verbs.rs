//! The observability verbs: `harness metrics` and `harness blackbox`.
//!
//! ```text
//! harness metrics  [--ops N] [--dir PATH] [--sync S] [--json PATH]
//! harness blackbox (--dir PATH | PATH) [--json PATH]
//! ```
//!
//! `metrics` drives a short leased producer/consumer round — the one
//! workload that touches every instrument family at once (core
//! enqueue/dequeue, store mapping/fence/msync, shard routing, lease
//! grant/ack/nack/compaction) — then prints the process-global
//! [`obs::snapshot`] as Prometheus text exposition, or as a `metrics`
//! experiment object with `--json`.
//!
//! `blackbox` replays a crash-surviving `BLACKBOX.ring` left behind by a
//! killed process (the restart verb's children write one; so does any
//! deployment that installs a [`obs::flight::FlightRecorder`]) and
//! pretty-prints the lifecycle events that survived, torn tail included in
//! the accounting. Point it at the deployment directory or at the ring
//! file itself.

use crate::jsonio::ExperimentObject;
use crate::lease_verb::{run_lease, LeaseVerbConfig};
use obs::flight::{FlightRecorder, Replay};
use obs::MetricsSnapshot;
use std::path::{Path, PathBuf};
use store::SyncPolicy;

/// Drives the warm-up workload for `harness metrics` and returns the
/// process-global snapshot. `ops` items flow through a 2-shard leased
/// deployment under `dir` (removed again afterwards by the sweep itself).
///
/// A flight recorder is installed in `dir` first, so the run leaves a
/// `BLACKBOX.ring` of its lifecycle events behind — `harness blackbox DIR`
/// replays it, which makes `metrics` + `blackbox` a self-contained
/// tour of both halves of the observability layer.
pub fn warmed_snapshot(ops: u64, dir: PathBuf, sync: SyncPolicy) -> MetricsSnapshot {
    std::fs::create_dir_all(&dir).expect("metrics: create dir");
    let recorder = FlightRecorder::create_or_open(&dir, obs::flight::DEFAULT_CAPACITY)
        .expect("metrics: create flight recorder");
    obs::flight::install(recorder);
    let cfg = LeaseVerbConfig {
        shard_counts: vec![2],
        ops,
        nack_percent: 5,
        dir,
        sync,
        pool_bytes: 16 << 20,
        ..LeaseVerbConfig::default()
    };
    let _rows = run_lease(&cfg);
    obs::snapshot()
}

/// Renders a snapshot as the `metrics` experiment object: one row per
/// instrument (`type` distinguishes counters from histograms), with the
/// full snapshot also embedded in the shared `meta` block like every other
/// verb's output.
pub fn metrics_json(snap: &MetricsSnapshot, sync: SyncPolicy) -> String {
    let mut obj = ExperimentObject::new("metrics", "file", Some(sync.key()));
    obj.field("counters", snap.counters.len());
    obj.field("histograms", snap.histograms.len());
    for (name, value) in &snap.counters {
        obj.row(format!(
            "{{\"instrument\": \"{name}\", \"type\": \"counter\", \"value\": {value}}}"
        ));
    }
    for (name, hist) in &snap.histograms {
        obj.row(format!(
            "{{\"instrument\": \"{name}\", \"type\": \"histogram\", \"count\": {}, \
             \"sum\": {}, \"p50\": {}, \"p99\": {}}}",
            hist.count(),
            hist.sum,
            hist.quantile(0.5),
            hist.quantile(0.99),
        ));
    }
    obj.finish()
}

/// Resolves the `blackbox` verb's target: a directory means its
/// `BLACKBOX.ring`; anything else is taken as the ring file itself.
pub fn resolve_ring_path(target: &Path) -> PathBuf {
    if target.is_dir() {
        FlightRecorder::ring_path(target)
    } else {
        target.to_path_buf()
    }
}

/// Pretty-prints a replayed ring: header line, then one line per
/// surviving event in sequence order.
pub fn render_blackbox(path: &Path, replay: &Replay) -> String {
    let mut out = format!(
        "=== blackbox: {} ===\n{} event(s) replayed (capacity {}, max seq {}, {} torn)\n",
        path.display(),
        replay.events.len(),
        replay.capacity,
        replay.max_seq(),
        replay.torn,
    );
    for e in &replay.events {
        out.push_str(&format!(
            "{:>8}  {:<22} {}\n",
            e.seq,
            e.kind_name(),
            e.describe()
        ));
    }
    out
}

/// Renders a replayed ring as the `blackbox` experiment object.
pub fn blackbox_json(path: &Path, replay: &Replay) -> String {
    let mut obj = ExperimentObject::new("blackbox", "file", None);
    obj.str_field("ring", &path.display().to_string());
    obj.field("capacity", replay.capacity);
    obj.field("torn", replay.torn);
    obj.field("max_seq", replay.max_seq());
    for e in &replay.events {
        obj.row(format!(
            "{{\"seq\": {}, \"kind\": \"{}\", \"raw_kind\": {}, \"a\": {}, \"b\": {}, \
             \"wall_ns\": {}}}",
            e.seq,
            e.kind_name(),
            e.kind,
            e.a,
            e.b,
            e.wall_ns,
        ));
    }
    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::flight::EventKind;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("obs-verbs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn blackbox_render_and_json_cover_the_replayed_events() {
        let dir = tmp("render");
        let rec = FlightRecorder::create_or_open(&dir, 64).unwrap();
        rec.record(EventKind::PoolGrowthCommit, 1, 4096);
        rec.record(EventKind::LeaseGrant, 7, 42);
        drop(rec);

        let path = resolve_ring_path(&dir);
        assert!(path.ends_with("BLACKBOX.ring"));
        let replay = obs::flight::replay(&path).unwrap();
        assert_eq!(replay.events.len(), 2);

        let text = render_blackbox(&path, &replay);
        assert!(text.contains("2 event(s) replayed"));
        assert!(text.contains("pool-growth-commit"));
        assert!(text.contains("lease 7 granted for item 42"));

        let json = blackbox_json(&path, &replay);
        assert!(json.contains("\"experiment\": \"blackbox\""));
        assert!(json.contains("\"kind\": \"pool-growth-commit\""));
        assert!(json.contains("\"kind\": \"lease-grant\""));
        assert!(json.contains("\"torn\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resolve_ring_path_passes_files_through() {
        let p = Path::new("/nonexistent/some.ring");
        assert_eq!(resolve_ring_path(p), p);
    }

    #[test]
    fn metrics_json_renders_counter_and_histogram_rows() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("core.enqueue".into(), 9);
        let mut h = obs::HistogramSnapshot {
            buckets: vec![0; 64],
            sum: 30,
        };
        h.buckets[2] = 3;
        snap.histograms.insert("store.msync_ns".into(), h);
        let json = metrics_json(&snap, SyncPolicy::ProcessCrash);
        assert!(json.contains("\"experiment\": \"metrics\""));
        assert!(json
            .contains("{\"instrument\": \"core.enqueue\", \"type\": \"counter\", \"value\": 9}"));
        assert!(json.contains("\"type\": \"histogram\""));
        assert!(json.contains("\"count\": 3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
