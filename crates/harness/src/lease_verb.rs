//! The `harness lease` verb — peek-lock producer/consumer throughput —
//! plus the consumer-SIGKILL round the `restart` verb runs.
//!
//! ```text
//! harness lease [--shards 1,2,4] [--ops N] [--nack-percent P]
//!               [--consumers N] [--groups G] [--work-ns X]
//!               [--algo A] [--policy rr|keyhash|load]
//!               [--sync process-crash|power-fail] [--dir PATH]
//!               [--json PATH] [--quick]
//! ```
//!
//! One producer thread enqueues `--ops` items through a file-backed
//! [`lease::LeasedQueue`] deployment while one consumer drains it under
//! peek-lock: every delivery is acked, except that `--nack-percent` of
//! the items are nacked on their first delivery and acked on redelivery,
//! so the measured rate includes real redelivery traffic and every run
//! exercises the ack log's grant/ack/pend record mix. The table reports
//! end-to-end consumed throughput, the ack rate, and the lease-layer
//! counters (granted / redelivered / nacked / compactions).
//!
//! With `--groups G` (or `--consumers N` > 1) the sweep switches to the
//! consumer-group deployment ([`lease::GroupedQueue`]): `G` groups each
//! see every item, `N` consumers per group compete for them, and each
//! delivery waits `--work-ns` nanoseconds of simulated per-item work
//! (a yielding wait modelling downstream I/O, outside any lock) so
//! within-group scaling is visible rather than hidden behind an empty
//! critical section. The table reports the aggregate acked rate
//! (`G * ops / wall`) plus the per-group segment rotation/retirement
//! counters summed across groups.
//!
//! The SIGKILL round ([`run_lease_kill_round`]) spawns this same binary
//! as a `lease-child`, kills it while it holds live leases, reopens the
//! directory in-process and validates the delivery contract: unacked
//! leases redeliver exactly once with a bumped delivery count, confirmed
//! acks never resurface, and the child's deliberately-poisoned item sits
//! alone in the dead-letter queue.

use crate::algorithms::Algorithm;
use crate::with_recoverable;
use durable_queues::QueueConfig;
use lease::{
    create_grouped_dir, create_leased_dir, open_leased_dir, GroupDirConfig, GroupStats,
    LeaseDirConfig, LeaseStats, Redelivery,
};
use shard::{RecoveryOrchestrator, RoutePolicy, ShardConfig};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};
use store::{FileConfig, SyncPolicy};

/// Configuration of one `harness lease` throughput run.
#[derive(Clone, Debug)]
pub struct LeaseVerbConfig {
    /// The base-queue algorithm under the lease layer.
    pub algorithm: Algorithm,
    /// Shard counts to sweep (one table row each).
    pub shard_counts: Vec<usize>,
    /// Items the producer enqueues (and the consumer must ack).
    pub ops: u64,
    /// Percent of items nacked on first delivery (acked on redelivery).
    pub nack_percent: u32,
    /// Working directory for the pool files and ack log.
    pub dir: PathBuf,
    /// Fence durability policy of the file pools and the ack log.
    pub sync: SyncPolicy,
    /// Routing policy of the sharded base.
    pub policy: RoutePolicy,
    /// Per-pool file size in bytes.
    pub pool_bytes: usize,
    /// Power-fail group-commit window in nanoseconds for the shard pools
    /// (`None` = per-thread fences); see [`store::FileConfig::group_commit`].
    pub group_commit: Option<u64>,
    /// Competing consumers per group (`> 1`, or `groups > 1`, selects the
    /// grouped sweep).
    pub consumers: usize,
    /// Consumer groups, each seeing every item.
    pub groups: usize,
    /// Simulated per-delivery work in nanoseconds (grouped sweep only),
    /// burned outside every lock.
    pub work_ns: u64,
}

impl Default for LeaseVerbConfig {
    fn default() -> Self {
        LeaseVerbConfig {
            algorithm: Algorithm::OptUnlinked,
            shard_counts: vec![1, 2, 4],
            ops: 200_000,
            nack_percent: 5,
            dir: std::env::temp_dir().join(format!("harness-lease-{}", std::process::id())),
            sync: SyncPolicy::ProcessCrash,
            policy: RoutePolicy::RoundRobin,
            pool_bytes: 64 << 20,
            group_commit: None,
            consumers: 1,
            groups: 1,
            work_ns: 20_000,
        }
    }
}

impl LeaseVerbConfig {
    /// The CI-sized variant (`--quick`).
    pub fn quick() -> Self {
        LeaseVerbConfig {
            shard_counts: vec![1, 2],
            ops: 20_000,
            pool_bytes: 32 << 20,
            ..LeaseVerbConfig::default()
        }
    }

    /// Whether this configuration selects the consumer-group sweep.
    pub fn is_grouped(&self) -> bool {
        self.groups > 1 || self.consumers > 1
    }
}

fn queue_config() -> QueueConfig {
    QueueConfig {
        max_threads: 8,
        area_size: 1 << 20,
    }
}

/// One row of the lease throughput table.
#[derive(Clone, Debug)]
pub struct LeaseRow {
    /// Shard count of this row's deployment.
    pub shards: usize,
    /// Wall-clock time from first enqueue to last ack.
    pub wall: Duration,
    /// End-to-end consumed (acked) items per second.
    pub acked_per_sec: f64,
    /// Lease-layer counters at the end of the run.
    pub stats: LeaseStats,
    /// Ack-log records on disk at the end of the run (post-compaction).
    pub log_records: u64,
}

/// Runs the producer/consumer sweep: one row per shard count.
pub fn run_lease(cfg: &LeaseVerbConfig) -> Vec<LeaseRow> {
    cfg.shard_counts.iter().map(|&s| run_one(cfg, s)).collect()
}

fn run_one(cfg: &LeaseVerbConfig, shards: usize) -> LeaseRow {
    let dir = cfg.dir.join(format!("sweep-{shards}shards"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("lease: create sweep dir");
    let orch = RecoveryOrchestrator::new(shards);
    let lease_cfg = LeaseDirConfig {
        // Long enough that nothing expires mid-run: redelivery traffic
        // comes from the nacks, not from timeouts.
        lease_timeout: Duration::from_secs(600),
        max_deliveries: 8,
        sync: cfg.sync,
        ..LeaseDirConfig::default()
    };
    let (wall, stats, log_records) = with_recoverable!(cfg.algorithm, Q => {
        let queue = create_leased_dir::<Q>(
            &orch,
            &dir,
            ShardConfig {
                shards,
                queue: queue_config(),
                pool: pmem::PoolConfig::test_with_size(cfg.pool_bytes),
                policy: cfg.policy,
            },
            FileConfig::with_size(cfg.pool_bytes)
                .with_sync(cfg.sync)
                .with_group_commit(cfg.group_commit),
            &lease_cfg,
        )
        .expect("lease: create leased dir");
        let started = Instant::now();
        std::thread::scope(|scope| {
            let q = &queue;
            scope.spawn(move || {
                for seq in 1..=cfg.ops {
                    q.enqueue(0, seq);
                }
            });
            scope.spawn(move || {
                let mut acked = 0u64;
                while acked < cfg.ops {
                    let Some(l) = q.dequeue(1) else {
                        std::hint::spin_loop();
                        continue;
                    };
                    if l.delivery_count == 1 && l.item % 100 < cfg.nack_percent as u64 {
                        // First delivery of a nack-designated item: send it
                        // around again; it is acked on redelivery below.
                        q.nack(1, &l).expect("lease: nack");
                    } else {
                        q.ack(&l).expect("lease: ack");
                        acked += 1;
                    }
                }
            });
        });
        let wall = started.elapsed();
        (wall, queue.stats(), queue.log_records())
    });
    let _ = std::fs::remove_dir_all(&dir);
    LeaseRow {
        shards,
        wall,
        acked_per_sec: cfg.ops as f64 / wall.as_secs_f64(),
        stats,
        log_records,
    }
}

/// Renders the sweep as the verb's table.
pub fn render_lease(cfg: &LeaseVerbConfig, rows: &[LeaseRow]) -> String {
    let mut out = format!(
        "=== lease: peek-lock producer/consumer, {} x {} ops, {}% nacked once [{}] ===\n\
         {:>7} {:>10} {:>12} {:>9} {:>12} {:>8} {:>13} {:>12}\n",
        cfg.algorithm.name(),
        cfg.ops,
        cfg.nack_percent,
        cfg.sync.key(),
        "shards",
        "wall ms",
        "acked/s",
        "granted",
        "redelivered",
        "nacked",
        "compactions",
        "log records",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>7} {:>10.1} {:>12.0} {:>9} {:>12} {:>8} {:>13} {:>12}\n",
            r.shards,
            r.wall.as_secs_f64() * 1e3,
            r.acked_per_sec,
            r.stats.granted,
            r.stats.redelivered,
            r.stats.nacked,
            r.stats.compactions,
            r.log_records,
        ));
    }
    out
}

/// Renders the sweep as one machine-readable JSON experiment object
/// (schema documented in the README under "Machine-readable results").
pub fn lease_json(cfg: &LeaseVerbConfig, rows: &[LeaseRow]) -> String {
    let mut obj = crate::jsonio::ExperimentObject::new("lease", "file", Some(cfg.sync.key()));
    obj.str_field("algorithm", cfg.algorithm.name());
    obj.str_field("policy", cfg.policy.key());
    obj.str_field("sync", cfg.sync.key());
    obj.field("ops", cfg.ops);
    obj.field("nack_percent", cfg.nack_percent);
    obj.field(
        "group_commit_us",
        cfg.group_commit
            .map(|ns| (ns / 1_000).to_string())
            .unwrap_or_else(|| String::from("null")),
    );
    for r in rows {
        obj.row(format!(
            "{{\"shards\": {}, \"wall_ms\": {}, \"acked_per_sec\": {}, \
             \"granted\": {}, \"redelivered\": {}, \"nacked\": {}, \
             \"dead_lettered\": {}, \"compactions\": {}, \"log_records\": {}}}",
            r.shards,
            r.wall.as_secs_f64() * 1e3,
            r.acked_per_sec,
            r.stats.granted,
            r.stats.redelivered,
            r.stats.nacked,
            r.stats.dead_lettered,
            r.stats.compactions,
            r.log_records,
        ));
    }
    obj.finish()
}

// ---------------------------------------------------------------------
// Consumer-group sweep (`--consumers N --groups G`)
// ---------------------------------------------------------------------

/// One row of the consumer-group throughput table.
#[derive(Clone, Debug)]
pub struct LeaseGroupRow {
    /// Shard count of this row's deployment.
    pub shards: usize,
    /// Wall-clock time from first enqueue to last ack in any group.
    pub wall: Duration,
    /// Aggregate acked items per second across all groups
    /// (`groups * ops / wall`).
    pub acked_per_sec: f64,
    /// Lease-layer counters summed across groups.
    pub stats: GroupStats,
}

fn grouped_queue_config(cfg: &LeaseVerbConfig) -> QueueConfig {
    QueueConfig {
        // One producer slot plus one per consumer thread, floor 8 so tiny
        // runs match the ungrouped sweep's sizing.
        max_threads: (1 + cfg.groups * cfg.consumers).max(8),
        area_size: 1 << 20,
    }
}

fn group_names(groups: usize) -> Vec<String> {
    (0..groups).map(|g| format!("g{g}")).collect()
}

/// Waits roughly `work_ns` nanoseconds without touching any lock,
/// yielding the CPU the whole time — the per-item work of a real consumer
/// is dominated by downstream I/O (an RPC, a database write), and a
/// yielding wait is what lets those waits overlap across competing
/// consumers, so within-group scaling stays visible even on a single
/// core (a spin would just timeshare).
fn simulate_work(work_ns: u64) {
    if work_ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < work_ns {
        std::thread::yield_now();
    }
}

/// Runs the consumer-group sweep: one row per shard count; every group
/// must ack all `ops` items through `consumers` competing consumers.
pub fn run_lease_groups(cfg: &LeaseVerbConfig) -> Vec<LeaseGroupRow> {
    cfg.shard_counts
        .iter()
        .map(|&s| run_one_grouped(cfg, s))
        .collect()
}

fn run_one_grouped(cfg: &LeaseVerbConfig, shards: usize) -> LeaseGroupRow {
    let dir = cfg.dir.join(format!(
        "groups-{shards}shards-{}x{}",
        cfg.groups, cfg.consumers
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("lease-groups: create sweep dir");
    let orch = RecoveryOrchestrator::new(shards);
    let group_cfg = GroupDirConfig {
        // Long enough that nothing expires mid-run: redelivery traffic
        // comes from the nacks, not from timeouts.
        lease_timeout: Duration::from_secs(600),
        sync: cfg.sync,
        // Low enough that every run rotates and retires segments, so the
        // reported rotation counters always carry signal.
        rotate_records: 8_192,
        ..GroupDirConfig::new(group_names(cfg.groups))
    };
    let (wall, stats) = with_recoverable!(cfg.algorithm, Q => {
        let queue = create_grouped_dir::<Q>(
            &orch,
            &dir,
            ShardConfig {
                shards,
                queue: grouped_queue_config(cfg),
                pool: pmem::PoolConfig::test_with_size(cfg.pool_bytes),
                policy: cfg.policy,
            },
            FileConfig::with_size(cfg.pool_bytes)
                .with_sync(cfg.sync)
                .with_group_commit(cfg.group_commit),
            &group_cfg,
        )
        .expect("lease-groups: create grouped dir");
        let handles = queue.handles();
        let started = Instant::now();
        std::thread::scope(|scope| {
            let q = &queue;
            scope.spawn(move || {
                for seq in 1..=cfg.ops {
                    q.enqueue(0, seq);
                }
            });
            for (g, handle) in handles.iter().enumerate() {
                let acked = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
                for c in 0..cfg.consumers {
                    let handle = handle.clone();
                    let acked = std::sync::Arc::clone(&acked);
                    let tid = 1 + g * cfg.consumers + c;
                    scope.spawn(move || {
                        use std::sync::atomic::Ordering;
                        while acked.load(Ordering::Relaxed) < cfg.ops {
                            let Some(l) = handle.dequeue(tid) else {
                                // Yield, don't spin: a miss means another
                                // thread owns the next step, and burning
                                // the core starves it.
                                std::thread::yield_now();
                                continue;
                            };
                            if l.delivery_count == 1 && l.item % 100 < cfg.nack_percent as u64 {
                                handle.nack(tid, &l).expect("lease-groups: nack");
                            } else {
                                simulate_work(cfg.work_ns);
                                handle.ack(&l).expect("lease-groups: ack");
                                acked.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            }
        });
        let wall = started.elapsed();
        let mut stats = GroupStats::default();
        for handle in &handles {
            let s = handle.stats();
            assert_eq!(s.acked, cfg.ops, "group {} under-acked", handle.name());
            stats.dispatched += s.dispatched;
            stats.granted += s.granted;
            stats.redelivered += s.redelivered;
            stats.acked += s.acked;
            stats.nacked += s.nacked;
            stats.rotations += s.rotations;
            stats.segments_retired += s.segments_retired;
            stats.log_records += s.log_records;
            stats.segments += s.segments;
        }
        (wall, stats)
    });
    let _ = std::fs::remove_dir_all(&dir);
    LeaseGroupRow {
        shards,
        wall,
        acked_per_sec: (cfg.groups as u64 * cfg.ops) as f64 / wall.as_secs_f64(),
        stats,
    }
}

/// Renders the consumer-group sweep as the verb's table.
pub fn render_lease_groups(cfg: &LeaseVerbConfig, rows: &[LeaseGroupRow]) -> String {
    let mut out = format!(
        "=== lease-groups: {} group(s) x {} consumer(s), {} x {} ops, \
         {}% nacked once, {} ns/item [{}] ===\n\
         {:>7} {:>10} {:>14} {:>9} {:>12} {:>10} {:>8} {:>12} {:>9}\n",
        cfg.groups,
        cfg.consumers,
        cfg.algorithm.name(),
        cfg.ops,
        cfg.nack_percent,
        cfg.work_ns,
        cfg.sync.key(),
        "shards",
        "wall ms",
        "acked/s (agg)",
        "granted",
        "redelivered",
        "rotations",
        "retired",
        "log records",
        "segments",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>7} {:>10.1} {:>14.0} {:>9} {:>12} {:>10} {:>8} {:>12} {:>9}\n",
            r.shards,
            r.wall.as_secs_f64() * 1e3,
            r.acked_per_sec,
            r.stats.granted,
            r.stats.redelivered,
            r.stats.rotations,
            r.stats.segments_retired,
            r.stats.log_records,
            r.stats.segments,
        ));
    }
    out
}

/// Renders the consumer-group sweep as one machine-readable JSON
/// experiment object (`"experiment": "lease_groups"`).
pub fn lease_groups_json(cfg: &LeaseVerbConfig, rows: &[LeaseGroupRow]) -> String {
    let mut obj =
        crate::jsonio::ExperimentObject::new("lease_groups", "file", Some(cfg.sync.key()));
    obj.str_field("algorithm", cfg.algorithm.name());
    obj.str_field("policy", cfg.policy.key());
    obj.str_field("sync", cfg.sync.key());
    obj.field("ops", cfg.ops);
    obj.field("nack_percent", cfg.nack_percent);
    obj.field("consumers", cfg.consumers);
    obj.field("groups", cfg.groups);
    obj.field("work_ns", cfg.work_ns);
    for r in rows {
        obj.row(format!(
            "{{\"shards\": {}, \"wall_ms\": {}, \"acked_per_sec\": {}, \
             \"granted\": {}, \"redelivered\": {}, \"nacked\": {}, \
             \"dead_lettered\": {}, \"rotations\": {}, \"segments_retired\": {}, \
             \"log_records\": {}, \"segments\": {}}}",
            r.shards,
            r.wall.as_secs_f64() * 1e3,
            r.acked_per_sec,
            r.stats.granted,
            r.stats.redelivered,
            r.stats.nacked,
            r.stats.dead_lettered,
            r.stats.rotations,
            r.stats.segments_retired,
            r.stats.log_records,
            r.stats.segments,
        ));
    }
    obj.finish()
}

// ---------------------------------------------------------------------
// Consumer-SIGKILL round (run by `harness restart`)
// ---------------------------------------------------------------------

const KILL_SHARDS: usize = 2;
/// The item the child nacks past its budget (outside the `1..` sequence),
/// so the kill always finds exactly one known item in the DLQ.
const POISON: u64 = u64::MAX - 1;

fn kill_lease_config(sync: SyncPolicy) -> LeaseDirConfig {
    LeaseDirConfig {
        // Nothing may expire during the round: redelivery must come from
        // the crash, not from timeouts.
        lease_timeout: Duration::from_secs(300),
        max_deliveries: 3,
        sync,
        ..LeaseDirConfig::default()
    }
}

/// The hidden `lease-child` verb: creates a leased deployment, dead-letters
/// one poison item, then produces and consumes forever — acking most
/// deliveries (ack-logged), nacking some, and holding every `item % 7 == 0`
/// lease un-acked so the parent's SIGKILL strands live leases.
pub fn run_lease_child(
    algorithm: Algorithm,
    dir: &Path,
    sync: SyncPolicy,
    group_commit: Option<u64>,
) {
    std::fs::create_dir_all(dir).expect("lease-child: create dir");
    // Flight recorder next to the pool files: lease grants/acks/settlements
    // land in BLACKBOX.ring so the parent can replay the child's last
    // moments after the SIGKILL (`harness blackbox <dir>` does the same).
    let recorder = obs::flight::FlightRecorder::create_or_open(dir, obs::flight::DEFAULT_CAPACITY)
        .expect("lease-child: create flight recorder");
    obs::flight::install(recorder);
    let orch = RecoveryOrchestrator::new(KILL_SHARDS);
    with_recoverable!(algorithm, Q => {
        let queue = create_leased_dir::<Q>(
            &orch,
            dir,
            ShardConfig {
                shards: KILL_SHARDS,
                queue: queue_config(),
                pool: pmem::PoolConfig::test_with_size(32 << 20),
                policy: RoutePolicy::RoundRobin,
            },
            FileConfig::with_size(32 << 20)
                .with_sync(sync)
                .with_group_commit(group_commit),
            &kill_lease_config(sync),
        )
        .expect("lease-child: create leased dir");

        // Poison dance before any other traffic: nack one item past its
        // budget so the parent always finds it in the dead-letter queue.
        queue.enqueue(0, POISON);
        loop {
            let l = queue.dequeue(1).expect("lease-child: poison visible");
            assert_eq!(l.item, POISON);
            match queue.nack(1, &l).expect("lease-child: nack poison") {
                Redelivery::Requeued { .. } => continue,
                Redelivery::DeadLettered => break,
            }
        }

        let mut enq_log = ack_file(dir, "enq.log");
        let mut ack_log = ack_file(dir, "acks.log");
        let mut held_log = ack_file(dir, "held.log");
        std::thread::scope(|scope| {
            let q = &queue;
            scope.spawn(move || {
                // Bounded so the 32 MiB shard pools can never exhaust while
                // the consumer lags; the consumer still runs forever, so
                // the kill always lands mid-consumption.
                for seq in 1..=50_000u64 {
                    q.enqueue(0, seq);
                    writeln!(enq_log, "E {seq}").expect("lease-child: enq ack");
                }
            });
            scope.spawn(move || loop {
                let Some(l) = q.dequeue(1) else { continue };
                if l.item % 7 == 0 && l.delivery_count == 1 {
                    // Hold forever: the kill strands these in flight.
                    writeln!(held_log, "H {}", l.item).expect("lease-child: held ack");
                } else if l.item % 11 == 3 && l.delivery_count == 1 {
                    q.nack(1, &l).expect("lease-child: nack");
                } else {
                    q.ack(&l).expect("lease-child: ack");
                    writeln!(ack_log, "A {}", l.item).expect("lease-child: ack ack");
                }
            });
        });
    });
}

fn ack_file(dir: &Path, name: &str) -> std::fs::File {
    std::fs::File::options()
        .create(true)
        .append(true)
        .open(dir.join(name))
        .unwrap_or_else(|e| panic!("lease-child: open {name}: {e}"))
}

/// Outcome of one consumer-SIGKILL round.
#[derive(Clone, Debug)]
pub struct LeaseKillOutcome {
    /// Confirmed (ack-logged) enqueues at kill time.
    pub confirmed_enqueues: usize,
    /// Confirmed consumer acks at kill time.
    pub confirmed_acks: usize,
    /// Leases the child deliberately held un-acked.
    pub held: usize,
    /// Unacked leases recovery turned back into deliverable items.
    pub unacked: u64,
    /// Redeliveries observed in the post-recovery drain (all with a
    /// bumped delivery count).
    pub redelivered: u64,
    /// Wall-clock reopen + recovery time.
    pub recovery: Duration,
}

/// Spawns a `lease-child`, SIGKILLs it while it holds live leases, then
/// reopens the leased directory in-process and validates the delivery
/// contract. Panics on any violation.
pub fn run_lease_kill_round(
    algorithm: Algorithm,
    base_dir: &Path,
    sync: SyncPolicy,
    group_commit: Option<u64>,
    min_acks: usize,
) -> LeaseKillOutcome {
    let dir = base_dir.join("round-lease");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create lease round dir");

    let exe = std::env::current_exe().expect("harness binary path");
    let mut args: Vec<String> = [
        "lease-child",
        "--algo",
        algorithm.name(),
        "--dir",
        dir.to_str().expect("utf-8 dir"),
        "--sync",
        sync.key(),
    ]
    .map(String::from)
    .to_vec();
    if let Some(window_ns) = group_commit {
        args.push("--group-commit".into());
        args.push((window_ns / 1_000).to_string());
    }
    let mut child = Command::new(exe)
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn lease child");

    let count_lines = |path: &Path| {
        std::fs::read(path)
            .map(|raw| raw.iter().filter(|&&b| b == b'\n').count())
            .unwrap_or(0)
    };
    let deadline = Instant::now() + Duration::from_secs(120);
    while count_lines(&dir.join("acks.log")) < min_acks || count_lines(&dir.join("held.log")) < 1 {
        if let Some(status) = child.try_wait().expect("poll lease child") {
            panic!("lease child exited prematurely ({status}) before reaching traffic");
        }
        assert!(
            Instant::now() < deadline,
            "lease child reached no traffic within 120s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL lease child");
    child.wait().expect("reap lease child");

    // The child's flight recorder must have survived the kill with its
    // pre-crash lease traffic intact: grants are the densest event in the
    // ring, so a valid replay with zero grants means the ring lost data.
    let ring = obs::flight::replay(&obs::flight::FlightRecorder::ring_path(&dir))
        .expect("replay BLACKBOX.ring after lease SIGKILL");
    assert!(
        ring.of_kind(obs::flight::EventKind::LeaseGrant).count() > 0,
        "blackbox replay has no pre-crash lease grants ({} events, {} torn)",
        ring.events.len(),
        ring.torn,
    );

    let enq = read_tagged(&dir.join("enq.log"));
    let acked = read_tagged(&dir.join("acks.log"));
    let held = read_tagged(&dir.join("held.log"));
    assert!(!held.is_empty(), "kill stranded no live leases");

    let orch = RecoveryOrchestrator::new(KILL_SHARDS);
    let begun = Instant::now();
    let (queue, report) = with_recoverable!(algorithm, Q => {
        let (queue, report, manifest) =
            open_leased_dir::<Q>(&orch, &dir, queue_config(), &kill_lease_config(sync), None)
                .expect("recover leased dir");
        assert_eq!(manifest.shards(), KILL_SHARDS, "manifest shard count");
        let queue: Box<dyn LeaseDrain> = Box::new(queue);
        (queue, report)
    });
    let recovery = begun.elapsed();
    let lease_rec = report.lease.expect("lease recovery counts in the report");

    // Drain everything the recovered deployment will grant and check the
    // contract (mirrors crates/lease/tests/consumer_kill.rs).
    let mut seen: BTreeMap<u64, u32> = BTreeMap::new();
    let mut redelivered = 0u64;
    while let Some((item, delivery_count)) = queue.grant_and_ack() {
        assert!(
            seen.insert(item, delivery_count).is_none(),
            "item {item} delivered twice after recovery"
        );
        if delivery_count >= 2 {
            redelivered += 1;
        }
    }
    assert_eq!(redelivered, lease_rec.redelivered, "redelivery count drift");
    assert!(
        lease_rec.unacked as usize >= held.len(),
        "report lost held leases: {} < {}",
        lease_rec.unacked,
        held.len()
    );
    for &h in &held {
        assert_eq!(
            seen.get(&h),
            Some(&2),
            "held item {h} not redelivered with delivery_count 2"
        );
    }
    let resurrected: Vec<u64> = acked
        .iter()
        .filter(|v| seen.contains_key(v))
        .copied()
        .collect();
    assert!(resurrected.is_empty(), "resurrected acks: {resurrected:?}");
    assert_eq!(lease_rec.dead_lettered, 0, "recovery dead-lettered items");
    let dead = queue.drain_dlq();
    assert_eq!(dead, vec![POISON], "dead-letter queue contents");
    let missing: Vec<u64> = enq
        .iter()
        .filter(|v| !acked.contains(v) && !seen.contains_key(v))
        .copied()
        .collect();
    assert!(missing.len() <= 1, "confirmed items lost: {missing:?}");
    let extras: Vec<u64> = seen.keys().filter(|v| !enq.contains(v)).copied().collect();
    assert!(extras.len() <= 1, "unconfirmed extras: {extras:?}");

    let _ = std::fs::remove_dir_all(&dir);
    LeaseKillOutcome {
        confirmed_enqueues: enq.len(),
        confirmed_acks: acked.len(),
        held: held.len(),
        unacked: lease_rec.unacked,
        redelivered,
        recovery,
    }
}

/// Object-safe drain interface over `LeasedQueue<ShardedQueue<Q>>`, so the
/// kill round's validation runs outside the `with_recoverable!` expansion.
trait LeaseDrain {
    /// Dequeues one lease, acks it, returns `(item, delivery_count)`.
    fn grant_and_ack(&self) -> Option<(u64, u32)>;
    /// Destructively drains the dead-letter queue.
    fn drain_dlq(&self) -> Vec<u64>;
}

impl<Q: durable_queues::RecoverableQueue + 'static> LeaseDrain
    for lease::LeasedQueue<shard::ShardedQueue<Q>>
{
    fn grant_and_ack(&self) -> Option<(u64, u32)> {
        let l = self.dequeue(0)?;
        self.ack(&l).expect("lease kill round: ack");
        Some((l.item, l.delivery_count))
    }

    fn drain_dlq(&self) -> Vec<u64> {
        let dlq = self.dlq().expect("deployment has a DLQ");
        std::iter::from_fn(|| dlq.dequeue(0)).collect()
    }
}

/// Parses complete `<tag> <number>` lines; a torn trailing line counts as
/// unacknowledged.
fn read_tagged(path: &Path) -> std::collections::BTreeSet<u64> {
    let Ok(raw) = std::fs::read(path) else {
        return Default::default();
    };
    let text = String::from_utf8_lossy(&raw);
    let mut out = std::collections::BTreeSet::new();
    for line in text.split_inclusive('\n') {
        let Some(body) = line.strip_suffix('\n') else {
            break;
        };
        let num = body
            .get(1..)
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or_else(|| panic!("malformed ack line {body:?}"));
        out.insert(num);
    }
    out
}

/// Renders one consumer-SIGKILL round's outcome as the verb's report line.
pub fn render_lease_kill_outcome(algorithm: Algorithm, outcome: &LeaseKillOutcome) -> String {
    format!(
        "lease-kill {}: SIGKILL with {} leases held ({} acked, {} enqueued); \
         {} unacked redelivered ({} with bumped delivery count) in {:.3} ms — \
         no resurrection, poison dead-lettered\n",
        algorithm.name(),
        outcome.held,
        outcome.confirmed_acks,
        outcome.confirmed_enqueues,
        outcome.unacked,
        outcome.redelivered,
        outcome.recovery.as_secs_f64() * 1e3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_sweep_runs_and_reports() {
        let cfg = LeaseVerbConfig {
            shard_counts: vec![1, 2],
            ops: 2_000,
            nack_percent: 10,
            dir: std::env::temp_dir().join(format!("lease-verb-test-{}", std::process::id())),
            pool_bytes: 8 << 20,
            ..LeaseVerbConfig::default()
        };
        let rows = run_lease(&cfg);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.stats.acked, cfg.ops);
            assert!(r.stats.redelivered > 0, "nack traffic must redeliver");
            assert_eq!(r.stats.dead_lettered, 0);
            assert!(r.acked_per_sec > 0.0);
        }
        let table = render_lease(&cfg, &rows);
        assert!(table.contains("acked/s"));
        let json = lease_json(&cfg, &rows);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"experiment\": \"lease\""));
        assert_eq!(json.matches("\"shards\"").count(), 2);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn grouped_sweep_runs_and_reports() {
        let cfg = LeaseVerbConfig {
            shard_counts: vec![1, 2],
            ops: 2_000,
            nack_percent: 10,
            consumers: 2,
            groups: 2,
            work_ns: 0,
            dir: std::env::temp_dir().join(format!("lease-verb-group-{}", std::process::id())),
            pool_bytes: 8 << 20,
            ..LeaseVerbConfig::default()
        };
        assert!(cfg.is_grouped());
        let rows = run_lease_groups(&cfg);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // Every group acked every item (asserted per group inside the
            // run); the summed counters must reflect the full fan-out.
            assert_eq!(r.stats.acked, cfg.groups as u64 * cfg.ops);
            assert_eq!(r.stats.dispatched, cfg.groups as u64 * cfg.ops);
            assert!(r.stats.redelivered > 0, "nack traffic must redeliver");
            assert_eq!(r.stats.dead_lettered, 0);
            assert!(r.acked_per_sec > 0.0);
        }
        let table = render_lease_groups(&cfg, &rows);
        assert!(table.contains("acked/s (agg)"));
        let json = lease_groups_json(&cfg, &rows);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"experiment\": \"lease_groups\""));
        assert!(json.contains("\"consumers\": 2"));
        assert!(json.contains("\"groups\": 2"));
        assert_eq!(json.matches("\"shards\"").count(), 2);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn tagged_lines_ignore_torn_tail() {
        let dir = std::env::temp_dir().join(format!("lease-verb-tag-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tags.log");
        std::fs::write(&path, "A 1\nA 2\nA 3").unwrap(); // torn last line
        let tags = read_tagged(&path);
        assert_eq!(tags.into_iter().collect::<Vec<_>>(), vec![1, 2]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
