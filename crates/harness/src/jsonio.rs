//! Shared machine-readable output plumbing for every harness verb.
//!
//! Historically each verb hand-rolled its own `{"experiment": ...}` string;
//! five copies of the same brace/comma bookkeeping drifted one field at a
//! time. [`ExperimentObject`] is the one place that shape lives now: every
//! experiment object opens with the `experiment` tag and a shared `meta`
//! block, then the verb-specific header fields, a `rows` array, and any
//! trailing sections (the restart verb's `reshard_kill`/`lease_kill`).
//!
//! The `meta` block stamps what every downstream consumer of a
//! `BENCH_*.json` trajectory wants but no verb used to carry:
//!
//! ```text
//! "meta": {
//!   "schema": 2,            # bumped when the object shape changes
//!   "backend": "sim",       # sim | file
//!   "sync": null,           # file backend's sync policy key, else null
//!   "metrics": {...}        # obs::snapshot() at emission time
//! }
//! ```
//!
//! The embedded metrics snapshot is the observability tie-in: because every
//! verb funnels through this builder, every `--json` artifact carries the
//! process's instrument readings (persist counts, growth commits, lease
//! traffic, recovery latencies) alongside the experiment's own numbers.
//!
//! [`JsonSink`] (moved here from `main.rs`) collects the objects behind a
//! `--json PATH` flag and writes them as one JSON array — the top-level
//! shape CI's inline checks (`json.load(...)[0]["rows"]`) rely on.

use std::collections::HashMap;
use std::fmt::Display;
use std::path::PathBuf;

/// Version stamped into every experiment object's `meta.schema`.
///
/// v1 were the bare objects without a `meta` block; v2 added `meta`
/// (schema, backend, sync, embedded metrics snapshot). The schema stays
/// additive within a version: unknown keys are always allowed.
pub const SCHEMA_VERSION: u64 = 2;

/// Builder for one experiment object (one element of the `--json` array).
///
/// Field order is emission order: `experiment`, `meta`, the header fields,
/// `rows`, trailing sections.
pub struct ExperimentObject {
    head: String,
    rows: Vec<String>,
    sections: Vec<(&'static str, String)>,
}

impl ExperimentObject {
    /// Opens an object for `experiment`, stamping the shared `meta` block.
    ///
    /// `backend` is `"sim"` or `"file"`; `sync` is the file backend's
    /// [`store::SyncPolicy`] key when one applies (`None` renders as JSON
    /// `null`). The metrics snapshot is taken here — call this *after* the
    /// experiment ran so the instruments have their final readings.
    pub fn new(experiment: &str, backend: &str, sync: Option<&str>) -> ExperimentObject {
        let mut head = String::from("{\n");
        head.push_str(&format!("  \"experiment\": \"{experiment}\",\n"));
        let sync_json = match sync {
            Some(key) => format!("\"{key}\""),
            None => String::from("null"),
        };
        head.push_str(&format!(
            "  \"meta\": {{\"schema\": {SCHEMA_VERSION}, \"backend\": \"{backend}\", \
             \"sync\": {sync_json}, \"metrics\": {}}},\n",
            obs::export::json(&obs::snapshot()),
        ));
        ExperimentObject {
            head,
            rows: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Adds a header field with a raw (unquoted) JSON value — numbers,
    /// booleans, or pre-rendered JSON.
    pub fn field(&mut self, key: &str, value: impl Display) {
        self.head.push_str(&format!("  \"{key}\": {value},\n"));
    }

    /// Adds a quoted string header field. Values are interpolated verbatim:
    /// harness identifiers (algorithm/policy/sync keys) never need escaping.
    pub fn str_field(&mut self, key: &str, value: &str) {
        self.head.push_str(&format!("  \"{key}\": \"{value}\",\n"));
    }

    /// Appends one row — a complete single-line JSON object, no indentation
    /// (the builder owns layout and separators).
    pub fn row(&mut self, row: String) {
        self.rows.push(row);
    }

    /// Appends a named section after the `rows` array; `value` is raw JSON
    /// (an object, or `null`).
    pub fn section(&mut self, key: &'static str, value: String) {
        self.sections.push((key, value));
    }

    /// Renders the finished object (no trailing newline, ready for
    /// [`JsonSink::push`]).
    pub fn finish(self) -> String {
        let mut out = self.head;
        if self.rows.is_empty() {
            out.push_str("  \"rows\": []");
        } else {
            out.push_str("  \"rows\": [\n    ");
            out.push_str(&self.rows.join(",\n    "));
            out.push_str("\n  ]");
        }
        for (key, value) in &self.sections {
            out.push_str(&format!(",\n  \"{key}\": {value}"));
        }
        out.push_str("\n}");
        out
    }
}

/// Appends one JSON experiment object per table to the `--json` collection
/// (written as a JSON array at exit).
#[derive(Default)]
pub struct JsonSink {
    path: Option<PathBuf>,
    objects: Vec<String>,
}

impl JsonSink {
    /// A sink bound to the `--json PATH` flag (inert when absent).
    pub fn from_flags(flags: &HashMap<String, String>) -> JsonSink {
        JsonSink {
            path: flags.get("json").map(PathBuf::from),
            objects: Vec::new(),
        }
    }

    /// Collects one finished experiment object (no-op without `--json`).
    pub fn push(&mut self, object: String) {
        if self.path.is_some() {
            self.objects.push(object);
        }
    }

    /// Writes the collected objects as one JSON array and reports the count.
    pub fn write(self) {
        let Some(path) = self.path else { return };
        let mut out = String::from("[\n");
        out.push_str(&self.objects.join(",\n"));
        out.push_str("\n]\n");
        std::fs::write(&path, out)
            .unwrap_or_else(|e| panic!("cannot write --json {}: {e}", path.display()));
        eprintln!(
            "wrote {} experiment object(s) to {}",
            self.objects.len(),
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_object_carries_meta_fields_rows_and_sections() {
        let mut obj = ExperimentObject::new("demo", "file", Some("power-fail"));
        obj.field("ops", 2000);
        obj.str_field("policy", "rr");
        obj.row(String::from("{\"shards\": 1, \"mops\": 1.5}"));
        obj.row(String::from("{\"shards\": 2, \"mops\": 2.5}"));
        obj.section("kill", String::from("null"));
        let out = obj.finish();
        assert!(out.contains("\"experiment\": \"demo\""));
        assert!(out.contains(&format!("\"schema\": {SCHEMA_VERSION}")));
        assert!(out.contains("\"backend\": \"file\""));
        assert!(out.contains("\"sync\": \"power-fail\""));
        assert!(out.contains("\"metrics\": {\"counters\": {"));
        assert!(out.contains("\"ops\": 2000"));
        assert!(out.contains("\"policy\": \"rr\""));
        assert!(out.contains("\"kill\": null"));
        // Two rows, comma-separated inside one array.
        assert_eq!(out.matches("\"mops\"").count(), 2);
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert_eq!(out.matches('[').count(), out.matches(']').count());
    }

    #[test]
    fn sim_objects_render_sync_null_and_empty_rows() {
        let obj = ExperimentObject::new("demo", "sim", None);
        let out = obj.finish();
        assert!(out.contains("\"sync\": null"));
        assert!(out.contains("\"rows\": []"));
        assert!(out.ends_with("\n}"));
    }
}
