//! Durable-linearizability crash checking across all algorithms.
//!
//! This is a thin, CLI-invokable wrapper around the generic checks of
//! [`durable_queues::testkit`]: for every durable queue it runs concurrent
//! workloads, crashes the pool mid-flight (optionally with the
//! implicit-eviction adversary), recovers, and validates that completed
//! operations survived, nothing was duplicated or invented, and per-producer
//! FIFO order holds.

use crate::algorithms::Algorithm;
use durable_queues::testkit;
use durable_queues::{
    DurableMsQueue, IzraelevitzQueue, LinkedQueue, NvTraverseQueue, OptLinkedQueue,
    OptUnlinkedQueue, UnlinkedQueue,
};
use ptm::{OneFileLiteQueue, RedoOptLiteQueue};

/// Parameters of one crash-check campaign.
#[derive(Clone, Copy, Debug)]
pub struct CrashCheckConfig {
    /// Worker threads per run.
    pub threads: usize,
    /// Operations per worker per run.
    pub ops_per_thread: usize,
    /// Independent runs (different seeds) per algorithm and adversary mode.
    pub rounds: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for CrashCheckConfig {
    fn default() -> Self {
        CrashCheckConfig {
            threads: 4,
            ops_per_thread: 400,
            rounds: 3,
            seed: 0xC4A5,
        }
    }
}

/// Runs the crash campaign for one algorithm. Panics (with a descriptive
/// message) if any durable-linearizability condition is violated.
pub fn check_algorithm(alg: Algorithm, cfg: &CrashCheckConfig) {
    for round in 0..cfg.rounds {
        let seed = cfg.seed ^ (round << 32) ^ alg.name().len() as u64;
        macro_rules! run {
            ($t:ty) => {{
                testkit::check_crash_during_concurrent_ops::<$t>(
                    cfg.threads,
                    cfg.ops_per_thread,
                    seed,
                );
                testkit::check_crash_with_evictions::<$t>(
                    cfg.threads,
                    cfg.ops_per_thread,
                    seed ^ 0xE,
                );
                testkit::check_recovery_preserves_completed_ops::<$t>(120, 40 + round);
            }};
        }
        match alg {
            Algorithm::Msq => {
                testkit::check_volatile_recovery_is_empty::<durable_queues::MsQueue>()
            }
            Algorithm::DurableMsq => run!(DurableMsQueue),
            Algorithm::Izraelevitz => run!(IzraelevitzQueue),
            Algorithm::NvTraverse => run!(NvTraverseQueue),
            Algorithm::Unlinked => run!(UnlinkedQueue),
            Algorithm::Linked => run!(LinkedQueue),
            Algorithm::OptUnlinked => run!(OptUnlinkedQueue),
            Algorithm::OptLinked => run!(OptLinkedQueue),
            Algorithm::OneFileLite => run!(OneFileLiteQueue),
            Algorithm::RedoOptLite => run!(RedoOptLiteQueue),
        }
    }
}

/// Runs the crash campaign for every implemented algorithm.
pub fn check_all(cfg: &CrashCheckConfig) {
    for alg in Algorithm::all() {
        println!("crash-checking {} ...", alg.name());
        check_algorithm(alg, cfg);
    }
    println!("all algorithms passed the durable-linearizability crash checks");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_crash_check_of_the_two_headline_queues() {
        let cfg = CrashCheckConfig {
            threads: 3,
            ops_per_thread: 150,
            rounds: 1,
            seed: 0x77,
        };
        check_algorithm(Algorithm::OptUnlinked, &cfg);
        check_algorithm(Algorithm::OptLinked, &cfg);
    }
}
