//! The five workloads of the paper's evaluation (Section 10, Figure 2).

use durable_queues::testkit::TestRng;
use durable_queues::DurableQueue;
use pmem::StatsSnapshot;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One panel of Figure 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// "Random operations": every operation is an enqueue or a dequeue with
    /// probability 1/2, on a queue initialised with 10 items.
    RandomOps,
    /// "Enqueue-dequeue pairs": each thread alternates enqueue and dequeue,
    /// on a queue initialised with 10 items.
    Pairs,
    /// "Enqueues": enqueue-only threads on an initially empty queue.
    EnqueueOnly,
    /// "Dequeues": dequeue-only threads on a pre-filled queue (12M items in
    /// the paper; configurable here).
    DequeueOnly,
    /// "Producers-consumers": a fixed operation count per thread; a quarter
    /// of the threads dequeue then enqueue, the rest enqueue then dequeue.
    ProducerConsumer,
}

impl Workload {
    /// All five panels, in the paper's order.
    pub fn all() -> Vec<Workload> {
        vec![
            Workload::RandomOps,
            Workload::Pairs,
            Workload::EnqueueOnly,
            Workload::DequeueOnly,
            Workload::ProducerConsumer,
        ]
    }

    /// The panel title used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::RandomOps => "Random operations (on queue size 10)",
            Workload::Pairs => "Enqueue-dequeue pairs (on queue size 10)",
            Workload::EnqueueOnly => "Enqueues (on empty queue)",
            Workload::DequeueOnly => "Dequeues (on pre-filled queue)",
            Workload::ProducerConsumer => "Producers-consumers (on queue size 10)",
        }
    }

    /// Short identifier used on the command line and in bench names.
    pub fn key(&self) -> &'static str {
        match self {
            Workload::RandomOps => "random",
            Workload::Pairs => "pairs",
            Workload::EnqueueOnly => "enqueues",
            Workload::DequeueOnly => "dequeues",
            Workload::ProducerConsumer => "prodcons",
        }
    }

    /// Parses a workload key.
    pub fn parse(s: &str) -> Option<Workload> {
        Workload::all()
            .into_iter()
            .find(|w| w.key() == s.to_ascii_lowercase())
    }

    /// The initial queue size the paper uses for this panel (with the
    /// dequeue-only pre-fill scaled down by default; the harness lets the
    /// caller override it).
    pub fn default_initial_size(&self, threads: usize, ops_per_thread: u64) -> u64 {
        match self {
            Workload::RandomOps | Workload::Pairs | Workload::ProducerConsumer => 10,
            Workload::EnqueueOnly => 0,
            // Enough that dequeuers never run dry, mirroring the paper's
            // oversized pre-fill.
            Workload::DequeueOnly => threads as u64 * ops_per_thread + 16,
        }
    }
}

/// Parameters of one workload run.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Operations performed by each thread.
    pub ops_per_thread: u64,
    /// Items enqueued (by thread 0) before the measured phase.
    pub initial_size: u64,
    /// Seed for the per-thread operation mix.
    pub seed: u64,
}

/// The outcome of one workload run.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    /// Total operations applied by all threads.
    pub total_ops: u64,
    /// Wall-clock time of the measured phase.
    pub elapsed: Duration,
    /// Persistence events during the measured phase.
    pub stats: StatsSnapshot,
}

impl RunResult {
    /// Throughput in million operations per second — the y axis of the
    /// paper's left-hand graphs.
    pub fn mops(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Runs `workload` on `queue` and returns throughput and persistence
/// statistics for the measured phase (the pre-fill is excluded).
pub fn run_workload(
    queue: &Arc<dyn DurableQueue>,
    workload: Workload,
    cfg: &RunConfig,
) -> RunResult {
    assert!(cfg.threads >= 1);
    // Pre-fill (not measured).
    prefill(queue, cfg.initial_size, cfg.threads);
    // Reset through the queue, not its primary pool: a sharded queue spans
    // several pools and the measured stats must cover all of them.
    queue.reset_stats();
    let before = queue.stats();

    // Each worker reports the instants at which it started and finished its
    // share; the measured interval is [earliest start, latest finish]. Timing
    // inside the workers (rather than around the joins) keeps the measurement
    // correct even when the coordinating thread is descheduled for a long
    // time, which happens routinely on machines with few cores.
    let barrier = Arc::new(Barrier::new(cfg.threads));
    let mut handles = Vec::new();
    for tid in 0..cfg.threads {
        let queue = Arc::clone(queue);
        let barrier = Arc::clone(&barrier);
        let cfg = *cfg;
        handles.push(std::thread::spawn(move || {
            let mut rng = TestRng::new(cfg.seed ^ ((tid as u64 + 1) << 20));
            barrier.wait();
            let start = Instant::now();
            run_thread(
                &*queue,
                workload,
                tid,
                cfg.threads,
                cfg.ops_per_thread,
                &mut rng,
            );
            (start, Instant::now())
        }));
    }
    let mut earliest_start: Option<Instant> = None;
    let mut latest_end: Option<Instant> = None;
    for h in handles {
        let (start, end) = h.join().unwrap();
        earliest_start = Some(earliest_start.map_or(start, |s| s.min(start)));
        latest_end = Some(latest_end.map_or(end, |e| e.max(end)));
    }
    let elapsed = latest_end.unwrap().duration_since(earliest_start.unwrap());
    let stats = queue.stats() - before;
    RunResult {
        total_ops: cfg.threads as u64 * cfg.ops_per_thread,
        elapsed,
        stats,
    }
}

/// Pre-fills below this size stay single-threaded: spawning workers costs
/// more than a few thousand enqueues.
const PARALLEL_PREFILL_MIN: u64 = 8_192;

/// Enqueues `items` values (1..=items) before a measured phase.
///
/// The paper's dequeue-only panel pre-fills 12M items; doing that from one
/// thread dominates the experiment's wall-clock, so large pre-fills are
/// split into contiguous chunks across `threads` workers (each using its own
/// tid, so the single-owner persist-API contract holds). Per-producer FIFO
/// order is preserved within each chunk; dequeue-only runs only count items,
/// so the inter-chunk interleaving is irrelevant.
pub fn prefill(queue: &Arc<dyn DurableQueue>, items: u64, threads: usize) {
    let threads = threads.max(1) as u64;
    if items < PARALLEL_PREFILL_MIN || threads == 1 {
        for i in 0..items {
            queue.enqueue(0, i + 1);
        }
        return;
    }
    let chunk = items / threads;
    let remainder = items % threads;
    std::thread::scope(|scope| {
        let mut start = 0u64;
        for tid in 0..threads {
            // Spread the remainder over the first `remainder` workers.
            let len = chunk + u64::from(tid < remainder);
            let queue = Arc::clone(queue);
            scope.spawn(move || {
                for i in start..start + len {
                    queue.enqueue(tid as usize, i + 1);
                }
            });
            start += len;
        }
    });
}

fn run_thread(
    queue: &dyn DurableQueue,
    workload: Workload,
    tid: usize,
    threads: usize,
    ops: u64,
    rng: &mut TestRng,
) {
    let mut value = (tid as u64) << 40;
    match workload {
        Workload::RandomOps => {
            for _ in 0..ops {
                if rng.below(2) == 0 {
                    value += 1;
                    queue.enqueue(tid, value);
                } else {
                    std::hint::black_box(queue.dequeue(tid));
                }
            }
        }
        Workload::Pairs => {
            for i in 0..ops {
                if i % 2 == 0 {
                    value += 1;
                    queue.enqueue(tid, value);
                } else {
                    std::hint::black_box(queue.dequeue(tid));
                }
            }
        }
        Workload::EnqueueOnly => {
            for _ in 0..ops {
                value += 1;
                queue.enqueue(tid, value);
            }
        }
        Workload::DequeueOnly => {
            for _ in 0..ops {
                std::hint::black_box(queue.dequeue(tid));
            }
        }
        Workload::ProducerConsumer => {
            // A quarter of the threads (at least one) dequeue first and then
            // enqueue; the rest enqueue first and then dequeue, so the queue
            // is never drained for long.
            let consumers_first = (threads / 4).max(1);
            let half = ops / 2;
            if tid < consumers_first {
                for _ in 0..half {
                    std::hint::black_box(queue.dequeue(tid));
                }
                for _ in 0..half {
                    value += 1;
                    queue.enqueue(tid, value);
                }
            } else {
                for _ in 0..half {
                    value += 1;
                    queue.enqueue(tid, value);
                }
                for _ in 0..half {
                    std::hint::black_box(queue.dequeue(tid));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use durable_queues::QueueConfig;
    use pmem::{PmemPool, PoolConfig};

    fn small_queue(alg: Algorithm) -> Arc<dyn DurableQueue> {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(32 << 20)));
        alg.create(pool, QueueConfig::small_test().with_threads(4))
    }

    #[test]
    fn workload_keys_parse() {
        for w in Workload::all() {
            assert_eq!(Workload::parse(w.key()), Some(w));
            assert!(!w.name().is_empty());
        }
        assert_eq!(Workload::parse("bogus"), None);
    }

    #[test]
    fn every_workload_runs_and_reports_throughput() {
        for w in Workload::all() {
            let q = small_queue(Algorithm::OptUnlinked);
            let cfg = RunConfig {
                threads: 2,
                ops_per_thread: 500,
                initial_size: w.default_initial_size(2, 500),
                seed: 7,
            };
            let r = run_workload(&q, w, &cfg);
            assert_eq!(r.total_ops, 1000, "{}", w.name());
            assert!(r.mops() > 0.0);
        }
    }

    #[test]
    fn parallel_prefill_inserts_exactly_the_requested_items() {
        let q = small_queue(Algorithm::OptUnlinked);
        let items = super::PARALLEL_PREFILL_MIN + 100; // forces the parallel path
        prefill(&q, items, 4);
        let mut got: Vec<u64> = std::iter::from_fn(|| q.dequeue(0)).collect();
        got.sort_unstable();
        assert_eq!(got, (1..=items).collect::<Vec<_>>());
    }

    #[test]
    fn small_prefill_stays_in_order() {
        let q = small_queue(Algorithm::OptUnlinked);
        prefill(&q, 100, 4);
        let got: Vec<u64> = std::iter::from_fn(|| q.dequeue(0)).collect();
        assert_eq!(got, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn dequeue_only_never_runs_dry_with_default_prefill() {
        let q = small_queue(Algorithm::DurableMsq);
        let threads = 2;
        let ops = 300;
        let init = Workload::DequeueOnly.default_initial_size(threads, ops);
        let r = run_workload(
            &q,
            Workload::DequeueOnly,
            &RunConfig {
                threads,
                ops_per_thread: ops,
                initial_size: init,
                seed: 3,
            },
        );
        // Every dequeue succeeded, so the queue still holds the surplus.
        assert!(r.total_ops == threads as u64 * ops);
        let mut remaining = 0;
        while q.dequeue(0).is_some() {
            remaining += 1;
        }
        assert_eq!(remaining, init - threads as u64 * ops);
    }

    #[test]
    fn measured_stats_exclude_the_prefill() {
        let q = small_queue(Algorithm::OptUnlinked);
        let cfg = RunConfig {
            threads: 1,
            ops_per_thread: 100,
            initial_size: 50,
            seed: 1,
        };
        let r = run_workload(&q, Workload::DequeueOnly, &cfg);
        // 100 dequeues at one fence each; the 50 pre-fill enqueues are not
        // counted.
        assert!(
            r.stats.fences >= 100 && r.stats.fences <= 110,
            "fences {}",
            r.stats.fences
        );
    }
}
