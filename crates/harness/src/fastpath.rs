//! The `fastpath` experiment: what the lock-free mapping scheme costs.
//!
//! `store::FilePool` reaches its mapping in one of two modes:
//!
//! * **direct** (`grow_step == 0`) — the pool can never grow, so every
//!   access dereferences one immutable pointer with zero mapping
//!   synchronization,
//! * **epoch-pinned** (`grow_step > 0`) — every access announces the
//!   current mapping generation in a per-thread hazard slot so growth can
//!   retire the old mapping safely.
//!
//! This experiment times both modes over the same primitives — a plain
//! `load_u64`, a `store_u64 + flush + sfence` persist round trip, and a
//! take/drop of the raw [`pmem::MapRef`] view — and reports per-op
//! nanoseconds side by side. The delta between the two rows *is* the pin:
//! the before/after comparison the perf-track lane graphs over time. The
//! emitted JSON object carries `"lock_free_fast_path": true`, the marker
//! that these numbers were produced by the epoch scheme rather than the
//! earlier stop-the-world mapping lock.

use std::time::Instant;

use pmem::PmemPool;
use std::sync::Arc;
use store::{FileConfig, FilePool, SyncPolicy};

/// Configuration for the [`run_fastpath`] measurement.
#[derive(Clone, Debug)]
pub struct FastpathConfig {
    /// Timed operations per trial.
    pub ops: u64,
    /// Trials per metric; the minimum is reported (noise floor).
    pub trials: usize,
    /// Pool file size in bytes.
    pub pool_bytes: usize,
    /// Growth step for the epoch-pinned row (the direct row always uses 0).
    pub grow_step: usize,
    /// `msync` policy for both pools.
    pub sync: SyncPolicy,
}

impl Default for FastpathConfig {
    fn default() -> Self {
        FastpathConfig {
            ops: 200_000,
            trials: 5,
            pool_bytes: 16 << 20,
            grow_step: 4 << 20,
            sync: SyncPolicy::ProcessCrash,
        }
    }
}

impl FastpathConfig {
    /// CI-sized variant: small enough for the perf-track smoke lane.
    pub fn quick() -> Self {
        FastpathConfig {
            ops: 20_000,
            trials: 3,
            pool_bytes: 4 << 20,
            grow_step: 1 << 20,
            ..FastpathConfig::default()
        }
    }
}

/// One mapping mode's measured per-operation costs, in nanoseconds.
pub struct FastpathRow {
    /// `"direct"` or `"epoch"`.
    pub mode: &'static str,
    /// The growth step the pool was created with (0 for the direct row).
    pub grow_step: usize,
    /// Plain `load_u64` (one mapping access, no persistence).
    pub load_ns: f64,
    /// `store_u64 + flush + sfence` round trip.
    pub persist_ns: f64,
    /// Taking and dropping a [`pmem::MapRef`] (pin + unpin in epoch mode;
    /// a pointer copy in direct mode).
    pub map_ref_ns: f64,
}

fn bench_pool(tag: &str, cfg: &FastpathConfig, grow_step: usize) -> Arc<PmemPool> {
    let path = std::env::temp_dir().join(format!(
        "harness-fastpath-{tag}-{}.pool",
        std::process::id()
    ));
    let mut file_config = FileConfig::with_size(cfg.pool_bytes).with_sync(cfg.sync);
    if grow_step > 0 {
        file_config = file_config.with_growth(grow_step);
    }
    let pool = FilePool::create(&path, file_config)
        .expect("fastpath: create pool file")
        .into_pool();
    // The mapping keeps the file alive; nothing is left behind in $TMPDIR.
    #[cfg(unix)]
    let _ = std::fs::remove_file(&path);
    #[cfg(not(unix))]
    let _ = path;
    pool
}

/// Minimum-of-`trials` per-op time of `op`, in nanoseconds.
fn time_ns(cfg: &FastpathConfig, mut op: impl FnMut(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..cfg.trials {
        let start = Instant::now();
        for i in 0..cfg.ops {
            op(i);
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / cfg.ops as f64);
    }
    best
}

fn measure(mode: &'static str, grow_step: usize, cfg: &FastpathConfig) -> FastpathRow {
    let pool = bench_pool(mode, cfg, grow_step);
    let off = pool.alloc_raw(64, 64);
    pool.store_u64(off, 1);
    let load_ns = time_ns(cfg, |_| {
        std::hint::black_box(pool.load_u64(off));
    });
    let persist_ns = time_ns(cfg, |i| {
        pool.store_u64(off, i);
        pool.flush(0, off);
        pool.sfence(0);
    });
    let map_ref_ns = time_ns(cfg, |_| {
        let view = pool.map_ref().expect("file pools expose their mapping");
        std::hint::black_box(view.len());
    });
    FastpathRow {
        mode,
        grow_step,
        load_ns,
        persist_ns,
        map_ref_ns,
    }
}

/// Times the direct and epoch-pinned mapping modes over identical pools
/// and workloads. Returns one row per mode, direct first.
pub fn run_fastpath(cfg: &FastpathConfig) -> Vec<FastpathRow> {
    assert!(cfg.ops > 0 && cfg.trials > 0, "fastpath: empty measurement");
    assert!(cfg.grow_step > 0, "fastpath: the epoch row needs a step");
    vec![
        measure("direct", 0, cfg),
        measure("epoch", cfg.grow_step, cfg),
    ]
}

/// Renders the comparison as the verb's report table.
pub fn render_fastpath(cfg: &FastpathConfig, rows: &[FastpathRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\n=== file-pool mapping fast path ({} ops x {} trials, min reported) ===\n",
        cfg.ops, cfg.trials
    ));
    out.push_str(&format!(
        "{:<14}{:>12}{:>12}{:>14}{:>14}\n",
        "mode", "grow step", "load ns/op", "persist ns/op", "map_ref ns/op"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<14}{:>12}{:>12.1}{:>14.1}{:>14.1}\n",
            row.mode, row.grow_step, row.load_ns, row.persist_ns, row.map_ref_ns
        ));
    }
    if let [direct, epoch] = rows {
        out.push_str(&format!(
            "pin cost on a plain load: {:+.1} ns/op ({:.0}% of the direct path)\n",
            epoch.load_ns - direct.load_ns,
            if direct.load_ns > 0.0 {
                100.0 * epoch.load_ns / direct.load_ns
            } else {
                0.0
            },
        ));
    }
    out
}

/// Renders the rows as one machine-readable JSON experiment object (schema
/// documented in the README under "Machine-readable results"). The
/// `lock_free_fast_path` marker distinguishes epoch-scheme numbers from
/// the earlier mapping-lock implementation in a `BENCH_*.json` trajectory.
pub fn fastpath_json(cfg: &FastpathConfig, rows: &[FastpathRow]) -> String {
    let mut obj = crate::jsonio::ExperimentObject::new("fastpath", "file", Some(cfg.sync.key()));
    obj.field("ops", cfg.ops);
    obj.field("trials", cfg.trials);
    obj.field("lock_free_fast_path", true);
    for row in rows {
        obj.row(format!(
            "{{\"mode\": \"{}\", \"grow_step\": {}, \"load_ns\": {:.3}, \
             \"persist_ns\": {:.3}, \"map_ref_ns\": {:.3}}}",
            row.mode, row.grow_step, row.load_ns, row.persist_ns, row.map_ref_ns,
        ));
    }
    obj.finish()
}

/// Parses the `fastpath` verb's flags into a config (shared with tests).
pub fn config_from_flags(flags: &std::collections::HashMap<String, String>) -> FastpathConfig {
    let mut cfg = if flags.contains_key("quick") {
        FastpathConfig::quick()
    } else {
        FastpathConfig::default()
    };
    if let Some(o) = flags.get("ops") {
        cfg.ops = o.parse().expect("bad --ops");
    }
    if let Some(t) = flags.get("trials") {
        cfg.trials = t.parse().expect("bad --trials");
    }
    if let Some(p) = flags.get("pool-bytes") {
        cfg.pool_bytes = p.parse().expect("bad --pool-bytes");
    }
    if let Some(g) = flags.get("grow-step") {
        cfg.grow_step = g.parse().expect("bad --grow-step");
        assert!(cfg.grow_step > 0, "fastpath --grow-step must be > 0");
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FastpathConfig {
        FastpathConfig {
            ops: 200,
            trials: 1,
            pool_bytes: 1 << 20,
            grow_step: 1 << 20,
            sync: SyncPolicy::ProcessCrash,
        }
    }

    #[test]
    fn fastpath_measures_both_mapping_modes() {
        let cfg = tiny();
        let rows = run_fastpath(&cfg);
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].mode, rows[0].grow_step), ("direct", 0));
        assert_eq!((rows[1].mode, rows[1].grow_step), ("epoch", 1 << 20));
        for row in &rows {
            assert!(row.load_ns > 0.0 && row.load_ns.is_finite());
            assert!(row.persist_ns > 0.0 && row.persist_ns.is_finite());
            assert!(row.map_ref_ns > 0.0 && row.map_ref_ns.is_finite());
        }
        let rendered = render_fastpath(&cfg, &rows);
        assert!(rendered.contains("direct"));
        assert!(rendered.contains("epoch"));
        assert!(rendered.contains("pin cost"));
    }

    #[test]
    fn fastpath_json_is_well_formed_and_carries_the_marker() {
        let cfg = tiny();
        let rows = run_fastpath(&cfg);
        let json = fastpath_json(&cfg, &rows);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"experiment\": \"fastpath\""));
        assert!(json.contains("\"lock_free_fast_path\": true"));
        assert!(json.contains("\"mode\": \"direct\""));
        assert!(json.contains("\"mode\": \"epoch\""));
        assert_eq!(json.matches("\"mode\"").count(), 2);
    }

    #[test]
    fn flags_override_the_defaults() {
        let mut flags = std::collections::HashMap::new();
        flags.insert("quick".into(), "true".into());
        flags.insert("ops".into(), "123".into());
        flags.insert("grow-step".into(), "65536".into());
        let cfg = config_from_flags(&flags);
        assert_eq!(cfg.ops, 123);
        assert_eq!(cfg.trials, FastpathConfig::quick().trials);
        assert_eq!(cfg.grow_step, 65536);
    }
}
