//! # harness — evaluation harness for the durable-queue reproduction
//!
//! Workload generators for the five panels of the paper's Figure 2
//! ([`workloads`]), a thread-sweep runner producing the throughput and
//! ratio-to-DurableMSQ tables ([`runner`]), the per-operation
//! persistence-count experiment ([`counts`]), the file-pool mapping
//! fast-path comparison ([`fastpath`]), the group-commit fence-throughput
//! sweep ([`fsweep`]), and a crash/durable-linearizability checker
//! spanning every implemented queue ([`checker`]).
//!
//! The `harness` binary exposes all of it on the command line; the `bench`
//! crate drives the same code from Criterion benchmarks.

#![warn(missing_docs)]

pub mod algorithms;
pub mod checker;
pub mod counts;
pub mod fastpath;
pub mod fsweep;
pub mod jsonio;
pub mod lease_verb;
pub mod obs_verbs;
pub mod reshard;
pub mod restart;
pub mod runner;
pub mod shard_sweep;
pub mod workloads;

pub use algorithms::Algorithm;
pub use workloads::Workload;

// Re-exported so the `with_recoverable!` macro can name concrete queue
// types via `$crate::` from any crate that depends on `harness`.
pub use durable_queues;
pub use ptm;
