//! Cross-crate integration tests: pmem + ssmem + durable_queues + ptm driven
//! through the harness, exactly as the benchmarks drive them.

use durable_queues::QueueConfig;
use harness::algorithms::Algorithm;
use harness::checker::{check_algorithm, CrashCheckConfig};
use harness::counts::persist_counts_table;
use harness::runner::{measure_point, run_panel, SweepConfig};
use harness::workloads::{run_workload, RunConfig, Workload};
use pmem::{LatencyModel, PmemPool, PoolConfig};
use std::sync::Arc;

fn tiny_sweep(algorithms: Vec<Algorithm>) -> SweepConfig {
    SweepConfig {
        threads: vec![1, 2],
        ops_per_thread: 400,
        initial_size: None,
        prefill: None,
        pool_bytes: 32 << 20,
        grow_step: 0,
        latency: LatencyModel::ZERO,
        area_size: 256 * 1024,
        algorithms,
        shards: 1,
        policy: shard::RoutePolicy::RoundRobin,
        backend: harness::runner::BackendChoice::Sim,
        seed: 99,
    }
}

#[test]
fn every_figure2_panel_runs_end_to_end_for_every_algorithm() {
    let sweep = tiny_sweep(Algorithm::figure2_set());
    for workload in Workload::all() {
        let rows = run_panel(workload, &sweep);
        assert_eq!(rows.len(), sweep.threads.len(), "{}", workload.name());
        for row in rows {
            for cell in &row.cells {
                assert!(
                    cell.mops > 0.0,
                    "{} produced no throughput",
                    cell.algorithm.name()
                );
            }
        }
    }
}

#[test]
fn second_amendment_outperforms_the_baseline_under_the_latency_model() {
    // The headline comparison of the paper, at the smallest scale that still
    // shows it: with the Optane-like latency model, OptUnlinkedQ beats
    // DurableMSQ on the random-operations workload.
    let sweep = SweepConfig {
        threads: vec![2],
        ops_per_thread: 4_000,
        latency: LatencyModel::optane_like(),
        ..tiny_sweep(vec![Algorithm::DurableMsq, Algorithm::OptUnlinked])
    };
    let rows = run_panel(Workload::RandomOps, &sweep);
    let ratio = rows[0]
        .ratio_to_durable_msq(Algorithm::OptUnlinked)
        .unwrap();
    assert!(
        ratio > 1.1,
        "OptUnlinkedQ should outperform DurableMSQ (measured ratio {ratio:.2})"
    );
}

#[test]
fn first_amendment_meets_the_fence_lower_bound_in_the_full_stack() {
    let sweep = tiny_sweep(vec![Algorithm::Unlinked]);
    let cell = measure_point(Algorithm::Unlinked, Workload::Pairs, 1, &sweep);
    assert!(
        (cell.fences_per_op - 1.0).abs() < 0.1,
        "fences/op {}",
        cell.fences_per_op
    );
}

#[test]
fn opt_queues_make_zero_post_flush_accesses_in_the_full_stack() {
    let sweep = tiny_sweep(vec![Algorithm::OptUnlinked, Algorithm::OptLinked]);
    for alg in [Algorithm::OptUnlinked, Algorithm::OptLinked] {
        for workload in Workload::all() {
            let cell = measure_point(alg, workload, 2, &sweep);
            assert_eq!(
                cell.post_flush_per_op,
                0.0,
                "{} touched flushed content in {}",
                alg.name(),
                workload.name()
            );
        }
    }
}

#[test]
fn persist_count_table_covers_every_algorithm() {
    let rows = persist_counts_table(200);
    assert_eq!(rows.len(), Algorithm::all().len());
}

#[test]
fn crash_checker_passes_for_a_sample_of_algorithms() {
    let cfg = CrashCheckConfig {
        threads: 3,
        ops_per_thread: 120,
        rounds: 1,
        seed: 0xAB,
    };
    for alg in [
        Algorithm::DurableMsq,
        Algorithm::Unlinked,
        Algorithm::OptLinked,
        Algorithm::RedoOptLite,
    ] {
        check_algorithm(alg, &cfg);
    }
}

#[test]
fn a_recovered_queue_can_be_driven_by_the_workload_generators() {
    // Fill a queue, crash it, recover it, and run a full workload on the
    // recovered instance — recovery must leave every allocator structure in
    // a state that supports normal operation at full speed.
    let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(32 << 20)));
    let q =
        Algorithm::OptLinked.create(Arc::clone(&pool), QueueConfig::small_test().with_threads(4));
    for i in 0..500u64 {
        q.enqueue(0, i + 1);
    }
    let recovered_pool = Arc::new(pool.simulate_crash());
    let recovered =
        Algorithm::OptLinked.recover(recovered_pool, QueueConfig::small_test().with_threads(4));
    let result = run_workload(
        &recovered,
        Workload::RandomOps,
        &RunConfig {
            threads: 4,
            ops_per_thread: 500,
            initial_size: 0,
            seed: 5,
        },
    );
    assert_eq!(result.total_ops, 2000);
    assert!(result.mops() > 0.0);
}

#[test]
fn sharded_queues_run_every_workload_through_the_harness() {
    // The sharded composition behind the same dyn DurableQueue front the
    // benchmarks use: built by algorithm name, driven by the workload
    // generators, stats aggregated across all shard pools.
    let queue = Algorithm::OptLinked.create_sharded(shard::ShardConfig {
        shards: 4,
        queue: QueueConfig::small_test().with_threads(4),
        pool: PoolConfig::test_with_size(16 << 20),
        policy: shard::RoutePolicy::RoundRobin,
    });
    for workload in Workload::all() {
        let result = run_workload(
            &queue,
            workload,
            &RunConfig {
                threads: 4,
                ops_per_thread: 300,
                initial_size: workload.default_initial_size(4, 300),
                seed: 21,
            },
        );
        assert_eq!(result.total_ops, 1200, "{}", workload.name());
        assert!(result.stats.fences > 0, "{}", workload.name());
    }
}

#[test]
fn shard_sweep_reports_recovery_for_every_required_shard_count() {
    use harness::shard_sweep::{run_shard_sweep, ShardSweepConfig};
    let cfg = ShardSweepConfig {
        shard_counts: vec![1, 2, 4, 8],
        threads: 2,
        ops_per_thread: 200,
        pool_bytes: 64 << 20,
        latency: LatencyModel::ZERO,
        area_size: 256 * 1024,
        algorithm: Algorithm::OptUnlinked,
        workload: Workload::Pairs,
        policy: shard::RoutePolicy::RoundRobin,
        recovery_threads: 4,
        seed: 9,
    };
    let rows = run_shard_sweep(&cfg);
    assert_eq!(rows.len(), 4);
    for (row, expect) in rows.iter().zip([1usize, 2, 4, 8]) {
        assert_eq!(row.shards, expect);
        assert_eq!(row.per_shard.len(), expect);
        assert_eq!(row.recovery.per_shard.len(), expect);
        assert!(row.mops > 0.0);
    }
}
