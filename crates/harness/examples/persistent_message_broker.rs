//! A miniature persistent message broker — the use case the paper's
//! introduction motivates (IBM MQ, Oracle Tuxedo MQ, RabbitMQ keep FIFO
//! queues at their core and persist them through block storage today).
//!
//! Producers publish messages while consumers acknowledge them; midway
//! through, the "machine" loses power. After recovery, every message that
//! was durably published and not yet acknowledged is redelivered — nothing
//! acknowledged reappears and nothing published is lost.
//!
//! Run with:
//! ```text
//! cargo run -p harness --release --example persistent_message_broker
//! ```

use durable_queues::{DurableQueue, OptLinkedQueue, QueueConfig, RecoverableQueue};
use pmem::{PmemPool, PoolConfig};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const PRODUCERS: usize = 2;
const CONSUMERS: usize = 2;
const MESSAGES_PER_PRODUCER: u64 = 5_000;

fn message_id(producer: usize, seq: u64) -> u64 {
    ((producer as u64) << 32) | seq
}

fn main() {
    let pool = Arc::new(PmemPool::new(PoolConfig::bench(128 << 20)));
    let broker = Arc::new(OptLinkedQueue::create(
        Arc::clone(&pool),
        QueueConfig::bench(PRODUCERS + CONSUMERS),
    ));

    let acknowledged = Arc::new(Mutex::new(HashSet::<u64>::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    for p in 0..PRODUCERS {
        let broker = Arc::clone(&broker);
        handles.push(std::thread::spawn(move || {
            for seq in 0..MESSAGES_PER_PRODUCER {
                broker.enqueue(p, message_id(p, seq));
            }
        }));
    }
    for c in 0..CONSUMERS {
        let tid = PRODUCERS + c;
        let broker = Arc::clone(&broker);
        let acknowledged = Arc::clone(&acknowledged);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                if let Some(msg) = broker.dequeue(tid) {
                    // "Processing" the message and acknowledging it.
                    acknowledged.lock().unwrap().insert(msg);
                } else {
                    std::thread::yield_now();
                }
            }
        }));
    }

    // Let the system run for a bit, then pull the plug while everyone is busy.
    std::thread::sleep(std::time::Duration::from_millis(30));
    let crashed_image = pool.simulate_crash();
    stop.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }
    let acknowledged = Arc::try_unwrap(acknowledged).unwrap().into_inner().unwrap();
    println!(
        "before the crash: {} messages acknowledged by consumers",
        acknowledged.len()
    );

    // Restart: recover the broker from the persistent image and redeliver.
    let recovered_pool = Arc::new(crashed_image);
    let recovered =
        OptLinkedQueue::recover(recovered_pool, QueueConfig::bench(PRODUCERS + CONSUMERS));
    let mut redelivered = Vec::new();
    while let Some(msg) = recovered.dequeue(0) {
        redelivered.push(msg);
    }
    println!(
        "after recovery:   {} messages redelivered",
        redelivered.len()
    );

    // Sanity: redelivered messages are real, unique, and in per-producer order.
    let mut seen = HashSet::new();
    let mut last_seq = [None::<u64>; PRODUCERS];
    for msg in &redelivered {
        assert!(seen.insert(*msg), "duplicate redelivery of {msg:#x}");
        let producer = (msg >> 32) as usize;
        let seq = msg & 0xFFFF_FFFF;
        if let Some(prev) = last_seq[producer] {
            assert!(
                seq > prev,
                "redelivery out of order for producer {producer}"
            );
        }
        last_seq[producer] = Some(seq);
    }
    println!(
        "redelivered messages are unique and FIFO per producer — no acknowledged message was lost."
    );
}
