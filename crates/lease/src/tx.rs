//! Exactly-once handoff: ack + consumer state in one redo-log transaction.
//!
//! At-least-once delivery (the default) has one unavoidable duplicate
//! window: the consumer durably applies its work, crashes before acking,
//! and the item is redelivered. Closing it requires the ack and the
//! consumer's own state transition to share a single atomic commit point —
//! Gray's "queues are databases" argument. [`ExactlyOnce`] provides that
//! commit point on top of `crates/ptm`'s redo-log engine:
//!
//! 1. A per-`(group, thread)` **ack cursor** (a `(lease id, log
//!    generation)` pair of 64-bit words per slot, allocated on the
//!    consumer's pool and published through root slot
//!    [`CURSOR_ROOT_SLOT`]) records the last lease whose ack transaction
//!    committed on that thread, stamped with the
//!    [generation](crate::log) of the ack log it was acked under. The
//!    area holds one stripe of [`MAX_THREADS`] entries per consumer
//!    group; single-group deployments (plain
//!    [`LeasedQueue`](crate::LeasedQueue)) use stripe 0 and are laid out
//!    exactly as before groups existed.
//! 2. [`LeasedQueue::ack_exactly_once`](crate::LeasedQueue::ack_exactly_once)
//!    (and its consumer-group twin) runs the consumer's writes **and** the
//!    cursor pair update in one [`Ptm::run`] transaction. The persisted
//!    commit status word is the atomic point: either the consumer's state
//!    *and* the ack are durable, or neither is.
//! 3. The sidecar ack-log record is appended only after commit. If a crash
//!    swallows it, recovery reads the cursor
//!    ([`ExactlyOnce::acked_ids`] /
//!    [`ExactlyOnce::acked_ids_in`]) and repairs the missing record
//!    instead of redelivering — see
//!    [`LeasedQueue::recover`](crate::LeasedQueue::recover). Only entries
//!    stamped with the *current* log's generation count: a cursor paired
//!    with a recreated or foreign ack log (whose lease-id space is
//!    unrelated) repairs nothing instead of retiring arbitrary leases.
//!    With groups, each group's log has its own generation, so a stripe
//!    can never repair another group's leases either.
//!
//! The cursor holds one word-pair per `(group, thread)`, so a thread has
//! at most one ack transaction per group in the repair window at a time —
//! which is exactly the execution model (`ack_exactly_once` appends the
//! sidecar record before returning).
//!
//! # Root-slot encoding
//!
//! Root slot 7 packs `(groups − 1) << 32 | offset`. A single-group engine
//! therefore stores the bare area offset — bit-identical to the pre-group
//! format — so pools written before consumer groups existed recover as
//! one-stripe engines, and single-group pools written by this build are
//! readable by older ones.
//!
//! The engine's root lines (6–7 of the queue root block) and the ad-hoc
//! queues' lines (0–2) do not collide, so one pool can host both the
//! consumer's durable state and this engine.

use pmem::{PmemPool, MAX_GROUPS, MAX_THREADS};
use ptm::{FlushPolicy, Ptm, Tx};
use std::sync::Arc;

/// Pool root slot publishing the ack-cursor area's offset and stripe count
/// (slots 0–6 are owned by the queue/engine conventions; see
/// `docs/FORMATS.md`).
pub const CURSOR_ROOT_SLOT: usize = 7;

/// Bytes per cursor entry: a `(lease id, log generation)` pair.
const CURSOR_ENTRY_LEN: usize = 16;

/// The exactly-once ack engine: a redo-log PTM plus the per-`(group,
/// thread)` ack cursor. See the [module docs](self).
pub struct ExactlyOnce {
    ptm: Ptm,
    /// Pool offset of the `groups × MAX_THREADS × (lease id, generation)`
    /// cursor area.
    cursor: u32,
    /// Stripes in the cursor area (consumer groups this engine can ack
    /// for). Always ≥ 1.
    groups: usize,
}

impl ExactlyOnce {
    /// Creates a fresh single-group engine on `pool` — the layout every
    /// plain [`LeasedQueue`](crate::LeasedQueue) deployment uses. See
    /// [`create_for_groups`](Self::create_for_groups).
    pub fn create(pool: Arc<PmemPool>, policy: FlushPolicy) -> Self {
        Self::create_for_groups(pool, policy, 1)
    }

    /// Creates a fresh engine with one cursor stripe per consumer group:
    /// allocates and zeroes the `groups × MAX_THREADS` entry area,
    /// publishes it (with the stripe count) in root slot
    /// [`CURSOR_ROOT_SLOT`], and starts a fresh [`Ptm`].
    ///
    /// # Panics
    /// If `groups` is `0` or exceeds [`MAX_GROUPS`] — a sizing decision
    /// made once at deployment creation, so misconfiguration should fail
    /// loudly before anything is in flight.
    pub fn create_for_groups(pool: Arc<PmemPool>, policy: FlushPolicy, groups: usize) -> Self {
        assert!(
            (1..=MAX_GROUPS).contains(&groups),
            "exactly-once cursor needs 1..={MAX_GROUPS} groups, got {groups}"
        );
        let len = (groups * MAX_THREADS * CURSOR_ENTRY_LEN) as u32;
        let cursor = pool.alloc_raw(len, 64);
        pool.zero_range(cursor, len);
        pool.flush_range(0, cursor, len);
        pool.sfence(0);
        pool.set_root_u64(
            CURSOR_ROOT_SLOT,
            ((groups as u64 - 1) << 32) | cursor as u64,
        );
        ExactlyOnce {
            ptm: Ptm::new(pool, policy),
            cursor,
            groups,
        }
    }

    /// Re-creates the engine after a crash: [`Ptm::recover`] first (so a
    /// committed-but-unapplied ack transaction lands in the cursor before
    /// anyone reads it), then the cursor offset and stripe count from the
    /// root slot. Pools written before consumer groups existed carry a
    /// bare offset (zero high half) and recover as one-stripe engines.
    ///
    /// # Panics
    /// If the pool was never initialised with [`create`](Self::create) /
    /// [`create_for_groups`](Self::create_for_groups) (root slot 7 is
    /// zero).
    pub fn recover(pool: Arc<PmemPool>, policy: FlushPolicy) -> Self {
        let ptm = Ptm::recover(pool, policy);
        let word = ptm.pool().root_u64(CURSOR_ROOT_SLOT);
        let cursor = word as u32;
        let groups = (word >> 32) as usize + 1;
        assert!(
            cursor != 0,
            "pool has no exactly-once cursor (root slot {CURSOR_ROOT_SLOT} is zero); \
             was it created with ExactlyOnce::create?"
        );
        ExactlyOnce {
            ptm,
            cursor,
            groups,
        }
    }

    /// Cursor stripes (consumer groups) this engine addresses.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Lease ids whose ack transaction committed *under the ack log with
    /// the given generation*, across every stripe. Single-group recovery
    /// ([`LeasedQueue::recover`](crate::LeasedQueue::recover)) feeds this
    /// the replayed log's generation so those leases are repaired instead
    /// of redelivered; entries stamped by an older or recreated log are
    /// ignored — their lease-id space is unrelated, and repairing by a
    /// stale id would silently consume someone else's in-flight item.
    pub fn acked_ids(&self, generation: u64) -> Vec<u64> {
        (0..self.groups)
            .flat_map(|g| self.acked_ids_in(g, generation))
            .collect()
    }

    /// Lease ids whose ack transaction committed on stripe `group` under
    /// the generation — the per-group form grouped recovery uses. Each
    /// group's segmented log has its own generation, so even a wrong
    /// `group` here repairs nothing (the stamps cannot match), but the
    /// stripe filter keeps the scan exact.
    ///
    /// # Panics
    /// If `group` is not a stripe of this engine.
    pub fn acked_ids_in(&self, group: usize, generation: u64) -> Vec<u64> {
        assert!(
            group < self.groups,
            "cursor stripe {group} out of range (engine has {})",
            self.groups
        );
        let pool = self.ptm.pool();
        (0..MAX_THREADS)
            .map(|t| {
                let entry = self.entry_offset(group, t);
                (pool.load_u64(entry), pool.load_u64(entry + 8))
            })
            .filter(|&(id, gen)| id != 0 && gen == generation)
            .map(|(id, _)| id)
            .collect()
    }

    /// The underlying transaction engine (for consumer-side transactions
    /// that do not ack anything).
    pub fn ptm(&self) -> &Ptm {
        &self.ptm
    }

    fn entry_offset(&self, group: usize, tid: usize) -> u32 {
        self.cursor + ((group * MAX_THREADS + tid) * CURSOR_ENTRY_LEN) as u32
    }

    /// Runs `body` and the cursor update `cursor[group][tid] = (lease_id,
    /// generation)` as one transaction — the generation is the ack log's,
    /// so recovery can tell which log the ack belongs to. Called by the
    /// `ack_exactly_once` entry points, which validate `group` and `tid`
    /// *before* anything runs and surface violations as
    /// [`LeaseError`](crate::LeaseError) values instead of a
    /// mid-transaction panic; the asserts here are the engine's own
    /// backstop.
    pub(crate) fn run<R>(
        &self,
        group: usize,
        tid: usize,
        lease_id: u64,
        generation: u64,
        body: impl FnOnce(&mut Tx<'_>) -> R,
    ) -> R {
        assert!(tid < MAX_THREADS, "tid {tid} exceeds MAX_THREADS");
        assert!(
            group < self.groups,
            "cursor stripe {group} out of range (engine has {})",
            self.groups
        );
        let entry = self.entry_offset(group, tid);
        self.ptm.run(tid, |tx| {
            let out = body(tx);
            tx.write(entry, lease_id);
            tx.write(entry + 8, generation);
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolConfig;

    #[test]
    fn cursor_survives_crash_and_reports_committed_acks() {
        let generation = 7777u64;
        let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(4 << 20)));
        let eo = ExactlyOnce::create(Arc::clone(&pool), FlushPolicy::BatchedCommit);
        assert!(eo.acked_ids(generation).is_empty());

        let consumer_state = pool.alloc_raw(8, 8);
        eo.run(0, 3, 41, generation, |tx| tx.write(consumer_state, 1000));
        assert_eq!(eo.acked_ids(generation), vec![41]);
        // A different log generation sees nothing: its lease-id space is
        // unrelated, so the committed ack must not repair anything there.
        assert!(eo.acked_ids(generation + 1).is_empty());

        // Crash: the committed transaction must survive into the cursor
        // and the consumer's own word, atomically.
        let crashed = Arc::new(pool.simulate_crash());
        let eo2 = ExactlyOnce::recover(Arc::clone(&crashed), FlushPolicy::BatchedCommit);
        assert_eq!(eo2.groups(), 1);
        assert_eq!(eo2.acked_ids(generation), vec![41]);
        assert!(eo2.acked_ids(generation + 1).is_empty());
        assert_eq!(crashed.load_u64(consumer_state), 1000);
    }

    #[test]
    fn group_stripes_are_independent_and_survive_recovery() {
        let gen_a = 111u64;
        let gen_b = 222u64;
        let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(4 << 20)));
        let eo = ExactlyOnce::create_for_groups(Arc::clone(&pool), FlushPolicy::BatchedCommit, 3);
        assert_eq!(eo.groups(), 3);
        let word = pool.alloc_raw(8, 8);
        // The same tid acks different leases in different groups; the
        // stripes must not clobber each other.
        eo.run(0, 5, 10, gen_a, |tx| tx.write(word, 1));
        eo.run(1, 5, 20, gen_b, |tx| tx.write(word, 2));
        assert_eq!(eo.acked_ids_in(0, gen_a), vec![10]);
        assert!(eo.acked_ids_in(0, gen_b).is_empty());
        assert_eq!(eo.acked_ids_in(1, gen_b), vec![20]);
        assert!(eo.acked_ids_in(2, gen_a).is_empty());

        let crashed = Arc::new(pool.simulate_crash());
        let eo2 = ExactlyOnce::recover(crashed, FlushPolicy::BatchedCommit);
        assert_eq!(eo2.groups(), 3);
        assert_eq!(eo2.acked_ids_in(0, gen_a), vec![10]);
        assert_eq!(eo2.acked_ids_in(1, gen_b), vec![20]);
    }

    #[test]
    #[should_panic(expected = "no exactly-once cursor")]
    fn recover_refuses_an_uninitialised_pool() {
        let pool = Arc::new(PmemPool::new(PoolConfig::small_test()));
        // A Ptm exists but no cursor was ever published.
        drop(Ptm::new(Arc::clone(&pool), FlushPolicy::BatchedCommit));
        let crashed = Arc::new(pool.simulate_crash());
        let _ = ExactlyOnce::recover(crashed, FlushPolicy::BatchedCommit);
    }

    #[test]
    #[should_panic(expected = "1..=")]
    fn zero_groups_is_refused_at_creation() {
        let pool = Arc::new(PmemPool::new(PoolConfig::small_test()));
        let _ = ExactlyOnce::create_for_groups(pool, FlushPolicy::BatchedCommit, 0);
    }
}
