//! Exactly-once handoff: ack + consumer state in one redo-log transaction.
//!
//! At-least-once delivery (the default) has one unavoidable duplicate
//! window: the consumer durably applies its work, crashes before acking,
//! and the item is redelivered. Closing it requires the ack and the
//! consumer's own state transition to share a single atomic commit point —
//! Gray's "queues are databases" argument. [`ExactlyOnce`] provides that
//! commit point on top of `crates/ptm`'s redo-log engine:
//!
//! 1. A per-thread **ack cursor** (a `(lease id, log generation)` pair of
//!    64-bit words per thread id, allocated on the consumer's pool and
//!    published through root slot [`CURSOR_ROOT_SLOT`]) records the last
//!    lease whose ack transaction committed on that thread, stamped with
//!    the [generation](crate::log) of the ack log it was acked under.
//! 2. [`LeasedQueue::ack_exactly_once`](crate::LeasedQueue::ack_exactly_once)
//!    runs the consumer's writes **and** the cursor pair update in one
//!    [`Ptm::run`] transaction. The persisted commit status word is the
//!    atomic point: either the consumer's state *and* the ack are durable,
//!    or neither is.
//! 3. The sidecar ack-log record is appended only after commit. If a crash
//!    swallows it, recovery reads the cursor
//!    ([`ExactlyOnce::acked_ids`]) and repairs the missing record instead
//!    of redelivering — see [`LeasedQueue::recover`](crate::LeasedQueue::recover).
//!    Only entries stamped with the *current* log's generation count: a
//!    cursor paired with a recreated or foreign ack log (whose lease-id
//!    space is unrelated) repairs nothing instead of retiring arbitrary
//!    leases.
//!
//! The cursor holds one word per thread, so a thread has at most one ack
//! transaction in the repair window at a time — which is exactly the
//! execution model (`ack_exactly_once` appends the sidecar record before
//! returning).
//!
//! The engine's root lines (6–7 of the queue root block) and the ad-hoc
//! queues' lines (0–2) do not collide, so one pool can host both the
//! consumer's durable state and this engine.

use pmem::{PmemPool, MAX_THREADS};
use ptm::{FlushPolicy, Ptm, Tx};
use std::sync::Arc;

/// Pool root slot publishing the ack-cursor area's offset (slots 0–6 are
/// owned by the queue/engine conventions; see `docs/FORMATS.md`).
pub const CURSOR_ROOT_SLOT: usize = 7;

/// Bytes per cursor entry: a `(lease id, log generation)` pair.
const CURSOR_ENTRY_LEN: usize = 16;

/// The exactly-once ack engine: a redo-log PTM plus the per-thread ack
/// cursor. See the [module docs](self).
pub struct ExactlyOnce {
    ptm: Ptm,
    /// Pool offset of the `MAX_THREADS × (lease id, generation)` cursor
    /// area.
    cursor: u32,
}

impl ExactlyOnce {
    /// Creates a fresh engine on `pool`: allocates and zeroes the cursor
    /// area, publishes it in root slot [`CURSOR_ROOT_SLOT`], and starts a
    /// fresh [`Ptm`].
    pub fn create(pool: Arc<PmemPool>, policy: FlushPolicy) -> Self {
        let len = (MAX_THREADS * CURSOR_ENTRY_LEN) as u32;
        let cursor = pool.alloc_raw(len, 64);
        pool.zero_range(cursor, len);
        pool.flush_range(0, cursor, len);
        pool.sfence(0);
        pool.set_root_u64(CURSOR_ROOT_SLOT, cursor as u64);
        ExactlyOnce {
            ptm: Ptm::new(pool, policy),
            cursor,
        }
    }

    /// Re-creates the engine after a crash: [`Ptm::recover`] first (so a
    /// committed-but-unapplied ack transaction lands in the cursor before
    /// anyone reads it), then the cursor offset from the root slot.
    ///
    /// # Panics
    /// If the pool was never initialised with [`create`](Self::create)
    /// (root slot 7 is zero).
    pub fn recover(pool: Arc<PmemPool>, policy: FlushPolicy) -> Self {
        let ptm = Ptm::recover(pool, policy);
        let cursor = ptm.pool().root_u64(CURSOR_ROOT_SLOT) as u32;
        assert!(
            cursor != 0,
            "pool has no exactly-once cursor (root slot {CURSOR_ROOT_SLOT} is zero); \
             was it created with ExactlyOnce::create?"
        );
        ExactlyOnce { ptm, cursor }
    }

    /// Lease ids whose ack transaction committed *under the ack log with
    /// the given generation*: every non-zero cursor entry whose stamped
    /// generation matches. [`LeasedQueue::recover`](crate::LeasedQueue::recover)
    /// feeds these the replayed log's generation so those leases are
    /// repaired instead of redelivered; entries stamped by an older or
    /// recreated log are ignored — their lease-id space is unrelated, and
    /// repairing by a stale id would silently consume someone else's
    /// in-flight item.
    pub fn acked_ids(&self, generation: u64) -> Vec<u64> {
        let pool = self.ptm.pool();
        (0..MAX_THREADS)
            .map(|t| {
                let entry = self.cursor + (t * CURSOR_ENTRY_LEN) as u32;
                (pool.load_u64(entry), pool.load_u64(entry + 8))
            })
            .filter(|&(id, gen)| id != 0 && gen == generation)
            .map(|(id, _)| id)
            .collect()
    }

    /// The underlying transaction engine (for consumer-side transactions
    /// that do not ack anything).
    pub fn ptm(&self) -> &Ptm {
        &self.ptm
    }

    /// Runs `body` and the cursor update `cursor[tid] = (lease_id,
    /// generation)` as one transaction — the generation is the ack log's,
    /// so recovery can tell which log the ack belongs to. Called by
    /// [`LeasedQueue::ack_exactly_once`](crate::LeasedQueue::ack_exactly_once).
    pub(crate) fn run<R>(
        &self,
        tid: usize,
        lease_id: u64,
        generation: u64,
        body: impl FnOnce(&mut Tx<'_>) -> R,
    ) -> R {
        assert!(tid < MAX_THREADS, "tid {tid} exceeds MAX_THREADS");
        let entry = self.cursor + (tid * CURSOR_ENTRY_LEN) as u32;
        self.ptm.run(tid, |tx| {
            let out = body(tx);
            tx.write(entry, lease_id);
            tx.write(entry + 8, generation);
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolConfig;

    #[test]
    fn cursor_survives_crash_and_reports_committed_acks() {
        let generation = 7777u64;
        let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(4 << 20)));
        let eo = ExactlyOnce::create(Arc::clone(&pool), FlushPolicy::BatchedCommit);
        assert!(eo.acked_ids(generation).is_empty());

        let consumer_state = pool.alloc_raw(8, 8);
        eo.run(3, 41, generation, |tx| tx.write(consumer_state, 1000));
        assert_eq!(eo.acked_ids(generation), vec![41]);
        // A different log generation sees nothing: its lease-id space is
        // unrelated, so the committed ack must not repair anything there.
        assert!(eo.acked_ids(generation + 1).is_empty());

        // Crash: the committed transaction must survive into the cursor
        // and the consumer's own word, atomically.
        let crashed = Arc::new(pool.simulate_crash());
        let eo2 = ExactlyOnce::recover(Arc::clone(&crashed), FlushPolicy::BatchedCommit);
        assert_eq!(eo2.acked_ids(generation), vec![41]);
        assert!(eo2.acked_ids(generation + 1).is_empty());
        assert_eq!(crashed.load_u64(consumer_state), 1000);
    }

    #[test]
    #[should_panic(expected = "no exactly-once cursor")]
    fn recover_refuses_an_uninitialised_pool() {
        let pool = Arc::new(PmemPool::new(PoolConfig::small_test()));
        // A Ptm exists but no cursor was ever published.
        drop(Ptm::new(Arc::clone(&pool), FlushPolicy::BatchedCommit));
        let crashed = Arc::new(pool.simulate_crash());
        let _ = ExactlyOnce::recover(crashed, FlushPolicy::BatchedCommit);
    }
}
