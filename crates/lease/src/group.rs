//! Consumer groups: N independent cursors over one queue, competing
//! consumers within each.
//!
//! A [`GroupedQueue`] wraps a base queue so that *every* group sees every
//! item (publish/subscribe between groups) while consumers *within* a
//! group compete for items (work-sharing within a group) — the two
//! consumption shapes Gray's "Queues Are Databases" composes and every
//! production broker ships. Each group owns:
//!
//! * a **[`SegmentedLog`]** in `groups/<name>/` — the same 40-byte CRC'd
//!   records as the single-consumer ack log, but rotating segments replace
//!   whole-file compaction (see the [`segments`](crate::segments) docs),
//! * its **own in-memory lease state behind its own lock** — competing
//!   consumers of group A never contend with group B's,
//! * its own dead-letter queue and delivery accounting.
//!
//! # Dispatch: the fan-out commit discipline
//!
//! The base queue consumes destructively, so an item popped for one group
//! would be lost to the rest on a crash. Dispatch therefore pops under a
//! dedicated dispatch lock and immediately appends one durable `PEND`
//! record — "this item awaits its first delivery" — to **each** group's
//! log before any consumer sees it. Replay already treats `PEND` as an
//! upsert that may precede any grant, so the per-group delivery cursor is
//! implicit in the per-group log, and recovery needs no new machinery. A
//! crash mid-fan-out loses the in-transit item only for the groups whose
//! `PEND` had not landed — the same ≤ 1 in-transit item window the
//! single-consumer layer documents for its pop-to-grant gap, now per
//! group.
//!
//! Grants then always come from the group's pending set (`GRANT` with
//! `prev` = the pend's lease id), under that group's lock only: the
//! dispatch lock serialises base pops, not settlement, so grant/ack
//! throughput scales with groups instead of flatlining on one mutex.
//!
//! Lease ids are **per group** (each group's log is its own id space with
//! its own generation); the exactly-once cursor addresses stripes by
//! `(group, tid)` so the same consumer thread can ack in several groups
//! without clobbering its repair window.

use crate::log::{Record, RecordKind};
use crate::queue::{Lease, LeaseError, Redelivery};
use crate::segments::{SegmentedLog, DEFAULT_ROTATE_RECORDS};
use durable_queues::{DurableQueue, KeyedQueue};
use obs::flight::EventKind;
use obs::LazyCounter;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use store::SyncPolicy;

static DISPATCHES: LazyCounter = LazyCounter::new("lease.group.dispatch");
static GRANTS: LazyCounter = LazyCounter::new("lease.group.grant");
static ACKS: LazyCounter = LazyCounter::new("lease.group.ack");
static NACKS: LazyCounter = LazyCounter::new("lease.group.nack");
static EXPIRIES: LazyCounter = LazyCounter::new("lease.group.expire");
static DEAD: LazyCounter = LazyCounter::new("lease.group.dead");

/// Directory (inside a grouped deployment) holding one subdirectory per
/// consumer group.
pub const GROUPS_DIR: &str = "groups";

/// Configuration of a [`GroupedQueue`].
#[derive(Clone, Debug)]
pub struct GroupConfig {
    /// Deployment directory; each group's segments live in
    /// `dir/groups/<name>/`.
    pub dir: PathBuf,
    /// Group names, in stripe order (index = the exactly-once cursor
    /// stripe). Must be non-empty, unique, and path-safe.
    pub groups: Vec<String>,
    /// How long a consumer may hold a lease before it expires.
    pub lease_timeout: Duration,
    /// Delivery budget before dead-lettering, per group (`0` = unlimited;
    /// non-zero requires a dead-letter queue per group).
    pub max_deliveries: u32,
    /// Durability tier of the segment logs.
    pub sync: SyncPolicy,
    /// Records per segment before rotation (`0` = never rotate).
    pub rotate_records: u64,
}

impl GroupConfig {
    /// A configuration with the given deployment directory and group
    /// names, and the defaults: 30 s lease timeout, unlimited deliveries,
    /// process-crash durability, rotation every
    /// [`DEFAULT_ROTATE_RECORDS`] records.
    pub fn new(
        dir: impl Into<PathBuf>,
        groups: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        GroupConfig {
            dir: dir.into(),
            groups: groups.into_iter().map(Into::into).collect(),
            lease_timeout: Duration::from_secs(30),
            max_deliveries: 0,
            sync: SyncPolicy::default(),
            rotate_records: DEFAULT_ROTATE_RECORDS,
        }
    }

    /// Overrides the lease timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.lease_timeout = timeout;
        self
    }

    /// Overrides the delivery budget (`0` = unlimited).
    pub fn with_max_deliveries(mut self, max: u32) -> Self {
        self.max_deliveries = max;
        self
    }

    /// Overrides the durability tier.
    pub fn with_sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// Overrides the rotation threshold (`0` = never rotate).
    pub fn with_rotate_records(mut self, records: u64) -> Self {
        self.rotate_records = records;
        self
    }

    fn group_dir(&self, name: &str) -> PathBuf {
        self.dir.join(GROUPS_DIR).join(name)
    }

    fn validate(&self, dlqs: &[Option<Arc<dyn DurableQueue>>]) -> io::Result<()> {
        if self.groups.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a grouped queue needs at least one consumer group",
            ));
        }
        let unique: HashSet<&str> = self.groups.iter().map(String::as_str).collect();
        if unique.len() != self.groups.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "consumer group names must be unique",
            ));
        }
        for name in &self.groups {
            if name.is_empty()
                || !name
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
            {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "consumer group name {name:?} is not path-safe \
                         (use [A-Za-z0-9._-]+)"
                    ),
                ));
            }
        }
        if dlqs.len() != self.groups.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "expected one dead-letter slot per group ({} groups, {} slots)",
                    self.groups.len(),
                    dlqs.len()
                ),
            ));
        }
        if self.max_deliveries > 0 && dlqs.iter().any(Option::is_none) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "max_deliveries > 0 requires a dead-letter queue for every group \
                 (overflow would otherwise drop items)",
            ));
        }
        Ok(())
    }
}

/// Volatile per-group counters since creation/recovery (the segment logs
/// are the durable record).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Items fanned out into this group's pending set by dispatch.
    pub dispatched: u64,
    /// Leases granted (fresh + redeliveries).
    pub granted: u64,
    /// Grants that were redeliveries (`delivery_count > 1`).
    pub redelivered: u64,
    /// Leases acked.
    pub acked: u64,
    /// Leases explicitly nacked.
    pub nacked: u64,
    /// Leases reaped after their deadline passed.
    pub expired: u64,
    /// Items moved to this group's dead-letter queue.
    pub dead_lettered: u64,
    /// Exactly-once acks that committed after their lease had been reaped
    /// *and* regranted (the documented at-least-once degradation window).
    pub late_acks: u64,
    /// Segment rotations since creation/recovery.
    pub rotations: u64,
    /// Segments retired (unlinked) since creation/recovery.
    pub segments_retired: u64,
    /// Valid records across the group's surviving segments.
    pub log_records: u64,
    /// Segment files currently on disk.
    pub segments: u32,
}

/// What grouped recovery reconstructed for one group.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GroupRecovered {
    /// The group's name.
    pub name: String,
    /// Leases in a consumer's hands at the crash, requeued with an
    /// incremented delivery count.
    pub unacked: u64,
    /// Total items requeued for redelivery in this group.
    pub redelivered: u64,
    /// Items dead-lettered during recovery (next delivery would exceed the
    /// budget).
    pub dead_lettered: u64,
    /// Leases retired because the exactly-once cursor stripe proved their
    /// ack transaction committed.
    pub tx_acked: u64,
    /// Valid segment-log records replayed.
    pub log_records: u64,
    /// Segment files present after replay.
    pub segments: u32,
    /// Already-retired segment files deleted on open (interrupted
    /// retirement roll-forward).
    pub retired_leftovers: u32,
}

struct InFlight {
    item: u64,
    delivery_count: u32,
    deadline: Instant,
}

struct PendingItem {
    /// The lease this delivery supersedes (the `GRANT.prev` linkage; for a
    /// fresh dispatch, the `PEND` record's own id).
    prev: u64,
    item: u64,
    delivery_count: u32,
}

struct GroupState {
    log: SegmentedLog,
    inflight: HashMap<u64, InFlight>,
    /// Expiry order with lazy deletion, as in the single-consumer layer.
    deadlines: BinaryHeap<Reverse<(Instant, u64)>>,
    pending: VecDeque<PendingItem>,
    /// Leases whose exactly-once settlement transaction is running outside
    /// the lock (see the single-consumer layer's settling discipline).
    settling: HashSet<u64>,
    next_id: u64,
    stats: GroupStats,
}

impl GroupState {
    fn fresh(log: SegmentedLog) -> Self {
        GroupState {
            log,
            inflight: HashMap::new(),
            deadlines: BinaryHeap::new(),
            pending: VecDeque::new(),
            settling: HashSet::new(),
            // Id 0 stays reserved, as in the single-consumer layer.
            next_id: 1,
            stats: GroupStats::default(),
        }
    }
}

struct GroupSlot {
    name: String,
    dlq: Option<Arc<dyn DurableQueue>>,
    state: Mutex<GroupState>,
}

/// A queue with consumer groups. See the [module docs](self).
///
/// # Panics
///
/// Like the single-consumer layer, consume-path methods panic if a
/// segment-log append fails at the I/O level: a write of unknown
/// durability makes every subsequent transition unsound, so the process
/// must restart and replay.
pub struct GroupedQueue<Q: DurableQueue> {
    base: Q,
    /// Serialises destructive base pops so each popped item is fanned out
    /// to every group exactly once. Never held while a group lock is
    /// *entered by settlement paths* — only dispatch takes group locks
    /// under it, one at a time, in stripe order.
    dispatch: Mutex<()>,
    lease_timeout: Duration,
    max_deliveries: u32,
    groups: Vec<GroupSlot>,
}

impl<Q: DurableQueue> GroupedQueue<Q> {
    /// Wraps `base` with a fresh segmented ack log per group (truncating
    /// any previous ones — use [`recover`](Self::recover) to resume).
    /// `dlqs` holds one dead-letter queue slot per group, in group order;
    /// every slot must be `Some` when `config.max_deliveries > 0`.
    pub fn create(
        base: Q,
        dlqs: Vec<Option<Arc<dyn DurableQueue>>>,
        config: GroupConfig,
    ) -> io::Result<Self> {
        config.validate(&dlqs)?;
        let mut groups = Vec::with_capacity(config.groups.len());
        for (name, dlq) in config.groups.iter().zip(dlqs) {
            let log =
                SegmentedLog::create(&config.group_dir(name), config.sync, config.rotate_records)?;
            groups.push(GroupSlot {
                name: name.clone(),
                dlq,
                state: Mutex::new(GroupState::fresh(log)),
            });
        }
        Ok(GroupedQueue {
            base,
            dispatch: Mutex::new(()),
            lease_timeout: config.lease_timeout,
            max_deliveries: config.max_deliveries,
            groups,
        })
    }

    /// Reopens a grouped queue after a restart, replaying every group's
    /// segment directory independently: leases granted at the crash are
    /// requeued with `delivery_count + 1`, pending items keep their
    /// recorded next count, and items whose next delivery would exceed the
    /// budget go to the group's dead-letter queue.
    ///
    /// `cursor` is the deployment's exactly-once engine, when it has one
    /// (created with at least as many stripes as there are groups): each
    /// group's stripe is queried with *that group's* log generation, so
    /// committed-but-unrecorded acks are repaired per group and stale
    /// stripes repair nothing.
    pub fn recover(
        base: Q,
        dlqs: Vec<Option<Arc<dyn DurableQueue>>>,
        config: GroupConfig,
        cursor: Option<&crate::tx::ExactlyOnce>,
    ) -> io::Result<(Self, Vec<GroupRecovered>)> {
        config.validate(&dlqs)?;
        if let Some(eo) = cursor {
            if eo.groups() < config.groups.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "exactly-once cursor has {} stripe(s) but the deployment has {} \
                         group(s)",
                        eo.groups(),
                        config.groups.len()
                    ),
                ));
            }
        }
        let mut groups = Vec::with_capacity(config.groups.len());
        let mut reports = Vec::with_capacity(config.groups.len());
        for (gi, (name, dlq)) in config.groups.iter().zip(dlqs).enumerate() {
            let (mut log, gr) =
                SegmentedLog::replay(&config.group_dir(name), config.sync, config.rotate_records)?;
            let mut report = GroupRecovered {
                name: name.clone(),
                log_records: gr.replay.records,
                segments: gr.segments,
                retired_leftovers: gr.retired_leftovers,
                ..GroupRecovered::default()
            };
            let mut live = gr.replay.live;
            let next_id = gr.replay.next_lease_id.max(1);
            if let Some(eo) = cursor {
                for id in eo.acked_ids_in(gi, gr.replay.generation) {
                    if live.remove(&id).is_some() {
                        // The consumer's transaction committed; only this
                        // group's sidecar ack record was lost. Repair it.
                        log.append(
                            &Record {
                                kind: RecordKind::Ack,
                                delivery_count: 0,
                                lease_id: id,
                                item: 0,
                                prev_lease_id: 0,
                            },
                            next_id,
                        )?;
                        report.tx_acked += 1;
                    }
                }
            }
            let mut pending = VecDeque::new();
            // BTreeMap iteration = lease-id order = grant order.
            for (id, lease) in live {
                let next = if lease.granted {
                    report.unacked += 1;
                    lease.delivery_count + 1
                } else {
                    lease.delivery_count
                };
                if config.max_deliveries > 0 && next > config.max_deliveries {
                    let dlq = dlq.as_ref().expect("checked by validate");
                    dlq.enqueue(0, lease.item);
                    log.append(
                        &Record {
                            kind: RecordKind::Dead,
                            delivery_count: 0,
                            lease_id: id,
                            item: 0,
                            prev_lease_id: 0,
                        },
                        next_id,
                    )?;
                    report.dead_lettered += 1;
                } else {
                    pending.push_back(PendingItem {
                        prev: id,
                        item: lease.item,
                        delivery_count: next,
                    });
                    report.redelivered += 1;
                }
            }
            let mut state = GroupState::fresh(log);
            state.pending = pending;
            state.next_id = next_id;
            groups.push(GroupSlot {
                name: name.clone(),
                dlq,
                state: Mutex::new(state),
            });
            reports.push(report);
        }
        Ok((
            GroupedQueue {
                base,
                dispatch: Mutex::new(()),
                lease_timeout: config.lease_timeout,
                max_deliveries: config.max_deliveries,
                groups,
            },
            reports,
        ))
    }

    // ------------------------------------------------------------------
    // Produce side (passthrough)
    // ------------------------------------------------------------------

    /// Appends `item` on the base queue. Every group will see it.
    pub fn enqueue(&self, tid: usize, item: u64) {
        self.base.enqueue(tid, item);
    }

    // ------------------------------------------------------------------
    // Handles and introspection
    // ------------------------------------------------------------------

    /// A competing-consumer handle on the named group, or `None` if no
    /// such group exists. Handles are cheap to clone and share.
    pub fn group(self: &Arc<Self>, name: &str) -> Option<ConsumerGroup<Q>> {
        let group = self.groups.iter().position(|g| g.name == name)?;
        Some(ConsumerGroup {
            shared: Arc::clone(self),
            group,
        })
    }

    /// Handles on every group, in stripe order.
    pub fn handles(self: &Arc<Self>) -> Vec<ConsumerGroup<Q>> {
        (0..self.groups.len())
            .map(|group| ConsumerGroup {
                shared: Arc::clone(self),
                group,
            })
            .collect()
    }

    /// Group names, in stripe order.
    pub fn group_names(&self) -> Vec<&str> {
        self.groups.iter().map(|g| g.name.as_str()).collect()
    }

    /// The wrapped base queue.
    pub fn base(&self) -> &Q {
        &self.base
    }

    /// The named group's dead-letter queue, if one is attached.
    pub fn dlq(&self, name: &str) -> Option<&Arc<dyn DurableQueue>> {
        self.groups.iter().find(|g| g.name == name)?.dlq.as_ref()
    }

    /// The configured lease timeout.
    pub fn lease_timeout(&self) -> Duration {
        self.lease_timeout
    }

    /// The configured delivery budget (`0` = unlimited).
    pub fn max_deliveries(&self) -> u32 {
        self.max_deliveries
    }

    // ------------------------------------------------------------------
    // Consume side (via ConsumerGroup)
    // ------------------------------------------------------------------

    /// Pops one item from the base queue and durably fans it out: one
    /// `PEND` + in-memory pending entry per group, in stripe order.
    /// Returns `false` when the base queue is empty. Caller holds the
    /// dispatch lock.
    fn fan_out_one(&self, tid: usize) -> bool {
        let Some(item) = self.base.dequeue(tid) else {
            return false;
        };
        for slot in &self.groups {
            let mut st = slot.state.lock();
            let id = st.next_id;
            st.next_id += 1;
            let next_id = st.next_id;
            append_or_die(
                &mut st.log,
                &Record {
                    kind: RecordKind::Pend,
                    delivery_count: 1,
                    lease_id: id,
                    item,
                    prev_lease_id: 0,
                },
                next_id,
            );
            st.pending.push_back(PendingItem {
                prev: id,
                item,
                delivery_count: 1,
            });
            st.stats.dispatched += 1;
        }
        DISPATCHES.incr();
        obs::flight::record(EventKind::LeaseDispatch, item, self.groups.len() as u64);
        true
    }

    fn dequeue_in(&self, group: usize, tid: usize) -> Option<Lease> {
        loop {
            let now = Instant::now();
            {
                let mut st = self.groups[group].state.lock();
                self.reap_locked(group, &mut st, tid, now);
                if let Some(p) = st.pending.pop_front() {
                    return Some(self.grant_locked(group, &mut st, now, p));
                }
            }
            // Pending is dry: pull one item from the base queue for every
            // group, then loop to compete for our group's copy.
            let dispatched = {
                let _d = self.dispatch.lock();
                self.fan_out_one(tid)
            };
            if !dispatched {
                // The base is empty, but a racing dispatcher may have
                // fanned out between our two lock scopes.
                let mut st = self.groups[group].state.lock();
                self.reap_locked(group, &mut st, tid, now);
                let p = st.pending.pop_front()?;
                return Some(self.grant_locked(group, &mut st, now, p));
            }
        }
    }

    fn grant_locked(
        &self,
        group: usize,
        st: &mut GroupState,
        now: Instant,
        p: PendingItem,
    ) -> Lease {
        let id = st.next_id;
        st.next_id += 1;
        let next_id = st.next_id;
        append_or_die(
            &mut st.log,
            &Record {
                kind: RecordKind::Grant,
                delivery_count: p.delivery_count,
                lease_id: id,
                item: p.item,
                prev_lease_id: p.prev,
            },
            next_id,
        );
        let deadline = now + self.lease_timeout;
        st.inflight.insert(
            id,
            InFlight {
                item: p.item,
                delivery_count: p.delivery_count,
                deadline,
            },
        );
        st.deadlines.push(Reverse((deadline, id)));
        st.stats.granted += 1;
        GRANTS.incr();
        obs::flight::record(EventKind::LeaseGrant, id, p.item);
        if p.delivery_count > 1 {
            st.stats.redelivered += 1;
        }
        let _ = group;
        Lease {
            id,
            item: p.item,
            delivery_count: p.delivery_count,
            deadline,
        }
    }

    fn ack_in(&self, group: usize, lease: &Lease) -> Result<(), LeaseError> {
        let mut st = self.groups[group].state.lock();
        if st.settling.contains(&lease.id) || st.inflight.remove(&lease.id).is_none() {
            return Err(LeaseError::NotInFlight);
        }
        let next_id = st.next_id;
        append_or_die(
            &mut st.log,
            &Record {
                kind: RecordKind::Ack,
                delivery_count: 0,
                lease_id: lease.id,
                item: 0,
                prev_lease_id: 0,
            },
            next_id,
        );
        st.stats.acked += 1;
        ACKS.incr();
        obs::flight::record(EventKind::LeaseAck, lease.id, 0);
        Ok(())
    }

    fn nack_in(&self, group: usize, tid: usize, lease: &Lease) -> Result<Redelivery, LeaseError> {
        let mut st = self.groups[group].state.lock();
        if st.settling.contains(&lease.id) {
            return Err(LeaseError::NotInFlight);
        }
        let Some(f) = st.inflight.remove(&lease.id) else {
            return Err(LeaseError::NotInFlight);
        };
        st.stats.nacked += 1;
        NACKS.incr();
        let outcome = self.settle_returned(group, &mut st, tid, lease.id, f.item, f.delivery_count);
        if let Redelivery::Requeued {
            next_delivery_count,
        } = outcome
        {
            obs::flight::record(EventKind::LeaseNack, lease.id, next_delivery_count as u64);
        }
        Ok(outcome)
    }

    fn reap_in(&self, group: usize, tid: usize) -> usize {
        let mut st = self.groups[group].state.lock();
        self.reap_locked(group, &mut st, tid, Instant::now())
    }

    fn reap_locked(&self, group: usize, st: &mut GroupState, tid: usize, now: Instant) -> usize {
        let mut reaped = 0;
        while let Some(&Reverse((deadline, id))) = st.deadlines.peek() {
            if deadline > now {
                break;
            }
            st.deadlines.pop();
            match st.inflight.get(&id) {
                Some(f) if f.deadline == deadline => {}
                _ => continue, // lazy deletion: stale heap entry
            }
            let f = st.inflight.remove(&id).unwrap();
            st.stats.expired += 1;
            EXPIRIES.incr();
            let outcome = self.settle_returned(group, st, tid, id, f.item, f.delivery_count);
            if let Redelivery::Requeued {
                next_delivery_count,
            } = outcome
            {
                obs::flight::record(EventKind::LeaseExpire, id, next_delivery_count as u64);
            }
            reaped += 1;
        }
        reaped
    }

    fn settle_returned(
        &self,
        group: usize,
        st: &mut GroupState,
        tid: usize,
        id: u64,
        item: u64,
        delivery_count: u32,
    ) -> Redelivery {
        let next_id = st.next_id;
        if self.max_deliveries > 0 && delivery_count >= self.max_deliveries {
            // DLQ enqueue first, DEAD record second — the same duplicate-
            // not-lose ordering as the single-consumer layer.
            let dlq = self.groups[group]
                .dlq
                .as_ref()
                .expect("checked by validate");
            dlq.enqueue(tid, item);
            append_or_die(
                &mut st.log,
                &Record {
                    kind: RecordKind::Dead,
                    delivery_count: 0,
                    lease_id: id,
                    item: 0,
                    prev_lease_id: 0,
                },
                next_id,
            );
            st.stats.dead_lettered += 1;
            DEAD.incr();
            obs::flight::record(EventKind::LeaseDead, id, item);
            Redelivery::DeadLettered
        } else {
            let next = delivery_count + 1;
            append_or_die(
                &mut st.log,
                &Record {
                    kind: RecordKind::Pend,
                    delivery_count: next,
                    lease_id: id,
                    item,
                    prev_lease_id: 0,
                },
                next_id,
            );
            st.pending.push_back(PendingItem {
                prev: id,
                item,
                delivery_count: next,
            });
            Redelivery::Requeued {
                next_delivery_count: next,
            }
        }
    }

    fn stats_in(&self, group: usize) -> GroupStats {
        let st = self.groups[group].state.lock();
        let mut s = st.stats;
        s.rotations = st.log.rotations();
        s.segments_retired = st.log.retired();
        s.log_records = st.log.records();
        s.segments = st.log.segments();
        s
    }

    fn ack_exactly_once_in<R>(
        &self,
        group: usize,
        tid: usize,
        lease: &Lease,
        eo: &crate::tx::ExactlyOnce,
        body: impl FnOnce(&mut ptm::Tx<'_>) -> R,
    ) -> Result<R, LeaseError> {
        // Validate the cursor address before anything runs or is marked
        // settling (the single-consumer layer's tid fix, plus the stripe
        // bound the (group, tid) addressing adds).
        if tid >= pmem::MAX_THREADS {
            return Err(LeaseError::ThreadOutOfRange {
                tid,
                max: pmem::MAX_THREADS,
            });
        }
        if group >= eo.groups() {
            return Err(LeaseError::GroupOutOfRange {
                group,
                groups: eo.groups(),
            });
        }
        let state = &self.groups[group].state;
        let generation = {
            let mut st = state.lock();
            let in_pending = st.pending.iter().any(|p| p.prev == lease.id);
            if st.settling.contains(&lease.id)
                || (!st.inflight.contains_key(&lease.id) && !in_pending)
            {
                return Err(LeaseError::NotInFlight);
            }
            st.settling.insert(lease.id);
            st.log.generation()
        };
        let mut mark = GroupSettlingMark {
            state,
            id: lease.id,
            armed: true,
        };
        let out = eo.run(group, tid, lease.id, generation, body);
        let mut st = state.lock();
        st.settling.remove(&lease.id);
        mark.armed = false;
        if st.inflight.remove(&lease.id).is_some() {
            st.stats.acked += 1;
        } else if let Some(pos) = st.pending.iter().position(|p| p.prev == lease.id) {
            // Expired mid-transaction but not regranted: the committed ack
            // wins, cancel the redelivery.
            st.pending.remove(pos);
            st.stats.acked += 1;
        } else {
            st.stats.late_acks += 1;
            return Ok(out);
        }
        ACKS.incr();
        obs::flight::record(EventKind::LeaseAck, lease.id, 0);
        let next_id = st.next_id;
        append_or_die(
            &mut st.log,
            &Record {
                kind: RecordKind::Ack,
                delivery_count: 0,
                lease_id: lease.id,
                item: 0,
                prev_lease_id: 0,
            },
            next_id,
        );
        Ok(out)
    }
}

impl<Q: KeyedQueue> GroupedQueue<Q> {
    /// Key-routed enqueue on the base queue (per-key FIFO when the base is
    /// a key-hash sharded queue).
    pub fn enqueue_keyed(&self, tid: usize, key: u64, item: u64) {
        self.base.enqueue_keyed(tid, key, item);
    }
}

/// Removes a lease's *settling* mark on unwind; disarmed on the normal
/// path (the group twin of the single-consumer layer's mark).
struct GroupSettlingMark<'a> {
    state: &'a Mutex<GroupState>,
    id: u64,
    armed: bool,
}

impl Drop for GroupSettlingMark<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.state.lock().settling.remove(&self.id);
        }
    }
}

fn append_or_die(log: &mut SegmentedLog, rec: &Record, next_lease_id: u64) {
    if let Err(e) = log.append(rec, next_lease_id) {
        panic!(
            "segment log append failed ({}): {e}; the log's durability is now \
             unknowable, restart and replay",
            log.dir().display()
        );
    }
}

/// A competing-consumer handle on one group of a [`GroupedQueue`]. Clones
/// share the group; pass one clone per consumer thread.
pub struct ConsumerGroup<Q: DurableQueue> {
    shared: Arc<GroupedQueue<Q>>,
    group: usize,
}

impl<Q: DurableQueue> Clone for ConsumerGroup<Q> {
    fn clone(&self) -> Self {
        ConsumerGroup {
            shared: Arc::clone(&self.shared),
            group: self.group,
        }
    }
}

impl<Q: DurableQueue> ConsumerGroup<Q> {
    /// The group's name.
    pub fn name(&self) -> &str {
        &self.shared.groups[self.group].name
    }

    /// The group's stripe index (its exactly-once cursor stripe).
    pub fn index(&self) -> usize {
        self.group
    }

    /// The owning grouped queue.
    pub fn queue(&self) -> &Arc<GroupedQueue<Q>> {
        &self.shared
    }

    /// Grants a lease on this group's next item: redeliveries first, then
    /// the group's share of fresh dispatches from the base queue. Returns
    /// `None` when both the group's pending set and the base queue are
    /// empty. Competing consumers of the same group each see a disjoint
    /// subset of items; other groups' cursors are unaffected.
    pub fn dequeue(&self, tid: usize) -> Option<Lease> {
        self.shared.dequeue_in(self.group, tid)
    }

    /// Durably retires `lease` within this group. Other groups' copies of
    /// the item are untouched.
    pub fn ack(&self, lease: &Lease) -> Result<(), LeaseError> {
        self.shared.ack_in(self.group, lease)
    }

    /// Returns `lease` unprocessed: requeued for redelivery within this
    /// group, or dead-lettered past the budget.
    pub fn nack(&self, tid: usize, lease: &Lease) -> Result<Redelivery, LeaseError> {
        self.shared.nack_in(self.group, tid, lease)
    }

    /// Reaps this group's expired leases (also runs at the start of every
    /// [`dequeue`](Self::dequeue)). Returns the number reaped.
    pub fn reap_expired(&self, tid: usize) -> usize {
        self.shared.reap_in(self.group, tid)
    }

    /// Acks `lease` and the consumer's own writes in one redo-log
    /// transaction, on this group's `(group, tid)` cursor stripe — the
    /// grouped form of
    /// [`LeasedQueue::ack_exactly_once`](crate::LeasedQueue::ack_exactly_once),
    /// with the same settling discipline and late-ack window.
    ///
    /// Fails with [`LeaseError::ThreadOutOfRange`] /
    /// [`LeaseError::GroupOutOfRange`] — before anything runs — if the
    /// `(group, tid)` pair does not address a stripe of `eo`.
    pub fn ack_exactly_once<R>(
        &self,
        tid: usize,
        lease: &Lease,
        eo: &crate::tx::ExactlyOnce,
        body: impl FnOnce(&mut ptm::Tx<'_>) -> R,
    ) -> Result<R, LeaseError> {
        self.shared
            .ack_exactly_once_in(self.group, tid, lease, eo, body)
    }

    /// Volatile counters since creation/recovery, segment accounting
    /// included.
    pub fn stats(&self) -> GroupStats {
        self.shared.stats_in(self.group)
    }

    /// Leases currently in this group's consumers' hands.
    pub fn in_flight(&self) -> usize {
        self.shared.groups[self.group].state.lock().inflight.len()
    }

    /// Items awaiting (re)delivery in this group.
    pub fn pending_redelivery(&self) -> usize {
        self.shared.groups[self.group].state.lock().pending.len()
    }

    /// This group's dead-letter queue, if one is attached.
    pub fn dlq(&self) -> Option<&Arc<dyn DurableQueue>> {
        self.shared.groups[self.group].dlq.as_ref()
    }
}

/// The group directory of a grouped deployment rooted at `dir`.
pub fn groups_dir(dir: &Path) -> PathBuf {
    dir.join(GROUPS_DIR)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::ExactlyOnce;
    use durable_queues::{OptUnlinkedQueue, QueueConfig, RecoverableQueue};
    use pmem::{PmemPool, PoolConfig};
    use ptm::FlushPolicy;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lease-group-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fresh_base() -> OptUnlinkedQueue {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(4 << 20)));
        OptUnlinkedQueue::create(pool, QueueConfig::small_test())
    }

    fn fresh_dlq() -> Arc<dyn DurableQueue> {
        Arc::new(fresh_base())
    }

    fn drain(q: &dyn DurableQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.dequeue(0)).collect()
    }

    fn no_dlqs(n: usize) -> Vec<Option<Arc<dyn DurableQueue>>> {
        (0..n).map(|_| None).collect()
    }

    #[test]
    fn every_group_sees_every_item_once() {
        let dir = tmp("fanout");
        let q = Arc::new(
            GroupedQueue::create(
                fresh_base(),
                no_dlqs(2),
                GroupConfig::new(&dir, ["alpha", "beta"]),
            )
            .unwrap(),
        );
        for i in 1..=5u64 {
            q.enqueue(0, i);
        }
        let alpha = q.group("alpha").unwrap();
        let beta = q.group("beta").unwrap();
        assert!(q.group("gamma").is_none());

        let mut seen_a = Vec::new();
        while let Some(l) = alpha.dequeue(0) {
            seen_a.push(l.item);
            alpha.ack(&l).unwrap();
        }
        let mut seen_b = Vec::new();
        while let Some(l) = beta.dequeue(1) {
            seen_b.push(l.item);
            beta.ack(&l).unwrap();
        }
        assert_eq!(seen_a, vec![1, 2, 3, 4, 5]);
        assert_eq!(seen_b, vec![1, 2, 3, 4, 5]);
        assert_eq!(alpha.stats().dispatched, 5);
        assert_eq!(beta.stats().acked, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn consumers_within_a_group_compete_for_disjoint_items() {
        let dir = tmp("compete");
        let q = Arc::new(
            GroupedQueue::create(fresh_base(), no_dlqs(1), GroupConfig::new(&dir, ["only"]))
                .unwrap(),
        );
        for i in 1..=200u64 {
            q.enqueue(0, i);
        }
        let g = q.group("only").unwrap();
        let collected: Vec<Vec<u64>> = std::thread::scope(|s| {
            (0..4usize)
                .map(|c| {
                    let g = g.clone();
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(l) = g.dequeue(c) {
                            mine.push(l.item);
                            g.ack(&l).unwrap();
                        }
                        mine
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut all: Vec<u64> = collected.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (1..=200).collect::<Vec<_>>(), "lost or doubled items");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn groups_settle_independently_nack_and_dlq() {
        let dir = tmp("dlq");
        let dlq_a = fresh_dlq();
        let dlq_b = fresh_dlq();
        let q = Arc::new(
            GroupedQueue::create(
                fresh_base(),
                vec![Some(Arc::clone(&dlq_a)), Some(Arc::clone(&dlq_b))],
                GroupConfig::new(&dir, ["a", "b"]).with_max_deliveries(2),
            )
            .unwrap(),
        );
        q.enqueue(0, 42);
        let a = q.group("a").unwrap();
        let b = q.group("b").unwrap();

        // Group a poisons the item past its budget; group b just acks it.
        let l1 = a.dequeue(0).unwrap();
        assert_eq!(
            a.nack(0, &l1).unwrap(),
            Redelivery::Requeued {
                next_delivery_count: 2
            }
        );
        let l2 = a.dequeue(0).unwrap();
        assert_eq!(l2.delivery_count, 2);
        assert_eq!(a.nack(0, &l2).unwrap(), Redelivery::DeadLettered);
        assert!(a.dequeue(0).is_none());

        let lb = b.dequeue(1).unwrap();
        assert_eq!((lb.item, lb.delivery_count), (42, 1));
        b.ack(&lb).unwrap();

        assert_eq!(drain(dlq_a.as_ref()), vec![42]);
        assert!(drain(dlq_b.as_ref()).is_empty(), "b's DLQ saw a's poison");
        assert_eq!(a.stats().dead_lettered, 1);
        assert_eq!(b.stats().acked, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_is_per_group_and_isolated() {
        let dir = tmp("recover");
        let cfg = GroupConfig::new(&dir, ["a", "b"]);
        {
            let q = Arc::new(GroupedQueue::create(fresh_base(), no_dlqs(2), cfg.clone()).unwrap());
            for i in 1..=3u64 {
                q.enqueue(0, i * 10);
            }
            let a = q.group("a").unwrap();
            let b = q.group("b").unwrap();
            // a acks 10, holds 20 and 30; b acks everything.
            let l = a.dequeue(0).unwrap();
            a.ack(&l).unwrap();
            let _h1 = a.dequeue(0).unwrap();
            let _h2 = a.dequeue(0).unwrap();
            while let Some(l) = b.dequeue(1) {
                b.ack(&l).unwrap();
            }
            // Crash: drop without settling a's two in-flight leases.
        }
        let (q, reports) = GroupedQueue::recover(fresh_base(), no_dlqs(2), cfg, None).unwrap();
        let q = Arc::new(q);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].name, "a");
        assert_eq!(reports[0].unacked, 2);
        assert_eq!(reports[0].redelivered, 2);
        assert_eq!(reports[1].name, "b");
        assert_eq!(reports[1].unacked, 0);
        assert_eq!(reports[1].redelivered, 0, "b's settled items resurrected");

        let a = q.group("a").unwrap();
        let b = q.group("b").unwrap();
        let r1 = a.dequeue(0).unwrap();
        assert_eq!((r1.item, r1.delivery_count), (20, 2));
        let r2 = a.dequeue(0).unwrap();
        assert_eq!((r2.item, r2.delivery_count), (30, 2));
        assert!(a.dequeue(0).is_none(), "a's acked item resurrected");
        assert!(b.dequeue(1).is_none(), "b saw items after acking all");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_under_traffic_survives_recovery() {
        let dir = tmp("rotation");
        let cfg = GroupConfig::new(&dir, ["g"]).with_rotate_records(8);
        let mut held_item = 0;
        {
            let q = Arc::new(GroupedQueue::create(fresh_base(), no_dlqs(1), cfg.clone()).unwrap());
            let g = q.group("g").unwrap();
            for i in 1..=50u64 {
                q.enqueue(0, i);
                let l = g.dequeue(0).unwrap();
                if i == 50 {
                    held_item = l.item;
                    break;
                }
                g.ack(&l).unwrap();
            }
            let s = g.stats();
            assert!(s.rotations >= 2, "rotation never triggered: {s:?}");
            assert!(s.segments_retired >= 1, "retirement never triggered: {s:?}");
            assert!(s.segments <= 3, "settled segments piled up: {s:?}");
        }
        let (q, reports) = GroupedQueue::recover(fresh_base(), no_dlqs(1), cfg, None).unwrap();
        let q = Arc::new(q);
        assert_eq!(reports[0].redelivered, 1);
        let g = q.group("g").unwrap();
        let r = g.dequeue(0).unwrap();
        assert_eq!((r.item, r.delivery_count), (held_item, 2));
        assert!(g.dequeue(0).is_none(), "settled item resurrected");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exactly_once_repairs_on_the_groups_own_stripe() {
        let dir = tmp("eo");
        let cfg = GroupConfig::new(&dir, ["a", "b"]);
        let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(4 << 20)));
        let eo = ExactlyOnce::create_for_groups(Arc::clone(&pool), FlushPolicy::BatchedCommit, 2);
        let word = pool.alloc_raw(8, 8);
        {
            let q = Arc::new(GroupedQueue::create(fresh_base(), no_dlqs(2), cfg.clone()).unwrap());
            q.enqueue(0, 7);
            let a = q.group("a").unwrap();
            let b = q.group("b").unwrap();
            let la = a.dequeue(0).unwrap();
            a.ack_exactly_once(0, &la, &eo, |tx| tx.write(word, 1))
                .unwrap();
            let _lb = b.dequeue(0).unwrap(); // b crashes mid-flight
        }
        // Chop a's sidecar ACK to simulate the documented crash window:
        // the transaction committed, the segment append was lost.
        let a_dir = dir.join(GROUPS_DIR).join("a");
        let seg = a_dir.join("segment-0000.log");
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - crate::log::RECORD_LEN as u64).unwrap();
        drop(f);

        let (q, reports) = GroupedQueue::recover(fresh_base(), no_dlqs(2), cfg, Some(&eo)).unwrap();
        let q = Arc::new(q);
        assert_eq!(reports[0].tx_acked, 1, "a's committed ack not repaired");
        assert_eq!(reports[0].redelivered, 0);
        assert_eq!(reports[1].tx_acked, 0, "a's stripe repaired b's lease");
        assert_eq!(reports[1].redelivered, 1, "b's in-flight lease lost");
        let b = q.group("b").unwrap();
        let r = b.dequeue(0).unwrap();
        assert_eq!((r.item, r.delivery_count), (7, 2));
        assert!(q.group("a").unwrap().dequeue(0).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_bounds_are_validated_before_the_body_runs() {
        let dir = tmp("bounds");
        let q = Arc::new(
            GroupedQueue::create(fresh_base(), no_dlqs(2), GroupConfig::new(&dir, ["a", "b"]))
                .unwrap(),
        );
        // A one-stripe engine paired with a two-group deployment: group
        // b's handle must fail loudly instead of clobbering stripe 0.
        let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(4 << 20)));
        let eo = ExactlyOnce::create(Arc::clone(&pool), FlushPolicy::BatchedCommit);
        q.enqueue(0, 1);
        let b = q.group("b").unwrap();
        let l = b.dequeue(0).unwrap();
        let mut ran = false;
        let err = b.ack_exactly_once(0, &l, &eo, |_| ran = true).unwrap_err();
        assert_eq!(
            err,
            LeaseError::GroupOutOfRange {
                group: 1,
                groups: 1
            }
        );
        let err = b
            .ack_exactly_once(pmem::MAX_THREADS + 3, &l, &eo, |_| ran = true)
            .unwrap_err();
        assert_eq!(
            err,
            LeaseError::ThreadOutOfRange {
                tid: pmem::MAX_THREADS + 3,
                max: pmem::MAX_THREADS
            }
        );
        assert!(!ran, "consumer body ran despite invalid cursor address");
        b.ack(&l).unwrap();
        // Recovery refuses the undersized engine up front, too.
        let err = GroupedQueue::recover(
            fresh_base(),
            no_dlqs(2),
            GroupConfig::new(&dir, ["a", "b"]),
            Some(&eo),
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_configs_are_refused() {
        let dir = tmp("bad-config");
        let err = GroupedQueue::create(
            fresh_base(),
            no_dlqs(0),
            GroupConfig::new(&dir, Vec::<String>::new()),
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err =
            GroupedQueue::create(fresh_base(), no_dlqs(2), GroupConfig::new(&dir, ["x", "x"]))
                .map(|_| ())
                .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = GroupedQueue::create(
            fresh_base(),
            no_dlqs(1),
            GroupConfig::new(&dir, ["../evil"]),
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = GroupedQueue::create(
            fresh_base(),
            no_dlqs(1),
            GroupConfig::new(&dir, ["a"]).with_max_deliveries(2),
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
