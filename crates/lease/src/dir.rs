//! One-directory leased deployments: sharded base queue, dead-letter
//! queue, and ack log side by side, created and reopened as a unit.
//!
//! Layout of a leased directory (everything the deployment owns lives in
//! one place, so backup/restore is a directory copy):
//!
//! ```text
//! deployment/
//!   SHARDS.manifest     # shard count + routing policy (shard crate)
//!   shard-00.pool …     # one pool file per shard
//!   dead-letter.pool    # the DLQ's own pool file
//!   LEASES.log          # the ack log (lease crate)
//! ```
//!
//! [`open_leased_dir`] recovers in dependency order — shards in parallel
//! via [`RecoveryOrchestrator`], then the DLQ pool, then the ack-log
//! replay — and reports the lease counts through
//! [`RecoveryReport::lease`], so one report covers the whole restart.

use crate::queue::{LeaseConfig, LeasedQueue};
use durable_queues::{DurableQueue, QueueConfig, RecoverableQueue};
use shard::{
    LeaseRecovery, RecoveryOrchestrator, RecoveryReport, ShardConfig, ShardManifest, ShardedQueue,
};
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use store::{FileConfig, FilePool, SyncPolicy};

/// File name of the dead-letter queue's pool inside a leased directory.
pub const DLQ_POOL_FILE: &str = "dead-letter.pool";

/// Lease-layer options of a leased directory (the shard layer keeps its
/// own [`ShardConfig`]/[`FileConfig`]).
#[derive(Clone, Debug)]
pub struct LeaseDirConfig {
    /// How long a consumer may hold a lease.
    pub lease_timeout: Duration,
    /// Delivery budget before dead-lettering (`0` = unlimited; the DLQ
    /// file is created either way).
    pub max_deliveries: u32,
    /// Durability tier applied uniformly to the shard pools (on reopen),
    /// the DLQ pool, and the ack log.
    pub sync: SyncPolicy,
    /// Ack-log compaction floor (see [`LeaseConfig::compact_after`]).
    pub compact_after: u64,
    /// Size of the dead-letter queue's pool file in bytes.
    pub dlq_bytes: usize,
}

impl Default for LeaseDirConfig {
    fn default() -> Self {
        LeaseDirConfig {
            lease_timeout: Duration::from_secs(30),
            max_deliveries: 8,
            sync: SyncPolicy::default(),
            compact_after: 4096,
            dlq_bytes: 8 << 20,
        }
    }
}

impl LeaseDirConfig {
    fn lease_config(&self, dir: &Path) -> LeaseConfig {
        LeaseConfig::new(dir)
            .with_timeout(self.lease_timeout)
            .with_max_deliveries(self.max_deliveries)
            .with_sync(self.sync)
            .with_compact_after(self.compact_after)
    }
}

/// Creates a fresh leased deployment in `dir`: the sharded base queue
/// (via [`RecoveryOrchestrator::create_dir`]), a dead-letter queue of the
/// same algorithm on its own pool file, and a fresh ack log.
pub fn create_leased_dir<Q: RecoverableQueue + 'static>(
    orch: &RecoveryOrchestrator,
    dir: &Path,
    shard: ShardConfig,
    file: FileConfig,
    lease: &LeaseDirConfig,
) -> io::Result<LeasedQueue<ShardedQueue<Q>>> {
    let queue_config = shard.queue;
    let base = orch.create_dir::<Q>(dir, shard, file)?;
    let dlq_pool = FilePool::create(
        dir.join(DLQ_POOL_FILE),
        FileConfig::with_size(lease.dlq_bytes).with_sync(lease.sync),
    )?
    .into_pool();
    let dlq: Arc<dyn DurableQueue> = Arc::new(Q::create(dlq_pool, queue_config));
    LeasedQueue::create(base, Some(dlq), lease.lease_config(dir))
}

/// Reopens a leased deployment after a restart: shards in parallel (the
/// manifest is the authority on count and policy), then the DLQ pool,
/// then the ack-log replay — in-flight leases become redeliverable with
/// bumped delivery counts, and the counts land in
/// [`RecoveryReport::lease`].
///
/// `cursor` is the deployment's exactly-once ack engine
/// ([`ExactlyOnce`](crate::tx::ExactlyOnce), recovered from the consumer's
/// pool *before* this call), when it has one: leases whose ack transaction
/// committed but whose sidecar ack record was lost to the crash are
/// repaired instead of redelivered, keeping the exactly-once guarantee
/// through the packaged directory API. Pass `None` for plain
/// at-least-once deployments.
pub fn open_leased_dir<Q: RecoverableQueue + 'static>(
    orch: &RecoveryOrchestrator,
    dir: &Path,
    queue: QueueConfig,
    lease: &LeaseDirConfig,
    cursor: Option<&crate::tx::ExactlyOnce>,
) -> io::Result<(LeasedQueue<ShardedQueue<Q>>, RecoveryReport, ShardManifest)> {
    let (base, mut report, manifest) = orch.open_dir_with_sync::<Q>(dir, queue, lease.sync)?;
    // The DLQ pool + ack-log replay are the lease layer's own recovery
    // work; time them as a third phase on the same clock as the report's
    // manifest-resolution and shard-replay spans.
    let (repaired, repair_phase) = shard::PhaseSpan::time("lease-repair", 3, || {
        let dlq_pool = FilePool::open_with_sync(dir.join(DLQ_POOL_FILE), lease.sync)?.into_pool();
        let dlq: Arc<dyn DurableQueue> = Arc::new(Q::recover(dlq_pool, queue));
        LeasedQueue::recover(base, Some(dlq), lease.lease_config(dir), cursor)
    });
    let (leased, rec) = repaired?;
    report.phases.push(repair_phase);
    report.lease = Some(LeaseRecovery {
        unacked: rec.unacked,
        redelivered: rec.redelivered,
        dead_lettered: rec.dead_lettered,
        tx_acked: rec.tx_acked,
        log_records: rec.log_records,
    });
    Ok((leased, report, manifest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_queues::DurableMsQueue;
    use pmem::PoolConfig;
    use shard::RoutePolicy;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lease-dir-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn shard_config(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            queue: QueueConfig::small_test(),
            pool: PoolConfig::test_with_size(8 << 20),
            policy: RoutePolicy::RoundRobin,
        }
    }

    #[test]
    fn leased_dir_roundtrips_through_a_restart() {
        let dir = tmp("roundtrip");
        let orch = RecoveryOrchestrator::new(2);
        let lease_cfg = LeaseDirConfig {
            max_deliveries: 3,
            ..LeaseDirConfig::default()
        };
        {
            let q = create_leased_dir::<DurableMsQueue>(
                &orch,
                &dir,
                shard_config(2),
                FileConfig::with_size(8 << 20),
                &lease_cfg,
            )
            .unwrap();
            for i in 1..=10u64 {
                q.enqueue(0, i);
            }
            let a = q.dequeue(1).unwrap();
            q.ack(&a).unwrap();
            let _b = q.dequeue(1).unwrap(); // in flight at "crash"
                                            // Orderly drop; a SIGKILL recovers identically (see
                                            // tests/consumer_kill.rs for the real thing).
        }

        let (q, report, manifest) = open_leased_dir::<DurableMsQueue>(
            &orch,
            &dir,
            QueueConfig::small_test(),
            &lease_cfg,
            None,
        )
        .unwrap();
        assert_eq!(manifest.shards(), 2);
        let lease = report.lease.expect("lease counts in the report");
        assert_eq!(lease.unacked, 1);
        assert_eq!(lease.redelivered, 1);
        assert_eq!(lease.dead_lettered, 0);
        assert!(
            report.summary().contains("1 unacked"),
            "{}",
            report.summary()
        );

        // The unacked item comes back first, with a bumped count; the
        // acked one never does. 10 items entered, 1 was acked → 9 remain.
        let mut seen = Vec::new();
        let mut redelivered_first = None;
        while let Some(l) = q.dequeue(0) {
            if redelivered_first.is_none() {
                redelivered_first = Some(l.delivery_count);
            }
            seen.push(l.item);
            q.ack(&l).unwrap();
        }
        assert_eq!(redelivered_first, Some(2));
        assert_eq!(seen.len(), 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
