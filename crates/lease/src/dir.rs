//! One-directory leased deployments: sharded base queue, dead-letter
//! queue, and ack log side by side, created and reopened as a unit.
//!
//! Layout of a leased directory (everything the deployment owns lives in
//! one place, so backup/restore is a directory copy):
//!
//! ```text
//! deployment/
//!   SHARDS.manifest     # shard count + routing policy (shard crate)
//!   shard-00.pool …     # one pool file per shard
//!   dead-letter.pool    # the DLQ's own pool file
//!   LEASES.log          # the ack log (lease crate)
//!   groups/             # consumer-group deployments only
//!     <name>/
//!       GROUP.meta      # retirement watermark + generation
//!       segment-NNNN.log# rotating per-group ack-log segments
//!       dead-letter.pool# that group's own DLQ pool
//! ```
//!
//! [`open_leased_dir`] recovers in dependency order — shards in parallel
//! via [`RecoveryOrchestrator`], then the DLQ pool, then the ack-log
//! replay — and reports the lease counts through
//! [`RecoveryReport::lease`], so one report covers the whole restart.
//! [`open_grouped_dir`] does the same for consumer-group deployments,
//! replaying every group's segment chain and reporting each one through
//! [`RecoveryReport::groups`].

use crate::group::{GroupConfig, GroupedQueue, GROUPS_DIR};
use crate::queue::{LeaseConfig, LeasedQueue};
use crate::segments::DEFAULT_ROTATE_RECORDS;
use durable_queues::{DurableQueue, QueueConfig, RecoverableQueue};
use shard::{
    GroupRecovery, LeaseRecovery, RecoveryOrchestrator, RecoveryReport, ShardConfig, ShardManifest,
    ShardedQueue,
};
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use store::{FileConfig, FilePool, SyncPolicy};

/// File name of the dead-letter queue's pool inside a leased directory.
pub const DLQ_POOL_FILE: &str = "dead-letter.pool";

/// Lease-layer options of a leased directory (the shard layer keeps its
/// own [`ShardConfig`]/[`FileConfig`]).
#[derive(Clone, Debug)]
pub struct LeaseDirConfig {
    /// How long a consumer may hold a lease.
    pub lease_timeout: Duration,
    /// Delivery budget before dead-lettering (`0` = unlimited; the DLQ
    /// file is created either way).
    pub max_deliveries: u32,
    /// Durability tier applied uniformly to the shard pools (on reopen),
    /// the DLQ pool, and the ack log.
    pub sync: SyncPolicy,
    /// Ack-log compaction floor (see [`LeaseConfig::compact_after`]).
    pub compact_after: u64,
    /// Size of the dead-letter queue's pool file in bytes.
    pub dlq_bytes: usize,
}

impl Default for LeaseDirConfig {
    fn default() -> Self {
        LeaseDirConfig {
            lease_timeout: Duration::from_secs(30),
            max_deliveries: 8,
            sync: SyncPolicy::default(),
            compact_after: 4096,
            dlq_bytes: 8 << 20,
        }
    }
}

impl LeaseDirConfig {
    fn lease_config(&self, dir: &Path) -> LeaseConfig {
        LeaseConfig::new(dir)
            .with_timeout(self.lease_timeout)
            .with_max_deliveries(self.max_deliveries)
            .with_sync(self.sync)
            .with_compact_after(self.compact_after)
    }
}

/// Creates a fresh leased deployment in `dir`: the sharded base queue
/// (via [`RecoveryOrchestrator::create_dir`]), a dead-letter queue of the
/// same algorithm on its own pool file, and a fresh ack log.
pub fn create_leased_dir<Q: RecoverableQueue + 'static>(
    orch: &RecoveryOrchestrator,
    dir: &Path,
    shard: ShardConfig,
    file: FileConfig,
    lease: &LeaseDirConfig,
) -> io::Result<LeasedQueue<ShardedQueue<Q>>> {
    let queue_config = shard.queue;
    let base = orch.create_dir::<Q>(dir, shard, file)?;
    let dlq_pool = FilePool::create(
        dir.join(DLQ_POOL_FILE),
        FileConfig::with_size(lease.dlq_bytes).with_sync(lease.sync),
    )?
    .into_pool();
    let dlq: Arc<dyn DurableQueue> = Arc::new(Q::create(dlq_pool, queue_config));
    LeasedQueue::create(base, Some(dlq), lease.lease_config(dir))
}

/// Reopens a leased deployment after a restart: shards in parallel (the
/// manifest is the authority on count and policy), then the DLQ pool,
/// then the ack-log replay — in-flight leases become redeliverable with
/// bumped delivery counts, and the counts land in
/// [`RecoveryReport::lease`].
///
/// `cursor` is the deployment's exactly-once ack engine
/// ([`ExactlyOnce`](crate::tx::ExactlyOnce), recovered from the consumer's
/// pool *before* this call), when it has one: leases whose ack transaction
/// committed but whose sidecar ack record was lost to the crash are
/// repaired instead of redelivered, keeping the exactly-once guarantee
/// through the packaged directory API. Pass `None` for plain
/// at-least-once deployments.
pub fn open_leased_dir<Q: RecoverableQueue + 'static>(
    orch: &RecoveryOrchestrator,
    dir: &Path,
    queue: QueueConfig,
    lease: &LeaseDirConfig,
    cursor: Option<&crate::tx::ExactlyOnce>,
) -> io::Result<(LeasedQueue<ShardedQueue<Q>>, RecoveryReport, ShardManifest)> {
    let (base, mut report, manifest) = orch.open_dir_with_sync::<Q>(dir, queue, lease.sync)?;
    // The DLQ pool + ack-log replay are the lease layer's own recovery
    // work; time them as a third phase on the same clock as the report's
    // manifest-resolution and shard-replay spans.
    let (repaired, repair_phase) = shard::PhaseSpan::time("lease-repair", 3, || {
        let dlq_pool = FilePool::open_with_sync(dir.join(DLQ_POOL_FILE), lease.sync)?.into_pool();
        let dlq: Arc<dyn DurableQueue> = Arc::new(Q::recover(dlq_pool, queue));
        LeasedQueue::recover(base, Some(dlq), lease.lease_config(dir), cursor)
    });
    let (leased, rec) = repaired?;
    report.phases.push(repair_phase);
    report.lease = Some(LeaseRecovery {
        unacked: rec.unacked,
        redelivered: rec.redelivered,
        dead_lettered: rec.dead_lettered,
        tx_acked: rec.tx_acked,
        log_records: rec.log_records,
    });
    Ok((leased, report, manifest))
}

/// Lease-layer options of a *grouped* deployment: consumer groups fanning
/// out over one sharded base queue, each with its own segment directory
/// and dead-letter pool under `groups/<name>/`.
#[derive(Clone, Debug)]
pub struct GroupDirConfig {
    /// Group names, in stripe order. Must be non-empty, unique, and
    /// path-safe (`[A-Za-z0-9._-]+`).
    pub groups: Vec<String>,
    /// How long a consumer may hold a lease.
    pub lease_timeout: Duration,
    /// Delivery budget before dead-lettering, per group (`0` = unlimited;
    /// each group's DLQ file is created either way).
    pub max_deliveries: u32,
    /// Durability tier applied uniformly to the shard pools (on reopen),
    /// the per-group DLQ pools, and the segment logs.
    pub sync: SyncPolicy,
    /// Records per segment before rotation (`0` = never rotate).
    pub rotate_records: u64,
    /// Size of each group's dead-letter pool file in bytes.
    pub dlq_bytes: usize,
}

impl GroupDirConfig {
    /// A configuration with the given group names and the defaults: 30 s
    /// lease timeout, budget of 8 deliveries, process-crash durability,
    /// rotation every [`DEFAULT_ROTATE_RECORDS`] records, 8 MiB DLQ pools.
    pub fn new(groups: impl IntoIterator<Item = impl Into<String>>) -> Self {
        GroupDirConfig {
            groups: groups.into_iter().map(Into::into).collect(),
            lease_timeout: Duration::from_secs(30),
            max_deliveries: 8,
            sync: SyncPolicy::default(),
            rotate_records: DEFAULT_ROTATE_RECORDS,
            dlq_bytes: 8 << 20,
        }
    }

    fn group_config(&self, dir: &Path) -> GroupConfig {
        GroupConfig::new(dir, self.groups.iter().cloned())
            .with_timeout(self.lease_timeout)
            .with_max_deliveries(self.max_deliveries)
            .with_sync(self.sync)
            .with_rotate_records(self.rotate_records)
    }

    /// Creates (or opens, for recovery) the per-group DLQ pools, in group
    /// order.
    fn dlqs<Q: RecoverableQueue + 'static>(
        &self,
        dir: &Path,
        queue: QueueConfig,
        fresh: bool,
    ) -> io::Result<Vec<Option<Arc<dyn DurableQueue>>>> {
        let mut dlqs = Vec::with_capacity(self.groups.len());
        for name in &self.groups {
            let group_dir = dir.join(GROUPS_DIR).join(name);
            std::fs::create_dir_all(&group_dir)?;
            let path = group_dir.join(DLQ_POOL_FILE);
            let dlq: Arc<dyn DurableQueue> = if fresh {
                let pool = FilePool::create(
                    path,
                    FileConfig::with_size(self.dlq_bytes).with_sync(self.sync),
                )?
                .into_pool();
                Arc::new(Q::create(pool, queue))
            } else {
                let pool = FilePool::open_with_sync(path, self.sync)?.into_pool();
                Arc::new(Q::recover(pool, queue))
            };
            dlqs.push(Some(dlq));
        }
        Ok(dlqs)
    }
}

/// Creates a fresh grouped deployment in `dir`: the sharded base queue,
/// plus — per consumer group — a segment directory and a dead-letter
/// queue of the same algorithm under `groups/<name>/`.
pub fn create_grouped_dir<Q: RecoverableQueue + 'static>(
    orch: &RecoveryOrchestrator,
    dir: &Path,
    shard: ShardConfig,
    file: FileConfig,
    group: &GroupDirConfig,
) -> io::Result<Arc<GroupedQueue<ShardedQueue<Q>>>> {
    let queue_config = shard.queue;
    let base = orch.create_dir::<Q>(dir, shard, file)?;
    let dlqs = group.dlqs::<Q>(dir, queue_config, true)?;
    Ok(Arc::new(GroupedQueue::create(
        base,
        dlqs,
        group.group_config(dir),
    )?))
}

/// Everything [`open_grouped_dir`] hands back: the recovered grouped
/// queue, the combined recovery report, and the shard manifest.
pub type OpenedGroupedDir<Q> = (Arc<GroupedQueue<Q>>, RecoveryReport, ShardManifest);

/// Reopens a grouped deployment after a restart: shards in parallel, then
/// every group's DLQ pool and segment-directory replay — each group's
/// in-flight leases become redeliverable with bumped delivery counts,
/// independently of the other groups — with per-group counts landing in
/// [`RecoveryReport::groups`].
///
/// `cursor` is the deployment's exactly-once ack engine, recovered from
/// the consumer's pool *before* this call and created with at least as
/// many stripes as there are groups ([`ExactlyOnce::create_for_groups`](
/// crate::tx::ExactlyOnce::create_for_groups)); pass `None` for plain
/// at-least-once deployments.
pub fn open_grouped_dir<Q: RecoverableQueue + 'static>(
    orch: &RecoveryOrchestrator,
    dir: &Path,
    queue: QueueConfig,
    group: &GroupDirConfig,
    cursor: Option<&crate::tx::ExactlyOnce>,
) -> io::Result<OpenedGroupedDir<ShardedQueue<Q>>> {
    let (base, mut report, manifest) = orch.open_dir_with_sync::<Q>(dir, queue, group.sync)?;
    let (repaired, repair_phase) = shard::PhaseSpan::time("lease-repair", 3, || {
        let dlqs = group.dlqs::<Q>(dir, queue, false)?;
        GroupedQueue::recover(base, dlqs, group.group_config(dir), cursor)
    });
    let (grouped, recs) = repaired?;
    report.phases.push(repair_phase);
    report.groups = recs
        .into_iter()
        .map(|r| GroupRecovery {
            name: r.name,
            unacked: r.unacked,
            redelivered: r.redelivered,
            dead_lettered: r.dead_lettered,
            tx_acked: r.tx_acked,
            log_records: r.log_records,
            segments: r.segments,
            retired_leftovers: r.retired_leftovers,
        })
        .collect();
    Ok((Arc::new(grouped), report, manifest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_queues::DurableMsQueue;
    use pmem::PoolConfig;
    use shard::RoutePolicy;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lease-dir-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn shard_config(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            queue: QueueConfig::small_test(),
            pool: PoolConfig::test_with_size(8 << 20),
            policy: RoutePolicy::RoundRobin,
        }
    }

    #[test]
    fn leased_dir_roundtrips_through_a_restart() {
        let dir = tmp("roundtrip");
        let orch = RecoveryOrchestrator::new(2);
        let lease_cfg = LeaseDirConfig {
            max_deliveries: 3,
            ..LeaseDirConfig::default()
        };
        {
            let q = create_leased_dir::<DurableMsQueue>(
                &orch,
                &dir,
                shard_config(2),
                FileConfig::with_size(8 << 20),
                &lease_cfg,
            )
            .unwrap();
            for i in 1..=10u64 {
                q.enqueue(0, i);
            }
            let a = q.dequeue(1).unwrap();
            q.ack(&a).unwrap();
            let _b = q.dequeue(1).unwrap(); // in flight at "crash"
                                            // Orderly drop; a SIGKILL recovers identically (see
                                            // tests/consumer_kill.rs for the real thing).
        }

        let (q, report, manifest) = open_leased_dir::<DurableMsQueue>(
            &orch,
            &dir,
            QueueConfig::small_test(),
            &lease_cfg,
            None,
        )
        .unwrap();
        assert_eq!(manifest.shards(), 2);
        let lease = report.lease.expect("lease counts in the report");
        assert_eq!(lease.unacked, 1);
        assert_eq!(lease.redelivered, 1);
        assert_eq!(lease.dead_lettered, 0);
        assert!(
            report.summary().contains("1 unacked"),
            "{}",
            report.summary()
        );

        // The unacked item comes back first, with a bumped count; the
        // acked one never does. 10 items entered, 1 was acked → 9 remain.
        let mut seen = Vec::new();
        let mut redelivered_first = None;
        while let Some(l) = q.dequeue(0) {
            if redelivered_first.is_none() {
                redelivered_first = Some(l.delivery_count);
            }
            seen.push(l.item);
            q.ack(&l).unwrap();
        }
        assert_eq!(redelivered_first, Some(2));
        assert_eq!(seen.len(), 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn grouped_dir_roundtrips_with_per_group_reports() {
        let dir = tmp("grouped-roundtrip");
        let orch = RecoveryOrchestrator::new(2);
        let cfg = GroupDirConfig::new(["alpha", "beta"]);
        {
            let q = create_grouped_dir::<DurableMsQueue>(
                &orch,
                &dir,
                shard_config(2),
                FileConfig::with_size(8 << 20),
                &cfg,
            )
            .unwrap();
            for i in 1..=6u64 {
                q.enqueue(0, i);
            }
            let alpha = q.group("alpha").unwrap();
            let beta = q.group("beta").unwrap();
            // alpha acks two and holds one; beta drains everything.
            for _ in 0..2 {
                let l = alpha.dequeue(0).unwrap();
                alpha.ack(&l).unwrap();
            }
            let _held = alpha.dequeue(0).unwrap();
            while let Some(l) = beta.dequeue(1) {
                beta.ack(&l).unwrap();
            }
        }

        let (q, report, manifest) =
            open_grouped_dir::<DurableMsQueue>(&orch, &dir, QueueConfig::small_test(), &cfg, None)
                .unwrap();
        assert_eq!(manifest.shards(), 2);
        assert_eq!(report.groups.len(), 2);
        assert_eq!(report.groups[0].name, "alpha");
        assert_eq!(report.groups[0].unacked, 1);
        assert_eq!(report.groups[1].name, "beta");
        assert_eq!(report.groups[1].redelivered, 0);
        assert!(
            report.summary().contains("2 group(s)"),
            "{}",
            report.summary()
        );

        // alpha's held item comes back bumped, then the items beta's
        // pre-crash dispatches fanned into alpha's pending set; beta
        // settled everything, so it sees nothing.
        let alpha = q.group("alpha").unwrap();
        let r = alpha.dequeue(0).unwrap();
        assert_eq!((r.item, r.delivery_count), (3, 2));
        alpha.ack(&r).unwrap();
        let mut rest = Vec::new();
        while let Some(l) = alpha.dequeue(0) {
            rest.push(l.item);
            alpha.ack(&l).unwrap();
        }
        assert_eq!(rest, vec![4, 5, 6]);
        let beta = q.group("beta").unwrap();
        assert!(beta.dequeue(1).is_none(), "beta resurrected settled items");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
