//! Peek-lock consumption over any [`DurableQueue`].
//!
//! [`LeasedQueue`] wraps a base queue so that `dequeue` no longer destroys:
//! it returns a [`Lease`] while the item stays durably owned in the
//! [ack log](crate::log). Consumers [`ack`](LeasedQueue::ack) to retire,
//! [`nack`](LeasedQueue::nack) (or let the deadline pass) to redeliver with
//! an incremented delivery count, and items that exhaust their delivery
//! budget overflow to a dead-letter queue. See the crate docs for the state
//! machine and the crash-consistency argument.

use crate::log::{AckLog, Record, RecordKind};
use durable_queues::{DurableQueue, KeyedQueue};
use obs::flight::EventKind;
use obs::LazyCounter;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use store::SyncPolicy;

// Settlement instruments, mirroring the volatile `LeaseStats` (which reset
// on recovery) with process-global monotonic counters the exporters read.
static GRANTS: LazyCounter = LazyCounter::new("lease.grant");
static ACKS: LazyCounter = LazyCounter::new("lease.ack");
static NACKS: LazyCounter = LazyCounter::new("lease.nack");
static EXPIRIES: LazyCounter = LazyCounter::new("lease.expire");
static DEAD: LazyCounter = LazyCounter::new("lease.dead");
static COMPACTIONS: LazyCounter = LazyCounter::new("lease.compaction");

/// Configuration of a [`LeasedQueue`].
#[derive(Clone, Debug)]
pub struct LeaseConfig {
    /// Directory holding the ack log (`LEASES.log`) — for file-backed
    /// deployments, the same directory as the pool files.
    pub dir: PathBuf,
    /// How long a consumer may hold a lease before it expires and the item
    /// becomes redeliverable.
    pub lease_timeout: Duration,
    /// Maximum times an item may be delivered before it is dead-lettered
    /// (`0` = unlimited; requires a dead-letter queue when non-zero).
    pub max_deliveries: u32,
    /// Durability tier of the ack log (mirrors the pool files' policy).
    pub sync: SyncPolicy,
    /// Compact the ack log once it holds more than this many records *and*
    /// retired records dominate live ones 4:1 (`0` = never compact).
    pub compact_after: u64,
}

impl LeaseConfig {
    /// A configuration with the given log directory and the defaults:
    /// 30 s lease timeout, unlimited deliveries, process-crash durability,
    /// compaction after 4096 records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LeaseConfig {
            dir: dir.into(),
            lease_timeout: Duration::from_secs(30),
            max_deliveries: 0,
            sync: SyncPolicy::default(),
            compact_after: 4096,
        }
    }

    /// Overrides the lease timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.lease_timeout = timeout;
        self
    }

    /// Overrides the delivery budget (`0` = unlimited).
    pub fn with_max_deliveries(mut self, max: u32) -> Self {
        self.max_deliveries = max;
        self
    }

    /// Overrides the durability tier.
    pub fn with_sync(mut self, sync: SyncPolicy) -> Self {
        self.sync = sync;
        self
    }

    /// Overrides the compaction threshold (`0` = never compact).
    pub fn with_compact_after(mut self, records: u64) -> Self {
        self.compact_after = records;
        self
    }
}

/// A granted lease: the peek-locked item plus everything a consumer needs
/// to ack, nack, or reason about redelivery.
#[derive(Clone, Copy, Debug)]
pub struct Lease {
    /// Unique, monotonically increasing lease id, starting at 1 (0 is
    /// reserved: the "no previous lease" sentinel in grant records and the
    /// "nothing acked" sentinel in the exactly-once cursor).
    pub id: u64,
    /// The item under lease.
    pub item: u64,
    /// Which delivery attempt this is (first delivery = 1).
    pub delivery_count: u32,
    /// When the lease expires and the item becomes redeliverable.
    pub deadline: Instant,
}

/// Why an ack/nack was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaseError {
    /// The lease is not in flight: it was already acked or nacked, or it
    /// expired and the item has been (or is queued to be) redelivered.
    NotInFlight,
    /// The caller's thread id does not fit the exactly-once cursor
    /// (`tid >= MAX_THREADS`). Validated before the settlement transaction
    /// starts, so no consumer-side work runs and nothing is marked
    /// settling.
    ThreadOutOfRange {
        /// The offending thread id.
        tid: usize,
        /// The exclusive bound ([`pmem::MAX_THREADS`]).
        max: usize,
    },
    /// The consumer-group index does not fit the exactly-once cursor: the
    /// engine was created with fewer stripes than this deployment has
    /// groups (see
    /// [`ExactlyOnce::create_for_groups`](crate::tx::ExactlyOnce::create_for_groups)).
    GroupOutOfRange {
        /// The offending group index.
        group: usize,
        /// Stripes the engine actually has.
        groups: usize,
    },
}

impl std::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseError::NotInFlight => {
                write!(f, "lease is not in flight (already settled or expired)")
            }
            LeaseError::ThreadOutOfRange { tid, max } => {
                write!(
                    f,
                    "thread id {tid} does not fit the exactly-once cursor \
                     (MAX_THREADS = {max})"
                )
            }
            LeaseError::GroupOutOfRange { group, groups } => {
                write!(
                    f,
                    "consumer group {group} does not fit the exactly-once cursor \
                     (engine was created for {groups} group(s))"
                )
            }
        }
    }
}

impl std::error::Error for LeaseError {}

/// Where a nacked (or expired) item went.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Redelivery {
    /// The item awaits redelivery; the next lease will carry this count.
    Requeued {
        /// Delivery count the next grant will carry.
        next_delivery_count: u32,
    },
    /// The item exhausted its delivery budget and was durably moved to the
    /// dead-letter queue.
    DeadLettered,
}

/// Volatile counters since creation/recovery (not persisted; the ack log
/// is the durable record).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeaseStats {
    /// Leases granted (fresh + redeliveries).
    pub granted: u64,
    /// Grants that were redeliveries (`delivery_count > 1`).
    pub redelivered: u64,
    /// Leases acked.
    pub acked: u64,
    /// Leases explicitly nacked.
    pub nacked: u64,
    /// Leases reaped after their deadline passed.
    pub expired: u64,
    /// Items moved to the dead-letter queue.
    pub dead_lettered: u64,
    /// Exactly-once acks that committed after their lease had already been
    /// reaped *and* regranted — the documented window in which the handoff
    /// degrades to at-least-once.
    pub late_acks: u64,
    /// Ack-log compactions performed.
    pub compactions: u64,
}

/// What [`LeasedQueue::recover`] reconstructed from the ack log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveredLeases {
    /// Leases that were in a consumer's hands at the crash and are now
    /// queued for redelivery with an incremented delivery count.
    pub unacked: u64,
    /// Total items queued for redelivery (`unacked` + previously
    /// nacked/expired items that had not been regranted yet).
    pub redelivered: u64,
    /// Items dead-lettered *during recovery* because their next delivery
    /// would exceed the budget.
    pub dead_lettered: u64,
    /// Leases retired at recovery because the exactly-once cursor proved
    /// their ack transaction committed (the sidecar ack record was the only
    /// thing the crash swallowed).
    pub tx_acked: u64,
    /// Valid ack-log records replayed.
    pub log_records: u64,
}

struct InFlight {
    item: u64,
    delivery_count: u32,
    deadline: Instant,
}

struct PendingItem {
    /// The lease this redelivery supersedes (its `GRANT.prev` linkage).
    prev: u64,
    item: u64,
    /// Count the next grant will carry.
    delivery_count: u32,
}

struct LeaseState {
    log: AckLog,
    inflight: HashMap<u64, InFlight>,
    /// Expiry order with lazy deletion: an entry is live iff the lease is
    /// still in flight with exactly this deadline.
    deadlines: BinaryHeap<Reverse<(Instant, u64)>>,
    pending: VecDeque<PendingItem>,
    /// Leases whose exactly-once settlement transaction is running outside
    /// the lock: any other settlement attempt (ack, nack, or a second
    /// exactly-once ack) must see `NotInFlight` instead of racing it.
    /// Expiry reaping deliberately still applies — the documented late-ack
    /// window — so a wedged consumer transaction cannot strand the item.
    settling: HashSet<u64>,
    next_id: u64,
    stats: LeaseStats,
}

/// A peek-lock wrapper around any durable queue. See the
/// [module docs](self) and the crate docs.
///
/// All lease state transitions are serialised by one internal lock; the
/// base queue's own lock-free paths still run concurrently for enqueues
/// and for the destructive pop feeding fresh grants.
///
/// # Panics
///
/// Consume-path methods panic if an ack-log append fails at the I/O level:
/// a write of unknown durability would make every subsequent lease
/// transition unsound, so (like a message store losing its WAL device) the
/// process must restart and replay. Constructors return `io::Result`
/// instead, since nothing is in flight yet.
pub struct LeasedQueue<Q: DurableQueue> {
    base: Q,
    dlq: Option<Arc<dyn DurableQueue>>,
    lease_timeout: Duration,
    max_deliveries: u32,
    compact_after: u64,
    state: Mutex<LeaseState>,
}

impl<Q: DurableQueue> LeasedQueue<Q> {
    /// Wraps `base` with a fresh ack log in `config.dir` (truncating any
    /// previous log — use [`recover`](Self::recover) to resume one).
    ///
    /// Fails with `InvalidInput` if `config.max_deliveries > 0` but no
    /// dead-letter queue was supplied: a finite budget with nowhere to
    /// overflow would silently drop items.
    pub fn create(
        base: Q,
        dlq: Option<Arc<dyn DurableQueue>>,
        config: LeaseConfig,
    ) -> io::Result<Self> {
        Self::check_dlq(&config, &dlq)?;
        let log = AckLog::create(&config.dir, config.sync)?;
        let state = LeaseState::fresh(log);
        Ok(Self::assemble(base, dlq, config, state))
    }

    /// Wraps `base` around the ack log already in `config.dir`, replaying
    /// it so every lease without a terminal record becomes redeliverable:
    /// leases granted at the crash are requeued with `delivery_count + 1`,
    /// nacked-but-not-regranted items keep their recorded next count, and
    /// items whose next delivery would exceed the budget go straight to the
    /// dead-letter queue.
    ///
    /// `cursor` is the deployment's exactly-once ack engine, when it has
    /// one: leases whose ack transaction is known to have committed
    /// ([`ExactlyOnce::acked_ids`](crate::tx::ExactlyOnce::acked_ids),
    /// queried with the replayed log's generation so entries stamped by an
    /// older or recreated log are ignored) are retired here with repair ack
    /// records instead of being redelivered. Pass `None` for plain
    /// at-least-once deployments.
    pub fn recover(
        base: Q,
        dlq: Option<Arc<dyn DurableQueue>>,
        config: LeaseConfig,
        cursor: Option<&crate::tx::ExactlyOnce>,
    ) -> io::Result<(Self, RecoveredLeases)> {
        Self::check_dlq(&config, &dlq)?;
        let (mut log, replay) = AckLog::replay(&config.dir, config.sync)?;
        let tx_acked = cursor
            .map(|eo| eo.acked_ids(replay.generation))
            .unwrap_or_default();
        let mut pending = VecDeque::new();
        let mut recovered = RecoveredLeases {
            log_records: replay.records,
            ..RecoveredLeases::default()
        };

        let mut live = replay.live;
        for &id in &tx_acked {
            if live.remove(&id).is_some() {
                // The consumer's transaction committed; only the sidecar
                // ack record was lost to the crash. Repair it.
                log.append(&Record {
                    kind: RecordKind::Ack,
                    delivery_count: 0,
                    lease_id: id,
                    item: 0,
                    prev_lease_id: 0,
                })?;
                recovered.tx_acked += 1;
            }
        }

        // BTreeMap iteration = lease-id order = grant order, so recovered
        // redelivery preserves the original delivery order.
        for (id, lease) in live {
            let next = if lease.granted {
                recovered.unacked += 1;
                lease.delivery_count + 1
            } else {
                lease.delivery_count
            };
            if config.max_deliveries > 0 && next > config.max_deliveries {
                let dlq = dlq.as_ref().expect("checked by check_dlq");
                dlq.enqueue(0, lease.item);
                log.append(&Record {
                    kind: RecordKind::Dead,
                    delivery_count: 0,
                    lease_id: id,
                    item: 0,
                    prev_lease_id: 0,
                })?;
                recovered.dead_lettered += 1;
            } else {
                pending.push_back(PendingItem {
                    prev: id,
                    item: lease.item,
                    delivery_count: next,
                });
                recovered.redelivered += 1;
            }
        }
        let mut state = LeaseState::fresh(log);
        state.pending = pending;
        state.next_id = replay.next_lease_id.max(1);
        Ok((Self::assemble(base, dlq, config, state), recovered))
    }

    fn check_dlq(config: &LeaseConfig, dlq: &Option<Arc<dyn DurableQueue>>) -> io::Result<()> {
        if config.max_deliveries > 0 && dlq.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "max_deliveries > 0 requires a dead-letter queue (overflow \
                 would otherwise drop items)",
            ));
        }
        Ok(())
    }

    fn assemble(
        base: Q,
        dlq: Option<Arc<dyn DurableQueue>>,
        config: LeaseConfig,
        state: LeaseState,
    ) -> Self {
        LeasedQueue {
            base,
            dlq,
            lease_timeout: config.lease_timeout,
            max_deliveries: config.max_deliveries,
            compact_after: config.compact_after,
            state: Mutex::new(state),
        }
    }

    // ------------------------------------------------------------------
    // Produce side (passthrough)
    // ------------------------------------------------------------------

    /// Appends `item` on the base queue.
    pub fn enqueue(&self, tid: usize, item: u64) {
        self.base.enqueue(tid, item);
    }

    // ------------------------------------------------------------------
    // Consume side
    // ------------------------------------------------------------------

    /// Grants a lease on the next item: redeliveries first (in lease-id
    /// order), then a fresh pop from the base queue. Returns `None` when
    /// neither has an item. Expired leases are reaped first, so a single
    /// consumer loop observes its own timeouts.
    ///
    /// The grant record is durable (fsync'd under the power-fail tier)
    /// before the lease is returned, so no item a consumer *observed* can
    /// be lost to a crash. The one unprotected window is inherent to a
    /// destructive base queue: a crash between the base pop and the grant
    /// append loses that single in-transit item — never one that any
    /// consumer has seen. Closing it would need a non-destructive base
    /// (peek support), which none of the paper's algorithms have.
    pub fn dequeue(&self, tid: usize) -> Option<Lease> {
        let now = Instant::now();
        let mut st = self.state.lock();
        self.reap_locked(&mut st, tid, now);
        if let Some(p) = st.pending.pop_front() {
            return Some(self.grant_locked(&mut st, now, p.item, p.delivery_count, p.prev));
        }
        drop(st);
        let item = self.base.dequeue(tid)?;
        let mut st = self.state.lock();
        Some(self.grant_locked(&mut st, now, item, 1, 0))
    }

    /// Durably retires `lease`: the item is consumed and will never be
    /// redelivered. Fails with [`LeaseError::NotInFlight`] if the lease
    /// already settled or expired.
    pub fn ack(&self, lease: &Lease) -> Result<(), LeaseError> {
        let mut st = self.state.lock();
        if st.settling.contains(&lease.id) || st.inflight.remove(&lease.id).is_none() {
            // Settling: an exactly-once transaction owns this lease's
            // settlement; racing it would double-settle.
            return Err(LeaseError::NotInFlight);
        }
        append_or_die(
            &mut st.log,
            &Record {
                kind: RecordKind::Ack,
                delivery_count: 0,
                lease_id: lease.id,
                item: 0,
                prev_lease_id: 0,
            },
        );
        st.stats.acked += 1;
        ACKS.incr();
        obs::flight::record(EventKind::LeaseAck, lease.id, 0);
        self.maybe_compact(&mut st);
        Ok(())
    }

    /// Returns `lease` unprocessed: the item is requeued for redelivery
    /// with `delivery_count + 1`, or dead-lettered if that would exceed
    /// the budget. `tid` is the caller's thread id on the dead-letter
    /// queue.
    pub fn nack(&self, tid: usize, lease: &Lease) -> Result<Redelivery, LeaseError> {
        let mut st = self.state.lock();
        if st.settling.contains(&lease.id) {
            return Err(LeaseError::NotInFlight);
        }
        let Some(f) = st.inflight.remove(&lease.id) else {
            return Err(LeaseError::NotInFlight);
        };
        st.stats.nacked += 1;
        NACKS.incr();
        let outcome = self.settle_returned(&mut st, tid, lease.id, f.item, f.delivery_count);
        if let Redelivery::Requeued {
            next_delivery_count,
        } = outcome
        {
            obs::flight::record(EventKind::LeaseNack, lease.id, next_delivery_count as u64);
        }
        Ok(outcome)
    }

    /// Reaps every lease whose deadline has passed, requeueing (or
    /// dead-lettering) the items exactly as [`nack`](Self::nack) would.
    /// Runs implicitly at the start of every [`dequeue`](Self::dequeue);
    /// call it directly to observe timeouts without consuming. Returns the
    /// number of leases reaped.
    pub fn reap_expired(&self, tid: usize) -> usize {
        let mut st = self.state.lock();
        self.reap_locked(&mut st, tid, Instant::now())
    }

    fn reap_locked(&self, st: &mut LeaseState, tid: usize, now: Instant) -> usize {
        let mut reaped = 0;
        while let Some(&Reverse((deadline, id))) = st.deadlines.peek() {
            if deadline > now {
                break;
            }
            st.deadlines.pop();
            // Lazy deletion: the heap entry is stale unless the lease is
            // still in flight with exactly this deadline.
            match st.inflight.get(&id) {
                Some(f) if f.deadline == deadline => {}
                _ => continue,
            }
            let f = st.inflight.remove(&id).unwrap();
            st.stats.expired += 1;
            EXPIRIES.incr();
            let outcome = self.settle_returned(st, tid, id, f.item, f.delivery_count);
            if let Redelivery::Requeued {
                next_delivery_count,
            } = outcome
            {
                obs::flight::record(EventKind::LeaseExpire, id, next_delivery_count as u64);
            }
            reaped += 1;
        }
        reaped
    }

    /// An item came back (nack or expiry): requeue it for redelivery, or
    /// dead-letter it if the next delivery would exceed the budget.
    fn settle_returned(
        &self,
        st: &mut LeaseState,
        tid: usize,
        id: u64,
        item: u64,
        delivery_count: u32,
    ) -> Redelivery {
        if self.max_deliveries > 0 && delivery_count >= self.max_deliveries {
            // DLQ enqueue first, DEAD record second: a crash between the
            // two duplicates into the DLQ (at-least-once) instead of
            // losing the item.
            let dlq = self.dlq.as_ref().expect("checked at construction");
            dlq.enqueue(tid, item);
            append_or_die(
                &mut st.log,
                &Record {
                    kind: RecordKind::Dead,
                    delivery_count: 0,
                    lease_id: id,
                    item: 0,
                    prev_lease_id: 0,
                },
            );
            st.stats.dead_lettered += 1;
            DEAD.incr();
            obs::flight::record(EventKind::LeaseDead, id, item);
            self.maybe_compact(st);
            Redelivery::DeadLettered
        } else {
            let next = delivery_count + 1;
            append_or_die(
                &mut st.log,
                &Record {
                    kind: RecordKind::Pend,
                    delivery_count: next,
                    lease_id: id,
                    item,
                    prev_lease_id: 0,
                },
            );
            st.pending.push_back(PendingItem {
                prev: id,
                item,
                delivery_count: next,
            });
            Redelivery::Requeued {
                next_delivery_count: next,
            }
        }
    }

    fn grant_locked(
        &self,
        st: &mut LeaseState,
        now: Instant,
        item: u64,
        delivery_count: u32,
        prev: u64,
    ) -> Lease {
        let id = st.next_id;
        st.next_id += 1;
        append_or_die(
            &mut st.log,
            &Record {
                kind: RecordKind::Grant,
                delivery_count,
                lease_id: id,
                item,
                prev_lease_id: prev,
            },
        );
        let deadline = now + self.lease_timeout;
        st.inflight.insert(
            id,
            InFlight {
                item,
                delivery_count,
                deadline,
            },
        );
        st.deadlines.push(Reverse((deadline, id)));
        st.stats.granted += 1;
        GRANTS.incr();
        obs::flight::record(EventKind::LeaseGrant, id, item);
        if delivery_count > 1 {
            st.stats.redelivered += 1;
        }
        Lease {
            id,
            item,
            delivery_count,
            deadline,
        }
    }

    /// Compacts the ack log when retired records dominate the live set
    /// 4:1 past the configured floor — the "acked prefix dominates" test.
    fn maybe_compact(&self, st: &mut LeaseState) {
        if self.compact_after == 0 {
            return;
        }
        let live = (st.inflight.len() + st.pending.len()) as u64;
        if st.log.records() <= self.compact_after || st.log.records() <= live * 4 {
            return;
        }
        let snapshot: Vec<Record> = st
            .inflight
            .iter()
            .map(|(&id, f)| Record {
                kind: RecordKind::Grant,
                delivery_count: f.delivery_count,
                lease_id: id,
                item: f.item,
                prev_lease_id: 0,
            })
            .chain(st.pending.iter().map(|p| Record {
                kind: RecordKind::Pend,
                delivery_count: p.delivery_count,
                lease_id: p.prev,
                item: p.item,
                prev_lease_id: 0,
            }))
            .collect();
        // The snapshot only holds live leases, so the id high-water mark
        // rides the rewritten header — without it, settling the
        // highest-numbered leases and then crashing would reuse their ids.
        let next_id = st.next_id;
        let live_records = snapshot.len() as u64;
        if let Err(e) = st.log.compact(next_id, snapshot) {
            panic!("ack log compaction failed: {e}");
        }
        st.stats.compactions += 1;
        COMPACTIONS.incr();
        obs::flight::record(EventKind::LeaseCompaction, live_records, 0);
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The wrapped base queue.
    pub fn base(&self) -> &Q {
        &self.base
    }

    /// The dead-letter queue, if one is attached.
    pub fn dlq(&self) -> Option<&Arc<dyn DurableQueue>> {
        self.dlq.as_ref()
    }

    /// Volatile counters since creation/recovery.
    pub fn stats(&self) -> LeaseStats {
        self.state.lock().stats
    }

    /// Leases currently in a consumer's hands.
    pub fn in_flight(&self) -> usize {
        self.state.lock().inflight.len()
    }

    /// Items awaiting redelivery (nacked/expired/recovered, not yet
    /// regranted).
    pub fn pending_redelivery(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Records currently in the ack log (drops after compaction).
    pub fn log_records(&self) -> u64 {
        self.state.lock().log.records()
    }

    /// The configured lease timeout.
    pub fn lease_timeout(&self) -> Duration {
        self.lease_timeout
    }

    /// The configured delivery budget (`0` = unlimited).
    pub fn max_deliveries(&self) -> u32 {
        self.max_deliveries
    }
}

impl<Q: KeyedQueue> LeasedQueue<Q> {
    /// Key-routed enqueue on the base queue (per-key FIFO when the base is
    /// a key-hash sharded queue).
    pub fn enqueue_keyed(&self, tid: usize, key: u64, item: u64) {
        self.base.enqueue_keyed(tid, key, item);
    }
}

impl LeaseState {
    fn fresh(log: AckLog) -> Self {
        LeaseState {
            log,
            inflight: HashMap::new(),
            deadlines: BinaryHeap::new(),
            pending: VecDeque::new(),
            settling: HashSet::new(),
            // Lease id 0 is reserved: it is the "no previous lease"
            // sentinel in GRANT records and the "nothing acked" sentinel
            // in the exactly-once cursor.
            next_id: 1,
            stats: LeaseStats::default(),
        }
    }
}

/// Removes a lease's *settling* mark on unwind; disarmed on the normal
/// path, where [`LeasedQueue::ack_exactly_once`] removes the mark itself
/// under the settlement lock.
struct SettlingMark<'a> {
    state: &'a Mutex<LeaseState>,
    id: u64,
    armed: bool,
}

impl Drop for SettlingMark<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.state.lock().settling.remove(&self.id);
        }
    }
}

fn append_or_die(log: &mut AckLog, rec: &Record) {
    if let Err(e) = log.append(rec) {
        panic!(
            "ack log append failed ({}): {e}; the log's durability is now \
             unknowable, restart and replay",
            log.path().display()
        );
    }
}

// ----------------------------------------------------------------------
// Exactly-once handoff
// ----------------------------------------------------------------------

impl<Q: DurableQueue> LeasedQueue<Q> {
    /// Acks `lease` and applies the consumer's own writes in **one**
    /// redo-log transaction — the exactly-once handoff. `body` runs inside
    /// the transaction (use [`Tx::write`](ptm::Tx::write) for the
    /// consumer's state, e.g. its processed-offset root); the transaction
    /// additionally records `lease.id` in the per-thread exactly-once
    /// cursor, so its commit point settles the ack and the consumer's
    /// state atomically. After commit the sidecar ack record is appended;
    /// if a crash swallows that append, recovery reads the cursor and
    /// repairs it (see [`recover`](Self::recover)) — the item is **not**
    /// redelivered.
    ///
    /// Fails with [`LeaseError::ThreadOutOfRange`] — before anything runs,
    /// marks, or commits — if `tid` does not fit the cursor's
    /// `MAX_THREADS` stripe, instead of panicking mid-transaction.
    ///
    /// Fails with [`LeaseError::NotInFlight`] *before* running `body` if
    /// the lease already settled — including when another settlement
    /// (`ack`, `nack`, or a concurrent `ack_exactly_once`) already owns it:
    /// the lease is marked *settling* under the lock before the transaction
    /// starts, so at most one settlement body ever runs per lease and a
    /// racing caller's side effects are never applied twice. If the lease
    /// expires while the transaction runs, the committed work stands; when
    /// the item has not been regranted yet the ack still wins (the pending
    /// redelivery is cancelled), otherwise the handoff degrades to
    /// at-least-once for this item (counted in [`LeaseStats::late_acks`]).
    pub fn ack_exactly_once<R>(
        &self,
        tid: usize,
        lease: &Lease,
        eo: &crate::tx::ExactlyOnce,
        body: impl FnOnce(&mut ptm::Tx<'_>) -> R,
    ) -> Result<R, LeaseError> {
        // Validate the cursor address before taking any lock or marking
        // anything settling: an invalid tid used to surface as an assert
        // *inside* the transaction, after the caller's body had run.
        if tid >= pmem::MAX_THREADS {
            return Err(LeaseError::ThreadOutOfRange {
                tid,
                max: pmem::MAX_THREADS,
            });
        }
        let generation = {
            let mut st = self.state.lock();
            let in_pending = st.pending.iter().any(|p| p.prev == lease.id);
            if st.settling.contains(&lease.id)
                || (!st.inflight.contains_key(&lease.id) && !in_pending)
            {
                return Err(LeaseError::NotInFlight);
            }
            st.settling.insert(lease.id);
            st.log.generation()
        };
        // The mark must come off even if `body` unwinds, or the lease could
        // never be settled again; on the normal path it is removed under
        // the same lock that settles, so no second settlement can slip in
        // between transaction commit and settlement.
        let mut mark = SettlingMark {
            state: &self.state,
            id: lease.id,
            armed: true,
        };
        let out = eo.run(0, tid, lease.id, generation, body);
        let mut st = self.state.lock();
        st.settling.remove(&lease.id);
        mark.armed = false;
        if st.inflight.remove(&lease.id).is_some() {
            st.stats.acked += 1;
        } else if let Some(pos) = st.pending.iter().position(|p| p.prev == lease.id) {
            // Expired mid-transaction but not yet regranted: the committed
            // ack wins, cancel the redelivery.
            st.pending.remove(pos);
            st.stats.acked += 1;
        } else {
            // Regranted to another consumer before our commit: that grant
            // retired this lease id, so there is nothing left to ack — the
            // item will be delivered again despite the committed work.
            st.stats.late_acks += 1;
            return Ok(out);
        }
        ACKS.incr();
        obs::flight::record(EventKind::LeaseAck, lease.id, 0);
        append_or_die(
            &mut st.log,
            &Record {
                kind: RecordKind::Ack,
                delivery_count: 0,
                lease_id: lease.id,
                item: 0,
                prev_lease_id: 0,
            },
        );
        self.maybe_compact(&mut st);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{HEADER_LEN, LEASE_LOG_FILE, RECORD_LEN};
    use crate::tx::ExactlyOnce;
    use durable_queues::{OptUnlinkedQueue, QueueConfig, RecoverableQueue};
    use pmem::{PmemPool, PoolConfig};
    use ptm::FlushPolicy;
    use std::fs::OpenOptions;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lease-queue-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fresh_base() -> OptUnlinkedQueue {
        let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(4 << 20)));
        OptUnlinkedQueue::create(pool, QueueConfig::small_test())
    }

    fn fresh_dlq() -> Arc<dyn DurableQueue> {
        Arc::new(fresh_base())
    }

    fn drain(q: &dyn DurableQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.dequeue(0)).collect()
    }

    #[test]
    fn ack_retires_nack_redelivers_with_bumped_count() {
        let dir = tmp("lifecycle");
        let q = LeasedQueue::create(fresh_base(), None, LeaseConfig::new(&dir)).unwrap();
        q.enqueue(0, 7);
        q.enqueue(0, 8);

        let a = q.dequeue(1).unwrap();
        assert_eq!((a.item, a.delivery_count), (7, 1));
        let b = q.dequeue(1).unwrap();
        assert_eq!((b.item, b.delivery_count), (8, 1));
        assert_eq!(q.in_flight(), 2);

        q.ack(&a).unwrap();
        assert_eq!(q.ack(&a), Err(LeaseError::NotInFlight));
        assert_eq!(
            q.nack(1, &b).unwrap(),
            Redelivery::Requeued {
                next_delivery_count: 2
            }
        );
        assert_eq!(q.pending_redelivery(), 1);

        let b2 = q.dequeue(1).unwrap();
        assert_eq!((b2.item, b2.delivery_count), (8, 2));
        assert!(b2.id > b.id);
        q.ack(&b2).unwrap();
        assert!(q.dequeue(1).is_none());
        let s = q.stats();
        assert_eq!((s.granted, s.redelivered, s.acked, s.nacked), (3, 1, 2, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn expiry_redelivers_and_budget_overflows_to_dlq() {
        let dir = tmp("expiry");
        let dlq = fresh_dlq();
        let q = LeasedQueue::create(
            fresh_base(),
            Some(Arc::clone(&dlq)),
            LeaseConfig::new(&dir)
                .with_timeout(Duration::from_millis(0))
                .with_max_deliveries(2),
        )
        .unwrap();
        q.enqueue(0, 42);

        // Timeout 0: the lease expires immediately, so the next dequeue
        // reaps and redelivers it.
        let l1 = q.dequeue(1).unwrap();
        assert_eq!(l1.delivery_count, 1);
        let l2 = q.dequeue(1).unwrap();
        assert_eq!((l2.item, l2.delivery_count), (42, 2));
        assert_eq!(q.ack(&l1), Err(LeaseError::NotInFlight));

        // Second expiry exceeds max_deliveries = 2 → dead-lettered.
        assert_eq!(q.reap_expired(1), 1);
        assert!(q.dequeue(1).is_none());
        assert_eq!(drain(dlq.as_ref()), vec![42]);
        let s = q.stats();
        assert_eq!((s.expired, s.dead_lettered), (2, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nack_past_budget_dead_letters() {
        let dir = tmp("nack-budget");
        let dlq = fresh_dlq();
        let q = LeasedQueue::create(
            fresh_base(),
            Some(Arc::clone(&dlq)),
            LeaseConfig::new(&dir).with_max_deliveries(1),
        )
        .unwrap();
        q.enqueue(0, 5);
        let l = q.dequeue(0).unwrap();
        assert_eq!(q.nack(0, &l).unwrap(), Redelivery::DeadLettered);
        assert!(q.dequeue(0).is_none());
        assert_eq!(drain(dlq.as_ref()), vec![5]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn finite_budget_without_dlq_is_refused() {
        let dir = tmp("no-dlq");
        let err = LeasedQueue::create(
            fresh_base(),
            None,
            LeaseConfig::new(&dir).with_max_deliveries(3),
        )
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_redelivers_unacked_and_skips_acked() {
        let dir = tmp("recover");
        let cfg = LeaseConfig::new(&dir);
        {
            let q = LeasedQueue::create(fresh_base(), None, cfg.clone()).unwrap();
            for i in 1..=4u64 {
                q.enqueue(0, i * 10);
            }
            let l1 = q.dequeue(1).unwrap();
            let _l2 = q.dequeue(1).unwrap(); // unacked at "crash"
            let l3 = q.dequeue(1).unwrap();
            q.ack(&l1).unwrap();
            q.nack(1, &l3).unwrap(); // pending at "crash"
                                     // Drop without acking l2: simulates the consumer dying. The
                                     // base queue state is volatile here (sim pool), so recovery
                                     // rebuilds only from the log — exactly the lease layer's job.
        }
        let (q, rec) = LeasedQueue::recover(fresh_base(), None, cfg.clone(), None).unwrap();
        assert_eq!(rec.unacked, 1);
        assert_eq!(rec.redelivered, 2); // l2 (granted) + l3 (pending)
        assert_eq!(rec.dead_lettered, 0);
        assert_eq!(q.pending_redelivery(), 2);

        // Redelivery order is lease-id order; counts are bumped for the
        // crashed-in-flight lease and preserved for the pending one.
        let r1 = q.dequeue(0).unwrap();
        assert_eq!((r1.item, r1.delivery_count), (20, 2));
        let r2 = q.dequeue(0).unwrap();
        assert_eq!((r2.item, r2.delivery_count), (30, 2));
        assert!(q.dequeue(0).is_none(), "acked item must not resurrect");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_dead_letters_items_past_budget() {
        let dir = tmp("recover-dlq");
        let cfg = LeaseConfig::new(&dir).with_max_deliveries(1);
        {
            let q = LeasedQueue::create(fresh_base(), Some(fresh_dlq()), cfg.clone()).unwrap();
            q.enqueue(0, 99);
            let _l = q.dequeue(0).unwrap(); // dc = 1 = budget, crash while leased
        }
        let dlq = fresh_dlq();
        let (q, rec) =
            LeasedQueue::recover(fresh_base(), Some(Arc::clone(&dlq)), cfg, None).unwrap();
        assert_eq!(rec.dead_lettered, 1);
        assert_eq!(rec.redelivered, 0);
        assert!(q.dequeue(0).is_none());
        assert_eq!(drain(dlq.as_ref()), vec![99]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_keeps_live_leases_and_shrinks_the_log() {
        let dir = tmp("compact");
        let cfg = LeaseConfig::new(&dir).with_compact_after(16);
        let q = LeasedQueue::create(fresh_base(), None, cfg.clone()).unwrap();
        let keeper_item = 777u64;
        q.enqueue(0, keeper_item);
        let keeper = q.dequeue(0).unwrap(); // stays in flight throughout
        for i in 1..=40u64 {
            q.enqueue(0, i);
            let l = q.dequeue(0).unwrap();
            q.ack(&l).unwrap();
        }
        assert!(q.stats().compactions >= 1, "compaction never triggered");
        assert!(q.log_records() < 40, "log did not shrink");
        drop(q);

        let (q, rec) = LeasedQueue::recover(fresh_base(), None, cfg, None).unwrap();
        assert_eq!(rec.redelivered, 1, "live lease lost by compaction");
        let r = q.dequeue(0).unwrap();
        assert_eq!((r.item, r.delivery_count), (keeper_item, 2));
        assert!(r.id > keeper.id);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn first_ever_lease_nacked_and_regranted_does_not_resurrect() {
        // Regression: if lease ids started at 0, the regrant's
        // `prev_lease_id = 0` would read as "fresh grant" and the first
        // lease's PEND record would stay live forever, resurrecting the
        // item on every recovery.
        let dir = tmp("id-zero");
        let cfg = LeaseConfig::new(&dir);
        {
            let q = LeasedQueue::create(fresh_base(), None, cfg.clone()).unwrap();
            q.enqueue(0, 55);
            let first = q.dequeue(0).unwrap();
            assert!(first.id >= 1, "lease id 0 must never be granted");
            q.nack(0, &first).unwrap();
            let again = q.dequeue(0).unwrap();
            q.ack(&again).unwrap();
        }
        let (q, rec) = LeasedQueue::recover(fresh_base(), None, cfg, None).unwrap();
        assert_eq!(rec.redelivered, 0, "settled item resurrected");
        assert!(q.dequeue(0).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lease_ids_survive_compaction_that_retires_the_highest_ids() {
        // Regression: compaction snapshots only *live* leases, so when the
        // highest-numbered leases were all settled the rewritten log held
        // no witness of the id high-water mark; recovery then reused ids,
        // which a stale exactly-once cursor could silently repair-ack. The
        // mark now rides the compacted header.
        let dir = tmp("compact-ids");
        let cfg = LeaseConfig::new(&dir).with_compact_after(8);
        let max_id = {
            let q = LeasedQueue::create(fresh_base(), None, cfg.clone()).unwrap();
            let mut max_id = 0;
            for i in 1..=200u64 {
                q.enqueue(0, i);
                let l = q.dequeue(0).unwrap();
                max_id = l.id;
                q.ack(&l).unwrap();
                if q.stats().compactions >= 1 && q.log_records() == 0 {
                    break;
                }
            }
            assert_eq!(q.log_records(), 0, "never reached an empty compacted log");
            max_id
        };
        assert!(max_id > 1);
        let (q, rec) = LeasedQueue::recover(fresh_base(), None, cfg, None).unwrap();
        assert_eq!(rec.redelivered, 0);
        q.enqueue(0, 777);
        let l = q.dequeue(0).unwrap();
        assert!(
            l.id > max_id,
            "recovered grant reused lease id {} (high-water mark was {max_id})",
            l.id
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn settlement_is_exclusive_while_an_exactly_once_tx_runs() {
        // Regression: the liveness check and the transaction ran in
        // separate lock scopes, so a racing settlement could slip between
        // them and settle (or double-run side effects for) the same lease.
        // The settling mark now makes any concurrent settlement attempt
        // fail with NotInFlight before its body runs.
        let dir = tmp("settling");
        let q = LeasedQueue::create(fresh_base(), None, LeaseConfig::new(&dir)).unwrap();
        let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(4 << 20)));
        let eo = ExactlyOnce::create(Arc::clone(&pool), FlushPolicy::BatchedCommit);
        q.enqueue(0, 11);
        let l = q.dequeue(0).unwrap();
        let word = pool.alloc_raw(8, 8);
        q.ack_exactly_once(0, &l, &eo, |tx| {
            // Mid-transaction, this call owns the lease's settlement.
            assert_eq!(q.ack(&l), Err(LeaseError::NotInFlight));
            assert_eq!(q.nack(0, &l), Err(LeaseError::NotInFlight));
            tx.write(word, 1);
        })
        .unwrap();
        let s = q.stats();
        assert_eq!((s.acked, s.nacked, s.late_acks), (1, 0, 0));
        assert!(q.dequeue(0).is_none(), "acked item redelivered");
        assert_eq!(
            q.ack_exactly_once(0, &l, &eo, |_| ()).unwrap_err(),
            LeaseError::NotInFlight
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_tid_is_a_descriptive_error_not_a_mid_tx_panic() {
        // Regression: the tid bound used to be an assert inside the
        // transaction (tx.rs), firing only after the caller's body had
        // already run — here the error comes back before anything does,
        // and the lease stays settleable.
        let dir = tmp("bad-tid");
        let q = LeasedQueue::create(fresh_base(), None, LeaseConfig::new(&dir)).unwrap();
        let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(4 << 20)));
        let eo = ExactlyOnce::create(Arc::clone(&pool), FlushPolicy::BatchedCommit);
        q.enqueue(0, 3);
        let l = q.dequeue(0).unwrap();
        let mut body_ran = false;
        let err = q
            .ack_exactly_once(pmem::MAX_THREADS, &l, &eo, |_| body_ran = true)
            .unwrap_err();
        assert_eq!(
            err,
            LeaseError::ThreadOutOfRange {
                tid: pmem::MAX_THREADS,
                max: pmem::MAX_THREADS
            }
        );
        assert!(!body_ran, "consumer body ran despite the invalid tid");
        assert!(err.to_string().contains("MAX_THREADS"), "{err}");
        // The lease was never marked settling: a valid ack still works.
        q.ack(&l).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn committed_tx_ack_with_lost_sidecar_record_is_repaired() {
        let dir = tmp("tx-repair");
        let cfg = LeaseConfig::new(&dir);
        let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(4 << 20)));
        let eo = ExactlyOnce::create(Arc::clone(&pool), FlushPolicy::BatchedCommit);
        let consumer_state = pool.alloc_raw(8, 8);
        {
            let q = LeasedQueue::create(fresh_base(), None, cfg.clone()).unwrap();
            q.enqueue(0, 9);
            let l = q.dequeue(0).unwrap();
            q.ack_exactly_once(0, &l, &eo, |tx| tx.write(consumer_state, 99))
                .unwrap();
        }
        // Simulate the documented crash window: the transaction committed
        // (cursor + consumer state durable) but the sidecar ACK append was
        // lost — chop it off, leaving only the GRANT.
        let path = dir.join(LEASE_LOG_FILE);
        let len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(len, (HEADER_LEN + 2 * RECORD_LEN) as u64);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - RECORD_LEN as u64).unwrap();
        drop(f);

        let (q, rec) = LeasedQueue::recover(fresh_base(), None, cfg, Some(&eo)).unwrap();
        assert_eq!(rec.tx_acked, 1, "committed ack not repaired");
        assert_eq!(rec.redelivered, 0, "item redelivered despite committed ack");
        assert!(q.dequeue(0).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_cursor_from_a_recreated_log_repairs_nothing() {
        // Regression: cursor entries carried no log identity, so pairing
        // an old consumer pool with a recreated ack log let a stale lease
        // id repair-ack an unrelated in-flight lease of the new log.
        let dir = tmp("stale-cursor");
        let cfg = LeaseConfig::new(&dir);
        let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(4 << 20)));
        let eo = ExactlyOnce::create(Arc::clone(&pool), FlushPolicy::BatchedCommit);
        {
            let q = LeasedQueue::create(fresh_base(), None, cfg.clone()).unwrap();
            q.enqueue(0, 1);
            let l = q.dequeue(0).unwrap();
            assert_eq!(l.id, 1);
            q.ack_exactly_once(0, &l, &eo, |_| ()).unwrap();
        }
        // A recreated log: same directory, new generation, fresh id space.
        // The cursor still holds lease id 1 from the old generation.
        {
            let q = LeasedQueue::create(fresh_base(), None, cfg.clone()).unwrap();
            q.enqueue(0, 42);
            let l = q.dequeue(0).unwrap();
            assert_eq!(l.id, 1, "a fresh log restarts the id space");
            // Crash while leased: drop without acking.
        }
        let (q, rec) = LeasedQueue::recover(fresh_base(), None, cfg, Some(&eo)).unwrap();
        assert_eq!(rec.tx_acked, 0, "stale cursor repair-acked a foreign lease");
        assert_eq!(rec.redelivered, 1);
        let l = q.dequeue(0).unwrap();
        assert_eq!((l.item, l.delivery_count), (42, 2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lease_ids_are_unique_and_monotonic_across_recovery() {
        let dir = tmp("ids");
        let cfg = LeaseConfig::new(&dir);
        let max_id = {
            let q = LeasedQueue::create(fresh_base(), None, cfg.clone()).unwrap();
            q.enqueue(0, 1);
            q.enqueue(0, 2);
            let a = q.dequeue(0).unwrap();
            let b = q.dequeue(0).unwrap();
            assert!(b.id > a.id);
            b.id
        };
        let (q, _) = LeasedQueue::recover(fresh_base(), None, cfg, None).unwrap();
        let r = q.dequeue(0).unwrap();
        assert!(r.id > max_id, "recovered grant reused a lease id");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
