//! Rotating ack-log segments: the per-group replacement for whole-file
//! compaction.
//!
//! A [`SegmentedLog`] stores the same 40-byte CRC'd [`Record`]s as the
//! single-file [`AckLog`](crate::log::AckLog), but spread over a directory
//! of numbered segment files instead of one file that must periodically be
//! rewritten in full:
//!
//! ```text
//! groups/<name>/
//!   GROUP.meta          # generation + retirement watermark (atomic rewrite)
//!   segment-0000.log    # sealed (may already be retired/unlinked)
//!   segment-0001.log    # sealed
//!   segment-0002.log    # active (appends go here)
//! ```
//!
//! Compaction in the single-file log stops the world: every live lease is
//! re-serialised into a tmp file while the state lock is held. Here the
//! retired prefix simply *ages out*: once the active segment holds
//! `rotate_records` records, a fresh segment is created (**rotation**) and
//! appends move there; once a sealed segment no longer holds the latest
//! live record of any lease, it is unlinked (**retirement**). Both are
//! O(1)-ish in the live set — no stall, no full rewrite.
//!
//! # Commit points
//!
//! * **Rotation** commits when the new segment's header is durable (written
//!   and, under [`SyncPolicy::PowerFail`], fsync'd along with the
//!   directory). A crash before that leaves the old segment active; a crash
//!   after replays both. A torn header is only ever possible in the
//!   highest-numbered segment and is rolled back (the file is deleted) on
//!   replay.
//! * **Retirement** writes the meta file's `retired_below` watermark
//!   (tmp + rename, like the shard manifest) *before* unlinking the
//!   segment. A crash between the two leaves a segment below the watermark
//!   on disk; replay refuses to read it and completes the unlink instead —
//!   a retired segment can never resurrect settled leases, even if a
//!   backup restores the file.
//!
//! # High-water mark and generation
//!
//! Every segment header snapshots the lease-id high-water mark at its
//! creation, so retiring the segments that witnessed the highest settled
//! ids never loses the mark (the regression family the single-file log
//! guards with its compacted header). The group's **generation** lives in
//! `GROUP.meta`, is fixed at create time, and every segment header must
//! carry it — a segment from another group (or another life of this group)
//! is refused, and the exactly-once cursor uses it exactly as with the
//! single-file log.
//!
//! Torn-tail handling per segment follows the single-file rules: only the
//! *active* (highest-numbered) segment may end in a torn record, which is
//! chopped; a torn or corrupt record in a sealed segment is real damage and
//! is refused with an error naming the file.

use crate::log::{bad_data, fresh_generation, LiveLease, Record, RecordKind, Replay, RECORD_LEN};
use obs::flight::EventKind;
use obs::LazyCounter;
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};
use store::{crc32, SyncPolicy};

static ROTATIONS: LazyCounter = LazyCounter::new("lease.group.rotation");
static RETIREMENTS: LazyCounter = LazyCounter::new("lease.group.retire");

/// File name of the per-group meta file.
pub const GROUP_META_FILE: &str = "GROUP.meta";

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"DQSEGMT1";

/// Magic bytes opening the group meta file.
pub const GROUP_META_MAGIC: [u8; 8] = *b"DQGMETA1";

/// Current segment/meta format version.
pub const SEGMENT_VERSION: u32 = 1;

/// Size of a segment file header in bytes (magic + version + seq +
/// id high-water mark + generation + CRC + pad). One record's worth, so
/// every record in the file sits at `HEADER + n × RECORD_LEN`.
pub const SEGMENT_HEADER_LEN: usize = 40;

/// Size of the group meta file in bytes.
pub const GROUP_META_LEN: usize = 32;

/// Default rotation threshold (records per segment).
pub const DEFAULT_ROTATE_RECORDS: u64 = 4096;

fn segment_path(dir: &Path, seq: u32) -> PathBuf {
    dir.join(format!("segment-{seq:04}.log"))
}

/// Parses `segment-NNNN.log` back to `NNNN` (any decimal width ≥ 1, so
/// sequences past 9999 keep working).
fn segment_seq(name: &str) -> Option<u32> {
    let digits = name.strip_prefix("segment-")?.strip_suffix(".log")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn segment_header(seq: u32, next_lease_id: u64, generation: u64) -> [u8; SEGMENT_HEADER_LEN] {
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[0..8].copy_from_slice(&SEGMENT_MAGIC);
    h[8..12].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&seq.to_le_bytes());
    h[16..24].copy_from_slice(&next_lease_id.to_le_bytes());
    h[24..32].copy_from_slice(&generation.to_le_bytes());
    let crc = crc32(&h[0..32]);
    h[32..36].copy_from_slice(&crc.to_le_bytes());
    // h[36..40] stays zero (pad).
    h
}

fn meta_bytes(retired_below: u32, generation: u64) -> [u8; GROUP_META_LEN] {
    let mut m = [0u8; GROUP_META_LEN];
    m[0..8].copy_from_slice(&GROUP_META_MAGIC);
    m[8..12].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    m[12..16].copy_from_slice(&retired_below.to_le_bytes());
    m[16..24].copy_from_slice(&generation.to_le_bytes());
    let crc = crc32(&m[0..24]);
    m[24..28].copy_from_slice(&crc.to_le_bytes());
    // m[28..32] stays zero (pad).
    m
}

/// Atomically (re)writes `GROUP.meta`: tmp → fsync → rename → dir fsync
/// under the power-fail tier, plain rename under process-crash (the page
/// cache survives the process either way).
fn write_meta(dir: &Path, retired_below: u32, generation: u64, sync: SyncPolicy) -> io::Result<()> {
    let tmp = dir.join("GROUP.meta.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(&meta_bytes(retired_below, generation))?;
    if sync == SyncPolicy::PowerFail {
        f.sync_data()?;
    }
    std::fs::rename(&tmp, dir.join(GROUP_META_FILE))?;
    if sync == SyncPolicy::PowerFail {
        File::open(dir)?.sync_data()?;
    }
    Ok(())
}

struct Meta {
    retired_below: u32,
    generation: u64,
}

fn read_meta(dir: &Path) -> io::Result<Option<Meta>> {
    let path = dir.join(GROUP_META_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < GROUP_META_LEN - 4 {
        // The trailing pad may legitimately be missing from a hand-rolled
        // file, but anything shorter than magic..crc is damage.
        return Err(bad_data(
            &path,
            format!("truncated meta ({} of {GROUP_META_LEN} bytes)", bytes.len()),
        ));
    }
    if bytes[0..8] != GROUP_META_MAGIC {
        return Err(bad_data(&path, format!("bad magic {:?}", &bytes[0..8])));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SEGMENT_VERSION {
        return Err(bad_data(
            &path,
            format!("unsupported version {version} (this build reads {SEGMENT_VERSION})"),
        ));
    }
    let stored = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    if crc32(&bytes[0..24]) != stored {
        return Err(bad_data(
            &path,
            format!(
                "meta CRC mismatch (expected {:08x}, found {stored:08x})",
                crc32(&bytes[0..24])
            ),
        ));
    }
    Ok(Some(Meta {
        retired_below: u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
        generation: u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
    }))
}

/// What replaying a segment directory reconstructed: the single-file
/// [`Replay`] plus segment accounting.
#[derive(Clone, Debug, Default)]
pub struct GroupReplay {
    /// The lease-state reconstruction, identical in meaning to the
    /// single-file log's replay.
    pub replay: Replay,
    /// Segment files present after replay (retirement roll-forward
    /// included).
    pub segments: u32,
    /// Files found below the retirement watermark and deleted on open —
    /// the roll-forward of an interrupted retirement, or the refusal of a
    /// restored already-retired segment.
    pub retired_leftovers: u32,
}

/// An append-only ack log spread over rotating segment files. Single-writer
/// (all mutation goes through the owning group's lock), like [`AckLog`].
///
/// [`AckLog`]: crate::log::AckLog
#[derive(Debug)]
pub struct SegmentedLog {
    dir: PathBuf,
    sync: SyncPolicy,
    /// Rotate once the active segment holds this many records (`0` =
    /// never rotate; the log degenerates to a single ever-growing segment).
    rotate_records: u64,
    generation: u64,
    retired_below: u32,
    active_seq: u32,
    active: File,
    active_records: u64,
    /// Total valid records across all surviving segments (replayed +
    /// appended, minus retired files' contributions — recomputed only at
    /// replay, so between opens this only grows).
    records: u64,
    /// Live lease → seq of the segment holding its latest live record.
    resident: HashMap<u64, u32>,
    /// Per existing segment: how many live leases reside in it. Every
    /// on-disk segment has an entry (possibly 0).
    seg_live: BTreeMap<u32, u64>,
    /// Rotations performed since open.
    rotations: u64,
    /// Segments retired (unlinked) since open.
    retired: u64,
    /// Test knob: when `false`, retirement never runs on the append path,
    /// leaving the crash window between rotation and retirement on disk.
    auto_retire: bool,
}

impl SegmentedLog {
    /// Creates a fresh segmented log in `dir`: a new generation in
    /// `GROUP.meta` and an empty `segment-0000.log`.
    pub fn create(dir: &Path, sync: SyncPolicy, rotate_records: u64) -> io::Result<SegmentedLog> {
        std::fs::create_dir_all(dir)?;
        let generation = fresh_generation();
        write_meta(dir, 0, generation, sync)?;
        let active = Self::new_segment(dir, 0, 1, generation, sync)?;
        let mut seg_live = BTreeMap::new();
        seg_live.insert(0u32, 0u64);
        Ok(SegmentedLog {
            dir: dir.to_path_buf(),
            sync,
            rotate_records,
            generation,
            retired_below: 0,
            active_seq: 0,
            active,
            active_records: 0,
            records: 0,
            resident: HashMap::new(),
            seg_live,
            rotations: 0,
            retired: 0,
            auto_retire: true,
        })
    }

    fn new_segment(
        dir: &Path,
        seq: u32,
        next_lease_id: u64,
        generation: u64,
        sync: SyncPolicy,
    ) -> io::Result<File> {
        let path = segment_path(dir, seq);
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        f.write_all(&segment_header(seq, next_lease_id, generation))?;
        if sync == SyncPolicy::PowerFail {
            // The durable header *is* the rotation commit point.
            f.sync_data()?;
            File::open(dir)?.sync_data()?;
        }
        Ok(f)
    }

    /// Opens and replays the segment directory. A missing directory (or a
    /// directory with neither meta nor segments) becomes a fresh log.
    /// Files below the meta's retirement watermark are deleted (see the
    /// [module docs](self)); a torn header or torn tail in the
    /// highest-numbered segment is rolled back or chopped; any damage in a
    /// sealed segment is refused with an error naming the file.
    pub fn replay(
        dir: &Path,
        sync: SyncPolicy,
        rotate_records: u64,
    ) -> io::Result<(SegmentedLog, GroupReplay)> {
        let meta = read_meta(dir)?;
        let mut seqs: Vec<u32> = match std::fs::read_dir(dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter_map(|e| segment_seq(&e.file_name().to_string_lossy()))
                .collect(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        seqs.sort_unstable();
        let Some(meta) = meta else {
            if seqs.is_empty() {
                let log = SegmentedLog::create(dir, sync, rotate_records)?;
                let replay = GroupReplay {
                    replay: Replay {
                        next_lease_id: 1,
                        generation: log.generation,
                        ..Replay::default()
                    },
                    segments: 1,
                    retired_leftovers: 0,
                };
                return Ok((log, replay));
            }
            return Err(bad_data(
                &dir.join(GROUP_META_FILE),
                "segment files without GROUP.meta (the generation authority is gone)".into(),
            ));
        };

        // Roll forward interrupted retirements and refuse restored retired
        // segments: anything below the watermark was durably declared
        // settled and must not be replayed.
        let mut retired_leftovers = 0u32;
        seqs.retain(|&seq| {
            if seq < meta.retired_below {
                let _ = std::fs::remove_file(segment_path(dir, seq));
                retired_leftovers += 1;
                false
            } else {
                true
            }
        });

        if seqs.is_empty() {
            if meta.retired_below != 0 {
                // Retirement never touches the active segment, so a log
                // that ever retired must still have one.
                return Err(bad_data(
                    dir,
                    format!(
                        "no segments at or above the retirement watermark {}",
                        meta.retired_below
                    ),
                ));
            }
            // Crash between meta creation and segment-0 creation: finish
            // the create with the durable generation.
            let active = Self::new_segment(dir, 0, 1, meta.generation, sync)?;
            let mut seg_live = BTreeMap::new();
            seg_live.insert(0u32, 0u64);
            let log = SegmentedLog {
                dir: dir.to_path_buf(),
                sync,
                rotate_records,
                generation: meta.generation,
                retired_below: 0,
                active_seq: 0,
                active,
                active_records: 0,
                records: 0,
                resident: HashMap::new(),
                seg_live,
                rotations: 0,
                retired: 0,
                auto_retire: true,
            };
            let replay = GroupReplay {
                replay: Replay {
                    next_lease_id: 1,
                    generation: meta.generation,
                    ..Replay::default()
                },
                segments: 1,
                retired_leftovers,
            };
            return Ok((log, replay));
        }

        // Prefix retirement + unit-increment rotation ⇒ surviving seqs are
        // contiguous; a gap means a sealed segment vanished.
        for pair in seqs.windows(2) {
            if pair[1] != pair[0] + 1 {
                return Err(bad_data(
                    dir,
                    format!(
                        "segment sequence gap: segment-{:04}.log is followed by \
                         segment-{:04}.log",
                        pair[0], pair[1]
                    ),
                ));
            }
        }

        let mut replay = Replay {
            next_lease_id: 1,
            generation: meta.generation,
            ..Replay::default()
        };
        let mut resident: HashMap<u64, u32> = HashMap::new();
        let last_seq = *seqs.last().unwrap();
        let mut rolled_back_last = false;
        for &seq in &seqs {
            let path = segment_path(dir, seq);
            let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)?;
            let header_ok = bytes.len() >= SEGMENT_HEADER_LEN && {
                let stored = u32::from_le_bytes(bytes[32..36].try_into().unwrap());
                bytes[0..8] == SEGMENT_MAGIC && crc32(&bytes[0..32]) == stored
            };
            if !header_ok {
                if seq == last_seq && seq != meta.retired_below {
                    // A torn header can only be the newest segment's — an
                    // incomplete rotation, which by the commit-point rule
                    // never happened. Roll it back; the previous segment
                    // is still the active one. (The lone segment of a
                    // never-rotated log has no predecessor to fall back
                    // to, so damage there is refused like any sealed
                    // segment.)
                    drop(file);
                    std::fs::remove_file(&path)?;
                    rolled_back_last = true;
                    break;
                }
                return Err(bad_data(
                    &path,
                    "corrupt segment header (not the newest segment; refusing)".into(),
                ));
            }
            let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
            if version != SEGMENT_VERSION {
                return Err(bad_data(
                    &path,
                    format!("unsupported version {version} (this build reads {SEGMENT_VERSION})"),
                ));
            }
            let header_seq = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
            if header_seq != seq {
                return Err(bad_data(
                    &path,
                    format!("header seq {header_seq} does not match the file name"),
                ));
            }
            let header_next_id = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
            let header_generation = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
            if header_generation != meta.generation {
                return Err(bad_data(
                    &path,
                    format!(
                        "generation {header_generation:#x} does not match GROUP.meta \
                         ({:#x}); this segment belongs to another log",
                        meta.generation
                    ),
                ));
            }
            replay.next_lease_id = replay.next_lease_id.max(header_next_id);

            let body = &bytes[SEGMENT_HEADER_LEN..];
            let mut consumed = 0usize;
            while body.len() - consumed >= RECORD_LEN {
                let Some(rec) = Record::decode(&body[consumed..consumed + RECORD_LEN]) else {
                    if seq != last_seq || body.len() - consumed > RECORD_LEN {
                        return Err(bad_data(
                            &path,
                            format!(
                                "corrupt record at byte {} ({}; refusing to drop {} \
                                 trailing bytes)",
                                SEGMENT_HEADER_LEN + consumed,
                                if seq != last_seq {
                                    "inside a sealed segment"
                                } else {
                                    "not at the tail"
                                },
                                body.len() - consumed
                            ),
                        ));
                    }
                    break;
                };
                consumed += RECORD_LEN;
                replay.records += 1;
                replay.next_lease_id = replay.next_lease_id.max(rec.lease_id + 1);
                match rec.kind {
                    RecordKind::Grant => {
                        if rec.prev_lease_id != 0 {
                            replay.live.remove(&rec.prev_lease_id);
                            resident.remove(&rec.prev_lease_id);
                        }
                        replay.live.insert(
                            rec.lease_id,
                            LiveLease {
                                item: rec.item,
                                delivery_count: rec.delivery_count,
                                granted: true,
                            },
                        );
                        resident.insert(rec.lease_id, seq);
                    }
                    RecordKind::Ack => {
                        replay.live.remove(&rec.lease_id);
                        resident.remove(&rec.lease_id);
                        replay.acked += 1;
                    }
                    RecordKind::Pend => {
                        replay.live.insert(
                            rec.lease_id,
                            LiveLease {
                                item: rec.item,
                                delivery_count: rec.delivery_count,
                                granted: false,
                            },
                        );
                        resident.insert(rec.lease_id, seq);
                    }
                    RecordKind::Dead => {
                        replay.live.remove(&rec.lease_id);
                        resident.remove(&rec.lease_id);
                        replay.dead += 1;
                    }
                }
            }
            let tail = (body.len() - consumed) as u64;
            if tail > 0 {
                if seq != last_seq {
                    return Err(bad_data(
                        &path,
                        format!("torn record of {tail} bytes inside a sealed segment"),
                    ));
                }
                replay.torn_bytes += tail;
                file.set_len((SEGMENT_HEADER_LEN + consumed) as u64)?;
                if sync == SyncPolicy::PowerFail {
                    file.sync_data()?;
                }
            }
        }

        let active_seq = if rolled_back_last {
            last_seq - 1
        } else {
            last_seq
        };
        let mut seg_live: BTreeMap<u32, u64> = (seqs[0]..=active_seq).map(|s| (s, 0)).collect();
        for &seq in resident.values() {
            *seg_live.get_mut(&seq).expect("resident seq exists") += 1;
        }
        let active_path = segment_path(dir, active_seq);
        let mut active = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&active_path)?;
        let active_len = active.seek(io::SeekFrom::End(0))?;
        let active_records = (active_len as usize - SEGMENT_HEADER_LEN) as u64 / RECORD_LEN as u64;

        let records = replay.records;
        let mut log = SegmentedLog {
            dir: dir.to_path_buf(),
            sync,
            rotate_records,
            generation: meta.generation,
            retired_below: meta.retired_below,
            active_seq,
            active,
            active_records,
            records,
            resident,
            seg_live,
            rotations: 0,
            retired: 0,
            auto_retire: true,
        };
        // A crash between rotation and retirement leaves fully-settled
        // sealed segments behind; finish their retirement now.
        log.retire_prefix()?;
        let segments = log.seg_live.len() as u32;
        Ok((
            log,
            GroupReplay {
                replay,
                segments,
                retired_leftovers,
            },
        ))
    }

    /// Appends one record and runs the rotation/retirement maintenance.
    /// `next_lease_id` is the caller's current id high-water mark — a
    /// rotation triggered by this append snapshots it into the fresh
    /// segment's header.
    ///
    /// Rotation is lazy: a full active segment is sealed when the *next*
    /// record arrives, not when the last one lands, so an idle log never
    /// carries an empty trailing segment.
    pub fn append(&mut self, rec: &Record, next_lease_id: u64) -> io::Result<()> {
        if self.rotate_records > 0 && self.active_records >= self.rotate_records {
            self.rotate(next_lease_id)?;
        }
        self.active.write_all(&rec.encode())?;
        if self.sync == SyncPolicy::PowerFail {
            self.active.sync_data()?;
        }
        self.active_records += 1;
        self.records += 1;

        // Residency bookkeeping mirrors replay: a lease lives in the
        // segment holding its latest live record.
        match rec.kind {
            RecordKind::Grant => {
                if rec.prev_lease_id != 0 {
                    self.unresident(rec.prev_lease_id);
                }
                self.make_resident(rec.lease_id);
            }
            RecordKind::Pend => self.make_resident(rec.lease_id),
            RecordKind::Ack | RecordKind::Dead => self.unresident(rec.lease_id),
        }

        if self.auto_retire {
            self.retire_prefix()?;
        }
        Ok(())
    }

    fn make_resident(&mut self, lease_id: u64) {
        if let Some(old) = self.resident.insert(lease_id, self.active_seq) {
            *self.seg_live.get_mut(&old).expect("old seq exists") -= 1;
        }
        *self
            .seg_live
            .get_mut(&self.active_seq)
            .expect("active seq exists") += 1;
    }

    fn unresident(&mut self, lease_id: u64) {
        if let Some(seq) = self.resident.remove(&lease_id) {
            *self.seg_live.get_mut(&seq).expect("seq exists") -= 1;
        }
    }

    /// Seals the active segment and opens the next one. The new header
    /// carries the caller's id high-water mark, so the mark survives even
    /// if every record witnessing it retires with the old segments.
    fn rotate(&mut self, next_lease_id: u64) -> io::Result<()> {
        let new_seq = self.active_seq + 1;
        self.active = Self::new_segment(
            &self.dir,
            new_seq,
            next_lease_id,
            self.generation,
            self.sync,
        )?;
        self.active_seq = new_seq;
        self.active_records = 0;
        self.seg_live.insert(new_seq, 0);
        self.rotations += 1;
        ROTATIONS.incr();
        let sealed_live: u64 = self
            .seg_live
            .iter()
            .filter(|&(&s, _)| s != new_seq)
            .map(|(_, &n)| n)
            .sum();
        obs::flight::record(EventKind::LeaseSegmentRotate, new_seq as u64, sealed_live);
        Ok(())
    }

    /// Unlinks every leading sealed segment with no resident live leases:
    /// watermark first (durable), file second, so a crash in between is
    /// rolled forward by the next replay rather than resurrecting settled
    /// leases.
    fn retire_prefix(&mut self) -> io::Result<()> {
        while let Some((&seq, &live)) = self.seg_live.first_key_value() {
            if seq >= self.active_seq || live != 0 {
                break;
            }
            write_meta(&self.dir, seq + 1, self.generation, self.sync)?;
            self.retired_below = seq + 1;
            std::fs::remove_file(segment_path(&self.dir, seq))?;
            self.seg_live.remove(&seq);
            self.retired += 1;
            RETIREMENTS.incr();
            obs::flight::record(EventKind::LeaseSegmentRetire, seq as u64, 0);
        }
        Ok(())
    }

    /// The log's generation (fixed at create, carried by every segment).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Valid records across the surviving segments (replayed + appended).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Segment files currently on disk.
    pub fn segments(&self) -> u32 {
        self.seg_live.len() as u32
    }

    /// The active (append-target) segment's sequence number.
    pub fn active_seq(&self) -> u32 {
        self.active_seq
    }

    /// All segments below this sequence number are durably retired.
    pub fn retired_below(&self) -> u32 {
        self.retired_below
    }

    /// Rotations performed since open.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Segments retired (unlinked) since open.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The segment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    #[cfg(test)]
    fn disable_auto_retire(&mut self) {
        self.auto_retire = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lease-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn grant(id: u64, item: u64, dc: u32, prev: u64) -> Record {
        Record {
            kind: RecordKind::Grant,
            delivery_count: dc,
            lease_id: id,
            item,
            prev_lease_id: prev,
        }
    }

    fn ack(id: u64) -> Record {
        Record {
            kind: RecordKind::Ack,
            delivery_count: 0,
            lease_id: id,
            item: 0,
            prev_lease_id: 0,
        }
    }

    #[test]
    fn roundtrip_across_rotation_reconstructs_live_leases() {
        let dir = tmp("roundtrip");
        let mut log = SegmentedLog::create(&dir, SyncPolicy::PowerFail, 4).unwrap();
        let mut next = 1u64;
        for i in 1..=6u64 {
            log.append(&grant(i, i * 10, 1, 0), next).unwrap();
            next = i + 1;
        }
        // 6 grants at rotate_records = 4 → at least one rotation.
        assert!(log.rotations() >= 1);
        log.append(&ack(1), next).unwrap();
        log.append(&ack(3), next).unwrap();
        drop(log);

        let (log, gr) = SegmentedLog::replay(&dir, SyncPolicy::PowerFail, 4).unwrap();
        assert_eq!(gr.replay.records, 8);
        assert_eq!(gr.replay.acked, 2);
        assert_eq!(gr.replay.next_lease_id, 7);
        assert_eq!(gr.replay.torn_bytes, 0);
        let live: Vec<u64> = gr.replay.live.keys().copied().collect();
        assert_eq!(live, vec![2, 4, 5, 6]);
        assert!(log.segments() >= 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fully_settled_segments_retire_and_never_resurrect() {
        let dir = tmp("retire");
        let mut log = SegmentedLog::create(&dir, SyncPolicy::default(), 4).unwrap();
        let mut next = 1u64;
        for i in 1..=20u64 {
            log.append(&grant(i, i, 1, 0), next).unwrap();
            next = i + 1;
            log.append(&ack(i), next).unwrap();
        }
        assert!(log.retired() >= 1, "no segment ever retired");
        assert!(log.segments() <= 2, "settled segments piled up");
        assert!(log.retired_below() >= 1);
        drop(log);

        let (_, gr) = SegmentedLog::replay(&dir, SyncPolicy::default(), 4).unwrap();
        assert!(gr.replay.live.is_empty(), "settled lease resurrected");
        assert_eq!(gr.replay.next_lease_id, 21, "high-water mark lost");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hwm_survives_retirement_of_every_witnessing_record() {
        // The high-water-mark regression family, segment edition: settle
        // the highest-numbered leases, let every segment that witnessed
        // them retire, and require replay not to reuse their ids. The mark
        // rides each rotation's fresh header.
        let dir = tmp("hwm");
        let mut log = SegmentedLog::create(&dir, SyncPolicy::default(), 2).unwrap();
        let mut next = 1u64;
        for i in 1..=9u64 {
            log.append(&grant(i, i, 1, 0), next).unwrap();
            next = i + 1;
            log.append(&ack(i), next).unwrap();
        }
        assert!(log.retired() >= 3);
        drop(log);
        let (_, gr) = SegmentedLog::replay(&dir, SyncPolicy::default(), 2).unwrap();
        assert_eq!(gr.replay.next_lease_id, 10, "retirement lost the id mark");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_is_continuous_across_rotation_and_replay() {
        let dir = tmp("generation");
        let mut log = SegmentedLog::create(&dir, SyncPolicy::default(), 2).unwrap();
        let generation = log.generation();
        assert_ne!(generation, 0);
        let mut next = 1u64;
        for i in 1..=7u64 {
            log.append(&grant(i, i, 1, 0), next).unwrap();
            next = i + 1;
        }
        assert!(log.rotations() >= 3);
        assert_eq!(
            log.generation(),
            generation,
            "rotation changed the generation"
        );
        drop(log);
        let (log, gr) = SegmentedLog::replay(&dir, SyncPolicy::default(), 2).unwrap();
        assert_eq!(gr.replay.generation, generation);
        assert_eq!(log.generation(), generation);
        // Every surviving segment header carries it.
        for seq in log.retired_below()..=log.active_seq() {
            let bytes = std::fs::read(segment_path(&dir, seq)).unwrap();
            let g = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
            assert_eq!(g, generation, "segment {seq} carries a foreign generation");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_generation_segment_is_refused() {
        let dir = tmp("foreign");
        let mut log = SegmentedLog::create(&dir, SyncPolicy::default(), 4).unwrap();
        log.append(&grant(1, 1, 1, 0), 2).unwrap();
        let generation = log.generation();
        drop(log);
        // Rewrite segment 0's header with a different generation (CRC
        // fixed up, so only the generation check can catch it).
        let path = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[..SEGMENT_HEADER_LEN].copy_from_slice(&segment_header(0, 1, generation + 1));
        std::fs::write(&path, &bytes).unwrap();
        let err = SegmentedLog::replay(&dir, SyncPolicy::default(), 4).unwrap_err();
        assert!(err.to_string().contains("another log"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_in_the_active_segment_is_chopped_after_a_boundary() {
        // "Torn final record at a segment boundary": rotation just sealed
        // segment N; the very first append into segment N+1 tears. Replay
        // must chop the torn record, keep both segments, and leave the log
        // appendable.
        let dir = tmp("torn-active");
        let mut log = SegmentedLog::create(&dir, SyncPolicy::default(), 2).unwrap();
        log.append(&grant(1, 10, 1, 0), 2).unwrap();
        log.append(&grant(2, 20, 1, 0), 3).unwrap(); // segment 0 now full
        log.append(&grant(3, 30, 1, 0), 4).unwrap(); // lazy rotation → segment 1
        assert_eq!(log.active_seq(), 1);
        let active = segment_path(&dir, 1);
        drop(log);
        let mut f = OpenOptions::new().append(true).open(&active).unwrap();
        f.write_all(&[0xAB; RECORD_LEN - 5]).unwrap();
        drop(f);

        let (mut log, gr) = SegmentedLog::replay(&dir, SyncPolicy::default(), 2).unwrap();
        assert_eq!(gr.replay.records, 3);
        assert_eq!(gr.replay.torn_bytes, (RECORD_LEN - 5) as u64);
        assert_eq!(gr.replay.live.len(), 3);
        // The chop leaves the next append on a record boundary.
        log.append(&ack(1), 4).unwrap();
        drop(log);
        let (_, gr) = SegmentedLog::replay(&dir, SyncPolicy::default(), 2).unwrap();
        assert_eq!(gr.replay.records, 4);
        assert_eq!(gr.replay.live.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_in_a_sealed_segment_is_refused() {
        // A sealed segment was fsync-complete when its successor's header
        // committed; a short record there is damage, not a mid-append
        // crash, and silently chopping it could drop a settled ack.
        let dir = tmp("torn-sealed");
        let mut log = SegmentedLog::create(&dir, SyncPolicy::default(), 2).unwrap();
        log.append(&grant(1, 10, 1, 0), 2).unwrap();
        log.append(&grant(2, 20, 1, 0), 3).unwrap(); // rotation → segment 1
        log.append(&grant(3, 30, 1, 0), 4).unwrap();
        assert_eq!(log.active_seq(), 1);
        drop(log);
        let sealed = segment_path(&dir, 0);
        let len = std::fs::metadata(&sealed).unwrap().len();
        let f = OpenOptions::new().write(true).open(&sealed).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);

        let err = SegmentedLog::replay(&dir, SyncPolicy::default(), 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("segment-0000.log"), "{msg}");
        assert!(msg.contains("sealed"), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_rotation_and_retirement_rolls_forward_on_replay() {
        // Settle everything in segment 0 *after* rotating away from it,
        // with auto-retirement disabled to freeze the crash window: the
        // sealed segment is fully settled but still on disk, and the
        // watermark still reads 0. Replay must finish the retirement.
        let dir = tmp("rot-retire-window");
        let mut log = SegmentedLog::create(&dir, SyncPolicy::default(), 2).unwrap();
        log.disable_auto_retire();
        log.append(&grant(1, 10, 1, 0), 2).unwrap();
        log.append(&grant(2, 20, 1, 0), 3).unwrap(); // segment 0 now full
        log.append(&ack(1), 3).unwrap(); // lazy rotation → segment 1
        log.append(&ack(2), 3).unwrap();
        assert_eq!(log.active_seq(), 1);
        assert_eq!(log.retired(), 0, "auto-retire knob failed");
        assert!(segment_path(&dir, 0).exists());
        drop(log); // the "crash"

        let (log, gr) = SegmentedLog::replay(&dir, SyncPolicy::default(), 2).unwrap();
        assert!(gr.replay.live.is_empty());
        assert!(
            !segment_path(&dir, 0).exists(),
            "fully-settled sealed segment survived replay"
        );
        assert_eq!(log.retired_below(), 1);
        assert_eq!(gr.segments, 1);
        assert_eq!(gr.replay.next_lease_id, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_watermark_and_unlink_deletes_the_leftover() {
        // The other half of the retirement window: the meta write landed
        // but the unlink did not. The file sits below the watermark;
        // replay must delete it without reading a single record from it.
        let dir = tmp("watermark-window");
        let mut log = SegmentedLog::create(&dir, SyncPolicy::default(), 1).unwrap();
        log.append(&grant(1, 10, 1, 0), 2).unwrap();
        log.append(&grant(2, 20, 1, 0), 3).unwrap(); // rotation → segment 1
        let seg0 = std::fs::read(segment_path(&dir, 0)).unwrap();
        log.append(&ack(1), 3).unwrap(); // segment 0 now settled → retired
        assert_eq!(log.retired_below(), 1);
        drop(log);
        // Resurrect the retired file, as a crash-between (or a careless
        // backup restore) would.
        std::fs::write(segment_path(&dir, 0), &seg0).unwrap();

        let (_, gr) = SegmentedLog::replay(&dir, SyncPolicy::default(), 1).unwrap();
        assert_eq!(gr.retired_leftovers, 1);
        assert!(
            !segment_path(&dir, 0).exists(),
            "retired segment not deleted"
        );
        // Lease 1's ack retired with segment 0 — the leftover must not
        // have resurrected the lease.
        assert_eq!(
            gr.replay.live.keys().copied().collect::<Vec<_>>(),
            vec![2],
            "retired segment was replayed"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_rotation_header_rolls_back_to_the_previous_segment() {
        let dir = tmp("torn-header");
        let mut log = SegmentedLog::create(&dir, SyncPolicy::default(), 0).unwrap();
        log.append(&grant(1, 10, 1, 0), 2).unwrap();
        drop(log);
        // A rotation that died mid-header-write: a short garbage file at
        // the next seq.
        std::fs::write(segment_path(&dir, 1), [0xCD; 11]).unwrap();

        let (mut log, gr) = SegmentedLog::replay(&dir, SyncPolicy::default(), 0).unwrap();
        assert_eq!(
            log.active_seq(),
            0,
            "rolled-back rotation left seq 1 active"
        );
        assert!(!segment_path(&dir, 1).exists());
        assert_eq!(gr.replay.live.len(), 1);
        log.append(&ack(1), 2).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_gap_is_refused() {
        let dir = tmp("gap");
        let mut log = SegmentedLog::create(&dir, SyncPolicy::default(), 1).unwrap();
        log.disable_auto_retire();
        for i in 1..=4u64 {
            log.append(&grant(i, i, 1, 0), i + 1).unwrap();
        }
        assert!(log.active_seq() >= 3);
        drop(log);
        std::fs::remove_file(segment_path(&dir, 1)).unwrap();
        let err = SegmentedLog::replay(&dir, SyncPolicy::default(), 1).unwrap_err();
        assert!(err.to_string().contains("sequence gap"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_opens_fresh_and_meta_damage_is_refused() {
        let dir = tmp("fresh");
        let (log, gr) = SegmentedLog::replay(&dir, SyncPolicy::default(), 8).unwrap();
        assert_eq!(gr.replay.next_lease_id, 1);
        assert_eq!(gr.segments, 1);
        assert_ne!(log.generation(), 0);
        drop(log);

        let meta = dir.join(GROUP_META_FILE);
        let good = std::fs::read(&meta).unwrap();
        let mut bad = good.clone();
        bad[13] ^= 0xFF; // retired_below byte → CRC mismatch
        std::fs::write(&meta, &bad).unwrap();
        let err = SegmentedLog::replay(&dir, SyncPolicy::default(), 8).unwrap_err();
        assert!(err.to_string().contains("meta CRC mismatch"), "{err}");

        std::fs::remove_file(&meta).unwrap();
        let err = SegmentedLog::replay(&dir, SyncPolicy::default(), 8).unwrap_err();
        assert!(err.to_string().contains("without GROUP.meta"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
