//! Durable peek-lock consumption over any durable queue.
//!
//! The queues in `crates/core` consume destructively: `dequeue` removes
//! the item, and a consumer that crashes *after* the dequeue but *before*
//! finishing its work silently loses the message. Message brokers solve
//! this with **peek-lock** (leases): a dequeue hands the consumer a
//! time-limited lease while the broker keeps durable ownership of the item
//! until it is acknowledged. This crate layers that protocol on top of any
//! [`DurableQueue`](durable_queues::DurableQueue) — the ten paper
//! algorithms, the `shard` crate's partitioned composition, or anything
//! else implementing the trait.
//!
//! # State machine
//!
//! ```text
//!            enqueue                    dequeue (GRANT)
//!   producer ───────▶ ready (base queue) ───────▶ leased ──ack (ACK)──▶ consumed
//!                        ▲                          │
//!                        │ regrant (GRANT w/ prev)  │ nack / deadline expiry
//!                        │                          ▼
//!                        └──────── pending (PEND) ◀─┘
//!                                     │
//!                                     │ delivery_count would exceed budget
//!                                     ▼
//!                          dead-letter queue (DEAD)
//! ```
//!
//! Every transition is one CRC'd record appended to a sidecar ack log
//! (`LEASES.log`, [`log`] module) — fsync'd per append under the
//! power-fail tier — so a restart replays the log and every lease without
//! a terminal record becomes redeliverable with an incremented delivery
//! count: **at-least-once** delivery. Items that exhaust their delivery
//! budget overflow to a dead-letter queue, itself a durable queue in the
//! same directory.
//!
//! The [`tx`] module upgrades the ack side to **exactly-once handoff**:
//! [`LeasedQueue::ack_exactly_once`] runs the consumer's own state
//! transition and the ack in a single `crates/ptm` redo-log transaction,
//! whose commit point settles both atomically; recovery repairs acks whose
//! sidecar record was lost to the crash instead of redelivering.
//!
//! The [`group`] module generalises the consume side to **consumer
//! groups**: a [`GroupedQueue`] fans every item out to N groups — each
//! with an independent delivery cursor, so each group sees every item —
//! while consumers *within* a group compete for disjoint subsets. Each
//! group's transitions land in its own directory of rotating ack-log
//! segments ([`segments`] module): same 40-byte records, but segment
//! rotation plus retirement of fully-settled segments replaces the
//! single-file log's stop-the-world compaction, and the per-group locks
//! keep competing consumers of different groups off each other's mutex.
//! The exactly-once cursor stripes by `(group, tid)` so the same
//! consumer thread can settle in several groups.
//!
//! [`dir`] packages the whole thing as one directory — sharded base
//! queue, dead-letter pool(s), ack log or per-group segment directories —
//! created and reopened as a unit, with lease-recovery counts reported
//! through [`shard::RecoveryReport::lease`] and
//! [`shard::RecoveryReport::groups`].

#![warn(missing_docs)]

pub mod dir;
pub mod group;
pub mod log;
pub mod queue;
pub mod segments;
pub mod tx;

pub use dir::{
    create_grouped_dir, create_leased_dir, open_grouped_dir, open_leased_dir, GroupDirConfig,
    LeaseDirConfig, OpenedGroupedDir, DLQ_POOL_FILE,
};
pub use group::{ConsumerGroup, GroupConfig, GroupRecovered, GroupStats, GroupedQueue, GROUPS_DIR};
pub use log::{AckLog, Record, RecordKind, Replay, LEASE_LOG_FILE};
pub use queue::{
    Lease, LeaseConfig, LeaseError, LeaseStats, LeasedQueue, RecoveredLeases, Redelivery,
};
pub use segments::{
    GroupReplay, SegmentedLog, DEFAULT_ROTATE_RECORDS, GROUP_META_FILE, SEGMENT_HEADER_LEN,
};
pub use tx::{ExactlyOnce, CURSOR_ROOT_SLOT};
