//! Durable peek-lock consumption over any durable queue.
//!
//! The queues in `crates/core` consume destructively: `dequeue` removes
//! the item, and a consumer that crashes *after* the dequeue but *before*
//! finishing its work silently loses the message. Message brokers solve
//! this with **peek-lock** (leases): a dequeue hands the consumer a
//! time-limited lease while the broker keeps durable ownership of the item
//! until it is acknowledged. This crate layers that protocol on top of any
//! [`DurableQueue`](durable_queues::DurableQueue) — the ten paper
//! algorithms, the `shard` crate's partitioned composition, or anything
//! else implementing the trait.
//!
//! # State machine
//!
//! ```text
//!            enqueue                    dequeue (GRANT)
//!   producer ───────▶ ready (base queue) ───────▶ leased ──ack (ACK)──▶ consumed
//!                        ▲                          │
//!                        │ regrant (GRANT w/ prev)  │ nack / deadline expiry
//!                        │                          ▼
//!                        └──────── pending (PEND) ◀─┘
//!                                     │
//!                                     │ delivery_count would exceed budget
//!                                     ▼
//!                          dead-letter queue (DEAD)
//! ```
//!
//! Every transition is one CRC'd record appended to a sidecar ack log
//! (`LEASES.log`, [`log`] module) — fsync'd per append under the
//! power-fail tier — so a restart replays the log and every lease without
//! a terminal record becomes redeliverable with an incremented delivery
//! count: **at-least-once** delivery. Items that exhaust their delivery
//! budget overflow to a dead-letter queue, itself a durable queue in the
//! same directory.
//!
//! The [`tx`] module upgrades the ack side to **exactly-once handoff**:
//! [`LeasedQueue::ack_exactly_once`] runs the consumer's own state
//! transition and the ack in a single `crates/ptm` redo-log transaction,
//! whose commit point settles both atomically; recovery repairs acks whose
//! sidecar record was lost to the crash instead of redelivering.
//!
//! [`dir`] packages the whole thing as one directory — sharded base
//! queue, dead-letter pool, ack log — created and reopened as a unit,
//! with lease-recovery counts reported through
//! [`shard::RecoveryReport::lease`].

#![warn(missing_docs)]

pub mod dir;
pub mod log;
pub mod queue;
pub mod tx;

pub use dir::{create_leased_dir, open_leased_dir, LeaseDirConfig, DLQ_POOL_FILE};
pub use log::{AckLog, Record, RecordKind, Replay, LEASE_LOG_FILE};
pub use queue::{
    Lease, LeaseConfig, LeaseError, LeaseStats, LeasedQueue, RecoveredLeases, Redelivery,
};
pub use tx::{ExactlyOnce, CURSOR_ROOT_SLOT};
