//! The durable ack log behind peek-lock consumption.
//!
//! Every lease-state transition is one fixed-size, CRC-protected record
//! appended to a sidecar file (`LEASES.log`) next to the queue's pool
//! file(s) — the same enq/ack-pair discipline message stores like LavinMQ
//! use, collapsed into a single append-only file. The log is the durable
//! authority on which dequeued items are still owned by a consumer: on
//! restart it is replayed sequentially and every lease without a terminal
//! record ([`ACK`](RecordKind::Ack) or [`DEAD`](RecordKind::Dead)) becomes
//! redeliverable.
//!
//! # Record linkage
//!
//! Item *values* are not unique (a queue may carry the same `u64` twice),
//! so redelivery cannot retire the superseded lease by item. Instead every
//! [`GRANT`](RecordKind::Grant) carries `prev_lease_id` — the lease it
//! re-delivers (`0` for a fresh dequeue from the base queue) — and replay
//! retires `prev` before registering the new lease. The chain
//! `GRANT(id=5) → PEND(5, next) → GRANT(9, prev=5) → ACK(9)` therefore
//! nets out to nothing, while a crash after the `PEND` leaves exactly one
//! redeliverable entry.
//!
//! # Header: id high-water mark and generation
//!
//! The header carries two u64s besides the magic/version:
//!
//! * **`next_lease_id`** — the id high-water mark at the last
//!   create/compaction. Compaction snapshots only *live* leases, so when
//!   the highest-numbered leases are all settled their GRANT records — the
//!   only other witnesses of the high-water mark — vanish with the retired
//!   prefix. Persisting the mark in the header (rewritten by every
//!   compaction) keeps lease ids monotonic across restarts; replay seeds
//!   from the header and maxes in the surviving records.
//! * **`generation`** — a non-zero value chosen once at
//!   [`AckLog::create`] and carried unchanged through every compaction: the
//!   log's identity. The exactly-once cursor stamps each acked lease id
//!   with the generation it was acked under, and recovery ignores cursor
//!   entries from other generations — a stale cursor paired with a
//!   recreated log can therefore never repair-ack an unrelated lease.
//!
//! # Durability
//!
//! Appends are a single `write` syscall; under
//! [`SyncPolicy::PowerFail`] each append is
//! additionally `fdatasync`'d before the operation returns (the fsync'd
//! tier of the acceptance contract), while the default process-crash tier
//! relies on the page cache surviving the process — the same two-tier
//! contract as the pool files. Replay tolerates a torn final record (the
//! tail is dropped, never trusted) but refuses a corrupt header or a CRC
//! mismatch in the *interior* of the file, which indicate real damage
//! rather than a mid-append crash.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};
use store::{crc32, SyncPolicy};

/// File name of the ack log inside a leased-queue directory.
pub const LEASE_LOG_FILE: &str = "LEASES.log";

/// Magic bytes opening the log file.
pub const LOG_MAGIC: [u8; 8] = *b"DQLEASE1";

/// Current format version.
pub const LOG_VERSION: u32 = 2;

/// Size of the file header in bytes (magic + version + next lease id +
/// generation + header CRC).
pub const HEADER_LEN: usize = 32;

/// Size of every record in bytes.
pub const RECORD_LEN: usize = 40;

/// The four lease-state transitions a record can encode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum RecordKind {
    /// An item left the base queue (or the redelivery set) and is now owned
    /// by lease `lease_id`; `prev_lease_id` is the superseded lease this
    /// grant re-delivers (`0` = fresh from the base queue).
    Grant = 1,
    /// Lease `lease_id` was acknowledged: the item is consumed and will
    /// never be redelivered.
    Ack = 2,
    /// Lease `lease_id` was nacked or expired: the item awaits redelivery
    /// with `delivery_count` as its *next* attempt number. Also written by
    /// compaction as the snapshot form of a pending entry, so replay treats
    /// it as an upsert (it may appear without a preceding grant).
    Pend = 3,
    /// Lease `lease_id` exceeded its delivery budget; the item was durably
    /// moved to the dead-letter queue (the DLQ enqueue happens *before*
    /// this record, so a crash between the two duplicates into the DLQ
    /// rather than losing the item).
    Dead = 4,
}

impl RecordKind {
    pub(crate) fn from_u32(v: u32) -> Option<Self> {
        match v {
            1 => Some(RecordKind::Grant),
            2 => Some(RecordKind::Ack),
            3 => Some(RecordKind::Pend),
            4 => Some(RecordKind::Dead),
            _ => None,
        }
    }
}

/// One fixed-size log record. See [`RecordKind`] for the semantics of each
/// field per kind; byte layout is documented in `docs/FORMATS.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Record {
    /// The transition this record encodes.
    pub kind: RecordKind,
    /// Attempt number: for [`Grant`](RecordKind::Grant) the count of *this*
    /// delivery (first delivery = 1); for [`Pend`](RecordKind::Pend) the
    /// count the *next* delivery will carry; `0` for terminal records.
    pub delivery_count: u32,
    /// The lease this record is about.
    pub lease_id: u64,
    /// The item value (meaningful for `Grant`/`Pend`; `0` for terminals).
    pub item: u64,
    /// For `Grant`: the lease this grant supersedes (`0` = none).
    pub prev_lease_id: u64,
}

impl Record {
    pub(crate) fn encode(&self) -> [u8; RECORD_LEN] {
        let mut buf = [0u8; RECORD_LEN];
        buf[0..4].copy_from_slice(&(self.kind as u32).to_le_bytes());
        buf[4..8].copy_from_slice(&self.delivery_count.to_le_bytes());
        buf[8..16].copy_from_slice(&self.lease_id.to_le_bytes());
        buf[16..24].copy_from_slice(&self.item.to_le_bytes());
        buf[24..32].copy_from_slice(&self.prev_lease_id.to_le_bytes());
        let crc = crc32(&buf[0..32]);
        buf[32..36].copy_from_slice(&crc.to_le_bytes());
        // buf[36..40] stays zero (pad).
        buf
    }

    /// Decodes one record, or `None` if the CRC or kind is invalid (a torn
    /// or never-written tail).
    pub(crate) fn decode(buf: &[u8]) -> Option<Record> {
        debug_assert_eq!(buf.len(), RECORD_LEN);
        let stored = u32::from_le_bytes(buf[32..36].try_into().unwrap());
        if crc32(&buf[0..32]) != stored {
            return None;
        }
        let kind = RecordKind::from_u32(u32::from_le_bytes(buf[0..4].try_into().unwrap()))?;
        Some(Record {
            kind,
            delivery_count: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            lease_id: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
            item: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            prev_lease_id: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
        })
    }
}

/// A lease that was live (no terminal record) when the log ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LiveLease {
    /// The item the lease owns.
    pub item: u64,
    /// For a granted lease: the delivery count it was granted with. For a
    /// pending lease: the count its next delivery must carry.
    pub delivery_count: u32,
    /// Whether the lease was granted (in a consumer's hands at the crash)
    /// or pending redelivery (nacked/expired, not yet regranted).
    pub granted: bool,
}

/// What replaying the log reconstructed.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    /// Every lease without a terminal record, keyed (and therefore ordered)
    /// by lease id — grant order, since ids are monotonic.
    pub live: BTreeMap<u64, LiveLease>,
    /// The first id the next life may grant: the header's persisted
    /// high-water mark maxed with `lease id + 1` over the replayed records,
    /// so ids stay monotonic even when compaction retired every record that
    /// witnessed the previous maximum.
    pub next_lease_id: u64,
    /// The log's generation (see the [module docs](self)); exactly-once
    /// cursor entries stamped with a different generation belong to another
    /// log and must be ignored.
    pub generation: u64,
    /// Valid records replayed.
    pub records: u64,
    /// Terminal `ACK` records seen.
    pub acked: u64,
    /// Terminal `DEAD` records seen.
    pub dead: u64,
    /// Bytes dropped at the tail as a torn final append (0 or a partial /
    /// corrupt record's worth).
    pub torn_bytes: u64,
}

fn header_bytes(next_lease_id: u64, generation: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..8].copy_from_slice(&LOG_MAGIC);
    h[8..12].copy_from_slice(&LOG_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&next_lease_id.to_le_bytes());
    h[20..28].copy_from_slice(&generation.to_le_bytes());
    let crc = crc32(&h[0..28]);
    h[28..32].copy_from_slice(&crc.to_le_bytes());
    h
}

/// A fresh, non-zero log generation: wall-clock nanoseconds mixed with the
/// process id, with a process-wide sequence in the low 16 bits so two
/// creates inside one clock tick still differ. Zero is reserved as the
/// cursor's "no generation" value, and collisions across recreations of
/// one deployment's log are what matter — within a process the sequence
/// rules them out, across processes the pid/nanosecond mix makes them
/// vanishingly unlikely.
pub(crate) fn fresh_generation() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed) & 0xFFFF;
    (((nanos ^ ((std::process::id() as u64) << 32)) & !0xFFFF) | seq).max(1)
}

pub(crate) fn bad_data(path: &Path, msg: String) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {msg}", path.display()),
    )
}

/// The append-only ack log. All mutation goes through the owning
/// `LeasedQueue`'s lock, so the log itself is single-writer.
#[derive(Debug)]
pub struct AckLog {
    path: PathBuf,
    file: File,
    sync: SyncPolicy,
    /// Records in the file since the last create/compaction (valid tail
    /// drops excluded).
    records: u64,
    /// The log's identity, fixed at create time and preserved by
    /// compaction (see the [module docs](self)).
    generation: u64,
}

impl AckLog {
    /// Creates a fresh, empty log at `dir/`[`LEASE_LOG_FILE`], truncating
    /// any previous one. Under [`SyncPolicy::PowerFail`] the header and the
    /// directory entry are fsync'd before returning.
    pub fn create(dir: &Path, sync: SyncPolicy) -> io::Result<AckLog> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(LEASE_LOG_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let generation = fresh_generation();
        // Ids start at 1 (0 is the "no previous lease" sentinel), so a
        // fresh log's high-water mark is 1.
        file.write_all(&header_bytes(1, generation))?;
        if sync == SyncPolicy::PowerFail {
            file.sync_data()?;
            File::open(dir)?.sync_data()?;
        }
        Ok(AckLog {
            path,
            file,
            sync,
            records: 0,
            generation,
        })
    }

    /// Opens and replays the log at `dir/`[`LEASE_LOG_FILE`], returning the
    /// reconstructed lease state alongside the log (positioned for further
    /// appends). A missing file is not an error — it becomes a fresh log
    /// with an empty replay, so a directory that never leased opens
    /// cleanly. A torn final record is dropped; a corrupt header or an
    /// interior CRC mismatch is refused with an error naming the file.
    pub fn replay(dir: &Path, sync: SyncPolicy) -> io::Result<(AckLog, Replay)> {
        let path = dir.join(LEASE_LOG_FILE);
        let mut file = match OpenOptions::new().read(true).write(true).open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let log = AckLog::create(dir, sync)?;
                let replay = Replay {
                    next_lease_id: 1,
                    generation: log.generation,
                    ..Replay::default()
                };
                return Ok((log, replay));
            }
            Err(e) => return Err(e),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER_LEN {
            return Err(bad_data(
                &path,
                format!("truncated header ({} of {HEADER_LEN} bytes)", bytes.len()),
            ));
        }
        if bytes[0..8] != LOG_MAGIC {
            return Err(bad_data(&path, format!("bad magic {:?}", &bytes[0..8])));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let header_next_id = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let generation = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
        let stored = u32::from_le_bytes(bytes[28..32].try_into().unwrap());
        if crc32(&bytes[0..28]) != stored {
            return Err(bad_data(
                &path,
                format!(
                    "header CRC mismatch (expected {:08x}, found {stored:08x})",
                    crc32(&bytes[0..28])
                ),
            ));
        }
        if version != LOG_VERSION {
            return Err(bad_data(
                &path,
                format!("unsupported version {version} (this build reads {LOG_VERSION})"),
            ));
        }

        let mut replay = Replay {
            next_lease_id: header_next_id,
            generation,
            ..Replay::default()
        };
        let body = &bytes[HEADER_LEN..];
        let mut consumed = 0usize;
        while body.len() - consumed >= RECORD_LEN {
            let Some(rec) = Record::decode(&body[consumed..consumed + RECORD_LEN]) else {
                // An invalid record mid-file would silently drop everything
                // after it, so only the *final* full record may be torn.
                if body.len() - consumed > RECORD_LEN {
                    return Err(bad_data(
                        &path,
                        format!(
                            "corrupt record at byte {} (not at the tail; refusing to \
                             drop {} trailing bytes)",
                            HEADER_LEN + consumed,
                            body.len() - consumed
                        ),
                    ));
                }
                break;
            };
            consumed += RECORD_LEN;
            replay.records += 1;
            replay.next_lease_id = replay.next_lease_id.max(rec.lease_id + 1);
            match rec.kind {
                RecordKind::Grant => {
                    if rec.prev_lease_id != 0 {
                        replay.live.remove(&rec.prev_lease_id);
                    }
                    replay.live.insert(
                        rec.lease_id,
                        LiveLease {
                            item: rec.item,
                            delivery_count: rec.delivery_count,
                            granted: true,
                        },
                    );
                }
                RecordKind::Ack => {
                    replay.live.remove(&rec.lease_id);
                    replay.acked += 1;
                }
                RecordKind::Pend => {
                    replay.live.insert(
                        rec.lease_id,
                        LiveLease {
                            item: rec.item,
                            delivery_count: rec.delivery_count,
                            granted: false,
                        },
                    );
                }
                RecordKind::Dead => {
                    replay.live.remove(&rec.lease_id);
                    replay.dead += 1;
                }
            }
        }
        replay.torn_bytes = (body.len() - consumed) as u64;
        if replay.torn_bytes > 0 {
            // Chop the torn tail so the next append starts on a record
            // boundary instead of extending garbage. `read_to_end` left the
            // cursor past the new EOF, so reposition it too — `set_len`
            // never moves the cursor, and appending through a stale one
            // would punch a zero-filled hole where a record should be.
            file.set_len((HEADER_LEN + consumed) as u64)?;
            file.seek(io::SeekFrom::Start((HEADER_LEN + consumed) as u64))?;
            if sync == SyncPolicy::PowerFail {
                file.sync_data()?;
            }
        }
        let records = replay.records;
        Ok((
            AckLog {
                path,
                file,
                sync,
                records,
                generation,
            },
            replay,
        ))
    }

    /// Appends one record (a single `write` syscall; `fdatasync`'d under
    /// [`SyncPolicy::PowerFail`]).
    pub fn append(&mut self, rec: &Record) -> io::Result<()> {
        self.file.write_all(&rec.encode())?;
        if self.sync == SyncPolicy::PowerFail {
            self.file.sync_data()?;
        }
        self.records += 1;
        Ok(())
    }

    /// Atomically rewrites the log to contain exactly `live` (the snapshot
    /// form of the current lease state), discarding the retired prefix:
    /// tmp file → fsync → rename → directory fsync, the same discipline as
    /// the shard manifest, so a crash at any point leaves either the old or
    /// the new log.
    ///
    /// `next_lease_id` is the caller's id high-water mark, persisted in the
    /// rewritten header: the snapshot holds only *live* leases, so without
    /// it a snapshot taken after the highest ids settled would lose the
    /// mark and a later replay would hand out already-used ids. The
    /// generation is carried through unchanged — compaction does not change
    /// which log this is.
    pub fn compact(
        &mut self,
        next_lease_id: u64,
        live: impl IntoIterator<Item = Record>,
    ) -> io::Result<()> {
        let tmp = self.path.with_extension("log.tmp");
        let mut out = File::create(&tmp)?;
        let mut buf: Vec<u8> = header_bytes(next_lease_id, self.generation).to_vec();
        let mut n = 0u64;
        for rec in live {
            buf.extend_from_slice(&rec.encode());
            n += 1;
        }
        out.write_all(&buf)?;
        out.sync_data()?;
        std::fs::rename(&tmp, &self.path)?;
        if let Some(parent) = self.path.parent() {
            File::open(parent)?.sync_data()?;
        }
        self.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        self.records = n;
        Ok(())
    }

    /// Records in the file since the last create/compaction.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's generation: its identity, fixed at create time and
    /// preserved by compaction (see the [module docs](self)).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lease-log-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn grant(id: u64, item: u64, dc: u32, prev: u64) -> Record {
        Record {
            kind: RecordKind::Grant,
            delivery_count: dc,
            lease_id: id,
            item,
            prev_lease_id: prev,
        }
    }

    fn terminal(kind: RecordKind, id: u64) -> Record {
        Record {
            kind,
            delivery_count: 0,
            lease_id: id,
            item: 0,
            prev_lease_id: 0,
        }
    }

    #[test]
    fn roundtrip_reconstructs_live_leases() {
        let dir = tmp("roundtrip");
        let mut log = AckLog::create(&dir, SyncPolicy::PowerFail).unwrap();
        log.append(&grant(1, 100, 1, 0)).unwrap();
        log.append(&grant(2, 200, 1, 0)).unwrap();
        log.append(&terminal(RecordKind::Ack, 1)).unwrap();
        // Lease 2 nacked, regranted as 3, then dead-lettered.
        log.append(&Record {
            kind: RecordKind::Pend,
            delivery_count: 2,
            lease_id: 2,
            item: 200,
            prev_lease_id: 0,
        })
        .unwrap();
        log.append(&grant(3, 200, 2, 2)).unwrap();
        log.append(&terminal(RecordKind::Dead, 3)).unwrap();
        log.append(&grant(4, 400, 1, 0)).unwrap();
        drop(log);

        let (log, replay) = AckLog::replay(&dir, SyncPolicy::PowerFail).unwrap();
        assert_eq!(log.records(), 7);
        assert_eq!(replay.records, 7);
        assert_eq!(replay.acked, 1);
        assert_eq!(replay.dead, 1);
        assert_eq!(replay.next_lease_id, 5);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.live.len(), 1);
        assert_eq!(
            replay.live[&4],
            LiveLease {
                item: 400,
                delivery_count: 1,
                granted: true
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_chopped() {
        let dir = tmp("torn");
        let mut log = AckLog::create(&dir, SyncPolicy::default()).unwrap();
        log.append(&grant(1, 10, 1, 0)).unwrap();
        log.append(&grant(2, 20, 1, 0)).unwrap();
        drop(log);
        // Simulate an append torn mid-record.
        let path = dir.join(LEASE_LOG_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; RECORD_LEN - 7]).unwrap();
        drop(f);

        let (mut log, replay) = AckLog::replay(&dir, SyncPolicy::default()).unwrap();
        assert_eq!(replay.records, 2);
        assert_eq!(replay.torn_bytes, (RECORD_LEN - 7) as u64);
        assert_eq!(replay.live.len(), 2);
        // The tail was chopped: a fresh append lands on a record boundary
        // and replays cleanly.
        log.append(&terminal(RecordKind::Ack, 1)).unwrap();
        drop(log);
        let (_, replay) = AckLog::replay(&dir, SyncPolicy::default()).unwrap();
        assert_eq!(replay.records, 3);
        assert_eq!(replay.live.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_corruption_is_refused_with_the_file_name() {
        let dir = tmp("interior");
        let mut log = AckLog::create(&dir, SyncPolicy::default()).unwrap();
        for i in 1..=3 {
            log.append(&grant(i, i * 10, 1, 0)).unwrap();
        }
        drop(log);
        let path = dir.join(LEASE_LOG_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN + 5] ^= 0xFF; // first record, not the tail
        std::fs::write(&path, &bytes).unwrap();

        let err = AckLog::replay(&dir, SyncPolicy::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains(LEASE_LOG_FILE), "{msg}");
        assert!(msg.contains("corrupt record"), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_damage_is_refused() {
        let dir = tmp("header");
        drop(AckLog::create(&dir, SyncPolicy::default()).unwrap());
        let path = dir.join(LEASE_LOG_FILE);

        let good = std::fs::read(&path).unwrap();
        std::fs::write(&path, &good[..HEADER_LEN - 3]).unwrap();
        let err = AckLog::replay(&dir, SyncPolicy::default()).unwrap_err();
        assert!(err.to_string().contains("truncated header"), "{err}");

        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        let err = AckLog::replay(&dir, SyncPolicy::default()).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");

        let mut bad = good.clone();
        bad[9] ^= 0xFF; // version byte → header CRC mismatch
        std::fs::write(&path, &bad).unwrap();
        let err = AckLog::replay(&dir, SyncPolicy::default()).unwrap_err();
        assert!(err.to_string().contains("header CRC mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_opens_as_a_fresh_log() {
        let dir = tmp("missing");
        let (log, replay) = AckLog::replay(&dir, SyncPolicy::default()).unwrap();
        assert_eq!(log.records(), 0);
        assert!(replay.live.is_empty());
        assert_eq!(replay.next_lease_id, 1);
        assert_eq!(replay.generation, log.generation());
        assert_ne!(replay.generation, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_discards_the_retired_prefix_and_survives_replay() {
        let dir = tmp("compact");
        let mut log = AckLog::create(&dir, SyncPolicy::PowerFail).unwrap();
        for i in 1..=100u64 {
            log.append(&grant(i, i, 1, 0)).unwrap();
            if i <= 98 {
                log.append(&terminal(RecordKind::Ack, i)).unwrap();
            }
        }
        assert_eq!(log.records(), 198);
        log.compact(101, [grant(99, 99, 1, 0), grant(100, 100, 1, 0)])
            .unwrap();
        assert_eq!(log.records(), 2);
        // The compacted log still appends and replays.
        log.append(&terminal(RecordKind::Ack, 99)).unwrap();
        drop(log);
        let (_, replay) = AckLog::replay(&dir, SyncPolicy::PowerFail).unwrap();
        assert_eq!(replay.records, 3);
        assert_eq!(replay.live.len(), 1);
        assert_eq!(replay.live[&100].item, 100);
        assert_eq!(replay.next_lease_id, 101);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_compaction_keeps_the_id_high_water_mark_and_generation() {
        // Regression: when the highest-numbered leases are all settled, the
        // snapshot holds no record witnessing the id maximum — only the
        // header's persisted mark keeps replay from reusing lease ids.
        let dir = tmp("empty-compact");
        let mut log = AckLog::create(&dir, SyncPolicy::default()).unwrap();
        let generation = log.generation();
        for i in 1..=50u64 {
            log.append(&grant(i, i, 1, 0)).unwrap();
            log.append(&terminal(RecordKind::Ack, i)).unwrap();
        }
        log.compact(51, []).unwrap();
        assert_eq!(log.records(), 0);
        assert_eq!(log.generation(), generation);
        drop(log);

        let (log, replay) = AckLog::replay(&dir, SyncPolicy::default()).unwrap();
        assert!(replay.live.is_empty());
        assert_eq!(replay.next_lease_id, 51, "high-water mark lost");
        assert_eq!(replay.generation, generation, "generation changed");
        assert_eq!(log.generation(), generation);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
