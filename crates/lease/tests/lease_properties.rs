//! Property tests of the lease state machine: arbitrary interleavings of
//! enqueue / dequeue / ack / nack / expiry-reap / **crash** must preserve
//! the delivery contract at 1, 2 and 8 shards:
//!
//! - **no loss**: every enqueued item ends in exactly one of {acked,
//!   drained residue, dead-letter queue};
//! - **no premature retire**: an acked item is never delivered again, and
//!   no lease is ever granted on an item that is not outstanding;
//! - **per-key FIFO among never-leased items**: redelivery may reorder
//!   leased items, but items the lease layer never touched must drain in
//!   enqueue order per key (the sharded base's own guarantee, which the
//!   peek-lock layer must not break).
//!
//! Crashes snapshot all shard pools and the DLQ pool (simulated
//! full-system crash), drop the in-memory queue, and recover everything —
//! shards via the orchestrator, leases via the ack-log replay — exactly
//! like a restart. Every lease held across the crash is invalidated and
//! must be redelivered.

use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue};
use lease::{Lease, LeaseConfig, LeaseError, LeasedQueue, Redelivery};
use pmem::PoolConfig;
use proptest::prelude::*;
use shard::{RecoveryOrchestrator, RoutePolicy, ShardConfig, ShardedQueue};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const KEYS: [u64; 4] = [1, 2, 7, 40];
const MAX_DELIVERIES: u32 = 4;

fn encode(key: u64, seq: u64) -> u64 {
    (key << 32) | seq
}

fn decode_key(v: u64) -> u64 {
    v >> 32
}

fn decode_seq(v: u64) -> u64 {
    v & 0xFFFF_FFFF
}

fn shard_config(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        queue: QueueConfig::small_test(),
        pool: PoolConfig::test_with_size(8 << 20),
        policy: RoutePolicy::KeyHash,
    }
}

fn fresh_dlq() -> Arc<dyn DurableQueue> {
    let pool = Arc::new(pmem::PmemPool::new(PoolConfig::test_with_size(4 << 20)));
    Arc::new(OptUnlinkedQueue::create(pool, QueueConfig::small_test()))
}

/// Crash-recovers the whole deployment: shard pools and DLQ pool snapshot
/// to their persistent images, then everything is rebuilt from those
/// images plus the ack log on disk.
fn crash_and_recover(
    queue: LeasedQueue<ShardedQueue<OptUnlinkedQueue>>,
    config: ShardConfig,
    lease_cfg: &LeaseConfig,
) -> LeasedQueue<ShardedQueue<OptUnlinkedQueue>> {
    let orch = RecoveryOrchestrator::new(2);
    let base_pools = orch.crash(queue.base());
    let dlq_pool = queue
        .dlq()
        .expect("property deployments always have a DLQ")
        .pool()
        .simulate_crash();
    drop(queue);
    let (base, _) = orch.recover::<OptUnlinkedQueue>(base_pools, config);
    let dlq: Arc<dyn DurableQueue> = Arc::new(OptUnlinkedQueue::recover(
        Arc::new(dlq_pool),
        QueueConfig::small_test(),
    ));
    let (queue, _) = LeasedQueue::recover(base, Some(dlq), lease_cfg.clone(), None)
        .expect("recover leased queue");
    queue
}

struct Model {
    /// Next sequence number per key.
    next_seq: HashMap<u64, u64>,
    /// Enqueued items not yet acked (dead-lettered items stay here until
    /// the final partition check, because expiry-driven dead-lettering is
    /// not directly observable).
    outstanding: HashSet<u64>,
    /// Items whose ack was confirmed — must never be seen again.
    acked: HashSet<u64>,
    /// Items that were ever under lease (redelivery may reorder these).
    ever_leased: HashSet<u64>,
}

impl Model {
    fn new() -> Self {
        Model {
            next_seq: KEYS.iter().map(|&k| (k, 1)).collect(),
            outstanding: HashSet::new(),
            acked: HashSet::new(),
            ever_leased: HashSet::new(),
        }
    }

    fn on_granted(&mut self, l: &Lease) -> Result<(), TestCaseError> {
        prop_assert!(
            self.outstanding.contains(&l.item),
            "granted item {:#x} is not outstanding (premature retire or invention)",
            l.item
        );
        prop_assert!(
            !self.acked.contains(&l.item),
            "acked item {:#x} resurrected",
            l.item
        );
        self.ever_leased.insert(l.item);
        Ok(())
    }
}

/// One seeded interleaving: `ops` random operations (with up to
/// `crashes` full-system crashes sprinkled in), then a full drain and the
/// partition + FIFO checks.
fn run_interleaving(
    shards: usize,
    seed: u64,
    ops: usize,
    timeout_ms: u64,
    crashes: u32,
) -> Result<(), TestCaseError> {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "lease-prop-{shards}-{seed}-{timeout_ms}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = shard_config(shards);
    let lease_cfg = LeaseConfig::new(&dir)
        .with_timeout(Duration::from_millis(timeout_ms))
        .with_max_deliveries(MAX_DELIVERIES)
        .with_compact_after(32); // tiny floor: interleavings exercise compaction too
    let base = ShardedQueue::<OptUnlinkedQueue>::create(config);
    let mut queue = LeasedQueue::create(base, Some(fresh_dlq()), lease_cfg.clone())
        .expect("create leased queue");

    let mut model = Model::new();
    let mut held: Vec<Lease> = Vec::new();
    let mut crashes_left = crashes;
    let mut state = seed | 1;
    let mut rng = move || {
        state = state
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        state >> 16
    };

    for _ in 0..ops {
        match rng() % 100 {
            // Enqueue the next item of a random key.
            0..=39 => {
                let key = KEYS[(rng() % KEYS.len() as u64) as usize];
                let seq = model.next_seq[&key];
                let item = encode(key, seq);
                queue.enqueue_keyed(0, key, item);
                model.next_seq.insert(key, seq + 1);
                model.outstanding.insert(item);
            }
            // Dequeue a lease and hold it.
            40..=69 => {
                if let Some(l) = queue.dequeue(0) {
                    model.on_granted(&l)?;
                    held.push(l);
                }
            }
            // Ack a random held lease (possibly stale).
            70..=84 => {
                if !held.is_empty() {
                    let l = held.swap_remove((rng() % held.len() as u64) as usize);
                    match queue.ack(&l) {
                        Ok(()) => {
                            model.outstanding.remove(&l.item);
                            model.acked.insert(l.item);
                        }
                        Err(LeaseError::NotInFlight) => {} // expired/settled
                        Err(e) => panic!("unexpected ack error: {e}"),
                    }
                }
            }
            // Nack a random held lease (possibly stale).
            85..=92 => {
                if !held.is_empty() {
                    let l = held.swap_remove((rng() % held.len() as u64) as usize);
                    match queue.nack(0, &l) {
                        Ok(Redelivery::Requeued { .. }) | Err(LeaseError::NotInFlight) => {}
                        Err(e) => panic!("unexpected nack error: {e}"),
                        Ok(Redelivery::DeadLettered) => {
                            // Stays in `outstanding`; the final partition
                            // check finds it in the DLQ bucket.
                        }
                    }
                }
            }
            // Reap expired leases explicitly.
            93..=96 => {
                queue.reap_expired(0);
            }
            // Full-system crash + recovery.
            _ => {
                if crashes_left > 0 {
                    crashes_left -= 1;
                    held.clear(); // every in-memory lease dies with the process
                    queue = crash_and_recover(queue, config, &lease_cfg);
                }
            }
        }
    }

    // Settle every lease still held: with a long timeout they would never
    // expire, and their items would otherwise stay invisible to the drain.
    // Nacking (rather than acking) routes them through redelivery or the
    // dead-letter budget, both covered by the partition check below.
    for l in held.drain(..) {
        let _ = queue.nack(0, &l);
    }

    // Snapshot before the final drain grants leases on everything.
    let leased_before_drain = model.ever_leased.clone();

    // Final drain: every grant is immediately acked (so even zero-timeout
    // runs terminate), and the delivery contract is checked per item.
    let mut drained: Vec<u64> = Vec::new();
    let mut drained_set: HashSet<u64> = HashSet::new();
    while let Some(l) = queue.dequeue(0) {
        model.on_granted(&l)?;
        prop_assert!(
            drained_set.insert(l.item),
            "item {:#x} delivered twice in the final drain",
            l.item
        );
        if queue.ack(&l).is_err() {
            // Zero-timeout runs can expire the lease between grant and
            // ack bookkeeping; the item will come around again and the
            // budget guarantees termination.
            drained_set.remove(&l.item);
            continue;
        }
        drained.push(l.item);
    }
    let dlq = Arc::clone(queue.dlq().unwrap());
    let dead: HashSet<u64> = std::iter::from_fn(|| dlq.dequeue(0)).collect();

    // Partition: what was owed (outstanding) is exactly the drained
    // residue plus the dead-letter queue, disjointly — nothing lost,
    // nothing invented, nothing retired early.
    for item in &drained_set {
        prop_assert!(!dead.contains(item), "item {item:#x} both drained and dead");
    }
    let mut recovered: HashSet<u64> = drained_set.clone();
    recovered.extend(dead.iter().copied());
    prop_assert_eq!(
        &recovered,
        &model.outstanding,
        "drained ∪ DLQ must equal the outstanding set"
    );
    for item in &dead {
        prop_assert!(
            leased_before_drain.contains(item),
            "never-leased item {item:#x} cannot have exhausted its budget"
        );
    }

    // Per-key FIFO among items the lease layer never touched.
    let mut last_seq: HashMap<u64, u64> = HashMap::new();
    for &item in &drained {
        if leased_before_drain.contains(&item) {
            continue;
        }
        let (key, seq) = (decode_key(item), decode_seq(item));
        if let Some(&prev) = last_seq.get(&key) {
            prop_assert!(
                seq > prev,
                "per-key FIFO violated for never-leased key {key}: {seq} after {prev}"
            );
        }
        last_seq.insert(key, seq);
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Single shard: the degenerate case where every key shares one FIFO.
    #[test]
    fn interleavings_hold_the_contract_at_1_shard(
        seed in 0u64..1_000_000,
        timeout_idx in 0usize..2,
        crashes in 1u32..3,
    ) {
        let timeout = [0u64, 3_600_000][timeout_idx];
        run_interleaving(1, seed, 160, timeout, crashes)?;
    }

    /// Two shards: keys split across pools, leases still one log.
    #[test]
    fn interleavings_hold_the_contract_at_2_shards(
        seed in 0u64..1_000_000,
        timeout_idx in 0usize..2,
        crashes in 1u32..3,
    ) {
        let timeout = [0u64, 3_600_000][timeout_idx];
        run_interleaving(2, seed, 160, timeout, crashes)?;
    }

    /// Eight shards: more pools than keys, some shards stay empty.
    #[test]
    fn interleavings_hold_the_contract_at_8_shards(
        seed in 0u64..1_000_000,
        timeout_idx in 0usize..2,
        crashes in 1u32..3,
    ) {
        let timeout = [0u64, 3_600_000][timeout_idx];
        run_interleaving(8, seed, 160, timeout, crashes)?;
    }
}
