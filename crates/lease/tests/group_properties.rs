//! Property tests of the consumer-group state machine: arbitrary
//! interleavings of enqueue / per-group dequeue / ack / nack / expiry-reap
//! / **full-system crash** must preserve the grouped delivery contract at
//! 1, 2 and 8 shards × 1–3 groups:
//!
//! - **per-group partition**: for every group, drained residue ∪ that
//!   group's dead-letter queue is exactly the group's outstanding set
//!   (everything enqueued minus what the group acked) — nothing lost,
//!   nothing invented, nothing retired early;
//! - **group isolation**: no group ever observes another group's
//!   settlements — an item acked (or dead-lettered) in one group still
//!   reaches every other group exactly once;
//! - **budget honesty**: only items a group actually leased can land in
//!   that group's dead-letter queue.
//!
//! Segments rotate every few records (`rotate_records = 16`), so every
//! interleaving long enough to matter also exercises rotation and
//! retirement, and every crash recovers a multi-segment directory.
//! Crashes snapshot all shard pools and every group's DLQ pool (simulated
//! full-system crash), drop the in-memory queue, and recover everything —
//! shards via the orchestrator, groups via per-directory segment replay.
//! Every lease held across the crash is invalidated and must be
//! redelivered within its group.

use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue};
use lease::{ConsumerGroup, GroupConfig, GroupedQueue, Lease, LeaseError, Redelivery};
use pmem::PoolConfig;
use proptest::prelude::*;
use shard::{RecoveryOrchestrator, RoutePolicy, ShardConfig, ShardedQueue};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const KEYS: [u64; 4] = [1, 2, 7, 40];
const MAX_DELIVERIES: u32 = 4;
const GROUP_NAMES: [&str; 3] = ["g0", "g1", "g2"];

fn encode(key: u64, seq: u64) -> u64 {
    (key << 32) | seq
}

fn shard_config(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        queue: QueueConfig::small_test(),
        pool: PoolConfig::test_with_size(8 << 20),
        policy: RoutePolicy::KeyHash,
    }
}

fn group_config(dir: &PathBuf, groups: usize, timeout_ms: u64) -> GroupConfig {
    GroupConfig::new(dir, GROUP_NAMES[..groups].iter().copied())
        .with_timeout(Duration::from_millis(timeout_ms))
        .with_max_deliveries(MAX_DELIVERIES)
        .with_rotate_records(16) // tiny segments: every run rotates + retires
}

fn fresh_dlqs(groups: usize) -> Vec<Option<Arc<dyn DurableQueue>>> {
    (0..groups)
        .map(|_| {
            let pool = Arc::new(pmem::PmemPool::new(PoolConfig::test_with_size(4 << 20)));
            let dlq: Arc<dyn DurableQueue> =
                Arc::new(OptUnlinkedQueue::create(pool, QueueConfig::small_test()));
            Some(dlq)
        })
        .collect()
}

type Grouped = GroupedQueue<ShardedQueue<OptUnlinkedQueue>>;

/// Crash-recovers the whole deployment: shard pools and every group's DLQ
/// pool snapshot to their persistent images, then everything is rebuilt
/// from those images plus the segment directories on disk.
fn crash_and_recover(
    queue: Arc<Grouped>,
    config: ShardConfig,
    group_cfg: &GroupConfig,
) -> Arc<Grouped> {
    let orch = RecoveryOrchestrator::new(2);
    let base_pools = orch.crash(queue.base());
    let dlqs: Vec<Option<Arc<dyn DurableQueue>>> = group_cfg
        .groups
        .iter()
        .map(|name| {
            let pool = queue
                .dlq(name)
                .expect("property deployments always have DLQs")
                .pool()
                .simulate_crash();
            let dlq: Arc<dyn DurableQueue> = Arc::new(OptUnlinkedQueue::recover(
                Arc::new(pool),
                QueueConfig::small_test(),
            ));
            Some(dlq)
        })
        .collect();
    drop(queue);
    let (base, _) = orch.recover::<OptUnlinkedQueue>(base_pools, config);
    let (queue, _) =
        GroupedQueue::recover(base, dlqs, group_cfg.clone(), None).expect("recover grouped queue");
    Arc::new(queue)
}

/// Per-group model state.
struct GroupModel {
    /// Items whose ack this group confirmed — must never be seen here again.
    acked: HashSet<u64>,
    /// Items this group ever held under lease (budget exhaustion is only
    /// possible for these).
    ever_leased: HashSet<u64>,
}

struct Model {
    next_seq: HashMap<u64, u64>,
    /// Everything ever enqueued: every group owes each of these exactly one
    /// terminal outcome.
    enqueued: HashSet<u64>,
    groups: Vec<GroupModel>,
}

impl Model {
    fn new(groups: usize) -> Self {
        Model {
            next_seq: KEYS.iter().map(|&k| (k, 1)).collect(),
            enqueued: HashSet::new(),
            groups: (0..groups)
                .map(|_| GroupModel {
                    acked: HashSet::new(),
                    ever_leased: HashSet::new(),
                })
                .collect(),
        }
    }

    fn on_granted(&mut self, g: usize, l: &Lease) -> Result<(), TestCaseError> {
        prop_assert!(
            self.enqueued.contains(&l.item),
            "group {g} granted item {:#x} that was never enqueued",
            l.item
        );
        prop_assert!(
            !self.groups[g].acked.contains(&l.item),
            "item {:#x} acked in group {g} resurrected there",
            l.item
        );
        self.groups[g].ever_leased.insert(l.item);
        Ok(())
    }
}

/// One seeded interleaving: `ops` random operations (with up to `crashes`
/// full-system crashes sprinkled in), then a full per-group drain and the
/// partition + isolation checks.
fn run_interleaving(
    shards: usize,
    groups: usize,
    seed: u64,
    ops: usize,
    timeout_ms: u64,
    crashes: u32,
) -> Result<(), TestCaseError> {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "lease-group-prop-{shards}-{groups}-{seed}-{timeout_ms}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = shard_config(shards);
    let group_cfg = group_config(&dir, groups, timeout_ms);
    let base = ShardedQueue::<OptUnlinkedQueue>::create(config);
    let mut queue = Arc::new(
        GroupedQueue::create(base, fresh_dlqs(groups), group_cfg.clone())
            .expect("create grouped queue"),
    );

    let mut model = Model::new(groups);
    let mut held: Vec<Vec<Lease>> = vec![Vec::new(); groups];
    let mut crashes_left = crashes;
    let mut state = seed | 1;
    let mut rng = move || {
        state = state
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        state >> 16
    };

    for _ in 0..ops {
        let g = (rng() % groups as u64) as usize;
        let handle = queue.handles().swap_remove(g);
        match rng() % 100 {
            // Enqueue the next item of a random key: every group sees it.
            0..=39 => {
                let key = KEYS[(rng() % KEYS.len() as u64) as usize];
                let seq = model.next_seq[&key];
                let item = encode(key, seq);
                queue.enqueue_keyed(0, key, item);
                model.next_seq.insert(key, seq + 1);
                model.enqueued.insert(item);
            }
            // Dequeue a lease in a random group and hold it.
            40..=69 => {
                if let Some(l) = handle.dequeue(0) {
                    model.on_granted(g, &l)?;
                    held[g].push(l);
                }
            }
            // Ack a random held lease of that group (possibly stale).
            70..=84 => {
                if !held[g].is_empty() {
                    let idx = (rng() % held[g].len() as u64) as usize;
                    let l = held[g].swap_remove(idx);
                    match handle.ack(&l) {
                        Ok(()) => {
                            model.groups[g].acked.insert(l.item);
                        }
                        Err(LeaseError::NotInFlight) => {} // expired/settled
                        Err(e) => panic!("unexpected ack error: {e}"),
                    }
                }
            }
            // Nack a random held lease of that group (possibly stale).
            85..=92 => {
                if !held[g].is_empty() {
                    let idx = (rng() % held[g].len() as u64) as usize;
                    let l = held[g].swap_remove(idx);
                    match handle.nack(0, &l) {
                        Ok(Redelivery::Requeued { .. }) | Err(LeaseError::NotInFlight) => {}
                        Ok(Redelivery::DeadLettered) => {
                            // Stays owed; the final partition check finds it
                            // in this group's DLQ bucket.
                        }
                        Err(e) => panic!("unexpected nack error: {e}"),
                    }
                }
            }
            // Reap that group's expired leases explicitly.
            93..=96 => {
                handle.reap_expired(0);
            }
            // Full-system crash + recovery.
            _ => {
                if crashes_left > 0 {
                    crashes_left -= 1;
                    for h in &mut held {
                        h.clear(); // every in-memory lease dies with the process
                    }
                    queue = crash_and_recover(queue, config, &group_cfg);
                }
            }
        }
    }

    // Settle every lease still held (long-timeout runs would never expire
    // them); nacking routes through redelivery or the budget.
    for (g, leases) in held.iter_mut().enumerate() {
        let handle = queue.handles().swap_remove(g);
        for l in leases.drain(..) {
            let _ = handle.nack(0, &l);
        }
    }

    // Final drain, group by group. The first group's drain also empties the
    // base queue (fanning the residue out to every group), so later groups
    // see theirs from pending alone.
    let handles: Vec<ConsumerGroup<ShardedQueue<OptUnlinkedQueue>>> = queue.handles();
    for (g, handle) in handles.iter().enumerate() {
        let mut drained_set: HashSet<u64> = HashSet::new();
        while let Some(l) = handle.dequeue(0) {
            model.on_granted(g, &l)?;
            prop_assert!(
                drained_set.insert(l.item),
                "item {:#x} delivered twice in group {g}'s final drain",
                l.item
            );
            if handle.ack(&l).is_err() {
                // Zero-timeout runs can expire the lease between grant and
                // ack bookkeeping; the item will come around again and the
                // budget guarantees termination.
                drained_set.remove(&l.item);
                continue;
            }
        }
        let dlq = Arc::clone(queue.dlq(handle.name()).unwrap());
        let dead: HashSet<u64> = std::iter::from_fn(|| dlq.dequeue(0)).collect();

        // Per-group partition: what the group was owed (everything enqueued
        // minus its confirmed acks) is exactly its drained residue plus its
        // own DLQ, disjointly. Settlements of *other* groups are invisible
        // here by construction of the owed set.
        for item in &drained_set {
            prop_assert!(
                !dead.contains(item),
                "item {item:#x} both drained and dead in group {g}"
            );
        }
        let owed: HashSet<u64> = model
            .enqueued
            .difference(&model.groups[g].acked)
            .copied()
            .collect();
        let mut got: HashSet<u64> = drained_set.clone();
        got.extend(dead.iter().copied());
        prop_assert_eq!(
            &got,
            &owed,
            "group {}: drained ∪ DLQ must equal the group's outstanding set",
            g
        );
        for item in &dead {
            prop_assert!(
                model.groups[g].ever_leased.contains(item),
                "never-leased item {item:#x} cannot have exhausted group {g}'s budget"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Single shard: every key shares one FIFO under the fan-out.
    #[test]
    fn grouped_interleavings_hold_the_contract_at_1_shard(
        seed in 0u64..1_000_000,
        groups in 1usize..=3,
        timeout_idx in 0usize..2,
        crashes in 1u32..3,
    ) {
        let timeout = [0u64, 3_600_000][timeout_idx];
        run_interleaving(1, groups, seed, 140, timeout, crashes)?;
    }

    /// Two shards: keys split across pools, one segment directory per group.
    #[test]
    fn grouped_interleavings_hold_the_contract_at_2_shards(
        seed in 0u64..1_000_000,
        groups in 1usize..=3,
        timeout_idx in 0usize..2,
        crashes in 1u32..3,
    ) {
        let timeout = [0u64, 3_600_000][timeout_idx];
        run_interleaving(2, groups, seed, 140, timeout, crashes)?;
    }

    /// Eight shards: more pools than keys, some shards stay empty.
    #[test]
    fn grouped_interleavings_hold_the_contract_at_8_shards(
        seed in 0u64..1_000_000,
        groups in 1usize..=3,
        timeout_idx in 0usize..2,
        crashes in 1u32..3,
    ) {
        let timeout = [0u64, 3_600_000][timeout_idx];
        run_interleaving(8, groups, seed, 140, timeout, crashes)?;
    }
}
