//! The acceptance test of the peek-lock layer: a **consumer** process is
//! SIGKILLed while holding live leases over a file-backed 2-shard
//! deployment, and the parent reopens the directory from nothing, checking
//! the full delivery contract under both durability tiers:
//!
//! - every lease that was unacked at the kill is redelivered **exactly
//!   once**, with its delivery count incremented;
//! - no item whose ack the consumer confirmed is ever redelivered;
//! - an item nacked past `max_deliveries` sits in the dead-letter queue
//!   (and only that item);
//! - confirmed enqueues survive (up to the single in-transit item of the
//!   destructive-pop-to-grant window, which no consumer ever observed).
//!
//! Child-side confirmation protocol (see `crates/store/tests/crash_restart.rs`
//! for the pattern): `E <seq>` after each enqueue returns, `A <item>` after
//! each ack returns, `H <item>` after deciding to hold a lease forever
//! (the deliberately-unacked set the kill strands in flight).

use durable_queues::testkit::subprocess::{
    kill_and_reap, read_unique_acks, scratch_dir, wait_for_lines, AckLog as TextLog, ChildProc,
};
use durable_queues::{DurableMsQueue, QueueConfig};
use lease::{create_leased_dir, open_leased_dir, LeaseDirConfig, Redelivery};
use pmem::PoolConfig;
use shard::{RecoveryOrchestrator, RoutePolicy, ShardConfig};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;
use store::{FileConfig, SyncPolicy};

const ENV_DIR: &str = "LEASE_KILL_CHILD_DIR";
const ENV_SYNC: &str = "LEASE_KILL_CHILD_SYNC";
/// When set, the child's shard pools run group commit at this batch
/// window (nanoseconds) — only meaningful with the power-fail tier.
const ENV_GC: &str = "LEASE_KILL_CHILD_GC";
const SHARDS: usize = 2;
/// The item nacked past its budget (outside the producer's 1.. sequence).
const POISON: u64 = u64::MAX - 1;

fn shard_config() -> ShardConfig {
    ShardConfig {
        shards: SHARDS,
        queue: QueueConfig::small_test(),
        pool: PoolConfig::test_with_size(16 << 20),
        policy: RoutePolicy::RoundRobin,
    }
}

fn lease_config(sync: SyncPolicy) -> LeaseDirConfig {
    LeaseDirConfig {
        // Long enough that nothing expires during the test: redelivery
        // must come from the crash, not from timeouts.
        lease_timeout: Duration::from_secs(300),
        max_deliveries: 3,
        sync,
        ..LeaseDirConfig::default()
    }
}

fn parse_sync(key: &str) -> SyncPolicy {
    match key {
        "powerfail" => SyncPolicy::PowerFail,
        _ => SyncPolicy::ProcessCrash,
    }
}

// ---------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------

/// Hidden child entry point (no-op unless re-executed with the env vars).
#[test]
fn lease_kill_child_entry() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let sync = parse_sync(&std::env::var(ENV_SYNC).unwrap_or_default());
    let group_commit = std::env::var(ENV_GC)
        .ok()
        .map(|w| w.parse().expect("bad GC window"));
    run_child(Path::new(&dir), sync, group_commit);
}

fn run_child(dir: &Path, sync: SyncPolicy, group_commit: Option<u64>) {
    let orch = RecoveryOrchestrator::new(SHARDS);
    let queue = create_leased_dir::<DurableMsQueue>(
        &orch,
        dir,
        shard_config(),
        FileConfig::with_size(16 << 20).with_group_commit(group_commit),
        &lease_config(sync),
    )
    .expect("child: create leased dir");

    // Poison dance, before any other traffic: nack one item past its
    // budget so the kill always finds it in the dead-letter queue.
    queue.enqueue(0, POISON);
    loop {
        let l = queue.dequeue(1).expect("child: poison item visible");
        assert_eq!(l.item, POISON);
        match queue.nack(1, &l).expect("child: nack poison") {
            Redelivery::Requeued { .. } => continue,
            Redelivery::DeadLettered => break,
        }
    }

    let mut enq_log = TextLog::create(dir.join("enq.log"));
    let mut ack_log = TextLog::create(dir.join("acks.log"));
    let mut held_log = TextLog::create(dir.join("held.log"));
    std::thread::scope(|scope| {
        let q = &queue;
        scope.spawn(move || {
            // Bounded so the 16 MiB shard pools can never exhaust while the
            // (fsync-throttled) consumer lags; the consumer thread still
            // runs forever, so the kill always lands mid-consumption.
            for seq in 1..=20_000u64 {
                q.enqueue(0, seq);
                enq_log.record("E", seq);
            }
        });
        scope.spawn(move || loop {
            let Some(l) = q.dequeue(1) else { continue };
            if l.item % 7 == 0 && l.delivery_count == 1 {
                // Hold forever: the kill strands these in flight.
                held_log.record("H", l.item);
            } else if l.item % 11 == 3 && l.delivery_count == 1 {
                // One nack, to put redelivery traffic in the log too.
                q.nack(1, &l).expect("child: nack");
            } else {
                q.ack(&l).expect("child: ack");
                ack_log.record("A", l.item);
            }
        });
    });
}

// ---------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------

fn kill_round(sync_key: &str, min_acks: usize) {
    kill_round_with(sync_key, min_acks, None)
}

fn kill_round_with(sync_key: &str, min_acks: usize, group_commit: Option<u64>) {
    let sync = parse_sync(sync_key);
    let tag = if group_commit.is_some() { "-gc" } else { "" };
    let dir = scratch_dir(&format!("lease-kill-{sync_key}{tag}"));

    let mut child = ChildProc::new("lease_kill_child_entry")
        .env(ENV_DIR, &dir)
        .env(ENV_SYNC, sync_key);
    if let Some(window_ns) = group_commit {
        child = child.env(ENV_GC, window_ns.to_string());
    }
    let mut child = child.spawn();
    wait_for_lines(
        &mut child,
        &dir.join("acks.log"),
        min_acks,
        Duration::from_secs(120),
    );
    kill_and_reap(&mut child);

    // A fresh "process": reopen the deployment from the directory alone.
    let orch = RecoveryOrchestrator::new(SHARDS);
    let (queue, report, manifest) = open_leased_dir::<DurableMsQueue>(
        &orch,
        &dir,
        QueueConfig::small_test(),
        &lease_config(sync),
        None,
    )
    .expect("recover leased dir");
    assert_eq!(manifest.shards(), SHARDS);
    let lease_rec = report.lease.expect("lease recovery counts in the report");

    let enq = read_unique_acks(&dir.join("enq.log"), "E");
    let acked = read_unique_acks(&dir.join("acks.log"), "A");
    let held = read_unique_acks(&dir.join("held.log"), "H");
    assert!(acked.len() >= min_acks, "kill landed before real traffic");
    assert!(!held.is_empty(), "kill stranded no live leases");

    // Drain every lease the recovered deployment will grant: redeliveries
    // first (by construction), then the base-queue residue.
    let mut seen: BTreeMap<u64, u32> = BTreeMap::new();
    let mut redelivered = 0u64;
    while let Some(l) = queue.dequeue(0) {
        assert!(
            seen.insert(l.item, l.delivery_count).is_none(),
            "item {} delivered twice after recovery",
            l.item
        );
        if l.delivery_count >= 2 {
            redelivered += 1;
        }
        queue.ack(&l).unwrap();
    }

    // Exactly the recovery-queued redeliveries carried a bumped count (the
    // parent nacked nothing and nothing expired).
    assert_eq!(redelivered, lease_rec.redelivered, "redelivery count drift");
    assert!(
        lease_rec.unacked as usize >= held.len(),
        "report lost held leases: {} < {}",
        lease_rec.unacked,
        held.len()
    );

    // Every deliberately-held lease came back exactly once, second attempt.
    for &h in &held {
        assert_eq!(
            seen.get(&h),
            Some(&2),
            "held item {h} not redelivered with delivery_count 2"
        );
    }

    // No confirmed ack is ever redelivered.
    let resurrected: Vec<u64> = acked
        .iter()
        .filter(|v| seen.contains_key(v))
        .copied()
        .collect();
    assert!(resurrected.is_empty(), "resurrected acks: {resurrected:?}");

    // The poison item (and only it) sits in the dead-letter queue, put
    // there by the child before the kill — recovery added nothing.
    assert_eq!(lease_rec.dead_lettered, 0, "recovery dead-lettered items");
    let dlq = queue.dlq().expect("deployment has a DLQ");
    let dead: Vec<u64> = std::iter::from_fn(|| dlq.dequeue(0)).collect();
    assert_eq!(dead, vec![POISON], "dead-letter queue contents");

    // Confirmed enqueues all survive somewhere (acked, redelivered, or in
    // the residue) — except at most the one in-transit item of the
    // destructive-pop-to-grant window, which no consumer ever observed.
    let missing: Vec<u64> = enq
        .iter()
        .filter(|v| !acked.contains(v) && !seen.contains_key(v))
        .copied()
        .collect();
    assert!(missing.len() <= 1, "confirmed items lost: {missing:?}");
    // And nothing materialises out of thin air (≤ 1 enqueue whose ack
    // line the kill swallowed).
    let extras: Vec<u64> = seen.keys().filter(|v| !enq.contains(v)).copied().collect();
    assert!(extras.len() <= 1, "unconfirmed extras: {extras:?}");

    eprintln!(
        "[{sync_key}] confirmed: {} enqueued, {} acked, {} held; recovered: {} redelivered ({})",
        enq.len(),
        acked.len(),
        held.len(),
        redelivered,
        report.summary(),
    );

    // The recovered deployment serves fresh peek-lock traffic.
    queue.enqueue(2, u64::MAX);
    let l = queue.dequeue(2).expect("post-recovery grant");
    assert_eq!((l.item, l.delivery_count), (u64::MAX, 1));
    queue.ack(&l).unwrap();

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_consumer_redelivers_unacked_leases_process_crash_tier() {
    kill_round("processcrash", 300);
}

#[test]
fn killed_consumer_redelivers_unacked_leases_power_fail_tier() {
    kill_round("powerfail", 150);
}

/// The power-fail round with the producer's and consumer's fences riding
/// the group-commit layer (50 µs window): coalescing msyncs across the
/// two threads must not weaken any part of the delivery contract.
#[test]
fn killed_consumer_redelivers_unacked_leases_power_fail_group_commit() {
    kill_round_with("powerfail", 150, Some(50_000));
}
