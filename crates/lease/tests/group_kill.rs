//! The acceptance test of the consumer-group layer: a process running
//! **competing consumers in two groups** is SIGKILLed mid-consumption over
//! a file-backed 2-shard deployment, and the parent reopens the directory
//! from nothing, checking the grouped delivery contract under both
//! durability tiers:
//!
//! - within the killed group, every lease that was unacked at the kill is
//!   redelivered **exactly once** across the surviving competing
//!   consumers, with its delivery count incremented;
//! - no item whose ack a consumer confirmed is ever redelivered *to that
//!   group* — and each group's settlements are invisible to the other;
//! - the item one group nacked past its budget sits in **that group's**
//!   dead-letter queue and nowhere else;
//! - per group, confirmed enqueues all surface (acked before the kill or
//!   drained after), minus at most one in-transit item per group — the
//!   fan-out window the `group` module documents.
//!
//! Child-side confirmation protocol (same text-log pattern as
//! `consumer_kill.rs`): `E <seq>` after each enqueue returns, `A <item>`
//! after each ack returns (one log per consumer per group), `H <item>`
//! after deciding to hold a lease forever.

use durable_queues::testkit::subprocess::{
    kill_and_reap, read_unique_acks, scratch_dir, wait_for_lines, AckLog as TextLog, ChildProc,
};
use durable_queues::{DurableMsQueue, QueueConfig};
use lease::{create_grouped_dir, open_grouped_dir, GroupDirConfig, Redelivery};
use pmem::PoolConfig;
use shard::{RecoveryOrchestrator, RoutePolicy, ShardConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;
use store::{FileConfig, SyncPolicy};

const ENV_DIR: &str = "LEASE_GROUP_KILL_CHILD_DIR";
const ENV_SYNC: &str = "LEASE_GROUP_KILL_CHILD_SYNC";
const SHARDS: usize = 2;
/// Competing consumers in the alpha group (the kill strands all of them).
const ALPHA_CONSUMERS: usize = 3;
/// The item alpha nacks past its budget (outside the producer's 1.. range).
const POISON: u64 = u64::MAX - 1;

fn shard_config() -> ShardConfig {
    ShardConfig {
        shards: SHARDS,
        queue: QueueConfig::small_test(),
        pool: PoolConfig::test_with_size(16 << 20),
        policy: RoutePolicy::RoundRobin,
    }
}

fn group_config(sync: SyncPolicy) -> GroupDirConfig {
    GroupDirConfig {
        // Long enough that nothing expires during the test: redelivery
        // must come from the crash, not from timeouts.
        lease_timeout: Duration::from_secs(300),
        max_deliveries: 3,
        sync,
        // Small segments so the kill lands with rotations (and usually
        // retirements) behind it — the crash matrix covers the rotating
        // log, not just segment 0.
        rotate_records: 512,
        ..GroupDirConfig::new(["alpha", "beta"])
    }
}

fn parse_sync(key: &str) -> SyncPolicy {
    match key {
        "powerfail" => SyncPolicy::PowerFail,
        _ => SyncPolicy::ProcessCrash,
    }
}

// ---------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------

/// Hidden child entry point (no-op unless re-executed with the env vars).
#[test]
fn lease_group_kill_child_entry() {
    let Ok(dir) = std::env::var(ENV_DIR) else {
        return;
    };
    let sync = parse_sync(&std::env::var(ENV_SYNC).unwrap_or_default());
    run_child(Path::new(&dir), sync);
}

fn run_child(dir: &Path, sync: SyncPolicy) {
    let orch = RecoveryOrchestrator::new(SHARDS);
    let queue = create_grouped_dir::<DurableMsQueue>(
        &orch,
        dir,
        shard_config(),
        FileConfig::with_size(16 << 20),
        &group_config(sync),
    )
    .expect("child: create grouped dir");
    let alpha = queue.group("alpha").expect("child: alpha handle");
    let beta = queue.group("beta").expect("child: beta handle");

    // Poison dance, before any other traffic: alpha nacks one item past
    // its budget so the kill always finds it in *alpha's* dead-letter
    // queue; beta acks its own copy of the same item.
    queue.enqueue(0, POISON);
    loop {
        let l = alpha.dequeue(1).expect("child: poison visible in alpha");
        assert_eq!(l.item, POISON);
        match alpha.nack(1, &l).expect("child: nack poison") {
            Redelivery::Requeued { .. } => continue,
            Redelivery::DeadLettered => break,
        }
    }
    let lb = beta.dequeue(1).expect("child: poison visible in beta");
    assert_eq!(lb.item, POISON);
    beta.ack(&lb).expect("child: beta acks poison");

    let mut enq_log = TextLog::create(dir.join("enq.log"));
    std::thread::scope(|scope| {
        let q = &queue;
        scope.spawn(move || {
            // Bounded so the 16 MiB shard pools can never exhaust while the
            // (fsync-throttled) consumers lag; the consumer threads still
            // run forever, so the kill always lands mid-consumption.
            for seq in 1..=20_000u64 {
                q.enqueue(0, seq);
                enq_log.record("E", seq);
            }
        });
        // Alpha: competing consumers that hold some leases forever and
        // nack others once, so the kill strands live leases and the log
        // carries redelivery traffic.
        for c in 0..ALPHA_CONSUMERS {
            let alpha = alpha.clone();
            let mut ack_log = TextLog::create(dir.join(format!("acks-alpha-{c}.log")));
            let mut held_log = TextLog::create(dir.join(format!("held-alpha-{c}.log")));
            scope.spawn(move || loop {
                let Some(l) = alpha.dequeue(1 + c) else {
                    continue;
                };
                if l.item % 7 == 0 && l.delivery_count == 1 {
                    held_log.record("H", l.item);
                } else if l.item % 11 == 3 && l.delivery_count == 1 {
                    alpha.nack(1 + c, &l).expect("child: alpha nack");
                } else {
                    alpha.ack(&l).expect("child: alpha ack");
                    ack_log.record("A", l.item);
                }
            });
        }
        // Beta: a plain consumer acking everything — the control group the
        // kill must not disturb.
        let beta = beta.clone();
        let mut ack_log = TextLog::create(dir.join("acks-beta.log"));
        scope.spawn(move || loop {
            let Some(l) = beta.dequeue(0) else { continue };
            beta.ack(&l).expect("child: beta ack");
            ack_log.record("A", l.item);
        });
    });
}

// ---------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------

/// Drains a group with `consumers` competing threads, asserting no item is
/// delivered twice within the group; returns `item -> delivery_count`.
fn competing_drain(
    handle: &lease::ConsumerGroup<shard::ShardedQueue<DurableMsQueue>>,
    consumers: usize,
) -> BTreeMap<u64, u32> {
    let seen = Mutex::new(BTreeMap::new());
    std::thread::scope(|scope| {
        for c in 0..consumers {
            let handle = handle.clone();
            let seen = &seen;
            scope.spawn(move || {
                while let Some(l) = handle.dequeue(c) {
                    let prior = seen.lock().unwrap().insert(l.item, l.delivery_count);
                    assert!(
                        prior.is_none(),
                        "item {} delivered twice within {} after recovery",
                        l.item,
                        handle.name()
                    );
                    handle.ack(&l).unwrap();
                }
            });
        }
    });
    seen.into_inner().unwrap()
}

fn kill_round(sync_key: &str, min_acks: usize) {
    let sync = parse_sync(sync_key);
    let dir = scratch_dir(&format!("lease-group-kill-{sync_key}"));

    let mut child = ChildProc::new("lease_group_kill_child_entry")
        .env(ENV_DIR, &dir)
        .env(ENV_SYNC, sync_key)
        .spawn();
    // Both groups must have real confirmed traffic before the kill. The
    // alpha minimum is summed across its competing consumers, polled on
    // consumer 0's log (the scheduler spreads grants, so one log reaching
    // its share means the group is moving).
    wait_for_lines(
        &mut child,
        &dir.join("acks-alpha-0.log"),
        min_acks / ALPHA_CONSUMERS,
        Duration::from_secs(120),
    );
    wait_for_lines(
        &mut child,
        &dir.join("acks-beta.log"),
        min_acks,
        Duration::from_secs(120),
    );
    kill_and_reap(&mut child);

    // A fresh "process": reopen the deployment from the directory alone.
    let orch = RecoveryOrchestrator::new(SHARDS);
    let (queue, report, manifest) = open_grouped_dir::<DurableMsQueue>(
        &orch,
        &dir,
        QueueConfig::small_test(),
        &group_config(sync),
        None,
    )
    .expect("recover grouped dir");
    assert_eq!(manifest.shards(), SHARDS);
    assert_eq!(report.groups.len(), 2);
    let alpha_rec = &report.groups[0];
    let beta_rec = &report.groups[1];
    assert_eq!(alpha_rec.name, "alpha");
    assert_eq!(beta_rec.name, "beta");

    let enq = read_unique_acks(&dir.join("enq.log"), "E");
    let mut alpha_acked = BTreeSet::new();
    let mut held = BTreeSet::new();
    for c in 0..ALPHA_CONSUMERS {
        alpha_acked.extend(read_unique_acks(
            &dir.join(format!("acks-alpha-{c}.log")),
            "A",
        ));
        held.extend(read_unique_acks(
            &dir.join(format!("held-alpha-{c}.log")),
            "H",
        ));
    }
    let beta_acked = read_unique_acks(&dir.join("acks-beta.log"), "A");
    assert!(
        alpha_acked.len() + beta_acked.len() >= min_acks,
        "kill landed before real traffic"
    );
    assert!(!held.is_empty(), "kill stranded no live leases in alpha");

    // Surviving competing consumers drain alpha; every deliberately-held
    // lease comes back exactly once, second attempt.
    let alpha = queue.group("alpha").expect("alpha handle");
    let alpha_seen = competing_drain(&alpha, 2);
    for &h in &held {
        assert_eq!(
            alpha_seen.get(&h),
            Some(&2),
            "held item {h} not redelivered to alpha with delivery_count 2"
        );
    }
    // No ack alpha confirmed is ever redelivered to alpha.
    let resurrected: Vec<u64> = alpha_acked
        .iter()
        .filter(|v| alpha_seen.contains_key(v))
        .copied()
        .collect();
    assert!(
        resurrected.is_empty(),
        "alpha resurrected acks: {resurrected:?}"
    );

    // The second group is unaffected: its confirmed acks stay settled, and
    // alpha's kill damage (held leases, nacks, poison) never leaks in.
    let beta = queue.group("beta").expect("beta handle");
    let beta_seen = competing_drain(&beta, 2);
    let resurrected: Vec<u64> = beta_acked
        .iter()
        .filter(|v| beta_seen.contains_key(v))
        .copied()
        .collect();
    assert!(
        resurrected.is_empty(),
        "beta resurrected acks: {resurrected:?}"
    );
    assert!(
        !beta_seen.contains_key(&POISON),
        "alpha's dead-lettered poison resurfaced in beta"
    );

    // Per group: every confirmed enqueue surfaces (acked before the kill
    // or drained after), minus a bounded slack — one in-transit fan-out
    // item, plus one item *per consumer* whose durable ack landed but
    // whose confirmation line the kill swallowed (those are settled, so
    // they appear in neither set). Nothing materialises out of thin air
    // (≤ 1 enqueue whose confirmation line the kill swallowed).
    for (name, consumers, acked, seen) in [
        ("alpha", ALPHA_CONSUMERS, &alpha_acked, &alpha_seen),
        ("beta", 1, &beta_acked, &beta_seen),
    ] {
        let missing: Vec<u64> = enq
            .iter()
            .filter(|v| !acked.contains(v) && !seen.contains_key(v))
            .copied()
            .collect();
        assert!(
            missing.len() <= consumers + 1,
            "{name}: confirmed items lost: {missing:?}"
        );
        let extras: Vec<u64> = seen
            .keys()
            .filter(|v| **v != POISON && !enq.contains(v))
            .copied()
            .collect();
        assert!(extras.len() <= 1, "{name}: unconfirmed extras: {extras:?}");
    }

    // The poison item (and only it) sits in alpha's dead-letter queue;
    // beta's is empty. Recovery itself dead-lettered nothing (no lease was
    // past budget at the kill).
    assert_eq!(
        alpha_rec.dead_lettered, 0,
        "recovery dead-lettered in alpha"
    );
    assert_eq!(beta_rec.dead_lettered, 0, "recovery dead-lettered in beta");
    let dead: Vec<u64> =
        std::iter::from_fn(|| queue.dlq("alpha").expect("alpha DLQ").dequeue(0)).collect();
    assert_eq!(dead, vec![POISON], "alpha dead-letter queue contents");
    assert!(
        queue.dlq("beta").expect("beta DLQ").dequeue(0).is_none(),
        "beta's dead-letter queue is not empty"
    );

    eprintln!(
        "[{sync_key}] confirmed: {} enqueued, {}+{} acked, {} held; alpha recovered {} \
         redelivered over {} segment(s); beta {} redelivered ({})",
        enq.len(),
        alpha_acked.len(),
        beta_acked.len(),
        held.len(),
        alpha_rec.redelivered,
        alpha_rec.segments,
        beta_rec.redelivered,
        report.summary(),
    );

    // The recovered deployment serves fresh grouped traffic to both groups.
    queue.enqueue(2, u64::MAX);
    for handle in [&alpha, &beta] {
        let l = handle.dequeue(2).expect("post-recovery grant");
        assert_eq!((l.item, l.delivery_count), (u64::MAX, 1));
        handle.ack(&l).unwrap();
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_group_consumers_redeliver_exactly_once_process_crash_tier() {
    kill_round("processcrash", 300);
}

#[test]
fn killed_group_consumers_redeliver_exactly_once_power_fail_tier() {
    kill_round("powerfail", 150);
}
