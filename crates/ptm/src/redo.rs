//! A redo-log persistent transactional memory.
//!
//! This is the substitution substrate for the paper's PTM baselines (see
//! DESIGN.md §2): `OneFileQ` and `RedoOptQ` in the paper wrap a sequential
//! queue in the OneFile wait-free PTM and the RedoOpt universal construction
//! respectively. Re-implementing those systems in full is out of scope for a
//! queue reproduction; what the comparison needs is their *cost model* — a
//! transaction must make its write set durable in a redo log before applying
//! it, which adds logging flushes, fences and post-flush accesses to every
//! queue operation. This module provides exactly that, with two flush
//! policies:
//!
//! * [`FlushPolicy::EagerPerWord`] (`OneFileLite`): every log entry is
//!   flushed and fenced as it is written, modelling eager per-store
//!   persistence.
//! * [`FlushPolicy::BatchedCommit`] (`RedoOptLite`): log entries are flushed
//!   together and a single fence precedes the commit record, modelling the
//!   optimised redo designs.
//!
//! Transactions are serialised by a global lock, which departs from
//! OneFile's wait-freedom; the paper's observation that PTM-wrapped queues
//! trail the ad-hoc durable queues is about per-operation persistence
//! overhead, which this engine reproduces faithfully.
//!
//! ## Commit protocol
//!
//! 1. The transaction buffers its writes (redo semantics: reads consult the
//!    write set first).
//! 2. Commit writes the (offset, value) pairs to the persistent log region
//!    and persists them (policy-dependent).
//! 3. The log *status word* is set to the number of entries and persisted —
//!    this is the commit point.
//! 4. The writes are applied in place, persisted, and the status word is
//!    cleared and persisted.
//!
//! Recovery replays a committed log (status word non-zero) or discards an
//! uncommitted one, then clears it.

use parking_lot::Mutex;
use pmem::layout::QUEUE_ROOT;
use pmem::PmemPool;
use std::collections::HashMap;
use std::sync::Arc;

/// How the redo log is persisted at commit time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush + fence after every log entry (`OneFileLite`).
    EagerPerWord,
    /// Flush all entries, then one fence before the commit record
    /// (`RedoOptLite`).
    BatchedCommit,
}

/// Root-block offsets owned by the PTM engine (they do not collide with the
/// head/tail/meta lines used by the ad-hoc queues, but a pool hosts either a
/// PTM queue or an ad-hoc queue, never both).
const ROOT_LOG_STATUS: u32 = QUEUE_ROOT + 6 * 64;
const ROOT_LOG_AREA: u32 = QUEUE_ROOT + 7 * 64;

/// Maximum number of (offset, value) entries a single transaction may write.
pub const MAX_TX_WRITES: usize = 64;

/// The redo-log PTM engine. See the [module docs](self).
pub struct Ptm {
    pool: Arc<PmemPool>,
    policy: FlushPolicy,
    /// Global writer lock serialising transactions.
    lock: Mutex<()>,
    /// Pool offset of the log entry area.
    log_area: u32,
}

impl Ptm {
    /// Creates a fresh engine on a fresh pool, allocating and publishing its
    /// persistent log area.
    pub fn new(pool: Arc<PmemPool>, policy: FlushPolicy) -> Self {
        let log_area = pool.alloc_raw((MAX_TX_WRITES as u32) * 16, 64);
        pool.zero_range(log_area, (MAX_TX_WRITES as u32) * 16);
        pool.store_u64(ROOT_LOG_STATUS, 0);
        pool.store_u64(ROOT_LOG_AREA, log_area as u64);
        pool.flush_range(0, log_area, (MAX_TX_WRITES as u32) * 16);
        pool.flush(0, ROOT_LOG_STATUS);
        pool.flush(0, ROOT_LOG_AREA);
        pool.sfence(0);
        Ptm {
            pool,
            policy,
            lock: Mutex::new(()),
            log_area,
        }
    }

    /// Re-creates the engine after a crash: replays a committed log, discards
    /// an uncommitted one.
    pub fn recover(pool: Arc<PmemPool>, policy: FlushPolicy) -> Self {
        let log_area = pool.load_u64(ROOT_LOG_AREA) as u32;
        let committed = pool.load_u64(ROOT_LOG_STATUS);
        if committed > 0 {
            for i in 0..committed.min(MAX_TX_WRITES as u64) as u32 {
                let off = pool.load_u64(log_area + i * 16) as u32;
                let val = pool.load_u64(log_area + i * 16 + 8);
                pool.store_u64(off, val);
                pool.flush(0, off);
            }
            pool.store_u64(ROOT_LOG_STATUS, 0);
            pool.flush(0, ROOT_LOG_STATUS);
            pool.sfence(0);
        }
        Ptm {
            pool,
            policy,
            lock: Mutex::new(()),
            log_area,
        }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// The flush policy in force.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Runs `body` as a durable transaction on behalf of thread `tid` and
    /// returns its result. The transaction's writes become durable atomically
    /// (all or nothing with respect to crashes).
    pub fn run<R>(&self, tid: usize, body: impl FnOnce(&mut Tx<'_>) -> R) -> R {
        let _guard = self.lock.lock();
        let mut tx = Tx {
            pool: &self.pool,
            writes: Vec::new(),
            index: HashMap::new(),
        };
        let result = body(&mut tx);
        self.commit(tid, &tx.writes);
        result
    }

    fn commit(&self, tid: usize, writes: &[(u32, u64)]) {
        if writes.is_empty() {
            return;
        }
        assert!(
            writes.len() <= MAX_TX_WRITES,
            "transaction write set too large"
        );
        let p = &self.pool;
        // 1. Persist the redo log.
        for (i, &(off, val)) in writes.iter().enumerate() {
            let e = self.log_area + (i as u32) * 16;
            p.store_u64(e, off as u64);
            p.store_u64(e + 8, val);
            if self.policy == FlushPolicy::EagerPerWord {
                p.flush(tid, e);
                p.sfence(tid);
            }
        }
        if self.policy == FlushPolicy::BatchedCommit {
            p.flush_range(tid, self.log_area, (writes.len() as u32) * 16);
            p.sfence(tid);
        }
        // 2. Commit point: persist the status word.
        p.store_u64(ROOT_LOG_STATUS, writes.len() as u64);
        p.flush(tid, ROOT_LOG_STATUS);
        p.sfence(tid);
        // 3. Apply in place and persist the home locations.
        for &(off, val) in writes {
            p.store_u64(off, val);
            p.flush(tid, off);
        }
        p.sfence(tid);
        // 4. Retire the log.
        p.store_u64(ROOT_LOG_STATUS, 0);
        p.flush(tid, ROOT_LOG_STATUS);
        p.sfence(tid);
    }
}

/// An in-flight transaction: a redo write set over the pool.
pub struct Tx<'a> {
    pool: &'a PmemPool,
    writes: Vec<(u32, u64)>,
    index: HashMap<u32, usize>,
}

impl Tx<'_> {
    /// Transactionally reads the 64-bit word at `off` (observing this
    /// transaction's own earlier writes).
    pub fn read(&self, off: u32) -> u64 {
        if let Some(&i) = self.index.get(&off) {
            self.writes[i].1
        } else {
            self.pool.load_u64(off)
        }
    }

    /// Transactionally writes `val` to the 64-bit word at `off`.
    pub fn write(&mut self, off: u32, val: u64) {
        if let Some(&i) = self.index.get(&off) {
            self.writes[i].1 = val;
        } else {
            self.index.insert(off, self.writes.len());
            self.writes.push((off, val));
        }
    }

    /// Number of distinct words written so far.
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolConfig;

    fn setup(policy: FlushPolicy) -> (Arc<PmemPool>, Ptm, u32) {
        let pool = Arc::new(PmemPool::new(PoolConfig::small_test()));
        let data = pool.alloc_raw(1024, 64);
        pool.zero_range(data, 1024);
        let ptm = Ptm::new(Arc::clone(&pool), policy);
        (pool, ptm, data)
    }

    #[test]
    fn committed_transaction_is_durable() {
        for policy in [FlushPolicy::EagerPerWord, FlushPolicy::BatchedCommit] {
            let (pool, ptm, data) = setup(policy);
            ptm.run(0, |tx| {
                tx.write(data, 11);
                tx.write(data + 8, 22);
            });
            assert_eq!(pool.load_u64(data), 11);
            let recovered = pool.simulate_crash();
            assert_eq!(recovered.load_u64(data), 11);
            assert_eq!(recovered.load_u64(data + 8), 22);
        }
    }

    #[test]
    fn reads_observe_own_writes_and_old_state() {
        let (_pool, ptm, data) = setup(FlushPolicy::BatchedCommit);
        ptm.run(0, |tx| {
            assert_eq!(tx.read(data), 0);
            tx.write(data, 5);
            assert_eq!(tx.read(data), 5);
            tx.write(data, 6);
            assert_eq!(tx.read(data), 6);
            assert_eq!(tx.write_set_len(), 1);
        });
        ptm.run(0, |tx| assert_eq!(tx.read(data), 6));
    }

    #[test]
    fn read_only_transaction_issues_no_persists() {
        let (pool, ptm, data) = setup(FlushPolicy::BatchedCommit);
        pool.reset_stats();
        let v = ptm.run(0, |tx| tx.read(data));
        assert_eq!(v, 0);
        assert_eq!(pool.stats().fences, 0);
        assert_eq!(pool.stats().flushes, 0);
    }

    #[test]
    fn committed_log_is_replayed_by_recovery() {
        // Simulate a crash after the commit record persisted but before the
        // home locations were written back, by building the log by hand.
        let (pool, ptm, data) = setup(FlushPolicy::BatchedCommit);
        let _ = &ptm;
        let log_area = pool.load_u64(ROOT_LOG_AREA) as u32;
        pool.store_u64(log_area, data as u64);
        pool.store_u64(log_area + 8, 77);
        pool.flush(0, log_area);
        pool.store_u64(ROOT_LOG_STATUS, 1);
        pool.flush(0, ROOT_LOG_STATUS);
        pool.sfence(0);
        let recovered_pool = Arc::new(pool.simulate_crash());
        assert_eq!(
            recovered_pool.load_u64(data),
            0,
            "home location must still be old"
        );
        let _recovered = Ptm::recover(Arc::clone(&recovered_pool), FlushPolicy::BatchedCommit);
        assert_eq!(
            recovered_pool.load_u64(data),
            77,
            "committed log was not replayed"
        );
        assert_eq!(recovered_pool.load_u64(ROOT_LOG_STATUS), 0);
    }

    #[test]
    fn uncommitted_log_is_discarded_by_recovery() {
        let (pool, ptm, data) = setup(FlushPolicy::BatchedCommit);
        let _ = &ptm;
        let log_area = pool.load_u64(ROOT_LOG_AREA) as u32;
        // Entries persisted but no commit record.
        pool.store_u64(log_area, data as u64);
        pool.store_u64(log_area + 8, 99);
        pool.flush(0, log_area);
        pool.sfence(0);
        let recovered_pool = Arc::new(pool.simulate_crash());
        let _recovered = Ptm::recover(Arc::clone(&recovered_pool), FlushPolicy::BatchedCommit);
        assert_eq!(
            recovered_pool.load_u64(data),
            0,
            "uncommitted log must not be replayed"
        );
    }

    #[test]
    fn eager_policy_fences_more_than_batched() {
        let mut fences = Vec::new();
        for policy in [FlushPolicy::EagerPerWord, FlushPolicy::BatchedCommit] {
            let (pool, ptm, data) = setup(policy);
            pool.reset_stats();
            ptm.run(0, |tx| {
                for i in 0..8u32 {
                    tx.write(data + i * 8, i as u64);
                }
            });
            fences.push(pool.stats().fences);
        }
        assert!(
            fences[0] > fences[1],
            "eager {} vs batched {}",
            fences[0],
            fences[1]
        );
    }
}
