//! Sequential FIFO queues wrapped in the redo-log PTM — the `OneFileLite`
//! and `RedoOptLite` baselines.
//!
//! The queue itself is a textbook singly-linked queue with a dummy node; all
//! of its state (head, tail, node pool bump index, free list) lives in
//! persistent memory and every operation is one PTM transaction, so
//! durability and crash atomicity come entirely from the PTM — at the cost
//! of redo logging on every operation, which is exactly the overhead the
//! paper's evaluation attributes to the transactional baselines.

use crate::redo::{FlushPolicy, Ptm, Tx};
use durable_queues::root::{ROOT_HEAD, ROOT_TAIL};
use durable_queues::{DurableQueue, KeyedQueue, QueueConfig, RecoverableQueue};
use pmem::layout::QUEUE_ROOT;
use pmem::PmemPool;
use std::sync::Arc;

// Same instrument names as the `durable_queues` implementations: the obs
// registry merges same-named statics, so `core.enqueue`/`core.dequeue`
// aggregate over every algorithm regardless of crate.
static ENQUEUES: obs::LazyCounter = obs::LazyCounter::new("core.enqueue");
static DEQUEUES: obs::LazyCounter = obs::LazyCounter::new("core.dequeue");

/// Node field offsets.
const ITEM: u32 = 0;
const NEXT: u32 = 8;

/// Root-block words owned by the PTM queue (distinct lines from the PTM
/// engine's log words and from the head/tail lines).
const ROOT_FREE_LIST: u32 = QUEUE_ROOT + 3 * 64;
const ROOT_NEXT_ALLOC: u32 = QUEUE_ROOT + 4 * 64;
const ROOT_REGION: u32 = QUEUE_ROOT + 5 * 64;
const ROOT_CAPACITY: u32 = QUEUE_ROOT + 5 * 64 + 8;

/// A sequential queue wrapped in the redo-log PTM. `EAGER = true` flushes and
/// fences every log entry (`OneFileLite`); `EAGER = false` batches them
/// (`RedoOptLite`).
pub struct PtmQueue<const EAGER: bool> {
    ptm: Ptm,
    pool: Arc<PmemPool>,
    config: QueueConfig,
}

/// PTM-wrapped queue with eager per-entry log persistence (stands in for the
/// paper's `OneFileQ`).
pub type OneFileLiteQueue = PtmQueue<true>;

/// PTM-wrapped queue with batched commit-time log persistence (stands in for
/// the paper's `RedoOptQ`).
pub type RedoOptLiteQueue = PtmQueue<false>;

impl<const EAGER: bool> PtmQueue<EAGER> {
    fn policy() -> FlushPolicy {
        if EAGER {
            FlushPolicy::EagerPerWord
        } else {
            FlushPolicy::BatchedCommit
        }
    }

    /// Number of node slots in the persistent node region.
    fn capacity_nodes(config: &QueueConfig) -> u32 {
        ((config.area_size / 64) * 4).max(4096)
    }

    /// Transactionally allocates a node slot.
    fn tx_alloc(tx: &mut Tx<'_>) -> u32 {
        let free = tx.read(ROOT_FREE_LIST);
        if free != 0 {
            let next_free = tx.read(free as u32 + NEXT);
            tx.write(ROOT_FREE_LIST, next_free);
            return free as u32;
        }
        let region = tx.read(ROOT_REGION) as u32;
        let capacity = tx.read(ROOT_CAPACITY);
        let idx = tx.read(ROOT_NEXT_ALLOC);
        assert!(
            idx < capacity,
            "PTM queue node region exhausted ({capacity} nodes)"
        );
        tx.write(ROOT_NEXT_ALLOC, idx + 1);
        region + (idx as u32) * 64
    }

    /// Transactionally pushes a node slot onto the free list.
    fn tx_free(tx: &mut Tx<'_>, node: u32) {
        let free = tx.read(ROOT_FREE_LIST);
        tx.write(node + NEXT, free);
        tx.write(ROOT_FREE_LIST, node as u64);
    }
}

impl<const EAGER: bool> DurableQueue for PtmQueue<EAGER> {
    fn enqueue(&self, tid: usize, item: u64) {
        ENQUEUES.incr();
        self.ptm.run(tid, |tx| {
            let node = Self::tx_alloc(tx);
            tx.write(node + ITEM, item);
            tx.write(node + NEXT, 0);
            let tail = tx.read(ROOT_TAIL) as u32;
            tx.write(tail + NEXT, node as u64);
            tx.write(ROOT_TAIL, node as u64);
        });
    }

    fn dequeue(&self, tid: usize) -> Option<u64> {
        DEQUEUES.incr();
        self.ptm.run(tid, |tx| {
            let head = tx.read(ROOT_HEAD) as u32;
            let next = tx.read(head + NEXT);
            if next == 0 {
                return None;
            }
            let next = next as u32;
            let item = tx.read(next + ITEM);
            tx.write(ROOT_HEAD, next as u64);
            Self::tx_free(tx, head);
            Some(item)
        })
    }

    fn name(&self) -> &'static str {
        if EAGER {
            "OneFileLiteQ"
        } else {
            "RedoOptLiteQ"
        }
    }

    fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    fn config(&self) -> QueueConfig {
        self.config
    }
}

impl<const EAGER: bool> KeyedQueue for PtmQueue<EAGER> {}

impl<const EAGER: bool> RecoverableQueue for PtmQueue<EAGER> {
    fn create(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        let ptm = Ptm::new(Arc::clone(&pool), Self::policy());
        let capacity = Self::capacity_nodes(&config);
        let region = pool.alloc_raw(capacity * 64, 64);
        pool.zero_range(region, capacity * 64);
        pool.flush_range(0, region, capacity * 64);
        // Slot 0 is the initial dummy node.
        pool.store_u64(ROOT_HEAD, region as u64);
        pool.store_u64(ROOT_TAIL, region as u64);
        pool.store_u64(ROOT_FREE_LIST, 0);
        pool.store_u64(ROOT_NEXT_ALLOC, 1);
        pool.store_u64(ROOT_REGION, region as u64);
        pool.store_u64(ROOT_CAPACITY, capacity as u64);
        for off in [
            ROOT_HEAD,
            ROOT_TAIL,
            ROOT_FREE_LIST,
            ROOT_NEXT_ALLOC,
            ROOT_REGION,
        ] {
            pool.flush(0, off);
        }
        pool.sfence(0);
        PtmQueue { ptm, pool, config }
    }

    fn recover(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        // The PTM replays or discards the redo log; afterwards every root
        // word and node is in a transaction-consistent state and the queue
        // needs no recovery logic of its own.
        let ptm = Ptm::recover(Arc::clone(&pool), Self::policy());
        let region = pool.load_u64(ROOT_REGION) as u32;
        let capacity = pool.load_u64(ROOT_CAPACITY) as u32;
        pool.set_watermark(region + capacity * 64);
        PtmQueue { ptm, pool, config }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durable_queues::testkit;

    #[test]
    fn sequential_fifo_both_policies() {
        testkit::check_sequential_fifo::<OneFileLiteQueue>();
        testkit::check_sequential_fifo::<RedoOptLiteQueue>();
    }

    #[test]
    fn interleaved_matches_model() {
        testkit::check_against_model::<OneFileLiteQueue>(0xF1);
        testkit::check_against_model::<RedoOptLiteQueue>(0xF2);
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        testkit::check_concurrent_integrity::<OneFileLiteQueue>(4, 150);
        testkit::check_concurrent_integrity::<RedoOptLiteQueue>(4, 150);
    }

    #[test]
    fn recovery_preserves_completed_operations() {
        testkit::check_recovery_preserves_completed_ops::<OneFileLiteQueue>(80, 30);
        testkit::check_recovery_preserves_completed_ops::<RedoOptLiteQueue>(80, 30);
    }

    #[test]
    fn recovery_of_emptied_queue_is_empty() {
        testkit::check_recovery_of_emptied_queue::<RedoOptLiteQueue>();
    }

    #[test]
    fn repeated_crashes_keep_surviving_state() {
        testkit::check_repeated_crashes::<RedoOptLiteQueue>(4, 30);
    }

    #[test]
    fn crash_under_concurrency_is_durably_linearizable() {
        testkit::check_crash_during_concurrent_ops::<OneFileLiteQueue>(3, 120, 0xF3F3);
        testkit::check_crash_during_concurrent_ops::<RedoOptLiteQueue>(3, 120, 0xF4F4);
    }

    #[test]
    fn transactions_cost_more_persists_than_the_tailored_queues() {
        let onefile = testkit::persist_counts::<OneFileLiteQueue>(300);
        let redoopt = testkit::persist_counts::<RedoOptLiteQueue>(300);
        // Every operation pays at least the commit-record fence, the apply
        // fence and the log-retire fence.
        assert!(
            redoopt.enqueue.fences >= 3.0,
            "RedoOptLite enqueue fences {}",
            redoopt.enqueue.fences
        );
        assert!(onefile.enqueue.fences > redoopt.enqueue.fences);
        // The recycled log lines are flushed and rewritten every transaction.
        assert!(redoopt.total.post_flush_accesses > 1.0);
    }
}
