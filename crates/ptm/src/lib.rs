//! # ptm — redo-log persistent transactional memory baselines
//!
//! The paper's evaluation includes two queues obtained by wrapping a
//! sequential queue in a persistent transactional memory: `OneFileQ`
//! (OneFile, a wait-free PTM) and `RedoOptQ` (the RedoOpt universal
//! construction). This crate provides the substitution described in
//! DESIGN.md: a [`redo::Ptm`] engine with a redo log and two flush policies,
//! and [`queue::PtmQueue`] — a sequential linked queue whose every operation
//! is one durable transaction. The resulting [`OneFileLiteQueue`] and
//! [`RedoOptLiteQueue`] reproduce the property the comparison relies on:
//! per-operation logging overhead (extra flushes, fences and accesses to
//! flushed log lines) that the ad-hoc durable queues do not pay.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod queue;
pub mod redo;

pub use queue::{OneFileLiteQueue, PtmQueue, RedoOptLiteQueue};
pub use redo::{FlushPolicy, Ptm, Tx};
