//! Observability for the durable-queue stack: lock-free metrics, exporters,
//! and a crash-surviving flight recorder.
//!
//! Three parts, all dependency-free (this crate sits at the bottom of the
//! workspace DAG — everything else links against it):
//!
//! * [`metrics`] — a process-global registry of cache-padded, per-thread
//!   striped counters and log₂-bucketed latency histograms. Instruments are
//!   declared as `static` [`LazyCounter`]/[`LazyHistogram`]s named like
//!   `"lease.grant"`; two statics with the same name share one instrument.
//!   Snapshots merge with `Add`/`Sub`, like `pmem::StatsSnapshot`. The whole
//!   layer is gated behind the default-on `instrument` feature: with it off,
//!   every method body is empty and the hot paths compile to nothing (the
//!   [`disabled`] module exposes always-no-op mirrors so a single bench
//!   binary can measure both).
//! * [`flight`] — an mmap'd ring of fixed-size CRC'd event records
//!   (`BLACKBOX.ring`) that survives SIGKILL via the page cache; after a
//!   crash, [`flight::replay`] reconstructs the last *capacity* lifecycle
//!   events (growth commits, reshard intent/commit, lease settlements,
//!   recovery phases).
//! * [`export`] — Prometheus text exposition and JSON rendering of a
//!   [`MetricsSnapshot`].

pub mod crc;
pub mod export;
pub mod flight;
pub mod metrics;

pub use metrics::{
    snapshot, Counter, Histogram, HistogramSnapshot, LazyCounter, LazyHistogram, MetricsSnapshot,
    Timer,
};

/// Always-compiled no-op mirrors of the metric types, for benchmarking the
/// disabled-instrumentation cost without a separate feature-flagged build.
pub mod disabled;

/// The shared wall clock: flight-recorder timestamps and recovery phase
/// spans both read it, so a `blackbox` dump lines up with a
/// `RecoveryReport`.
pub mod clock {
    use std::time::{SystemTime, UNIX_EPOCH};

    /// Nanoseconds since the Unix epoch (0 if the system clock is before
    /// it, which only a badly misconfigured host produces).
    pub fn wall_ns() -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    }
}
