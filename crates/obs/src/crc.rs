//! CRC-32 (IEEE 802.3, the `crc32` of zlib/PNG/gzip) for flight-recorder
//! ring headers and records.
//!
//! A copy of `store::crc` rather than a dependency: obs sits *below* store
//! in the workspace DAG (store instruments its hot paths with obs), so the
//! two crates each carry this 40-line table. The formats they protect are
//! unrelated files; the duplication cannot drift into an incompatibility.

/// The reflected polynomial of CRC-32/IEEE.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }
}
