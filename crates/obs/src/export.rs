//! Rendering a [`MetricsSnapshot`] for the outside world: Prometheus text
//! exposition (`harness metrics`) and a compact JSON object (embedded in
//! every harness verb's `--json` output).

use crate::metrics::{Histogram, HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write;

/// Mangles a dotted instrument name into a Prometheus metric name:
/// `store.msync_ns` → `dq_store_msync_ns`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("dq_");
    for ch in name.chars() {
        out.push(match ch {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' => ch,
            _ => '_',
        });
    }
    out
}

/// Prometheus text exposition (version 0.0.4) of a snapshot: counters as
/// `<name>_total`, histograms as cumulative `_bucket{le=...}` series (up to
/// the highest non-empty bucket, closed by `+Inf`) plus `_sum`/`_count`.
pub fn prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p}_total counter");
        let _ = writeln!(out, "{p}_total {value}");
    }
    for (name, hist) in &snap.histograms {
        let p = prom_name(name);
        let _ = writeln!(out, "# TYPE {p} histogram");
        let last = hist
            .buckets
            .iter()
            .rposition(|&c| c != 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        let mut cumulative = 0u64;
        for (i, &c) in hist.buckets.iter().take(last).enumerate() {
            cumulative += c;
            // The unbounded last bucket has no bound; +Inf below covers it.
            if let Some(bound) = Histogram::bucket_bound(i) {
                let _ = writeln!(out, "{p}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
        }
        let count = hist.count();
        let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "{p}_sum {}", hist.sum);
        let _ = writeln!(out, "{p}_count {count}");
    }
    out
}

fn json_histogram(out: &mut String, hist: &HistogramSnapshot) {
    let _ = write!(
        out,
        "{{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": [",
        hist.count(),
        hist.sum,
        hist.mean(),
        hist.quantile(0.5),
        hist.quantile(0.99),
    );
    let mut first = true;
    for (i, &c) in hist.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "[{i}, {c}]");
    }
    out.push_str("]}");
}

/// A compact (single-line) JSON object for a snapshot:
/// `{"counters": {...}, "histograms": {name: {count, sum, mean, p50, p99,
/// buckets: [[index, count], ...]}}}`. Quantiles are bucket upper bounds
/// (`p99` is `u64::MAX` when the estimate lands in the unbounded bucket);
/// `buckets` lists only non-empty log₂ buckets. Instrument names contain
/// only `[a-z0-9._-]`, so no string escaping is needed.
pub fn json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\": {");
    let mut first = true;
    for (name, value) in &snap.counters {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "\"{name}\": {value}");
    }
    out.push_str("}, \"histograms\": {");
    first = true;
    for (name, hist) in &snap.histograms {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "\"{name}\": ");
        json_histogram(&mut out, hist);
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BUCKETS;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("core.enqueue".into(), 42);
        s.counters.insert("lease.grant".into(), 7);
        let mut h = HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            sum: 1000,
        };
        h.buckets[3] = 2; // two samples in [4, 7]
        h.buckets[10] = 1; // one in [512, 1023]
        s.histograms.insert("store.msync_ns".into(), h);
        s
    }

    #[test]
    fn prometheus_counters_and_histograms() {
        let text = prometheus(&sample());
        assert!(text.contains("# TYPE dq_core_enqueue_total counter"));
        assert!(text.contains("dq_core_enqueue_total 42"));
        assert!(text.contains("dq_lease_grant_total 7"));
        assert!(text.contains("# TYPE dq_store_msync_ns histogram"));
        // Cumulative: bucket 3 bound is 7 (2 samples), bucket 10 bound is
        // 1023 (all 3).
        assert!(text.contains("dq_store_msync_ns_bucket{le=\"7\"} 2"));
        assert!(text.contains("dq_store_msync_ns_bucket{le=\"1023\"} 3"));
        assert!(text.contains("dq_store_msync_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("dq_store_msync_ns_sum 1000"));
        assert!(text.contains("dq_store_msync_ns_count 3"));
        // Nothing past the highest non-empty bucket (bound 2047 = bucket 11).
        assert!(!text.contains("le=\"2047\""));
    }

    #[test]
    fn json_shape() {
        let j = json(&sample());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"core.enqueue\": 42"));
        assert!(j.contains("\"store.msync_ns\": {\"count\": 3, \"sum\": 1000"));
        assert!(j.contains("\"buckets\": [[3, 2], [10, 1]]"));
        assert!(!j.contains('\n'));
        // Balanced braces/brackets — the harness splices this into larger
        // documents.
        let opens = j.matches(['{', '[']).count();
        let closes = j.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_snapshot_renders() {
        let j = json(&MetricsSnapshot::default());
        assert_eq!(j, "{\"counters\": {}, \"histograms\": {}}");
        assert_eq!(prometheus(&MetricsSnapshot::default()), "");
    }
}
