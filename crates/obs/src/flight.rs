//! The flight recorder: a crash-surviving ring of lifecycle events.
//!
//! `BLACKBOX.ring` is an mmap'd file holding a fixed-size header plus
//! `capacity` fixed-size (64-byte) CRC'd event records. Writers stamp each
//! event with a monotonically increasing sequence number and store it at
//! slot `(seq − 1) % capacity`; the file therefore always holds the last
//! `capacity` events, and after a SIGKILL the parent (or an operator, via
//! `harness blackbox`) can [`replay`] it to reconstruct what the process
//! was doing when it died.
//!
//! Durability tier: **process crash**. Stores into a shared mapping land in
//! the OS page cache the moment they retire, so the ring survives SIGKILL
//! without any msync — the same guarantee the pool files give under the
//! default sync policy. (Power-fail durability would need an msync per
//! event, which a forensic aid does not justify; the events that matter for
//! correctness — growth commits, lease grants — are already in durable logs
//! of their own.)
//!
//! Torn-record handling follows `LEASES.log`: every record carries a CRC
//! over its payload, and [`replay`] simply drops slots that fail it (a kill
//! mid-store tears at most the records being written at that instant).
//! Unlike the ack log, *interior* CRC failures are also dropped rather than
//! refused — a lossy ring is forensics, not a source of truth, and a lapped
//! writer tearing an old slot must not render the whole ring unreadable.
//! The file itself is created tmp+rename+dir-fsync, like `SHARDS.manifest`,
//! so a crash during creation leaves either no ring or a whole one.
//!
//! ## On-disk format
//!
//! Header (64 bytes):
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 8    | magic `"DQBLKBX1"` |
//! | 8      | 4    | format version (1), little-endian u32 |
//! | 12     | 4    | capacity (slot count), LE u32 |
//! | 16     | 4    | record length (64), LE u32 |
//! | 20     | 4    | reserved (0) |
//! | 24     | 4    | CRC-32 of bytes [0, 24) |
//! | 28     | 36   | reserved (0) |
//!
//! Record `i` (64 bytes at offset `64 + i × 64`):
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 8    | sequence number (1-based; 0 = slot never written), LE u64 |
//! | 8      | 4    | event kind, LE u32 ([`EventKind`], unknown values preserved) |
//! | 12     | 4    | reserved (0) |
//! | 16     | 8    | operand `a`, LE u64 |
//! | 24     | 8    | operand `b`, LE u64 |
//! | 32     | 8    | wall-clock timestamp, ns since Unix epoch, LE u64 |
//! | 40     | 4    | CRC-32 of bytes [0, 40) |
//! | 44     | 20   | reserved (0) |

use crate::clock;
use crate::crc::crc32;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// File name of the ring, created next to `SHARDS.manifest`.
pub const RING_FILE: &str = "BLACKBOX.ring";

/// Default slot count for rings created by the harness.
pub const DEFAULT_CAPACITY: u32 = 1024;

const MAGIC: &[u8; 8] = b"DQBLKBX1";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 64;
const RECORD_LEN: usize = 64;
const RECORD_CRC_AT: usize = 40;

/// Lifecycle events the stack records. The `u32` wire values are part of
/// the on-disk format; never renumber.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum EventKind {
    /// A pool growth committed: `a` = new growth epoch, `b` = new length.
    PoolGrowthCommit = 1,
    /// A reshard intent was durably written: `a` = shards from, `b` = to.
    ReshardIntent = 2,
    /// A reshard committed (manifest rewritten): `a` = new shard count.
    ReshardCommit = 3,
    /// Recovery resolved an interrupted reshard: `a` = 1 if rolled
    /// forward, 0 if rolled back.
    ReshardResolved = 4,
    /// A lease was granted: `a` = lease id, `b` = item.
    LeaseGrant = 5,
    /// A lease was acked: `a` = lease id.
    LeaseAck = 6,
    /// A lease was nacked: `a` = lease id, `b` = next delivery count.
    LeaseNack = 7,
    /// A lease expired and was reaped: `a` = lease id, `b` = next
    /// delivery count.
    LeaseExpire = 8,
    /// An item was dead-lettered: `a` = lease id, `b` = item.
    LeaseDead = 9,
    /// The ack log compacted: `a` = live records kept.
    LeaseCompaction = 10,
    /// Recovery began: `a` = shard count.
    RecoveryStart = 11,
    /// A recovery phase finished: `a` = phase ordinal (1 = manifest
    /// resolution, 2 = shard replay, 3 = lease repair), `b` = wall ns.
    RecoveryPhase = 12,
    /// Recovery finished: `a` = shards recovered, `b` = wall ns.
    RecoveryDone = 13,
    /// An item was fanned out from the base queue to every consumer
    /// group's pending set: `a` = item, `b` = group count.
    LeaseDispatch = 14,
    /// A consumer group's ack log rotated to a fresh segment: `a` = new
    /// segment seq, `b` = live leases resident in the sealed segments.
    LeaseSegmentRotate = 15,
    /// A fully-settled ack-log segment was retired (unlinked): `a` =
    /// segment seq.
    LeaseSegmentRetire = 16,
    /// A file pool's first coalesced group-commit batch: `a` = fences
    /// sharing the batch, `b` = pages in the batched `msync`. Recorded
    /// once per pool (not per batch — a per-batch event would flood the
    /// ring and evict the growth/reshard lifecycle), as the durable marker
    /// that this deployment ran under fence coalescing.
    FenceGroupCommit = 17,
}

impl EventKind {
    /// The kind for a wire value, or `None` for kinds this build does not
    /// know (replay preserves them raw).
    pub fn from_u32(v: u32) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::PoolGrowthCommit,
            2 => EventKind::ReshardIntent,
            3 => EventKind::ReshardCommit,
            4 => EventKind::ReshardResolved,
            5 => EventKind::LeaseGrant,
            6 => EventKind::LeaseAck,
            7 => EventKind::LeaseNack,
            8 => EventKind::LeaseExpire,
            9 => EventKind::LeaseDead,
            10 => EventKind::LeaseCompaction,
            11 => EventKind::RecoveryStart,
            12 => EventKind::RecoveryPhase,
            13 => EventKind::RecoveryDone,
            14 => EventKind::LeaseDispatch,
            15 => EventKind::LeaseSegmentRotate,
            16 => EventKind::LeaseSegmentRetire,
            17 => EventKind::FenceGroupCommit,
            _ => return None,
        })
    }

    /// Stable lowercase name, used by exporters and `harness blackbox`.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PoolGrowthCommit => "pool-growth-commit",
            EventKind::ReshardIntent => "reshard-intent",
            EventKind::ReshardCommit => "reshard-commit",
            EventKind::ReshardResolved => "reshard-resolved",
            EventKind::LeaseGrant => "lease-grant",
            EventKind::LeaseAck => "lease-ack",
            EventKind::LeaseNack => "lease-nack",
            EventKind::LeaseExpire => "lease-expire",
            EventKind::LeaseDead => "lease-dead",
            EventKind::LeaseCompaction => "lease-compaction",
            EventKind::RecoveryStart => "recovery-start",
            EventKind::RecoveryPhase => "recovery-phase",
            EventKind::RecoveryDone => "recovery-done",
            EventKind::LeaseDispatch => "lease-dispatch",
            EventKind::LeaseSegmentRotate => "lease-segment-rotate",
            EventKind::LeaseSegmentRetire => "lease-segment-retire",
            EventKind::FenceGroupCommit => "fence-group-commit",
        }
    }
}

/// One replayed ring record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// 1-based global sequence number.
    pub seq: u64,
    /// Raw wire kind (use [`Event::kind`] for the decoded enum).
    pub kind: u32,
    /// First operand; meaning depends on the kind.
    pub a: u64,
    /// Second operand; meaning depends on the kind.
    pub b: u64,
    /// Wall clock at record time, ns since the Unix epoch.
    pub wall_ns: u64,
}

impl Event {
    /// The decoded kind, if this build knows it.
    pub fn kind(&self) -> Option<EventKind> {
        EventKind::from_u32(self.kind)
    }

    /// The kind's stable name, or `"unknown"`.
    pub fn kind_name(&self) -> &'static str {
        self.kind().map(EventKind::name).unwrap_or("unknown")
    }

    /// One human line: kind plus decoded operands.
    pub fn describe(&self) -> String {
        match self.kind() {
            Some(EventKind::PoolGrowthCommit) => {
                format!(
                    "pool growth committed: epoch {} -> {} bytes",
                    self.a, self.b
                )
            }
            Some(EventKind::ReshardIntent) => {
                format!("reshard intent: {} -> {} shards", self.a, self.b)
            }
            Some(EventKind::ReshardCommit) => {
                format!("reshard committed: {} shards", self.a)
            }
            Some(EventKind::ReshardResolved) => format!(
                "reshard resolved: rolled {}",
                if self.a == 1 { "forward" } else { "back" }
            ),
            Some(EventKind::LeaseGrant) => {
                format!("lease {} granted for item {}", self.a, self.b)
            }
            Some(EventKind::LeaseAck) => format!("lease {} acked", self.a),
            Some(EventKind::LeaseNack) => {
                format!("lease {} nacked (next delivery {})", self.a, self.b)
            }
            Some(EventKind::LeaseExpire) => {
                format!("lease {} expired (next delivery {})", self.a, self.b)
            }
            Some(EventKind::LeaseDead) => {
                format!("lease {} dead-lettered item {}", self.a, self.b)
            }
            Some(EventKind::LeaseCompaction) => {
                format!("ack log compacted to {} live records", self.a)
            }
            Some(EventKind::LeaseDispatch) => {
                format!("item {} dispatched to {} group(s)", self.a, self.b)
            }
            Some(EventKind::LeaseSegmentRotate) => {
                format!(
                    "ack log rotated to segment {} ({} live in sealed segments)",
                    self.a, self.b
                )
            }
            Some(EventKind::LeaseSegmentRetire) => {
                format!("ack-log segment {} retired", self.a)
            }
            Some(EventKind::RecoveryStart) => {
                format!("recovery started over {} shards", self.a)
            }
            Some(EventKind::RecoveryPhase) => {
                let phase = match self.a {
                    1 => "manifest-resolution",
                    2 => "shard-replay",
                    3 => "lease-repair",
                    _ => "unknown-phase",
                };
                format!("recovery phase {phase} took {} ns", self.b)
            }
            Some(EventKind::RecoveryDone) => {
                format!("recovery done: {} shards in {} ns", self.a, self.b)
            }
            Some(EventKind::FenceGroupCommit) => {
                format!(
                    "group commit active: first coalesced batch had {} fence(s) over {} page(s)",
                    self.a, self.b
                )
            }
            None => format!("unknown kind {} (a={}, b={})", self.kind, self.a, self.b),
        }
    }
}

/// The result of scanning a ring file.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    /// Slot count from the header.
    pub capacity: u32,
    /// Slots whose bytes were non-zero but failed their CRC (torn by a
    /// kill mid-store, or corrupted at rest). Dropped, not fatal.
    pub torn: u32,
    /// Valid events, ascending by sequence number.
    pub events: Vec<Event>,
}

impl Replay {
    /// Highest valid sequence number seen (0 for an empty ring).
    pub fn max_seq(&self) -> u64 {
        self.events.last().map(|e| e.seq).unwrap_or(0)
    }

    /// Valid events of one kind, in sequence order.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.kind == kind as u32)
    }
}

fn bad_data(path: &Path, msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {msg}", path.display()),
    )
}

fn encode_header(capacity: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&capacity.to_le_bytes());
    h[16..20].copy_from_slice(&(RECORD_LEN as u32).to_le_bytes());
    let crc = crc32(&h[0..24]);
    h[24..28].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Validates a header and returns the capacity.
fn decode_header(path: &Path, bytes: &[u8]) -> io::Result<u32> {
    if bytes.len() < HEADER_LEN {
        return Err(bad_data(path, "ring file shorter than its header"));
    }
    if &bytes[0..8] != MAGIC {
        return Err(bad_data(path, "bad magic (not a BLACKBOX ring)"));
    }
    let crc_stored = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    if crc32(&bytes[0..24]) != crc_stored {
        return Err(bad_data(path, "header CRC mismatch"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(bad_data(
            path,
            &format!("unsupported ring version {version}"),
        ));
    }
    let record_len = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
    if record_len as usize != RECORD_LEN {
        return Err(bad_data(
            path,
            &format!("unsupported record length {record_len}"),
        ));
    }
    let capacity = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if capacity == 0 {
        return Err(bad_data(path, "zero-capacity ring"));
    }
    let need = HEADER_LEN + capacity as usize * RECORD_LEN;
    if bytes.len() < need {
        return Err(bad_data(path, "ring file truncated below its capacity"));
    }
    Ok(capacity)
}

fn encode_record(seq: u64, kind: u32, a: u64, b: u64, wall_ns: u64) -> [u8; RECORD_LEN] {
    let mut r = [0u8; RECORD_LEN];
    r[0..8].copy_from_slice(&seq.to_le_bytes());
    r[8..12].copy_from_slice(&kind.to_le_bytes());
    r[16..24].copy_from_slice(&a.to_le_bytes());
    r[24..32].copy_from_slice(&b.to_le_bytes());
    r[32..40].copy_from_slice(&wall_ns.to_le_bytes());
    let crc = crc32(&r[0..RECORD_CRC_AT]);
    r[40..44].copy_from_slice(&crc.to_le_bytes());
    r
}

fn decode_record(bytes: &[u8]) -> Option<Event> {
    debug_assert_eq!(bytes.len(), RECORD_LEN);
    if bytes.iter().all(|&b| b == 0) {
        return None; // never written
    }
    let crc_stored = u32::from_le_bytes(bytes[40..44].try_into().unwrap());
    if crc32(&bytes[0..RECORD_CRC_AT]) != crc_stored {
        return None; // torn or corrupt — caller counts these
    }
    let seq = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    if seq == 0 {
        return None;
    }
    Some(Event {
        seq,
        kind: u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        a: u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
        b: u64::from_le_bytes(bytes[24..32].try_into().unwrap()),
        wall_ns: u64::from_le_bytes(bytes[32..40].try_into().unwrap()),
    })
}

/// Scans the ring at `path` and returns every CRC-valid event, ascending by
/// sequence number. Pure file read — safe on a ring whose writer was just
/// SIGKILLed, and on one still being written (in-flight records show up as
/// `torn`). Fails only on a bad header; record damage is tolerated.
pub fn replay(path: &Path) -> io::Result<Replay> {
    let bytes = std::fs::read(path)?;
    let capacity = decode_header(path, &bytes)?;
    let mut out = Replay {
        capacity,
        torn: 0,
        events: Vec::new(),
    };
    for slot in 0..capacity as usize {
        let at = HEADER_LEN + slot * RECORD_LEN;
        let rec = &bytes[at..at + RECORD_LEN];
        match decode_record(rec) {
            Some(ev) => out.events.push(ev),
            None if rec.iter().all(|&b| b == 0) => {}
            None => out.torn += 1,
        }
    }
    out.events.sort_unstable_by_key(|e| e.seq);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const MAP_SHARED: i32 = 1;

    // The offline build has no `libc` crate; declare the two calls the ring
    // needs directly against the C library `std` already links (the same
    // pattern as `store::mmap`).
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

enum Backing {
    /// Unix: a shared mapping; stores reach the page cache immediately and
    /// survive SIGKILL.
    #[cfg(unix)]
    Map { ptr: *mut u8, len: usize },
    /// Elsewhere: plain positioned writes per record. Works, but a kill can
    /// lose the records buffered in the process — non-Unix platforms get a
    /// best-effort ring only.
    #[allow(dead_code)]
    File(std::sync::Mutex<File>),
}

// SAFETY: the mapping is written only through atomic stores (see
// `write_slot`); the raw pointer itself is safe to share.
unsafe impl Send for Backing {}
unsafe impl Sync for Backing {}

/// An open ring, ready to record. Cheap to share (`Arc`); `record` is
/// lock-free on Unix.
pub struct FlightRecorder {
    backing: Backing,
    capacity: u32,
    next_seq: AtomicU64,
    path: PathBuf,
}

impl FlightRecorder {
    /// The ring path inside a queue directory.
    pub fn ring_path(dir: &Path) -> PathBuf {
        dir.join(RING_FILE)
    }

    /// Opens the ring in `dir`, creating it (tmp + rename + dir fsync, so a
    /// crash leaves no half-written ring) with `capacity` slots if absent.
    /// When the ring already exists its own header capacity wins, and the
    /// sequence counter resumes past the highest replayed event so history
    /// keeps appending across restarts.
    pub fn create_or_open(dir: &Path, capacity: u32) -> io::Result<Arc<FlightRecorder>> {
        assert!(capacity > 0, "ring capacity must be positive");
        let path = Self::ring_path(dir);
        if !path.exists() {
            let tmp = dir.join(format!("{RING_FILE}.tmp"));
            {
                use std::io::Write;
                let mut f = File::create(&tmp)?;
                f.write_all(&encode_header(capacity))?;
                f.set_len((HEADER_LEN + capacity as usize * RECORD_LEN) as u64)?;
                f.sync_all()?;
            }
            std::fs::rename(&tmp, &path)?;
            File::open(dir)?.sync_all()?;
        }
        Self::open(&path)
    }

    /// Opens an existing ring for appending.
    pub fn open(path: &Path) -> io::Result<Arc<FlightRecorder>> {
        let replayed = replay(path)?;
        let capacity = replayed.capacity;
        let len = HEADER_LEN + capacity as usize * RECORD_LEN;
        let file = File::options().read(true).write(true).open(path)?;
        let backing = {
            #[cfg(unix)]
            {
                use std::os::unix::io::AsRawFd;
                // SAFETY: fd is open; len > 0; a shared file mapping has no
                // other preconditions — the kernel reports failure.
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ | sys::PROT_WRITE,
                        sys::MAP_SHARED,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr as isize == -1 {
                    return Err(io::Error::last_os_error());
                }
                Backing::Map {
                    ptr: ptr as *mut u8,
                    len,
                }
            }
            #[cfg(not(unix))]
            Backing::File(std::sync::Mutex::new(file))
        };
        Ok(Arc::new(FlightRecorder {
            backing,
            capacity,
            next_seq: AtomicU64::new(replayed.max_seq() + 1),
            path: path.to_path_buf(),
        }))
    }

    /// The file this recorder writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Slot count.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Records one event. Lock-free on Unix: claim a sequence number, then
    /// store the 64-byte record into its slot word by word (payload first,
    /// CRC last), so a kill mid-store leaves a slot that fails its CRC and
    /// is dropped at replay rather than misread.
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        self.record_raw(kind as u32, a, b);
    }

    /// [`record`](Self::record) with a raw kind value (forward
    /// compatibility: a newer writer's events survive an older reader).
    pub fn record_raw(&self, kind: u32, a: u64, b: u64) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let slot = ((seq - 1) % self.capacity as u64) as usize;
        let bytes = encode_record(seq, kind, a, b, clock::wall_ns());
        match &self.backing {
            #[cfg(unix)]
            Backing::Map { ptr, len } => {
                let at = HEADER_LEN + slot * RECORD_LEN;
                debug_assert!(at + RECORD_LEN <= *len);
                // SAFETY: `at` is 8-aligned and in bounds; going through
                // AtomicU64 makes concurrent writes to a lapped slot a race
                // in values (caught by the CRC) instead of UB.
                unsafe {
                    let words = ptr.add(at) as *const AtomicU64;
                    for w in 0..RECORD_LEN / 8 {
                        let v = u64::from_le_bytes(bytes[w * 8..w * 8 + 8].try_into().unwrap());
                        (*words.add(w)).store(v, Ordering::Release);
                    }
                }
            }
            #[allow(unused_variables)]
            Backing::File(file) => {
                #[cfg(not(unix))]
                {
                    use std::io::{Seek, SeekFrom, Write};
                    let mut f = file.lock().unwrap();
                    let at = (HEADER_LEN + slot * RECORD_LEN) as u64;
                    let _ = f
                        .seek(SeekFrom::Start(at))
                        .and_then(|_| f.write_all(&bytes));
                }
                #[cfg(unix)]
                unreachable!("File backing is never constructed on Unix");
            }
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        match &self.backing {
            #[cfg(unix)]
            Backing::Map { ptr, len } => {
                // SAFETY: exactly the mapping created in `open`; nothing
                // references it past drop.
                unsafe {
                    sys::munmap(*ptr as *mut std::ffi::c_void, *len);
                }
            }
            Backing::File(file) => {
                if let Ok(f) = file.lock() {
                    let _ = f.sync_all();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Process-global hook
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<Arc<FlightRecorder>> = OnceLock::new();

/// Installs `rec` as the process-global recorder that [`record`] writes to.
/// First caller wins; returns `false` if one was already installed. Library
/// layers record through the global so they need no directory plumbing;
/// only binaries that own a queue directory (the harness children) install.
pub fn install(rec: Arc<FlightRecorder>) -> bool {
    GLOBAL.set(rec).is_ok()
}

/// The installed recorder, if any.
pub fn global() -> Option<&'static Arc<FlightRecorder>> {
    GLOBAL.get()
}

/// Records through the process-global recorder; a no-op (one atomic load)
/// when none is installed.
#[inline]
pub fn record(kind: EventKind, a: u64, b: u64) {
    if let Some(rec) = GLOBAL.get() {
        rec.record(kind, a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "obs-flight-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_in_order() {
        let dir = temp_dir("roundtrip");
        let rec = FlightRecorder::create_or_open(&dir, 64).unwrap();
        rec.record(EventKind::PoolGrowthCommit, 1, 4096);
        rec.record(EventKind::LeaseGrant, 7, 42);
        rec.record(EventKind::LeaseAck, 7, 0);
        drop(rec);
        let rep = replay(&FlightRecorder::ring_path(&dir)).unwrap();
        assert_eq!(rep.torn, 0);
        assert_eq!(rep.capacity, 64);
        let kinds: Vec<_> = rep.events.iter().map(|e| e.kind_name()).collect();
        assert_eq!(kinds, ["pool-growth-commit", "lease-grant", "lease-ack"]);
        assert_eq!(rep.events[1].a, 7);
        assert_eq!(rep.events[1].b, 42);
        assert!(rep.events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(rep.events.iter().all(|e| e.wall_ns > 0));
        // tmp+rename left no droppings.
        assert!(!dir.join(format!("{RING_FILE}.tmp")).exists());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn reopen_resumes_sequence() {
        let dir = temp_dir("reopen");
        {
            let rec = FlightRecorder::create_or_open(&dir, 16).unwrap();
            rec.record(EventKind::LeaseGrant, 1, 10);
            rec.record(EventKind::LeaseGrant, 2, 11);
        }
        {
            // Capacity argument is ignored on reopen: the header wins.
            let rec = FlightRecorder::create_or_open(&dir, 9999).unwrap();
            assert_eq!(rec.capacity(), 16);
            rec.record(EventKind::LeaseAck, 1, 0);
        }
        let rep = replay(&FlightRecorder::ring_path(&dir)).unwrap();
        let seqs: Vec<_> = rep.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [1, 2, 3]);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn wraparound_keeps_the_last_capacity_events() {
        let dir = temp_dir("wrap");
        let rec = FlightRecorder::create_or_open(&dir, 8).unwrap();
        for i in 0..20u64 {
            rec.record(EventKind::LeaseGrant, i, 0);
        }
        drop(rec);
        let rep = replay(&FlightRecorder::ring_path(&dir)).unwrap();
        let seqs: Vec<_> = rep.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (13..=20).collect::<Vec<_>>());
        assert_eq!(rep.max_seq(), 20);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = temp_dir("torn");
        let rec = FlightRecorder::create_or_open(&dir, 32).unwrap();
        for i in 0..5u64 {
            rec.record(EventKind::LeaseGrant, i, 0);
        }
        drop(rec);
        let path = FlightRecorder::ring_path(&dir);
        // Flip a payload byte of the newest record (slot 4) — a torn write.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN + 4 * RECORD_LEN + 17] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let rep = replay(&path).unwrap();
        assert_eq!(rep.torn, 1);
        assert_eq!(rep.max_seq(), 4);
        assert_eq!(rep.events.len(), 4);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn interior_corruption_is_dropped_and_counted() {
        let dir = temp_dir("interior");
        let rec = FlightRecorder::create_or_open(&dir, 32).unwrap();
        for i in 0..5u64 {
            rec.record(EventKind::LeaseGrant, i, 0);
        }
        drop(rec);
        let path = FlightRecorder::ring_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN + 2 * RECORD_LEN + 3] ^= 0x01; // middle record
        std::fs::write(&path, &bytes).unwrap();
        let rep = replay(&path).unwrap();
        assert_eq!(rep.torn, 1);
        let seqs: Vec<_> = rep.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [1, 2, 4, 5]); // seq 3 lived in slot 2
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn header_corruption_is_refused_with_the_file_name() {
        let dir = temp_dir("header");
        drop(FlightRecorder::create_or_open(&dir, 8).unwrap());
        let path = FlightRecorder::ring_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[13] ^= 0xFF; // capacity field, invalidating the header CRC
        std::fs::write(&path, &bytes).unwrap();
        let err = replay(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains(RING_FILE), "{err}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn unknown_kinds_survive_replay() {
        let dir = temp_dir("unknown");
        let rec = FlightRecorder::create_or_open(&dir, 8).unwrap();
        rec.record_raw(999, 5, 6);
        drop(rec);
        let rep = replay(&FlightRecorder::ring_path(&dir)).unwrap();
        assert_eq!(rep.events.len(), 1);
        assert_eq!(rep.events[0].kind, 999);
        assert_eq!(rep.events[0].kind_name(), "unknown");
        assert!(rep.events[0].describe().contains("999"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn of_kind_filters() {
        let dir = temp_dir("ofkind");
        let rec = FlightRecorder::create_or_open(&dir, 8).unwrap();
        rec.record(EventKind::LeaseGrant, 1, 0);
        rec.record(EventKind::LeaseAck, 1, 0);
        rec.record(EventKind::LeaseGrant, 2, 0);
        drop(rec);
        let rep = replay(&FlightRecorder::ring_path(&dir)).unwrap();
        assert_eq!(rep.of_kind(EventKind::LeaseGrant).count(), 2);
        assert_eq!(rep.of_kind(EventKind::LeaseAck).count(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn concurrent_writers_never_corrupt_valid_slots() {
        let dir = temp_dir("concurrent");
        let rec = FlightRecorder::create_or_open(&dir, 32).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        rec.record(EventKind::LeaseGrant, t, i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(rec);
        let rep = replay(&FlightRecorder::ring_path(&dir)).unwrap();
        assert_eq!(rep.torn, 0);
        assert_eq!(rep.events.len(), 32);
        assert_eq!(rep.max_seq(), 400);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
