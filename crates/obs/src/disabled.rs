//! No-op mirrors of the named instruments, unconditionally compiled.
//!
//! These exist for exactly one purpose: letting a single bench binary
//! (`bench/benches/obs_overhead.rs`) measure the enabled and the disabled
//! instrumentation cost side by side without two feature-flagged builds.
//! The bodies here are what every [`crate::metrics`] method compiles to
//! when the `instrument` feature is off.

/// No-op mirror of [`crate::metrics::LazyCounter`].
pub struct Counter {
    name: &'static str,
}

impl Counter {
    /// A counter that will never count.
    pub const fn new(name: &'static str) -> Counter {
        Counter { name }
    }

    /// The name the enabled twin would register under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        let _ = n;
    }

    /// Does nothing.
    #[inline(always)]
    pub fn incr(&self) {}

    /// Always 0.
    pub fn value(&self) -> u64 {
        0
    }
}

/// No-op mirror of [`crate::metrics::LazyHistogram`].
pub struct Histogram {
    name: &'static str,
}

impl Histogram {
    /// A histogram that will never record.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram { name }
    }

    /// The name the enabled twin would register under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Does nothing.
    #[inline(always)]
    pub fn record(&self, v: u64) {
        let _ = v;
    }

    /// Returns a zero-sized timer; `Instant::now` is never called.
    #[inline(always)]
    pub fn start_timer(&self) -> Timer {
        Timer { _private: () }
    }
}

/// Zero-sized stand-in for [`crate::metrics::Timer`]; dropping it does
/// nothing.
pub struct Timer {
    _private: (),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paths_are_inert() {
        static C: Counter = Counter::new("test.disabled.c");
        static H: Histogram = Histogram::new("test.disabled.h");
        C.incr();
        C.add(100);
        H.record(42);
        let _t = H.start_timer();
        assert_eq!(C.value(), 0);
        assert_eq!(C.name(), "test.disabled.c");
        assert_eq!(H.name(), "test.disabled.h");
    }
}
