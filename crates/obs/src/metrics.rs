//! Lock-free metrics: striped counters, log₂ histograms, a process-global
//! name-keyed registry, and mergeable snapshots.
//!
//! Instruments are declared where they are used, as statics:
//!
//! ```
//! use obs::metrics::LazyCounter;
//! static GRANTS: LazyCounter = LazyCounter::new("lease.grant");
//! GRANTS.incr();
//! ```
//!
//! The first touch registers the instrument in the process-global registry;
//! two statics with the same name resolve to the *same* underlying counter,
//! so layers that share a concept (e.g. `core.enqueue` incremented by every
//! queue implementation) aggregate without coordination. [`snapshot`] folds
//! the registry into a [`MetricsSnapshot`], which merges with `Add` and
//! diffs with `Sub` exactly like `pmem::StatsSnapshot` — take one before
//! and one after a phase, subtract, and you have the phase's metrics.
//!
//! Everything here is gated on the default-on `instrument` feature: with it
//! off, `incr`/`record`/`start_timer` are empty inline functions (no atomic
//! touched, no `Instant::now`), and [`snapshot`] returns an empty snapshot.

use std::collections::BTreeMap;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "instrument")]
use std::sync::OnceLock;

/// Stripes per counter. Power of two; threads hash onto stripes by a
/// round-robin-assigned thread index, so up to this many threads increment
/// without sharing a cache line.
pub const STRIPES: usize = 16;

/// Buckets per histogram: bucket 0 holds zeros, bucket *i* ≥ 1 holds values
/// in `[2^(i-1), 2^i)`, and the last bucket is unbounded above.
pub const BUCKETS: usize = 64;

/// Pads and aligns to 128 bytes so neighbouring stripes never share a cache
/// line (nor a prefetched pair of lines). Same idea as crossbeam's
/// `CachePadded`, local so obs stays dependency-free.
#[repr(align(128))]
struct CachePadded<T>(T);

/// Round-robin stripe assignment: the first `STRIPES` threads each get their
/// own stripe, later ones wrap. Assignment happens once per thread.
#[cfg(feature = "instrument")]
#[inline]
fn stripe_index() -> usize {
    use std::cell::Cell;
    use std::sync::atomic::AtomicUsize;
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let cached = s.get();
        if cached != usize::MAX {
            return cached;
        }
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let idx = NEXT.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
        s.set(idx);
        idx
    })
}

// ---------------------------------------------------------------------------
// Raw instruments
// ---------------------------------------------------------------------------

/// A monotonic counter, striped across [`STRIPES`] cache-padded atomics.
///
/// `add` is one relaxed `fetch_add` on the caller's own stripe; [`value`]
/// sums the stripes (racy in the usual benign sense: a concurrent reader
/// may see a sum no thread ever observed, but never loses an increment).
///
/// [`value`]: Counter::value
pub struct Counter {
    stripes: [CachePadded<AtomicU64>; STRIPES],
}

impl Counter {
    /// A zeroed counter, usable in statics.
    pub const fn new() -> Counter {
        Counter {
            stripes: [const { CachePadded(AtomicU64::new(0)) }; STRIPES],
        }
    }

    /// Adds `n` on the calling thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "instrument")]
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "instrument"))]
        let _ = n;
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total across all stripes.
    pub fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// A log₂-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// `record` is two relaxed `fetch_add`s (bucket + sum); unlike [`Counter`]
/// the buckets are not striped — the instrumented paths (msync, growth,
/// recovery phases) record orders of magnitude less often than the counter
/// hot paths, and 64 padded stripes × 64 buckets would be a page per
/// instrument.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: CachePadded<AtomicU64>,
}

impl Histogram {
    /// A zeroed histogram, usable in statics.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: CachePadded(AtomicU64::new(0)),
        }
    }

    /// The bucket index for `v`: 0 for 0, else `64 − leading_zeros(v)`,
    /// clamped so `v ≥ 2^62` lands in the last (unbounded) bucket.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// The inclusive upper bound of bucket `i`, or `None` for the last
    /// (unbounded) bucket.
    pub fn bucket_bound(i: usize) -> Option<u64> {
        match i {
            0 => Some(0),
            _ if i < BUCKETS - 1 => Some((1u64 << i) - 1),
            _ => None,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "instrument")]
        {
            self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.0.fetch_add(v, Ordering::Relaxed);
        }
        #[cfg(not(feature = "instrument"))]
        let _ = v;
    }

    /// A point-in-time copy of the buckets and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.0.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

// ---------------------------------------------------------------------------
// Named (registered) instruments
// ---------------------------------------------------------------------------

#[cfg(feature = "instrument")]
struct Registry {
    counters: std::sync::Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: std::sync::Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

#[cfg(feature = "instrument")]
fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: std::sync::Mutex::new(BTreeMap::new()),
        histograms: std::sync::Mutex::new(BTreeMap::new()),
    })
}

#[cfg(feature = "instrument")]
impl Registry {
    fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name).or_insert_with(|| Box::leak(Box::default()))
    }

    fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name).or_insert_with(|| Box::leak(Box::default()))
    }
}

/// A named counter that registers itself in the process-global registry on
/// first use. Declare as a `static` next to the code it instruments; two
/// statics with the same name share one [`Counter`].
pub struct LazyCounter {
    name: &'static str,
    #[cfg(feature = "instrument")]
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// A not-yet-registered counter named `name` (dotted lowercase by
    /// convention, e.g. `"store.growth"`).
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            #[cfg(feature = "instrument")]
            cell: OnceLock::new(),
        }
    }

    /// The instrument's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    #[cfg(feature = "instrument")]
    #[inline]
    fn resolve(&self) -> &'static Counter {
        self.cell.get_or_init(|| registry().counter(self.name))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "instrument")]
        self.resolve().add(n);
        #[cfg(not(feature = "instrument"))]
        let _ = n;
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total (0 when instrumentation is disabled).
    pub fn value(&self) -> u64 {
        #[cfg(feature = "instrument")]
        {
            self.resolve().value()
        }
        #[cfg(not(feature = "instrument"))]
        0
    }
}

/// A named histogram that registers itself on first use; see
/// [`LazyCounter`] for the registration contract.
pub struct LazyHistogram {
    name: &'static str,
    #[cfg(feature = "instrument")]
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// A not-yet-registered histogram named `name`. Latency instruments end
    /// in `_ns` by convention (`"store.msync_ns"`).
    pub const fn new(name: &'static str) -> LazyHistogram {
        LazyHistogram {
            name,
            #[cfg(feature = "instrument")]
            cell: OnceLock::new(),
        }
    }

    /// The instrument's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    #[cfg(feature = "instrument")]
    #[inline]
    fn resolve(&self) -> &'static Histogram {
        self.cell.get_or_init(|| registry().histogram(self.name))
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(feature = "instrument")]
        self.resolve().record(v);
        #[cfg(not(feature = "instrument"))]
        let _ = v;
    }

    /// Starts a timer whose drop records the elapsed nanoseconds here.
    /// When instrumentation is disabled the timer is a zero-sized no-op —
    /// `Instant::now` is never called.
    #[inline]
    pub fn start_timer(&self) -> Timer<'_> {
        Timer {
            #[cfg(feature = "instrument")]
            hist: self.resolve(),
            #[cfg(feature = "instrument")]
            start: std::time::Instant::now(),
            #[cfg(not(feature = "instrument"))]
            _marker: std::marker::PhantomData,
        }
    }
}

/// Records elapsed wall time into a histogram on drop; see
/// [`LazyHistogram::start_timer`].
pub struct Timer<'a> {
    #[cfg(feature = "instrument")]
    hist: &'a Histogram,
    #[cfg(feature = "instrument")]
    start: std::time::Instant,
    #[cfg(not(feature = "instrument"))]
    _marker: std::marker::PhantomData<&'a ()>,
}

#[cfg(feature = "instrument")]
impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A point-in-time copy of every registered instrument. Empty when the
/// `instrument` feature is off.
pub fn snapshot() -> MetricsSnapshot {
    #[cfg(feature = "instrument")]
    {
        let reg = registry();
        let counters = reg
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(&name, c)| (name.to_string(), c.value()))
            .collect();
        let histograms = reg
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(&name, h)| (name.to_string(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
    #[cfg(not(feature = "instrument"))]
    MetricsSnapshot::default()
}

/// A point-in-time copy of one histogram's buckets and sum. Merges with
/// `Add`, diffs with `Sub` (bucketwise, saturating).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket counts, [`BUCKETS`] long (empty only in `Default`).
    pub buckets: Vec<u64>,
    /// Sum of all recorded samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// An upper bound on the `q`-quantile (0 < q ≤ 1): the inclusive upper
    /// bound of the first bucket at which the cumulative count reaches
    /// `q × count`. Within-bucket position is unknown, so the estimate is
    /// exact only up to the log₂ bucket width. Returns 0 with no samples;
    /// `u64::MAX` if the quantile lands in the unbounded last bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_bound(i).unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    fn widen(&mut self) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
    }
}

impl Add for HistogramSnapshot {
    type Output = HistogramSnapshot;
    fn add(mut self, rhs: HistogramSnapshot) -> HistogramSnapshot {
        self.widen();
        for (i, &c) in rhs.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.sum += rhs.sum;
        self
    }
}

impl Sub for HistogramSnapshot {
    type Output = HistogramSnapshot;
    fn sub(mut self, rhs: HistogramSnapshot) -> HistogramSnapshot {
        self.widen();
        for (i, &c) in rhs.buckets.iter().enumerate() {
            self.buckets[i] = self.buckets[i].saturating_sub(c);
        }
        self.sum = self.sum.saturating_sub(rhs.sum);
        self
    }
}

/// Every registered instrument at one point in time. `Sub` an earlier
/// snapshot from a later one for a phase delta; `Add`/`Sum` merge
/// snapshots from different processes (e.g. parent + crashed child).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals by instrument name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by instrument name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when no instrument has been registered (always true with the
    /// `instrument` feature off).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// A counter's value, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

impl Add for MetricsSnapshot {
    type Output = MetricsSnapshot;
    fn add(mut self, rhs: MetricsSnapshot) -> MetricsSnapshot {
        self += rhs;
        self
    }
}

impl AddAssign for MetricsSnapshot {
    fn add_assign(&mut self, rhs: MetricsSnapshot) {
        for (name, v) in rhs.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in rhs.histograms {
            let slot = self.histograms.entry(name).or_default();
            *slot = std::mem::take(slot) + h;
        }
    }
}

impl Sub for MetricsSnapshot {
    type Output = MetricsSnapshot;
    fn sub(mut self, rhs: MetricsSnapshot) -> MetricsSnapshot {
        for (name, v) in rhs.counters {
            let slot = self.counters.entry(name).or_insert(0);
            *slot = slot.saturating_sub(v);
        }
        for (name, h) in rhs.histograms {
            let slot = self.histograms.entry(name).or_default();
            *slot = std::mem::take(slot) - h;
        }
        self
    }
}

impl Sum for MetricsSnapshot {
    fn sum<I: Iterator<Item = MetricsSnapshot>>(iter: I) -> MetricsSnapshot {
        iter.fold(MetricsSnapshot::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_tile_the_axis() {
        assert_eq!(Histogram::bucket_bound(0), Some(0));
        assert_eq!(Histogram::bucket_bound(1), Some(1));
        assert_eq!(Histogram::bucket_bound(10), Some(1023));
        assert_eq!(Histogram::bucket_bound(BUCKETS - 1), None);
        // Every value's bucket bound is >= the value (when bounded).
        for v in [0u64, 1, 2, 7, 100, 65_535, 1 << 40] {
            let b = Histogram::bucket_bound(Histogram::bucket_index(v)).unwrap();
            assert!(b >= v, "bound {b} < value {v}");
        }
    }

    #[cfg(feature = "instrument")]
    #[test]
    fn counter_sums_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.value(), 80_000);
    }

    #[cfg(feature = "instrument")]
    #[test]
    fn same_name_statics_share_one_counter() {
        static A: LazyCounter = LazyCounter::new("test.metrics.shared");
        static B: LazyCounter = LazyCounter::new("test.metrics.shared");
        let before = A.value();
        A.add(3);
        B.add(4);
        assert_eq!(A.value(), before + 7);
        assert_eq!(B.value(), before + 7);
        assert_eq!(snapshot().counter("test.metrics.shared"), before + 7);
    }

    #[cfg(feature = "instrument")]
    #[test]
    fn timer_records_into_histogram() {
        static H: LazyHistogram = LazyHistogram::new("test.metrics.timer_ns");
        let before = snapshot()
            .histograms
            .get("test.metrics.timer_ns")
            .map(|h| h.count())
            .unwrap_or(0);
        {
            let _t = H.start_timer();
            std::hint::black_box(());
        }
        let after = snapshot().histograms["test.metrics.timer_ns"].count();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn histogram_snapshot_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 1, 1, 100, 100, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        if cfg!(feature = "instrument") {
            assert_eq!(s.count(), 6);
            assert_eq!(s.sum, 1_000_203);
            // p50 falls in the bucket of 1; p99 in the bucket of 1_000_000.
            assert_eq!(s.quantile(0.5), 1);
            assert!(s.quantile(0.99) >= 1_000_000);
            assert_eq!(s.mean(), 1_000_203 / 6);
        } else {
            assert_eq!(s.count(), 0);
        }
    }

    #[test]
    fn snapshot_add_sub_roundtrip() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("x".into(), 10);
        let mut hb = HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            sum: 30,
        };
        hb.buckets[3] = 2;
        a.histograms.insert("h".into(), hb);

        let mut b = MetricsSnapshot::default();
        b.counters.insert("x".into(), 4);
        b.counters.insert("y".into(), 1);

        let merged = a.clone() + b.clone();
        assert_eq!(merged.counter("x"), 14);
        assert_eq!(merged.counter("y"), 1);
        assert_eq!(merged.histograms["h"].count(), 2);

        let diff = merged - b;
        assert_eq!(diff.counter("x"), a.counter("x"));
        assert_eq!(diff.counter("y"), 0);
        assert_eq!(diff.histograms["h"], a.histograms["h"]);
    }

    #[test]
    fn snapshot_sum_folds() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("x".into(), 1);
        let mut b = MetricsSnapshot::default();
        b.counters.insert("x".into(), 2);
        let total: MetricsSnapshot = [a, b].into_iter().sum();
        assert_eq!(total.counter("x"), 3);
    }
}
