//! Shared named instruments for the queue implementations.
//!
//! Every [`DurableQueue`](crate::api::DurableQueue) implementation counts
//! its operations into the same two process-global instruments, so the
//! exported `core.enqueue` / `core.dequeue` totals aggregate across
//! algorithms (and across crates: `ptm`'s queues register the same names).
//! Both count *attempts* — a dequeue of an empty queue still counts, which
//! makes the dequeue rate a poll rate under consumer spin loops.

use obs::LazyCounter;

pub(crate) static ENQUEUES: LazyCounter = LazyCounter::new("core.enqueue");
pub(crate) static DEQUEUES: LazyCounter = LazyCounter::new("core.dequeue");
