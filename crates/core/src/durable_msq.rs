//! DurableMSQ — the state-of-the-art baseline the paper compares against.
//!
//! This is the durable lock-free queue of Friedman, Herlihy, Marathe and
//! Petrank (PPoPP'18) *thinned* exactly as the paper's evaluation does
//! (Section 10): the mechanism for retrieving previously obtained results
//! after a crash is removed, because durable linearizability does not require
//! it and none of the other compared queues provide it. What remains is the
//! persistence discipline that matters for the comparison:
//!
//! * an enqueue flushes + fences the new node *before* linking it, and
//!   flushes + fences the predecessor's `next` link after linking it
//!   (two blocking persist operations per enqueue);
//! * a dequeue flushes + fences the queue head after advancing it
//!   (and on an empty queue, before returning);
//! * flushed locations (the head, the `next` links, the node contents) are
//!   read again by subsequent operations, so the algorithm performs several
//!   accesses to flushed content per operation — the cost the paper's second
//!   amendment eliminates.

use crate::api::{DurableQueue, QueueConfig, RecoverableQueue};
use crate::chain;
use crate::node;
use crate::root::{ROOT_HEAD, ROOT_TAIL};
use pmem::{PRef, PmemPool};
use ssmem::{Ssmem, SsmemConfig};
use std::collections::HashSet;
use std::sync::Arc;

/// Field offsets within a queue node (one 64-byte slot).
mod f {
    pub const ITEM: u32 = 0;
    pub const NEXT: u32 = 8;
}

/// The thinned Friedman et al. durable queue. See the [module docs](self).
pub struct DurableMsQueue {
    pool: Arc<PmemPool>,
    nodes: Ssmem,
    config: QueueConfig,
}

impl DurableMsQueue {
    fn ssmem_config(config: &QueueConfig) -> SsmemConfig {
        SsmemConfig {
            obj_size: node::NODE_SIZE,
            area_size: config.area_size,
            max_threads: config.max_threads,
        }
    }
}

impl DurableQueue for DurableMsQueue {
    fn enqueue(&self, tid: usize, item: u64) {
        crate::instruments::ENQUEUES.incr();
        let p = &self.pool;
        self.nodes.pin(tid);
        let new = self.nodes.alloc(tid);
        p.store_u64(new.offset() + f::ITEM, item);
        p.store_u64(new.offset() + f::NEXT, 0);
        // Persist the node before it can become reachable, so that a
        // persisted link always leads to persisted content.
        p.flush(tid, new.offset());
        p.sfence(tid);
        loop {
            let tail = PRef::from_u64(p.load_u64(ROOT_TAIL));
            let tail_next = p.load_u64(tail.offset() + f::NEXT);
            if tail.to_u64() != p.load_u64(ROOT_TAIL) {
                continue;
            }
            if tail_next == 0 {
                if p.cas_u64(tail.offset() + f::NEXT, 0, new.to_u64()).is_ok() {
                    p.flush(tid, tail.offset() + f::NEXT);
                    p.sfence(tid);
                    let _ = p.cas_u64(ROOT_TAIL, tail.to_u64(), new.to_u64());
                    break;
                }
            } else {
                // Help the obstructing enqueue: persist its link before
                // advancing the tail over it.
                p.flush(tid, tail.offset() + f::NEXT);
                p.sfence(tid);
                let _ = p.cas_u64(ROOT_TAIL, tail.to_u64(), tail_next);
            }
        }
        self.nodes.unpin(tid);
    }

    fn dequeue(&self, tid: usize) -> Option<u64> {
        crate::instruments::DEQUEUES.incr();
        let p = &self.pool;
        self.nodes.pin(tid);
        let result = loop {
            let head = PRef::from_u64(p.load_u64(ROOT_HEAD));
            let next = p.load_u64(head.offset() + f::NEXT);
            if next == 0 {
                // Persist the (possibly advanced-by-others) head so that the
                // dequeues that emptied the queue are linearized before this
                // failing dequeue.
                p.flush(tid, ROOT_HEAD);
                p.sfence(tid);
                break None;
            }
            if p.cas_u64(ROOT_HEAD, head.to_u64(), next).is_ok() {
                let item = p.load_u64(PRef::from_u64(next).offset() + f::ITEM);
                p.flush(tid, ROOT_HEAD);
                p.sfence(tid);
                // The head has persistently moved past `head`, so no future
                // recovery can resurrect it: safe to recycle (epoch-deferred).
                self.nodes.retire(tid, head);
                break Some(item);
            }
        };
        self.nodes.unpin(tid);
        result
    }

    fn name(&self) -> &'static str {
        "DurableMSQ"
    }

    fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    fn config(&self) -> QueueConfig {
        self.config
    }
}

impl RecoverableQueue for DurableMsQueue {
    fn create(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        let nodes = Ssmem::new(Arc::clone(&pool), Self::ssmem_config(&config));
        let dummy = nodes.alloc(0);
        pool.store_u64(dummy.offset() + f::ITEM, 0);
        pool.store_u64(dummy.offset() + f::NEXT, 0);
        pool.flush(0, dummy.offset());
        pool.store_u64(ROOT_HEAD, dummy.to_u64());
        pool.store_u64(ROOT_TAIL, dummy.to_u64());
        pool.flush(0, ROOT_HEAD);
        pool.flush(0, ROOT_TAIL);
        pool.sfence(0);
        DurableMsQueue {
            pool,
            nodes,
            config,
        }
    }

    fn recover(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        let nodes = Ssmem::recover(Arc::clone(&pool), Self::ssmem_config(&config));
        // The persisted head always points at a node whose content was
        // persisted before it became reachable, and every persisted link
        // leads to such a node, so the persisted chain from the head is the
        // recovered queue.
        let head = PRef::from_u64(pool.load_u64(ROOT_HEAD));
        let chain = chain::traverse_chain(&pool, head, f::NEXT, |_| true);
        let last = *chain.last().expect("chain always contains the head");
        // Terminate the chain in the working image (the last persisted link
        // might dangle into a node that was never persisted as linked).
        pool.store_u64(ROOT_TAIL, last.to_u64());
        pool.flush(0, ROOT_TAIL);
        pool.sfence(0);
        let live: HashSet<PRef> = chain.into_iter().collect();
        chain::reclaim_dead(&nodes, &live, config.max_threads);
        DurableMsQueue {
            pool,
            nodes,
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn sequential_fifo() {
        testkit::check_sequential_fifo::<DurableMsQueue>();
    }

    #[test]
    fn interleaved_matches_model() {
        testkit::check_against_model::<DurableMsQueue>(0xD0);
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        testkit::check_concurrent_integrity::<DurableMsQueue>(4, 300);
    }

    #[test]
    fn concurrent_per_producer_fifo_order() {
        testkit::check_concurrent_fifo_per_producer::<DurableMsQueue>(2, 2, 300);
    }

    #[test]
    fn recovery_preserves_completed_operations() {
        testkit::check_recovery_preserves_completed_ops::<DurableMsQueue>(100, 37);
    }

    #[test]
    fn recovery_of_emptied_queue_is_empty() {
        testkit::check_recovery_of_emptied_queue::<DurableMsQueue>();
    }

    #[test]
    fn repeated_crashes_keep_surviving_state() {
        testkit::check_repeated_crashes::<DurableMsQueue>(5, 40);
    }

    #[test]
    fn crash_under_concurrency_is_durably_linearizable() {
        testkit::check_crash_during_concurrent_ops::<DurableMsQueue>(4, 300, 0xBEEF);
    }

    #[test]
    fn crash_with_eviction_adversary_is_durably_linearizable() {
        testkit::check_crash_with_evictions::<DurableMsQueue>(3, 200, 0xFACE);
    }

    #[test]
    fn per_op_persistence_cost_matches_the_papers_analysis() {
        // Two blocking persists per enqueue, one per successful dequeue, and
        // a non-zero number of post-flush accesses (the weakness the second
        // amendment removes).
        let counts = testkit::persist_counts::<DurableMsQueue>(1000);
        assert!(
            (counts.enqueue.fences - 2.0).abs() < 0.1,
            "enqueue fences {}",
            counts.enqueue.fences
        );
        assert!(
            (counts.dequeue.fences - 1.0).abs() < 0.1,
            "dequeue fences {}",
            counts.dequeue.fences
        );
        assert!(
            counts.total.post_flush_accesses > 0.5,
            "expected post-flush accesses"
        );
    }
}
