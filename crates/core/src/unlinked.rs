//! UnlinkedQ — the first amendment, unlinked flavour (Section 5.1, Figure 1).
//!
//! UnlinkedQ executes exactly **one blocking persist operation (flush +
//! SFENCE) per operation**, meeting the Cohen et al. lower bound. It does not
//! rely on the `next` links for recovery and therefore never persists them:
//! all the information recovery needs lives in the nodes themselves, which
//! are allocated from the designated areas that the ssmem directory records.
//!
//! * Every node carries an `index` (its enqueue position) and a `linked`
//!   flag. An enqueuer links the node, sets `linked`, and persists the node —
//!   one fence.
//! * The queue head packs the dummy pointer and the head index into one
//!   atomic word updated by a double-width CAS; a dequeuer advances it and
//!   persists the head's cache line — one fence. A failing dequeue persists
//!   the head too, so the dequeues that emptied the queue are linearized
//!   before it.
//! * Recovery resurrects every node in the designated areas whose `linked`
//!   flag is set and whose index exceeds the persisted head index, and chains
//!   them in index order. Pending enqueues may be discarded (Observation 1),
//!   and the dequeued prefix is exactly the indices at or below the head
//!   index (Observation 2).
//!
//! What UnlinkedQ does *not* avoid — and what the second amendment
//! ([`crate::OptUnlinkedQueue`]) fixes — is reading flushed content: the head
//! line is flushed by every dequeue and re-read by the next one, and a node's
//! line is flushed by its enqueuer and later re-read (its `index` by the next
//! enqueuer, its `item` by its dequeuer).

use crate::api::{DurableQueue, QueueConfig, RecoverableQueue};
use crate::node;
use crate::root::{ROOT_HEAD, ROOT_TAIL};
use crossbeam_utils::CachePadded;
use pmem::{PRef, PmemPool};
use ssmem::{Ssmem, SsmemConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Field offsets within a node (one 64-byte slot).
mod f {
    pub const ITEM: u32 = 0;
    pub const NEXT: u32 = 8;
    pub const LINKED: u32 = 16;
    pub const INDEX: u32 = 24;
}

/// Packs a node reference and the head index into the double-width head word.
#[inline]
fn pack_head(ptr: PRef, index: u64) -> u64 {
    debug_assert!(
        index <= u32::MAX as u64,
        "head index exceeds the packed 32-bit range"
    );
    (index << 32) | ptr.to_u64()
}

/// Unpacks the head word into `(dummy pointer, head index)`.
#[inline]
fn unpack_head(word: u64) -> (PRef, u64) {
    (PRef::from_u64(word & 0xFFFF_FFFF), word >> 32)
}

/// The UnlinkedQ durable queue. See the [module docs](self).
pub struct UnlinkedQueue {
    pool: Arc<PmemPool>,
    nodes: Ssmem,
    /// Per-thread record of the dummy node this thread most recently
    /// replaced, to be retired by its next successful dequeue (volatile,
    /// exactly like the paper's `nodeToRetire` array).
    node_to_retire: Box<[CachePadded<AtomicU64>]>,
    config: QueueConfig,
}

impl UnlinkedQueue {
    fn ssmem_config(config: &QueueConfig) -> SsmemConfig {
        SsmemConfig {
            obj_size: node::NODE_SIZE,
            area_size: config.area_size,
            max_threads: config.max_threads,
        }
    }

    fn retire_slots(config: &QueueConfig) -> Box<[CachePadded<AtomicU64>]> {
        (0..config.max_threads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect()
    }
}

impl DurableQueue for UnlinkedQueue {
    fn enqueue(&self, tid: usize, item: u64) {
        crate::instruments::ENQUEUES.incr();
        let p = &self.pool;
        self.nodes.pin(tid);
        let new = self.nodes.alloc(tid);
        p.store_u64(new.offset() + f::ITEM, item);
        p.store_u64(new.offset() + f::NEXT, 0);
        // `linked` is cleared before `index` is written so that a recycled
        // node can never look like a valid queue node with a fresh index
        // before it is actually linked (Assumption 1 preserves this order
        // within the node's single cache line).
        p.store_u64(new.offset() + f::LINKED, 0);
        loop {
            let tail = PRef::from_u64(p.load_u64(ROOT_TAIL));
            if p.load_u64(tail.offset() + f::NEXT) == 0 {
                let index = p.load_u64(tail.offset() + f::INDEX) + 1;
                p.store_u64(new.offset() + f::INDEX, index);
                if p.cas_u64(tail.offset() + f::NEXT, 0, new.to_u64()).is_ok() {
                    p.store_u64(new.offset() + f::LINKED, 1);
                    // The single blocking persist of the enqueue.
                    p.flush(tid, new.offset());
                    p.sfence(tid);
                    let _ = p.cas_u64(ROOT_TAIL, tail.to_u64(), new.to_u64());
                    break;
                }
            } else {
                // Help the obstructing enqueue advance the tail.
                let next = p.load_u64(tail.offset() + f::NEXT);
                let _ = p.cas_u64(ROOT_TAIL, tail.to_u64(), next);
            }
        }
        self.nodes.unpin(tid);
    }

    fn dequeue(&self, tid: usize) -> Option<u64> {
        crate::instruments::DEQUEUES.incr();
        let p = &self.pool;
        self.nodes.pin(tid);
        let result = loop {
            let head_word = p.load_u64(ROOT_HEAD);
            let (head_ptr, _head_index) = unpack_head(head_word);
            let head_next = p.load_u64(head_ptr.offset() + f::NEXT);
            if head_next == 0 {
                // Failing dequeue: persist the head index so the dequeues
                // that emptied the queue are linearized before this one.
                p.flush(tid, ROOT_HEAD);
                p.sfence(tid);
                break None;
            }
            let next = PRef::from_u64(head_next);
            let next_index = p.load_u64(next.offset() + f::INDEX);
            // Double-width CAS: advance the pointer and the index together.
            if p.cas_u64(ROOT_HEAD, head_word, pack_head(next, next_index))
                .is_ok()
            {
                let item = p.load_u64(next.offset() + f::ITEM);
                // The single blocking persist of the dequeue.
                p.flush(tid, ROOT_HEAD);
                p.sfence(tid);
                let previous = self.node_to_retire[tid].swap(head_ptr.to_u64(), Ordering::Relaxed);
                if previous != 0 {
                    self.nodes.retire(tid, PRef::from_u64(previous));
                }
                break Some(item);
            }
        };
        self.nodes.unpin(tid);
        result
    }

    fn name(&self) -> &'static str {
        "UnlinkedQ"
    }

    fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    fn config(&self) -> QueueConfig {
        self.config
    }
}

impl RecoverableQueue for UnlinkedQueue {
    fn create(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        let nodes = Ssmem::new(Arc::clone(&pool), Self::ssmem_config(&config));
        let dummy = nodes.alloc(0);
        pool.store_u64(dummy.offset() + f::ITEM, 0);
        pool.store_u64(dummy.offset() + f::NEXT, 0);
        pool.store_u64(dummy.offset() + f::LINKED, 0);
        pool.store_u64(dummy.offset() + f::INDEX, 0);
        pool.flush(0, dummy.offset());
        pool.store_u64(ROOT_HEAD, pack_head(dummy, 0));
        pool.store_u64(ROOT_TAIL, dummy.to_u64());
        pool.flush(0, ROOT_HEAD);
        pool.flush(0, ROOT_TAIL);
        pool.sfence(0);
        UnlinkedQueue {
            pool,
            nodes,
            node_to_retire: Self::retire_slots(&config),
            config,
        }
    }

    fn recover(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        let nodes = Ssmem::recover(Arc::clone(&pool), Self::ssmem_config(&config));
        // The head index is restored from the persisted head word itself,
        // never from the node it points to (whose content might be stale).
        let (_stale_ptr, head_index) = unpack_head(pool.load_u64(ROOT_HEAD));

        // Classify every node slot in the designated areas.
        let mut live: Vec<(u64, PRef)> = Vec::new();
        let mut dead: Vec<PRef> = Vec::new();
        nodes.for_each_object(|obj| {
            let linked = pool.load_u64(obj.offset() + f::LINKED);
            let index = pool.load_u64(obj.offset() + f::INDEX);
            if linked == 1 && index > head_index {
                live.push((index, obj));
            } else {
                dead.push(obj);
            }
        });
        live.sort_unstable_by_key(|&(index, _)| index);

        // Dead slots go back to the free lists (their persisted index/linked
        // state keeps them invisible to any future recovery).
        for (i, obj) in dead.into_iter().enumerate() {
            nodes.free_immediate(i % config.max_threads, obj);
        }

        // A fresh dummy carries the recovered head index.
        let dummy = nodes.alloc(0);
        pool.store_u64(dummy.offset() + f::ITEM, 0);
        pool.store_u64(dummy.offset() + f::LINKED, 0);
        pool.store_u64(dummy.offset() + f::INDEX, head_index);
        pool.store_u64(
            dummy.offset() + f::NEXT,
            live.first().map_or(0, |&(_, n)| n.to_u64()),
        );
        pool.flush(0, dummy.offset());

        // Chain the resurrected nodes in index order (indices need not be
        // consecutive: pending enqueues may have been discarded).
        for pair in live.windows(2) {
            pool.store_u64(pair[0].1.offset() + f::NEXT, pair[1].1.to_u64());
        }
        if let Some(&(_, last)) = live.last() {
            pool.store_u64(last.offset() + f::NEXT, 0);
        }
        let tail = live.last().map_or(dummy, |&(_, n)| n);

        pool.store_u64(ROOT_HEAD, pack_head(dummy, head_index));
        pool.store_u64(ROOT_TAIL, tail.to_u64());
        pool.flush(0, ROOT_HEAD);
        pool.flush(0, ROOT_TAIL);
        pool.sfence(0);

        UnlinkedQueue {
            pool,
            nodes,
            node_to_retire: Self::retire_slots(&config),
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn head_word_packing_roundtrip() {
        let ptr = PRef::from_offset(0xABCD40);
        let (p, i) = unpack_head(pack_head(ptr, 123456));
        assert_eq!(p, ptr);
        assert_eq!(i, 123456);
        assert_eq!(unpack_head(pack_head(PRef::NULL, 0)), (PRef::NULL, 0));
    }

    #[test]
    fn sequential_fifo() {
        testkit::check_sequential_fifo::<UnlinkedQueue>();
    }

    #[test]
    fn interleaved_matches_model() {
        testkit::check_against_model::<UnlinkedQueue>(0x51);
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        testkit::check_concurrent_integrity::<UnlinkedQueue>(4, 300);
    }

    #[test]
    fn concurrent_per_producer_fifo_order() {
        testkit::check_concurrent_fifo_per_producer::<UnlinkedQueue>(2, 2, 300);
    }

    #[test]
    fn recovery_preserves_completed_operations() {
        testkit::check_recovery_preserves_completed_ops::<UnlinkedQueue>(100, 41);
    }

    #[test]
    fn recovery_of_emptied_queue_is_empty() {
        testkit::check_recovery_of_emptied_queue::<UnlinkedQueue>();
    }

    #[test]
    fn repeated_crashes_keep_surviving_state() {
        testkit::check_repeated_crashes::<UnlinkedQueue>(5, 40);
    }

    #[test]
    fn crash_under_concurrency_is_durably_linearizable() {
        testkit::check_crash_during_concurrent_ops::<UnlinkedQueue>(4, 300, 0x5151);
    }

    #[test]
    fn crash_with_eviction_adversary_is_durably_linearizable() {
        testkit::check_crash_with_evictions::<UnlinkedQueue>(3, 200, 0x5252);
    }

    #[test]
    fn one_blocking_persist_per_operation_but_nonzero_post_flush_accesses() {
        let counts = testkit::persist_counts::<UnlinkedQueue>(1000);
        // The theoretical lower bound: a single fence per update operation.
        assert!(
            (counts.enqueue.fences - 1.0).abs() < 0.05,
            "enqueue fences {}",
            counts.enqueue.fences
        );
        assert!(
            (counts.dequeue.fences - 1.0).abs() < 0.05,
            "dequeue fences {}",
            counts.dequeue.fences
        );
        assert!((counts.enqueue.flushes - 1.0).abs() < 0.05);
        // ... but the first amendment still reads flushed content (the head
        // line and the node lines), which is why it does not beat DurableMSQ.
        assert!(
            counts.total.post_flush_accesses > 0.5,
            "expected post-flush accesses, got {}",
            counts.total.post_flush_accesses
        );
    }
}
