//! The common queue interface shared by every algorithm in the crate.

use pmem::{PmemPool, StatsSnapshot};
use std::sync::Arc;

/// Configuration shared by all queue constructors.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Maximum number of threads that will ever operate on the queue.
    /// Thread ids passed to [`DurableQueue::enqueue`]/[`DurableQueue::dequeue`]
    /// must be `< max_threads`.
    pub max_threads: usize,
    /// Designated-area size (bytes) used by the node allocator.
    pub area_size: u32,
}

impl QueueConfig {
    /// Small configuration for unit/property tests.
    pub fn small_test() -> Self {
        QueueConfig {
            max_threads: 8,
            area_size: 64 * 1024,
        }
    }

    /// Configuration used by the benchmark harness.
    pub fn bench(max_threads: usize) -> Self {
        QueueConfig {
            max_threads,
            area_size: 4 * 1024 * 1024,
        }
    }

    /// Overrides the number of threads.
    pub fn with_threads(mut self, max_threads: usize) -> Self {
        self.max_threads = max_threads;
        self
    }
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self::small_test()
    }
}

/// A concurrent FIFO queue of `u64` items operating on a persistent pool.
///
/// Every operation takes the caller's thread id (`tid`), mirroring the
/// per-thread arrays of the paper's implementations (`nodeToRetire`,
/// `localData`, ...). Thread ids identify *logical* threads: a tid must not
/// be used concurrently from two OS threads.
pub trait DurableQueue: Send + Sync {
    /// Appends `item` at the tail of the queue.
    fn enqueue(&self, tid: usize, item: u64);

    /// Removes and returns the item at the head of the queue, or `None` if
    /// the queue is (observed) empty.
    fn dequeue(&self, tid: usize) -> Option<u64>;

    /// Algorithm name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// The persistent pool the queue operates on.
    fn pool(&self) -> &Arc<PmemPool>;

    /// The configuration the queue was created (or recovered) with.
    fn config(&self) -> QueueConfig;

    /// Whether the queue is durably linearizable (false only for the
    /// volatile Michael–Scott baseline).
    fn is_durable(&self) -> bool {
        true
    }

    /// A snapshot of the persistence counters attributable to this queue.
    ///
    /// The default delegates to the queue's single pool; multi-pool
    /// compositions (e.g. a sharded queue, one pool per shard) override this
    /// to return the aggregate across all of their pools.
    fn stats(&self) -> StatsSnapshot {
        self.pool().stats()
    }

    /// Resets the persistence counters of every pool this queue operates on.
    fn reset_stats(&self) {
        self.pool().reset_stats()
    }
}

/// Key-routed enqueue, as an extension of [`DurableQueue`].
///
/// A plain queue has no notion of routing, so the default implementation
/// simply ignores the key: on a single instance every enqueue lands in the
/// same FIFO order regardless of key. Partitioned compositions (the `shard`
/// crate's `ShardedQueue` under its key-hash policy) override this so that
/// all items with the same key land on the same shard — giving per-key FIFO
/// order across the whole partitioned queue.
pub trait KeyedQueue: DurableQueue {
    /// Appends `item` on behalf of thread `tid`, routed by `key`.
    fn enqueue_keyed(&self, tid: usize, key: u64, item: u64) {
        let _ = key;
        self.enqueue(tid, item);
    }
}

/// Marks every queue in this crate as keyed (with the identity routing of
/// the default method). Compositions that route for real provide their own
/// `impl KeyedQueue` with an overriding `enqueue_keyed`.
macro_rules! impl_keyed_for {
    ($($queue:ty),+ $(,)?) => {
        $(impl KeyedQueue for $queue {})+
    };
}

impl_keyed_for!(
    crate::msq::MsQueue,
    crate::durable_msq::DurableMsQueue,
    crate::izraelevitz::IzraelevitzQueue,
    crate::izraelevitz::NvTraverseQueue,
    crate::unlinked::UnlinkedQueue,
    crate::linked::LinkedQueue,
    crate::opt_unlinked::OptUnlinkedQueue,
    crate::opt_linked::OptLinkedQueue,
);

/// Construction and crash recovery, kept separate from [`DurableQueue`] so
/// trait objects of the latter stay object-safe.
pub trait RecoverableQueue: DurableQueue + Sized {
    /// Creates a fresh, empty queue on a fresh pool.
    fn create(pool: Arc<PmemPool>, config: QueueConfig) -> Self;

    /// Runs the algorithm's recovery procedure on a pool that was recovered
    /// from a crash (see [`PmemPool::simulate_crash`]), reconstructing the
    /// queue from its persistent state.
    fn recover(pool: Arc<PmemPool>, config: QueueConfig) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_methods_delegate_to_the_pool() {
        use crate::opt_unlinked::OptUnlinkedQueue;
        use pmem::PoolConfig;
        let pool = Arc::new(PmemPool::new(PoolConfig::small_test()));
        let q = OptUnlinkedQueue::create(Arc::clone(&pool), QueueConfig::small_test());
        q.reset_stats();
        q.enqueue(0, 1);
        assert_eq!(q.stats(), pool.stats());
        assert!(q.stats().fences >= 1);
        q.reset_stats();
        assert_eq!(pool.stats(), StatsSnapshot::default());
    }

    #[test]
    fn keyed_enqueue_defaults_to_plain_enqueue() {
        use crate::opt_unlinked::OptUnlinkedQueue;
        use pmem::PoolConfig;
        let pool = Arc::new(PmemPool::new(PoolConfig::small_test()));
        let q = OptUnlinkedQueue::create(pool, QueueConfig::small_test());
        q.enqueue_keyed(0, 0xAAAA, 1);
        q.enqueue_keyed(0, 0xBBBB, 2);
        assert_eq!(q.dequeue(0), Some(1));
        assert_eq!(q.dequeue(0), Some(2));
    }

    #[test]
    fn config_defaults_and_builders() {
        let c = QueueConfig::default();
        assert!(c.max_threads >= 2);
        let c2 = QueueConfig::bench(16).with_threads(4);
        assert_eq!(c2.max_threads, 4);
        assert!(c2.area_size >= c.area_size);
    }
}
