//! The common queue interface shared by every algorithm in the crate.

use pmem::PmemPool;
use std::sync::Arc;

/// Configuration shared by all queue constructors.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Maximum number of threads that will ever operate on the queue.
    /// Thread ids passed to [`DurableQueue::enqueue`]/[`DurableQueue::dequeue`]
    /// must be `< max_threads`.
    pub max_threads: usize,
    /// Designated-area size (bytes) used by the node allocator.
    pub area_size: u32,
}

impl QueueConfig {
    /// Small configuration for unit/property tests.
    pub fn small_test() -> Self {
        QueueConfig {
            max_threads: 8,
            area_size: 64 * 1024,
        }
    }

    /// Configuration used by the benchmark harness.
    pub fn bench(max_threads: usize) -> Self {
        QueueConfig {
            max_threads,
            area_size: 4 * 1024 * 1024,
        }
    }

    /// Overrides the number of threads.
    pub fn with_threads(mut self, max_threads: usize) -> Self {
        self.max_threads = max_threads;
        self
    }
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self::small_test()
    }
}

/// A concurrent FIFO queue of `u64` items operating on a persistent pool.
///
/// Every operation takes the caller's thread id (`tid`), mirroring the
/// per-thread arrays of the paper's implementations (`nodeToRetire`,
/// `localData`, ...). Thread ids identify *logical* threads: a tid must not
/// be used concurrently from two OS threads.
pub trait DurableQueue: Send + Sync {
    /// Appends `item` at the tail of the queue.
    fn enqueue(&self, tid: usize, item: u64);

    /// Removes and returns the item at the head of the queue, or `None` if
    /// the queue is (observed) empty.
    fn dequeue(&self, tid: usize) -> Option<u64>;

    /// Algorithm name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// The persistent pool the queue operates on.
    fn pool(&self) -> &Arc<PmemPool>;

    /// The configuration the queue was created (or recovered) with.
    fn config(&self) -> QueueConfig;

    /// Whether the queue is durably linearizable (false only for the
    /// volatile Michael–Scott baseline).
    fn is_durable(&self) -> bool {
        true
    }
}

/// Construction and crash recovery, kept separate from [`DurableQueue`] so
/// trait objects of the latter stay object-safe.
pub trait RecoverableQueue: DurableQueue + Sized {
    /// Creates a fresh, empty queue on a fresh pool.
    fn create(pool: Arc<PmemPool>, config: QueueConfig) -> Self;

    /// Runs the algorithm's recovery procedure on a pool that was recovered
    /// from a crash (see [`PmemPool::simulate_crash`]), reconstructing the
    /// queue from its persistent state.
    fn recover(pool: Arc<PmemPool>, config: QueueConfig) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_and_builders() {
        let c = QueueConfig::default();
        assert!(c.max_threads >= 2);
        let c2 = QueueConfig::bench(16).with_threads(4);
        assert_eq!(c2.max_threads, 4);
        assert!(c2.area_size >= c.area_size);
    }
}
