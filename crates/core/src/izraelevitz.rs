//! The general-transform baselines: IzraelevitzQ and NVTraverseQ.
//!
//! Izraelevitz, Mendes and Scott (DISC'16) showed that any lock-free
//! linearizable object can be made durably linearizable by persisting every
//! shared-memory access: each store/CAS is followed by a flush and a fence,
//! and each load is followed by a flush (and, in the original transform, a
//! fence) of the loaded location, so that any value an operation depends on
//! is persistent before the operation acts on it. Applied to MSQ this yields
//! the paper's `IzraelevitzQ` baseline.
//!
//! `NVTraverseQ` (Friedman et al., PLDI'20) is evaluated by the paper as an
//! almost identical queue: because MSQ has no traversal phase, the only
//! difference is that NVTraverse does **not** issue a fence after a flush
//! that follows a read or a CAS. Both are implemented here by one generic
//! queue parameterised on that single choice.
//!
//! As in the paper, these transforms execute many more blocking persist
//! operations than the tailor-made queues and access flushed content
//! constantly, which is exactly why they trail every other queue in Figure 2.

use crate::api::{DurableQueue, QueueConfig, RecoverableQueue};
use crate::chain;
use crate::node;
use crate::root::{ROOT_HEAD, ROOT_TAIL};
use pmem::{PRef, PmemPool};
use ssmem::{Ssmem, SsmemConfig};
use std::collections::HashSet;
use std::sync::Arc;

/// Field offsets within a queue node (one 64-byte slot).
mod f {
    pub const ITEM: u32 = 0;
    pub const NEXT: u32 = 8;
}

/// MSQ passed through the Izraelevitz-style transform. The const parameter
/// selects whether a fence is issued after flushes that follow loads and
/// CASes (`true` — IzraelevitzQ) or not (`false` — NVTraverseQ).
pub struct TransformedMsQueue<const FENCE_AFTER_READ_FLUSH: bool> {
    pool: Arc<PmemPool>,
    nodes: Ssmem,
    config: QueueConfig,
}

/// The paper's `IzraelevitzQ` baseline.
pub type IzraelevitzQueue = TransformedMsQueue<true>;

/// The paper's `NVTraverseQ` baseline.
pub type NvTraverseQueue = TransformedMsQueue<false>;

impl<const FENCE_AFTER_READ_FLUSH: bool> TransformedMsQueue<FENCE_AFTER_READ_FLUSH> {
    fn ssmem_config(config: &QueueConfig) -> SsmemConfig {
        SsmemConfig {
            obj_size: node::NODE_SIZE,
            area_size: config.area_size,
            max_threads: config.max_threads,
        }
    }

    /// Persisted load: load, then flush the loaded location (+ fence for the
    /// original transform).
    #[inline]
    fn p_load(&self, tid: usize, off: u32) -> u64 {
        let v = self.pool.load_u64(off);
        self.pool.flush(tid, off);
        if FENCE_AFTER_READ_FLUSH {
            self.pool.sfence(tid);
        }
        v
    }

    /// Persisted store: store, flush, fence.
    #[inline]
    fn p_store(&self, tid: usize, off: u32, val: u64) {
        self.pool.store_u64(off, val);
        self.pool.flush(tid, off);
        self.pool.sfence(tid);
    }

    /// Persisted CAS: CAS, then flush the location (+ fence for the original
    /// transform; a successful CAS is a write, so it is always fenced).
    #[inline]
    fn p_cas(&self, tid: usize, off: u32, cur: u64, new: u64) -> Result<u64, u64> {
        let r = self.pool.cas_u64(off, cur, new);
        self.pool.flush(tid, off);
        if FENCE_AFTER_READ_FLUSH || r.is_ok() {
            self.pool.sfence(tid);
        }
        r
    }
}

impl<const FENCE_AFTER_READ_FLUSH: bool> DurableQueue
    for TransformedMsQueue<FENCE_AFTER_READ_FLUSH>
{
    fn enqueue(&self, tid: usize, item: u64) {
        crate::instruments::ENQUEUES.incr();
        self.nodes.pin(tid);
        let new = self.nodes.alloc(tid);
        self.p_store(tid, new.offset() + f::ITEM, item);
        self.p_store(tid, new.offset() + f::NEXT, 0);
        loop {
            let tail = PRef::from_u64(self.p_load(tid, ROOT_TAIL));
            let tail_next = self.p_load(tid, tail.offset() + f::NEXT);
            if tail.to_u64() != self.p_load(tid, ROOT_TAIL) {
                continue;
            }
            if tail_next == 0 {
                if self
                    .p_cas(tid, tail.offset() + f::NEXT, 0, new.to_u64())
                    .is_ok()
                {
                    let _ = self.p_cas(tid, ROOT_TAIL, tail.to_u64(), new.to_u64());
                    break;
                }
            } else {
                let _ = self.p_cas(tid, ROOT_TAIL, tail.to_u64(), tail_next);
            }
        }
        self.nodes.unpin(tid);
    }

    fn dequeue(&self, tid: usize) -> Option<u64> {
        crate::instruments::DEQUEUES.incr();
        self.nodes.pin(tid);
        let result = loop {
            let head = PRef::from_u64(self.p_load(tid, ROOT_HEAD));
            let next = self.p_load(tid, head.offset() + f::NEXT);
            if next == 0 {
                break None;
            }
            if self.p_cas(tid, ROOT_HEAD, head.to_u64(), next).is_ok() {
                let item = self.p_load(tid, PRef::from_u64(next).offset() + f::ITEM);
                self.nodes.retire(tid, head);
                break Some(item);
            }
        };
        self.nodes.unpin(tid);
        result
    }

    fn name(&self) -> &'static str {
        if FENCE_AFTER_READ_FLUSH {
            "IzraelevitzQ"
        } else {
            "NVTraverseQ"
        }
    }

    fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    fn config(&self) -> QueueConfig {
        self.config
    }
}

impl<const FENCE_AFTER_READ_FLUSH: bool> RecoverableQueue
    for TransformedMsQueue<FENCE_AFTER_READ_FLUSH>
{
    fn create(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        let nodes = Ssmem::new(Arc::clone(&pool), Self::ssmem_config(&config));
        let dummy = nodes.alloc(0);
        pool.store_u64(dummy.offset() + f::ITEM, 0);
        pool.store_u64(dummy.offset() + f::NEXT, 0);
        pool.flush(0, dummy.offset());
        pool.store_u64(ROOT_HEAD, dummy.to_u64());
        pool.store_u64(ROOT_TAIL, dummy.to_u64());
        pool.flush(0, ROOT_HEAD);
        pool.flush(0, ROOT_TAIL);
        pool.sfence(0);
        TransformedMsQueue {
            pool,
            nodes,
            config,
        }
    }

    fn recover(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        // Every shared access is persisted before it is depended upon, so the
        // persisted state is always a consistent MSQ: recover exactly like
        // DurableMSQ, by walking the persisted chain from the persisted head.
        let nodes = Ssmem::recover(Arc::clone(&pool), Self::ssmem_config(&config));
        let head = PRef::from_u64(pool.load_u64(ROOT_HEAD));
        let chain = chain::traverse_chain(&pool, head, f::NEXT, |_| true);
        let last = *chain.last().expect("chain always contains the head");
        pool.store_u64(ROOT_TAIL, last.to_u64());
        pool.flush(0, ROOT_TAIL);
        pool.sfence(0);
        let live: HashSet<PRef> = chain.into_iter().collect();
        chain::reclaim_dead(&nodes, &live, config.max_threads);
        TransformedMsQueue {
            pool,
            nodes,
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn sequential_fifo_izraelevitz() {
        testkit::check_sequential_fifo::<IzraelevitzQueue>();
    }

    #[test]
    fn sequential_fifo_nvtraverse() {
        testkit::check_sequential_fifo::<NvTraverseQueue>();
    }

    #[test]
    fn interleaved_matches_model() {
        testkit::check_against_model::<IzraelevitzQueue>(0x12);
        testkit::check_against_model::<NvTraverseQueue>(0x13);
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        testkit::check_concurrent_integrity::<IzraelevitzQueue>(4, 200);
        testkit::check_concurrent_integrity::<NvTraverseQueue>(4, 200);
    }

    #[test]
    fn recovery_preserves_completed_operations() {
        testkit::check_recovery_preserves_completed_ops::<IzraelevitzQueue>(80, 20);
        testkit::check_recovery_preserves_completed_ops::<NvTraverseQueue>(80, 20);
    }

    #[test]
    fn repeated_crashes_keep_surviving_state() {
        testkit::check_repeated_crashes::<IzraelevitzQueue>(4, 30);
        testkit::check_repeated_crashes::<NvTraverseQueue>(4, 30);
    }

    #[test]
    fn crash_under_concurrency_is_durably_linearizable() {
        testkit::check_crash_during_concurrent_ops::<IzraelevitzQueue>(3, 150, 0x1111);
        testkit::check_crash_during_concurrent_ops::<NvTraverseQueue>(3, 150, 0x2222);
    }

    #[test]
    fn transform_issues_many_more_fences_than_the_tailored_queues() {
        let iz = testkit::persist_counts::<IzraelevitzQueue>(500);
        let nv = testkit::persist_counts::<NvTraverseQueue>(500);
        // The original transform fences on every access; the NVTraverse
        // variant drops read/CAS-failure fences but still fences every write.
        assert!(
            iz.enqueue.fences >= 5.0,
            "IzraelevitzQ enqueue fences {}",
            iz.enqueue.fences
        );
        assert!(
            nv.enqueue.fences >= 3.0,
            "NVTraverseQ enqueue fences {}",
            nv.enqueue.fences
        );
        assert!(iz.enqueue.fences > nv.enqueue.fences);
        assert!(iz.total.post_flush_accesses > 1.0);
    }
}
