//! OptLinkedQ — the second amendment applied to LinkedQ (Section 6.2,
//! Appendix C, Figures 5–6).
//!
//! Like [`crate::OptUnlinkedQueue`], OptLinkedQ performs a single blocking
//! persist per operation and zero accesses to explicitly flushed cache
//! lines. Because it is problematic to avoid re-reading a node's forward
//! link after flushing it, the recovery direction is reversed: recovery
//! walks **backward links** (`pred`) from a recorded tail candidate down to
//! the node that follows the dummy.
//!
//! * Nodes are split into `Persistent` (item, pred, index — flushed once,
//!   read only by recovery) and `Volatile` (item, next, pred, index, pointer
//!   to the `Persistent`) halves; head and tail point to `Volatile` objects.
//! * The `index` field, written last within the `Persistent` line, doubles as
//!   the staleness detector: recovery accepts a backward walk only if it sees
//!   strictly consecutive indices down to `headIndex + 1`.
//! * Per-thread `lastEnqueues` records (two per thread — the last and the
//!   penultimate enqueue) are written with non-temporal stores and carry a
//!   valid bit in both halves, so recovery can tell whether a record was
//!   written completely.
//! * Per-thread head indices are handled exactly as in OptUnlinkedQ.

use crate::api::{DurableQueue, QueueConfig, RecoverableQueue};
use crate::node;
use crate::root;
use crossbeam_utils::CachePadded;
use pmem::{PRef, PmemPool, MAX_THREADS};
use ssmem::{Ssmem, SsmemConfig};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Field offsets within a `Persistent` object (one 64-byte slot).
mod p {
    pub const ITEM: u32 = 0;
    pub const PRED: u32 = 8;
    pub const INDEX: u32 = 16;
}

/// Field offsets within a `Volatile` object (one 64-byte slot, never flushed).
mod v {
    pub const ITEM: u32 = 0;
    pub const NEXT: u32 = 8;
    pub const PRED: u32 = 16;
    pub const INDEX: u32 = 24;
    pub const PERSISTENT: u32 = 32;
}

/// Per-thread persistent local data: the head index on one cache line and the
/// two `lastEnqueues` cells (pointer + index each) on the next.
const LOCAL_STRIDE: u32 = 128;
const LD_HEAD_INDEX: u32 = 0;
const LD_LAST_ENQ: u32 = 64;
/// Bytes between the two `lastEnqueues` cells.
const LD_CELL_STRIDE: u32 = 16;

/// The most significant bit, used as the valid bit of a recorded index.
const INDEX_VALID_BIT: u64 = 1 << 63;

/// Volatile per-thread state (the paper keeps these next to the persistent
/// fields in `localData`; they are volatile, so they live here).
struct ThreadState {
    node_to_retire: AtomicU64,
    last_enqueues_index: AtomicU64,
    valid_bit: AtomicU64,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            node_to_retire: AtomicU64::new(0),
            last_enqueues_index: AtomicU64::new(0),
            valid_bit: AtomicU64::new(1),
        }
    }
}

/// The OptLinkedQ durable queue. See the [module docs](self).
pub struct OptLinkedQueue {
    pool: Arc<PmemPool>,
    pnodes: Ssmem,
    vnodes: Ssmem,
    head: AtomicU64,
    tail: AtomicU64,
    local_data: u32,
    threads: Box<[CachePadded<ThreadState>]>,
    config: QueueConfig,
}

/// Applies `bit_value` (0 or 1) at bit position `bit_index` of `value`
/// (Figure 6, `ApplyBit`).
#[inline]
fn apply_bit(value: u64, bit_index: u32, bit_value: u64) -> u64 {
    (value & !(1u64 << bit_index)) | (bit_value << bit_index)
}

impl OptLinkedQueue {
    fn ssmem_config(config: &QueueConfig) -> SsmemConfig {
        SsmemConfig {
            obj_size: node::NODE_SIZE,
            area_size: config.area_size,
            max_threads: config.max_threads,
        }
    }

    fn thread_states(config: &QueueConfig) -> Box<[CachePadded<ThreadState>]> {
        (0..config.max_threads)
            .map(|_| CachePadded::new(ThreadState::new()))
            .collect()
    }

    #[inline]
    fn head_index_slot(&self, tid: usize) -> u32 {
        root::local_data_slot(self.local_data, LOCAL_STRIDE, tid) + LD_HEAD_INDEX
    }

    #[inline]
    fn last_enq_cell(local_data: u32, tid: usize, cell: u32) -> u32 {
        root::local_data_slot(local_data, LOCAL_STRIDE, tid) + LD_LAST_ENQ + cell * LD_CELL_STRIDE
    }

    /// Allocates and initialises a `Volatile` object.
    fn alloc_volatile(
        &self,
        tid: usize,
        item: u64,
        index: u64,
        pred: u64,
        persistent: PRef,
    ) -> PRef {
        let vv = self.vnodes.alloc(tid);
        let o = vv.offset();
        self.pool.store_u64(o + v::ITEM, item);
        self.pool.store_u64(o + v::NEXT, 0);
        self.pool.store_u64(o + v::PRED, pred);
        self.pool.store_u64(o + v::INDEX, index);
        self.pool.store_u64(o + v::PERSISTENT, persistent.to_u64());
        vv
    }

    /// Flushes the `Persistent` halves of the suffix of nodes that might not
    /// be persistent yet, walking volatile backward links (Figure 6,
    /// `FlushNotPersistedSuffix`).
    fn flush_not_persisted_suffix(&self, tid: usize, from: PRef) {
        let pl = &self.pool;
        let mut cur = from;
        loop {
            let pred = pl.load_u64(cur.offset() + v::PRED);
            if pred == 0 {
                return;
            }
            let persistent = pl.load_u64(cur.offset() + v::PERSISTENT);
            pl.flush(tid, persistent as u32);
            cur = PRef::from_u64(pred);
        }
    }

    /// Records the freshly enqueued `Persistent` object in this thread's
    /// `lastEnqueues` array using non-temporal stores (Figure 6,
    /// `RecordLastEnqueue`).
    fn record_last_enqueue(&self, tid: usize, persistent: PRef, index: u64) {
        let state = &self.threads[tid];
        let i = state.last_enqueues_index.load(Ordering::Relaxed);
        let vb = state.valid_bit.load(Ordering::Relaxed);
        let cell = Self::last_enq_cell(self.local_data, tid, i as u32);
        self.pool
            .nt_store_u64(tid, cell, apply_bit(persistent.to_u64(), 0, vb));
        self.pool
            .nt_store_u64(tid, cell + 8, apply_bit(index, 63, vb));
        // Flip the valid bit after every second write (i.e. when i == 1), so
        // consecutive writes to the same cell alternate their valid bit.
        state.valid_bit.store(vb ^ i, Ordering::Relaxed);
        state.last_enqueues_index.store(i ^ 1, Ordering::Relaxed);
    }
}

impl DurableQueue for OptLinkedQueue {
    fn enqueue(&self, tid: usize, item: u64) {
        crate::instruments::ENQUEUES.incr();
        let pl = &self.pool;
        self.pnodes.pin(tid);
        let pnew = self.pnodes.alloc(tid);
        pl.store_u64(pnew.offset() + p::ITEM, item);
        let vnew = self.alloc_volatile(tid, item, 0, 0, pnew);
        loop {
            let tail = PRef::from_u64(self.tail.load(Ordering::Acquire));
            let tail_next = pl.load_u64(tail.offset() + v::NEXT);
            if tail_next == 0 {
                let index = pl.load_u64(tail.offset() + v::INDEX) + 1;
                let tail_persistent = pl.load_u64(tail.offset() + v::PERSISTENT);
                pl.store_u64(vnew.offset() + v::PRED, tail.to_u64());
                pl.store_u64(vnew.offset() + v::INDEX, index);
                pl.store_u64(pnew.offset() + p::PRED, tail_persistent);
                // `index` is the staleness stamp: it is written after every
                // other Persistent field (Assumption 1 keeps that order).
                pl.store_u64(pnew.offset() + p::INDEX, index);
                if pl
                    .cas_u64(tail.offset() + v::NEXT, 0, vnew.to_u64())
                    .is_ok()
                {
                    let _ = self.tail.compare_exchange(
                        tail.to_u64(),
                        vnew.to_u64(),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    self.flush_not_persisted_suffix(tid, vnew);
                    self.record_last_enqueue(tid, pnew, index);
                    // The single blocking persist: covers the suffix flushes
                    // and the two non-temporal stores above.
                    pl.sfence(tid);
                    // All nodes up to `vnew` are persistent: cut the chain.
                    pl.store_u64(vnew.offset() + v::PRED, 0);
                    break;
                }
            } else {
                let _ = self.tail.compare_exchange(
                    tail.to_u64(),
                    tail_next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
        }
        self.pnodes.unpin(tid);
    }

    fn dequeue(&self, tid: usize) -> Option<u64> {
        crate::instruments::DEQUEUES.incr();
        let pl = &self.pool;
        self.pnodes.pin(tid);
        let result = loop {
            let head = PRef::from_u64(self.head.load(Ordering::Acquire));
            let head_next = pl.load_u64(head.offset() + v::NEXT);
            if head_next == 0 {
                let index = pl.load_u64(head.offset() + v::INDEX);
                pl.nt_store_u64(tid, self.head_index_slot(tid), index);
                pl.sfence(tid);
                break None;
            }
            if self
                .head
                .compare_exchange(
                    head.to_u64(),
                    head_next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                let next = PRef::from_u64(head_next);
                let item = pl.load_u64(next.offset() + v::ITEM);
                let index = pl.load_u64(next.offset() + v::INDEX);
                pl.nt_store_u64(tid, self.head_index_slot(tid), index);
                pl.sfence(tid);
                // The new dummy must not be reachable by backward walks.
                pl.store_u64(next.offset() + v::PRED, 0);
                let previous = self.threads[tid]
                    .node_to_retire
                    .swap(head.to_u64(), Ordering::Relaxed);
                if previous != 0 {
                    let prev = PRef::from_u64(previous);
                    let prev_persistent =
                        PRef::from_u64(pl.load_u64(prev.offset() + v::PERSISTENT));
                    self.pnodes.retire(tid, prev_persistent);
                    self.vnodes.retire(tid, prev);
                }
                break Some(item);
            }
        };
        self.pnodes.unpin(tid);
        result
    }

    fn name(&self) -> &'static str {
        "OptLinkedQ"
    }

    fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    fn config(&self) -> QueueConfig {
        self.config
    }
}

impl RecoverableQueue for OptLinkedQueue {
    fn create(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        let pnodes = Ssmem::new(Arc::clone(&pool), Self::ssmem_config(&config));
        let vnodes = Ssmem::new_volatile(
            Arc::clone(&pool),
            Self::ssmem_config(&config),
            Arc::clone(pnodes.epoch()),
        );
        let local_data = root::create_local_data(&pool, LOCAL_STRIDE);
        let pdummy = pnodes.alloc(0);
        pool.store_u64(pdummy.offset() + p::ITEM, 0);
        pool.store_u64(pdummy.offset() + p::PRED, 0);
        pool.store_u64(pdummy.offset() + p::INDEX, 0);
        let vdummy = vnodes.alloc(0);
        pool.store_u64(vdummy.offset() + v::ITEM, 0);
        pool.store_u64(vdummy.offset() + v::NEXT, 0);
        pool.store_u64(vdummy.offset() + v::PRED, 0);
        pool.store_u64(vdummy.offset() + v::INDEX, 0);
        pool.store_u64(vdummy.offset() + v::PERSISTENT, pdummy.to_u64());
        OptLinkedQueue {
            pool,
            pnodes,
            vnodes,
            head: AtomicU64::new(vdummy.to_u64()),
            tail: AtomicU64::new(vdummy.to_u64()),
            local_data,
            threads: Self::thread_states(&config),
            config,
        }
    }

    fn recover(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        let pnodes = Ssmem::recover(Arc::clone(&pool), Self::ssmem_config(&config));
        let vnodes = Ssmem::new_volatile(
            Arc::clone(&pool),
            Self::ssmem_config(&config),
            Arc::clone(pnodes.epoch()),
        );
        let (local_data, stride) = root::read_local_data(&pool);
        assert_eq!(stride, LOCAL_STRIDE);

        let head_index = (0..MAX_THREADS)
            .map(|tid| {
                pool.load_u64(root::local_data_slot(local_data, stride, tid) + LD_HEAD_INDEX)
            })
            .max()
            .unwrap_or(0);

        // Gather valid lastEnqueues records with index > headIndex, sorted by
        // index from largest to smallest: the potential tails.
        let mut candidates: Vec<(u64, PRef, usize, u32)> = Vec::new();
        for tid in 0..MAX_THREADS {
            for cell in 0..2u32 {
                let cell_off = Self::last_enq_cell(local_data, tid, cell);
                let ptr_raw = pool.load_u64(cell_off);
                let idx_raw = pool.load_u64(cell_off + 8);
                let valid_ptr = ptr_raw & 1;
                let valid_idx = (idx_raw & INDEX_VALID_BIT) >> 63;
                if valid_ptr != valid_idx {
                    continue; // torn record: only one half was written back
                }
                let ptr = PRef::from_u64(ptr_raw & !1u64);
                let index = idx_raw & !INDEX_VALID_BIT;
                if !ptr.is_null() && index > head_index {
                    candidates.push((index, ptr, tid, cell));
                }
            }
        }
        candidates.sort_unstable_by_key(|candidate| std::cmp::Reverse(candidate.0));

        // Try each potential tail: accept the first one from which a backward
        // walk with strictly consecutive indices reaches headIndex + 1.
        let mut chain: Vec<(u64, PRef)> = Vec::new(); // tail .. headIndex+1
        let mut winner: Option<(usize, u32, u64)> = None; // (tid, cell, valid bit)
        'candidates: for &(index, ptr, tid, cell) in &candidates {
            if pool.load_u64(ptr.offset() + p::INDEX) != index {
                continue; // the recorded node is stale
            }
            let mut this_chain = Vec::new();
            let mut cur = ptr;
            let mut cur_index = index;
            loop {
                this_chain.push((cur_index, cur));
                if cur_index == head_index + 1 {
                    chain = this_chain;
                    let cell_off = Self::last_enq_cell(local_data, tid, cell);
                    let bit = pool.load_u64(cell_off) & 1;
                    winner = Some((tid, cell, bit));
                    break 'candidates;
                }
                let pred = pool.load_u64(cur.offset() + p::PRED);
                if pred == 0 {
                    continue 'candidates;
                }
                let pred = PRef::from_u64(pred);
                let pred_index = pool.load_u64(pred.offset() + p::INDEX);
                if pred_index != cur_index - 1 {
                    continue 'candidates; // stale node along the walk
                }
                cur = pred;
                cur_index = pred_index;
            }
        }
        chain.reverse(); // now headIndex+1 .. tail

        // Reclaim every Persistent object outside the recovered chain. The
        // ones that carry an index above headIndex (at most one per thread —
        // enqueues that were in flight) get their index zeroed and flushed so
        // that reusing them is safe; one fence at the end covers all of it.
        let live: HashSet<PRef> = chain.iter().map(|&(_, p)| p).collect();
        let mut rr = 0usize;
        pnodes.for_each_object(|obj| {
            if !live.contains(&obj) {
                if pool.load_u64(obj.offset() + p::INDEX) > head_index {
                    pool.store_u64(obj.offset() + p::INDEX, 0);
                    pool.flush(0, obj.offset());
                }
                pnodes.free_immediate(rr % config.max_threads, obj);
                rr += 1;
            }
        });

        // Rebuild the volatile queue.
        let pdummy = pnodes.alloc(0);
        pool.store_u64(pdummy.offset() + p::ITEM, 0);
        pool.store_u64(pdummy.offset() + p::PRED, 0);
        pool.store_u64(pdummy.offset() + p::INDEX, head_index);
        let vdummy = vnodes.alloc(0);
        pool.store_u64(vdummy.offset() + v::ITEM, 0);
        pool.store_u64(vdummy.offset() + v::NEXT, 0);
        pool.store_u64(vdummy.offset() + v::PRED, 0);
        pool.store_u64(vdummy.offset() + v::INDEX, head_index);
        pool.store_u64(vdummy.offset() + v::PERSISTENT, pdummy.to_u64());
        let mut prev = vdummy;
        for &(index, pobj) in &chain {
            let item = pool.load_u64(pobj.offset() + p::ITEM);
            let vobj = vnodes.alloc(0);
            pool.store_u64(vobj.offset() + v::ITEM, item);
            pool.store_u64(vobj.offset() + v::NEXT, 0);
            pool.store_u64(vobj.offset() + v::PRED, prev.to_u64());
            pool.store_u64(vobj.offset() + v::INDEX, index);
            pool.store_u64(vobj.offset() + v::PERSISTENT, pobj.to_u64());
            pool.store_u64(prev.offset() + v::NEXT, vobj.to_u64());
            prev = vobj;
        }
        // The last node's backward link is cut: everything it precedes is
        // persistent.
        pool.store_u64(prev.offset() + v::PRED, 0);

        // Reset the per-thread lastEnqueues records. The record that named
        // the recovered tail is kept (a crash before any further enqueue must
        // still find the tail); every other record is zeroed.
        let threads = Self::thread_states(&config);
        for tid in 0..MAX_THREADS {
            for cell in 0..2u32 {
                if winner
                    == Some((
                        tid,
                        cell,
                        pool.load_u64(Self::last_enq_cell(local_data, tid, cell)) & 1,
                    ))
                {
                    continue;
                }
                let cell_off = Self::last_enq_cell(local_data, tid, cell);
                pool.nt_store_u64(0, cell_off, 0);
                pool.nt_store_u64(0, cell_off + 8, 0);
            }
        }
        if let Some((tid, cell, bit)) = winner {
            if tid < config.max_threads {
                let state = &threads[tid];
                if cell == 0 {
                    // Next write goes to cell 1 with the current bit, then the
                    // following write to cell 0 uses the flipped bit.
                    state.valid_bit.store(bit, Ordering::Relaxed);
                    state.last_enqueues_index.store(1, Ordering::Relaxed);
                } else {
                    // Next write goes to cell 0; the following write to cell 1
                    // must use the flipped bit.
                    state.valid_bit.store(bit ^ 1, Ordering::Relaxed);
                    state.last_enqueues_index.store(0, Ordering::Relaxed);
                }
            }
        }
        pool.sfence(0);

        OptLinkedQueue {
            pool,
            pnodes,
            vnodes,
            head: AtomicU64::new(vdummy.to_u64()),
            tail: AtomicU64::new(prev.to_u64()),
            local_data,
            threads,
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn apply_bit_matches_the_papers_definition() {
        assert_eq!(apply_bit(0b1010, 0, 1), 0b1011);
        assert_eq!(apply_bit(0b1011, 0, 0), 0b1010);
        assert_eq!(apply_bit(5, 63, 1), 5 | (1 << 63));
        assert_eq!(apply_bit(5 | (1 << 63), 63, 0), 5);
    }

    #[test]
    fn sequential_fifo() {
        testkit::check_sequential_fifo::<OptLinkedQueue>();
    }

    #[test]
    fn interleaved_matches_model() {
        testkit::check_against_model::<OptLinkedQueue>(0xB1);
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        testkit::check_concurrent_integrity::<OptLinkedQueue>(4, 300);
    }

    #[test]
    fn concurrent_per_producer_fifo_order() {
        testkit::check_concurrent_fifo_per_producer::<OptLinkedQueue>(2, 2, 300);
    }

    #[test]
    fn recovery_preserves_completed_operations() {
        testkit::check_recovery_preserves_completed_ops::<OptLinkedQueue>(100, 41);
    }

    #[test]
    fn recovery_of_emptied_queue_is_empty() {
        testkit::check_recovery_of_emptied_queue::<OptLinkedQueue>();
    }

    #[test]
    fn repeated_crashes_keep_surviving_state() {
        testkit::check_repeated_crashes::<OptLinkedQueue>(5, 40);
    }

    #[test]
    fn crash_under_concurrency_is_durably_linearizable() {
        testkit::check_crash_during_concurrent_ops::<OptLinkedQueue>(4, 300, 0xB1B1);
    }

    #[test]
    fn crash_with_eviction_adversary_is_durably_linearizable() {
        testkit::check_crash_with_evictions::<OptLinkedQueue>(3, 200, 0xB2B2);
    }

    #[test]
    fn optimal_persistence_profile() {
        let counts = testkit::persist_counts::<OptLinkedQueue>(1000);
        assert!(
            (counts.enqueue.fences - 1.0).abs() < 0.05,
            "enqueue fences {}",
            counts.enqueue.fences
        );
        assert!(
            (counts.dequeue.fences - 1.0).abs() < 0.05,
            "dequeue fences {}",
            counts.dequeue.fences
        );
        // Each enqueue issues exactly two non-temporal stores (its
        // lastEnqueues record) and each dequeue one (its head index).
        assert!(
            (counts.enqueue.nt_stores - 2.0).abs() < 0.05,
            "enqueue nt stores {}",
            counts.enqueue.nt_stores
        );
        assert!(
            (counts.dequeue.nt_stores - 1.0).abs() < 0.05,
            "dequeue nt stores {}",
            counts.dequeue.nt_stores
        );
        assert_eq!(
            counts.total.post_flush_accesses, 0.0,
            "OptLinkedQ must never touch flushed content"
        );
    }
}
