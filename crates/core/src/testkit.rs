//! Reusable correctness checks, generic over the queue algorithm.
//!
//! Every queue module instantiates the same battery of checks: sequential
//! FIFO semantics, equivalence to a `VecDeque` model, concurrent
//! no-loss/no-duplication, per-producer FIFO order, crash recovery of
//! completed operations, and durable linearizability under crashes that land
//! in the middle of concurrent operations (with and without the
//! implicit-eviction adversary). The module is `pub` so the workspace's
//! integration tests and the harness checker reuse the same machinery.

pub mod subprocess;

use crate::api::{DurableQueue, QueueConfig, RecoverableQueue};
use pmem::{PmemPool, PoolConfig, StatsSnapshot};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// A tiny deterministic RNG (SplitMix64) so the test kit needs no external
/// crates and failures are reproducible from the seed.
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    /// Uniform value in `0..bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// Creates a fresh queue of type `Q` on a fresh small zero-latency pool.
pub fn fresh<Q: RecoverableQueue>() -> (Q, Arc<PmemPool>) {
    fresh_with::<Q>(
        PoolConfig::test_with_size(8 << 20),
        QueueConfig::small_test(),
    )
}

/// Creates a fresh queue with explicit pool and queue configurations.
pub fn fresh_with<Q: RecoverableQueue>(
    pool_cfg: PoolConfig,
    q_cfg: QueueConfig,
) -> (Q, Arc<PmemPool>) {
    let pool = Arc::new(PmemPool::new(pool_cfg));
    let q = Q::create(Arc::clone(&pool), q_cfg);
    (q, pool)
}

/// Encodes a value that identifies its producer and sequence number, so the
/// concurrent checks can verify per-producer FIFO order.
pub fn encode(producer: usize, seq: u64) -> u64 {
    ((producer as u64) << 40) | (seq + 1)
}

/// Decodes a value produced by [`encode`] into `(producer, seq)`.
pub fn decode(value: u64) -> (usize, u64) {
    ((value >> 40) as usize, (value & 0xFF_FFFF_FFFF) - 1)
}

// ---------------------------------------------------------------------------
// Sequential semantics
// ---------------------------------------------------------------------------

/// Basic single-threaded FIFO behaviour: order, emptiness, refill.
pub fn check_sequential_fifo<Q: RecoverableQueue>() {
    let (q, _pool) = fresh::<Q>();
    assert_eq!(q.dequeue(0), None, "fresh queue must be empty");
    for i in 1..=100u64 {
        q.enqueue(0, i);
    }
    for i in 1..=100u64 {
        assert_eq!(q.dequeue(0), Some(i), "FIFO order violated at {i}");
    }
    assert_eq!(q.dequeue(0), None);
    // The queue must remain usable after being emptied.
    q.enqueue(0, 7);
    q.enqueue(0, 8);
    assert_eq!(q.dequeue(0), Some(7));
    assert_eq!(q.dequeue(0), Some(8));
    assert_eq!(q.dequeue(0), None);
}

/// Random single-threaded interleaving of enqueues and dequeues compared to
/// a `VecDeque` model.
pub fn check_against_model<Q: RecoverableQueue>(seed: u64) {
    let (q, _pool) = fresh::<Q>();
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut rng = TestRng::new(seed);
    let mut next_value = 1u64;
    for _ in 0..3000 {
        if rng.below(100) < 55 {
            q.enqueue(0, next_value);
            model.push_back(next_value);
            next_value += 1;
        } else {
            assert_eq!(q.dequeue(0), model.pop_front(), "model divergence");
        }
    }
    while let Some(expect) = model.pop_front() {
        assert_eq!(q.dequeue(0), Some(expect));
    }
    assert_eq!(q.dequeue(0), None);
}

// ---------------------------------------------------------------------------
// Concurrent semantics
// ---------------------------------------------------------------------------

/// Half the threads enqueue, half dequeue; afterwards the union of everything
/// dequeued plus everything left in the queue must equal exactly what was
/// enqueued (no loss, no duplication).
pub fn check_concurrent_integrity<Q: RecoverableQueue + 'static>(
    threads: usize,
    ops_per_thread: usize,
) {
    assert!(threads >= 2);
    let (q, _pool) = fresh_with::<Q>(
        PoolConfig::test_with_size(32 << 20),
        QueueConfig::small_test().with_threads(threads),
    );
    let q = Arc::new(q);
    let producers = threads / 2;
    let consumers = threads - producers;
    let barrier = Arc::new(Barrier::new(threads));
    let done = Arc::new(AtomicBool::new(false));
    let consumed = Arc::new(Mutex::new(Vec::<u64>::new()));
    let mut handles = Vec::new();

    for p in 0..producers {
        let q = Arc::clone(&q);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for seq in 0..ops_per_thread as u64 {
                q.enqueue(p, encode(p, seq));
            }
        }));
    }
    for c in 0..consumers {
        let tid = producers + c;
        let q = Arc::clone(&q);
        let barrier = Arc::clone(&barrier);
        let done = Arc::clone(&done);
        let consumed = Arc::clone(&consumed);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut local = Vec::new();
            loop {
                match q.dequeue(tid) {
                    Some(v) => local.push(v),
                    None => {
                        if done.load(Ordering::Acquire) && q.dequeue(tid).is_none() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
            consumed.lock().unwrap().extend(local);
        }));
    }
    // Wait for the producers (the first `producers` handles) to finish.
    for h in handles.drain(..producers) {
        h.join().unwrap();
    }
    done.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }

    let consumed = consumed.lock().unwrap();
    let expected: HashSet<u64> = (0..producers)
        .flat_map(|p| (0..ops_per_thread as u64).map(move |s| encode(p, s)))
        .collect();
    let got: HashSet<u64> = consumed.iter().copied().collect();
    assert_eq!(consumed.len(), got.len(), "a value was dequeued twice");
    assert_eq!(got, expected, "lost or invented values");
}

/// Producers and consumers run concurrently; each consumer's stream must see
/// every producer's values in increasing sequence order (a necessary
/// condition of FIFO linearizability).
pub fn check_concurrent_fifo_per_producer<Q: RecoverableQueue + 'static>(
    producers: usize,
    consumers: usize,
    items_per_producer: usize,
) {
    let threads = producers + consumers;
    let (q, _pool) = fresh_with::<Q>(
        PoolConfig::test_with_size(32 << 20),
        QueueConfig::small_test().with_threads(threads),
    );
    let q = Arc::new(q);
    let barrier = Arc::new(Barrier::new(threads));
    let done = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for p in 0..producers {
        let q = Arc::clone(&q);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for seq in 0..items_per_producer as u64 {
                q.enqueue(p, encode(p, seq));
            }
            Vec::new()
        }));
    }
    for c in 0..consumers {
        let tid = producers + c;
        let q = Arc::clone(&q);
        let barrier = Arc::clone(&barrier);
        let done = Arc::clone(&done);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let mut local = Vec::new();
            loop {
                match q.dequeue(tid) {
                    Some(v) => local.push(v),
                    None => {
                        if done.load(Ordering::Acquire) && q.dequeue(tid).is_none() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
            local
        }));
    }
    let mut streams = Vec::new();
    for (i, h) in handles.into_iter().enumerate() {
        let out = h.join().unwrap();
        if i >= producers {
            streams.push(out);
        }
        if i + 1 == producers {
            // All producers have finished: let the consumers drain and stop.
            done.store(true, Ordering::Release);
        }
    }
    for stream in streams {
        let mut last_seq: HashMap<usize, u64> = HashMap::new();
        for v in stream {
            let (p, seq) = decode(v);
            if let Some(&prev) = last_seq.get(&p) {
                assert!(
                    seq > prev,
                    "per-producer FIFO order violated: {seq} after {prev}"
                );
            }
            last_seq.insert(p, seq);
        }
    }
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

/// Drains a queue completely (single-threaded), returning its content in
/// order.
pub fn drain<Q: DurableQueue + ?Sized>(q: &Q, tid: usize) -> Vec<u64> {
    let mut out = Vec::new();
    while let Some(v) = q.dequeue(tid) {
        out.push(v);
    }
    out
}

/// Every completed operation must survive a crash: enqueue `n`, dequeue `k`,
/// crash, recover — the recovered queue must hold exactly items `k+1..=n` in
/// order.
pub fn check_recovery_preserves_completed_ops<Q: RecoverableQueue>(n: u64, k: u64) {
    assert!(k <= n);
    let (q, pool) = fresh::<Q>();
    for i in 1..=n {
        q.enqueue(0, i);
    }
    for i in 1..=k {
        assert_eq!(q.dequeue(0), Some(i));
    }
    let recovered_pool = Arc::new(pool.simulate_crash());
    let recovered = Q::recover(Arc::clone(&recovered_pool), QueueConfig::small_test());
    let rest = drain(&recovered, 0);
    assert_eq!(
        rest,
        (k + 1..=n).collect::<Vec<_>>(),
        "completed operations lost or reordered"
    );
    // The recovered queue must remain fully operational.
    recovered.enqueue(1, 4242);
    assert_eq!(recovered.dequeue(1), Some(4242));
    assert_eq!(recovered.dequeue(1), None);
}

/// A queue that was completely emptied before the crash must recover empty.
pub fn check_recovery_of_emptied_queue<Q: RecoverableQueue>() {
    let (q, pool) = fresh::<Q>();
    for i in 0..50u64 {
        q.enqueue(0, i + 1);
    }
    for _ in 0..50 {
        assert!(q.dequeue(0).is_some());
    }
    assert_eq!(q.dequeue(0), None);
    let recovered_pool = Arc::new(pool.simulate_crash());
    let recovered = Q::recover(Arc::clone(&recovered_pool), QueueConfig::small_test());
    assert_eq!(
        recovered.dequeue(0),
        None,
        "emptied queue resurrected stale items"
    );
    recovered.enqueue(0, 99);
    assert_eq!(recovered.dequeue(0), Some(99));
}

/// A volatile queue recovers empty regardless of its pre-crash content.
pub fn check_volatile_recovery_is_empty<Q: RecoverableQueue>() {
    let (q, pool) = fresh::<Q>();
    for i in 1..=20u64 {
        q.enqueue(0, i);
    }
    let recovered_pool = Arc::new(pool.simulate_crash());
    let recovered = Q::recover(recovered_pool, QueueConfig::small_test());
    assert_eq!(recovered.dequeue(0), None);
}

/// Several crash/recover cycles with completed operations in between; the
/// queue must always equal the sequential model.
pub fn check_repeated_crashes<Q: RecoverableQueue>(rounds: usize, ops_per_round: u64) {
    let mut pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(16 << 20)));
    let mut q = Q::create(Arc::clone(&pool), QueueConfig::small_test());
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut rng = TestRng::new(0xC0FFEE);
    let mut next = 1u64;
    for round in 0..rounds {
        for _ in 0..ops_per_round {
            if rng.below(100) < 60 {
                q.enqueue(0, next);
                model.push_back(next);
                next += 1;
            } else {
                assert_eq!(
                    q.dequeue(0),
                    model.pop_front(),
                    "divergence in round {round}"
                );
            }
        }
        pool = Arc::new(pool.simulate_crash());
        q = Q::recover(Arc::clone(&pool), QueueConfig::small_test());
    }
    let rest = drain(&q, 0);
    assert_eq!(rest, model.iter().copied().collect::<Vec<_>>());
}

/// Outcome log of one worker thread in the concurrent crash tests.
#[derive(Default)]
struct WorkerLog {
    /// Operations that definitely completed before the crash snapshot.
    definite_enqueues: Vec<u64>,
    definite_dequeues: Vec<u64>,
    /// Operations that completed after (or concurrently with) the snapshot.
    maybe_enqueues: Vec<u64>,
    maybe_dequeues: Vec<u64>,
}

/// Runs `threads` workers performing random operations, takes a crash
/// snapshot somewhere in the middle, recovers a queue from it and checks
/// durable linearizability conditions (see the assertions at the end).
pub fn check_crash_during_concurrent_ops<Q: RecoverableQueue + 'static>(
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) {
    run_concurrent_crash_check::<Q>(threads, ops_per_thread, seed, 0.0);
}

/// Same as [`check_crash_during_concurrent_ops`] but with the
/// implicit-eviction adversary enabled both during the run and at the crash,
/// exploring NVRAM states beyond what the algorithm explicitly persisted.
pub fn check_crash_with_evictions<Q: RecoverableQueue + 'static>(
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) {
    run_concurrent_crash_check::<Q>(threads, ops_per_thread, seed, 0.02);
}

fn run_concurrent_crash_check<Q: RecoverableQueue + 'static>(
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
    eviction_probability: f64,
) {
    let pool_cfg = PoolConfig::test_with_size(32 << 20).with_evictions(eviction_probability, seed);
    let pool = Arc::new(PmemPool::new(pool_cfg));
    let q = Arc::new(Q::create(
        Arc::clone(&pool),
        QueueConfig::small_test().with_threads(threads),
    ));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let crashed = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for tid in 0..threads {
        let q = Arc::clone(&q);
        let barrier = Arc::clone(&barrier);
        let crashed = Arc::clone(&crashed);
        handles.push(std::thread::spawn(move || {
            let mut log = WorkerLog::default();
            let mut rng = TestRng::new(seed ^ (tid as u64) << 17);
            barrier.wait();
            for seq in 0..ops_per_thread as u64 {
                if rng.below(100) < 60 {
                    let v = encode(tid, seq);
                    q.enqueue(tid, v);
                    if crashed.load(Ordering::SeqCst) {
                        log.maybe_enqueues.push(v);
                    } else {
                        log.definite_enqueues.push(v);
                    }
                } else {
                    let r = q.dequeue(tid);
                    if let Some(v) = r {
                        if crashed.load(Ordering::SeqCst) {
                            log.maybe_dequeues.push(v);
                        } else {
                            log.definite_dequeues.push(v);
                        }
                    }
                }
            }
            log
        }));
    }
    barrier.wait();
    // Let the workers make some progress, then take the crash snapshot while
    // they are still running.
    std::thread::sleep(std::time::Duration::from_millis(10));
    crashed.store(true, Ordering::SeqCst);
    let recovered_pool = Arc::new(if eviction_probability > 0.0 {
        pool.simulate_crash_with_evictions(0.3, seed ^ 0xABCD)
    } else {
        pool.simulate_crash()
    });

    let mut logs = Vec::new();
    for h in handles {
        logs.push(h.join().unwrap());
    }

    let recovered = Q::recover(
        Arc::clone(&recovered_pool),
        QueueConfig::small_test().with_threads(threads),
    );
    let recovered_items = drain(&recovered, 0);

    // --- Durable-linearizability checks -----------------------------------
    let definite_enqueued: HashSet<u64> = logs
        .iter()
        .flat_map(|l| l.definite_enqueues.iter().copied())
        .collect();
    let all_enqueued: HashSet<u64> = logs
        .iter()
        .flat_map(|l| {
            l.definite_enqueues
                .iter()
                .chain(l.maybe_enqueues.iter())
                .copied()
        })
        .collect();
    let definite_dequeued: HashSet<u64> = logs
        .iter()
        .flat_map(|l| l.definite_dequeues.iter().copied())
        .collect();
    let all_dequeued: HashSet<u64> = logs
        .iter()
        .flat_map(|l| {
            l.definite_dequeues
                .iter()
                .chain(l.maybe_dequeues.iter())
                .copied()
        })
        .collect();

    // 1. No invented values, no duplicates in the recovered queue.
    let recovered_set: HashSet<u64> = recovered_items.iter().copied().collect();
    assert_eq!(
        recovered_set.len(),
        recovered_items.len(),
        "recovered queue contains a duplicate"
    );
    for v in &recovered_items {
        assert!(
            all_enqueued.contains(v),
            "recovered value {v:#x} was never enqueued"
        );
    }

    // 2. A value returned by a dequeue that completed before the crash must
    //    not reappear after recovery.
    for v in &recovered_items {
        assert!(
            !definite_dequeued.contains(v),
            "value {v:#x} dequeued before the crash reappeared after recovery"
        );
    }

    // 3. Every value whose enqueue completed before the crash and that was
    //    not taken by ANY dequeue must be present after recovery (completed
    //    operations survive).
    for v in definite_enqueued.iter() {
        if !all_dequeued.contains(v) {
            assert!(
                recovered_set.contains(v),
                "value {v:#x} from a completed enqueue vanished across the crash"
            );
        }
    }

    // 4. Per-producer FIFO order within the recovered queue.
    let mut last_seq: HashMap<usize, u64> = HashMap::new();
    for v in &recovered_items {
        let (p, seq) = decode(*v);
        if let Some(&prev) = last_seq.get(&p) {
            assert!(
                seq > prev,
                "recovered queue violates producer {p}'s FIFO order"
            );
        }
        last_seq.insert(p, seq);
    }

    // 5. The recovered queue must remain fully operational.
    recovered.enqueue(0, encode(63, 0));
    assert!(drain(&recovered, 0).contains(&encode(63, 0)));
}

// ---------------------------------------------------------------------------
// Persistence-operation accounting (experiments E7/E8)
// ---------------------------------------------------------------------------

/// Per-operation persistence costs measured over a single-threaded run.
pub struct PersistCounts {
    /// Averages over the enqueue-only phase.
    pub enqueue: pmem::stats::PerOpStats,
    /// Averages over the dequeue-only phase.
    pub dequeue: pmem::stats::PerOpStats,
    /// Averages over both phases combined.
    pub total: pmem::stats::PerOpStats,
}

/// Measures flushes/fences/nt-stores/post-flush-accesses per operation for
/// queue `Q`, excluding allocator warm-up (areas are carved and recycled
/// before measurement starts, as in the paper's steady-state runs).
pub fn persist_counts<Q: RecoverableQueue>(ops: u64) -> PersistCounts {
    // A large designated area so that the measured phases never carve a new
    // one: area carving legitimately flushes the whole area, but that is an
    // allocator cost the paper's per-operation analysis amortises away.
    let cfg = QueueConfig {
        max_threads: 8,
        area_size: 2 << 20,
    };
    let (q, _pool) = fresh_with::<Q>(PoolConfig::test_with_size(32 << 20), cfg);
    persist_counts_on(&q, ops)
}

/// The measurement recipe of [`persist_counts`] on an already-built queue:
/// warm-up (enqueue + dequeue `ops` items), then an enqueue phase and a
/// dequeue phase over the queue's aggregated counters. Taking
/// [`DurableQueue::stats`] rather than a pool makes the recipe apply to
/// multi-pool compositions (the `shard` crate's sharded counts table)
/// unchanged.
pub fn persist_counts_on<Q: DurableQueue + ?Sized>(q: &Q, ops: u64) -> PersistCounts {
    // Warm-up: carve areas and populate free lists so the measured phases
    // exercise only the algorithm itself.
    for i in 0..ops {
        q.enqueue(0, i + 1);
    }
    for _ in 0..ops {
        q.dequeue(0);
    }
    q.reset_stats();
    let base = q.stats();
    for i in 0..ops {
        q.enqueue(0, i + 1);
    }
    let after_enq = q.stats();
    for _ in 0..ops {
        assert!(q.dequeue(0).is_some());
    }
    let after_deq = q.stats();
    let enq: StatsSnapshot = after_enq - base;
    let deq: StatsSnapshot = after_deq - after_enq;
    let total: StatsSnapshot = after_deq - base;
    PersistCounts {
        enqueue: enq.per_op(ops),
        dequeue: deq.per_op(ops),
        total: total.per_op(2 * ops),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for p in [0usize, 1, 7, 63] {
            for s in [0u64, 1, 1000, 1 << 30] {
                assert_eq!(decode(encode(p, s)), (p, s));
            }
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
