//! Fixed locations of the queue's persistent roots inside the pool.
//!
//! A recovery procedure starts from nothing but the pool, so the global
//! persistent state of the queue — or offsets leading to it — lives at fixed
//! offsets inside the pool's queue-root block
//! ([`pmem::layout::QUEUE_ROOT`]). Head and tail live on separate cache
//! lines, as in the paper's implementation, to avoid false sharing.

use pmem::layout::{CACHE_LINE, QUEUE_ROOT};
use pmem::{PmemPool, MAX_THREADS};

/// Offset of the queue head word (one cache line).
pub const ROOT_HEAD: u32 = QUEUE_ROOT;

/// Offset of the queue tail word (one cache line).
pub const ROOT_TAIL: u32 = QUEUE_ROOT + CACHE_LINE as u32;

/// Offset of the metadata line.
pub const ROOT_META: u32 = QUEUE_ROOT + 2 * CACHE_LINE as u32;

/// Metadata word: pool offset of the per-thread persistent local-data array.
pub const META_LOCALDATA: u32 = ROOT_META;

/// Metadata word: stride in bytes of one thread's local-data record.
pub const META_LOCALDATA_STRIDE: u32 = ROOT_META + 8;

/// Allocates (from pool raw space) and durably publishes a per-thread
/// persistent local-data array of `stride` bytes per thread, recording its
/// offset and stride in the root metadata line. Returns the array's offset.
///
/// The array space is zeroed and persisted, so recovery can rely on
/// never-written records reading as zero.
pub fn create_local_data(pool: &PmemPool, stride: u32) -> u32 {
    assert_eq!(stride % CACHE_LINE as u32, 0);
    let len = stride * MAX_THREADS as u32;
    let off = pool.alloc_raw(len, CACHE_LINE as u32);
    pool.zero_range(off, len);
    pool.flush_range(0, off, len);
    pool.store_u64(META_LOCALDATA, off as u64);
    pool.store_u64(META_LOCALDATA_STRIDE, stride as u64);
    pool.flush(0, ROOT_META);
    pool.sfence(0);
    off
}

/// Reads back the local-data array location published by
/// [`create_local_data`]. Returns `(offset, stride)`.
pub fn read_local_data(pool: &PmemPool) -> (u32, u32) {
    (
        pool.load_u64(META_LOCALDATA) as u32,
        pool.load_u64(META_LOCALDATA_STRIDE) as u32,
    )
}

/// Offset of thread `tid`'s record within the local-data array at
/// `(base, stride)`.
#[inline]
pub fn local_data_slot(base: u32, stride: u32, tid: usize) -> u32 {
    base + stride * tid as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{PmemPool, PoolConfig};

    #[test]
    fn root_lines_are_distinct() {
        assert_ne!(ROOT_HEAD / 64, ROOT_TAIL / 64);
        assert_ne!(ROOT_TAIL / 64, ROOT_META / 64);
    }

    #[test]
    fn local_data_roundtrip_survives_crash() {
        let pool = PmemPool::new(PoolConfig::small_test());
        let off = create_local_data(&pool, 128);
        let recovered = pool.simulate_crash();
        let (r_off, r_stride) = read_local_data(&recovered);
        assert_eq!(r_off, off);
        assert_eq!(r_stride, 128);
        // Zeroed content is durable.
        assert_eq!(recovered.load_u64(local_data_slot(r_off, r_stride, 5)), 0);
        assert_eq!(local_data_slot(r_off, r_stride, 2), off + 256);
    }
}
