//! Helpers shared by the recovery procedures of the link-persisting queues
//! (DurableMSQ, IzraelevitzQ, NVTraverseQ, LinkedQ).

use pmem::{PRef, PmemPool};
use ssmem::Ssmem;
use std::collections::HashSet;

/// Follows persisted `next` links starting from `head` and returns the whole
/// chain (including `head`), stopping at the first node whose `next` is null
/// or for which `keep_going` returns false.
pub fn traverse_chain(
    pool: &PmemPool,
    head: PRef,
    next_field: u32,
    mut keep_going: impl FnMut(PRef) -> bool,
) -> Vec<PRef> {
    let mut chain = Vec::new();
    let mut seen = HashSet::new();
    let mut cur = head;
    loop {
        chain.push(cur);
        seen.insert(cur);
        let next = PRef::from_u64(pool.load_u64(cur.offset() + next_field));
        // Stop on a null link, on the caller's predicate, or on a cycle
        // (stale links under the eviction adversary must never hang
        // recovery).
        if next.is_null() || seen.contains(&next) || !keep_going(next) {
            return chain;
        }
        cur = next;
    }
}

/// Returns every object slot of the durable allocator that is *not* in
/// `live` to the allocator's free lists, distributing them round-robin over
/// the threads. Runs single-threaded during recovery. Returns the number of
/// reclaimed slots.
pub fn reclaim_dead(nodes: &Ssmem, live: &HashSet<PRef>, max_threads: usize) -> usize {
    let mut reclaimed = 0usize;
    let mut tid = 0usize;
    nodes.for_each_object(|obj| {
        if !live.contains(&obj) {
            nodes.free_immediate(tid, obj);
            tid = (tid + 1) % max_threads;
            reclaimed += 1;
        }
    });
    reclaimed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolConfig;
    use ssmem::SsmemConfig;
    use std::sync::Arc;

    #[test]
    fn traverse_follows_links_until_null() {
        let pool = Arc::new(pmem::PmemPool::new(PoolConfig::small_test()));
        let nodes = Ssmem::new(Arc::clone(&pool), SsmemConfig::small(2));
        let a = nodes.alloc(0);
        let b = nodes.alloc(0);
        let c = nodes.alloc(0);
        pool.store_u64(a.offset() + 8, b.to_u64());
        pool.store_u64(b.offset() + 8, c.to_u64());
        pool.store_u64(c.offset() + 8, 0);
        let chain = traverse_chain(&pool, a, 8, |_| true);
        assert_eq!(chain, vec![a, b, c]);
        // A predicate can cut the traversal short.
        let chain = traverse_chain(&pool, a, 8, |n| n != c);
        assert_eq!(chain, vec![a, b]);
    }

    #[test]
    fn reclaim_dead_frees_everything_outside_the_live_set() {
        let pool = Arc::new(pmem::PmemPool::new(PoolConfig::small_test()));
        let cfg = SsmemConfig {
            obj_size: 64,
            area_size: 1024,
            max_threads: 2,
        };
        let nodes = Ssmem::new(Arc::clone(&pool), cfg);
        let keep = nodes.alloc(0);
        let _drop1 = nodes.alloc(0);
        let _drop2 = nodes.alloc(0);
        let live: HashSet<_> = [keep].into_iter().collect();
        let reclaimed = reclaim_dead(&nodes, &live, 2);
        let total: u32 = nodes.areas().iter().map(|a| a.num_objects).sum();
        assert_eq!(reclaimed, total as usize - 1);
        // The live slot is never handed out again before the dead ones run out.
        for _ in 0..reclaimed {
            assert_ne!(nodes.alloc(0), keep);
        }
    }
}
