//! Shared scaffolding for subprocess crash tests.
//!
//! The workspace's restart tests all follow the same protocol: a hidden
//! `#[test]` child entry point (a no-op unless parent-set env vars are
//! present) is re-executed from `std::env::current_exe()`, drives traffic
//! against a file-backed pool while acknowledging every completed operation
//! with one `<tag> <value>\n` write syscall, and is SIGKILLed (or aborts at
//! an env-gated crash point) mid-traffic; the parent then reopens the files
//! and validates a linearizable suffix against the ack log. This module
//! holds the process plumbing every such test shares — spawn, progress
//! wait, kill/reap, and the torn-tail-tolerant ack-log reader — so each
//! test file contributes only its workload and its invariants.
//!
//! An ack line that reached the kernel survives the kill exactly like the
//! pool's page-cache writes do; a torn trailing line (the kill can land
//! mid-write) is an unacknowledged operation and is ignored.

use std::collections::BTreeSet;
use std::ffi::OsStr;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// A fresh scratch directory under the system temp dir, unique per process
/// and test thread; any leftover from a previous run is removed first.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Builder for re-executing the current test binary as a crash-test child.
///
/// The child process runs exactly one hidden `#[test]` entry point
/// (`--exact`), inherits the given env vars (which is how the entry point
/// knows it is the child and where its files live), and has its stdio
/// nulled so the parent's test output stays clean.
pub struct ChildProc {
    cmd: Command,
}

impl ChildProc {
    /// Targets the hidden `#[test]` entry named `entry` in this binary.
    pub fn new(entry: &str) -> Self {
        let mut cmd = Command::new(std::env::current_exe().expect("test binary path"));
        cmd.args([entry, "--exact", "--nocapture"])
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        ChildProc { cmd }
    }

    /// Passes an env var to the child (the gate that activates the entry).
    pub fn env(mut self, key: &str, value: impl AsRef<OsStr>) -> Self {
        self.cmd.env(key, value);
        self
    }

    /// Passes an env-gated abort point (`env(var, "1")`) when `Some`; the
    /// child will crash itself there instead of waiting for a SIGKILL.
    pub fn abort_at(self, var: Option<&str>) -> Self {
        match var {
            Some(var) => self.env(var, "1"),
            None => self,
        }
    }

    /// Spawns the child.
    pub fn spawn(mut self) -> Child {
        self.cmd.spawn().expect("spawn crash-test child")
    }

    /// Spawns the child and waits for it to exit on its own — the shape of
    /// deterministic abort-point rounds. Panics if the child exits
    /// successfully (the abort point must have fired).
    pub fn run_to_abort(self) -> ExitStatus {
        let mut child = self.spawn();
        let status = child.wait().expect("reap aborting child");
        assert!(
            !status.success(),
            "the abort point must have fired: {status}"
        );
        status
    }
}

/// Number of complete lines in `path` (0 when absent). Cheap enough to
/// poll; the full ack parse runs only after the kill.
pub fn count_lines(path: &Path) -> usize {
    std::fs::read(path)
        .map(|raw| raw.iter().filter(|&&b| b == b'\n').count())
        .unwrap_or(0)
}

/// Polls `ready()` until it returns true, panicking if the child exits
/// first (it must die by *our* hand, not its own) or `timeout` elapses.
/// `what` names the awaited condition in the panic messages.
pub fn wait_until(
    child: &mut Child,
    timeout: Duration,
    what: &str,
    mut ready: impl FnMut() -> bool,
) {
    let deadline = Instant::now() + timeout;
    loop {
        if ready() {
            return;
        }
        if let Some(status) = child.try_wait().expect("poll crash-test child") {
            panic!("child exited prematurely ({status}) before {what}");
        }
        assert!(
            Instant::now() < deadline,
            "child did not reach {what} within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Waits until the ack log at `path` holds at least `min_lines` complete
/// lines, so a kill always lands mid-traffic, never before traffic.
pub fn wait_for_lines(child: &mut Child, path: &Path, min_lines: usize, timeout: Duration) {
    wait_until(child, timeout, &format!("{min_lines} ack lines"), || {
        count_lines(path) >= min_lines
    });
}

/// SIGKILLs the child and reaps it — the crash under test.
pub fn kill_and_reap(child: &mut Child) {
    child.kill().expect("SIGKILL crash-test child");
    child.wait().expect("reap crash-test child");
}

/// Parses complete `<tag> <number>` lines from an ack log, in written
/// order. A torn trailing line (no final newline) is ignored, exactly like
/// the unacknowledged operation it is; a malformed *complete* line is a
/// test bug and panics. Returns the empty vec when the file is absent (the
/// kill can land before the child created it).
pub fn read_acks(path: &Path, tag: &str) -> Vec<u64> {
    let Ok(raw) = std::fs::read(path) else {
        return Vec::new();
    };
    let text = String::from_utf8_lossy(&raw);
    let mut out = Vec::new();
    for line in text.split_inclusive('\n') {
        let Some(body) = line.strip_suffix('\n') else {
            break; // torn tail
        };
        let Some(num) = body.strip_prefix(tag).map(str::trim) else {
            panic!("malformed ack line {body:?}");
        };
        out.push(num.parse::<u64>().unwrap_or_else(|_| {
            panic!("malformed ack number in {body:?}");
        }));
    }
    out
}

/// [`read_acks`] with a uniqueness guarantee: each value may be
/// acknowledged at most once (one ack per completed operation).
pub fn read_unique_acks(path: &Path, tag: &str) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    for num in read_acks(path, tag) {
        assert!(out.insert(num), "duplicate ack {num}");
    }
    out
}

/// Child-side ack log: one `<tag> <value>\n` line per completed operation,
/// each a single `write` syscall issued strictly *after* the operation
/// returned, so the parent knows exactly which operations were confirmed.
pub struct AckLog {
    file: std::fs::File,
}

impl AckLog {
    /// Creates (truncates) the log at `path`.
    pub fn create(path: impl AsRef<Path>) -> Self {
        AckLog {
            file: std::fs::File::create(path).expect("create ack log"),
        }
    }

    /// Acknowledges one completed operation.
    pub fn record(&mut self, tag: &str, value: u64) {
        self.file
            .write_all(format!("{tag} {value}\n").as_bytes())
            .expect("write ack line");
    }
}
