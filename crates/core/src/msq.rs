//! The volatile Michael–Scott queue (Section 3.1 of the paper).
//!
//! This is the (non-persistent) lock-free FIFO queue that every durable queue
//! in this crate extends. It issues no flushes and no fences; after a crash
//! its content is simply gone (`recover` returns an empty queue). It serves
//! two purposes: a correctness reference for the concurrent FIFO semantics,
//! and an upper-bound performance baseline showing the cost of durability.

use crate::api::{DurableQueue, QueueConfig, RecoverableQueue};
use crate::node;
use pmem::{PRef, PmemPool};
use ssmem::{Ssmem, SsmemConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Field offsets within a queue node (one 64-byte slot).
mod f {
    pub const ITEM: u32 = 0;
    pub const NEXT: u32 = 8;
}

/// The volatile Michael–Scott queue.
pub struct MsQueue {
    pool: Arc<PmemPool>,
    nodes: Ssmem,
    head: AtomicU64,
    tail: AtomicU64,
    config: QueueConfig,
}

impl MsQueue {
    fn init(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        let nodes = Ssmem::new_volatile(
            Arc::clone(&pool),
            SsmemConfig {
                obj_size: node::NODE_SIZE,
                area_size: config.area_size,
                max_threads: config.max_threads,
            },
            Arc::new(ssmem::EpochManager::new(config.max_threads)),
        );
        let dummy = nodes.alloc(0);
        pool.store_u64(dummy.offset() + f::ITEM, 0);
        pool.store_u64(dummy.offset() + f::NEXT, 0);
        MsQueue {
            pool,
            nodes,
            head: AtomicU64::new(dummy.to_u64()),
            tail: AtomicU64::new(dummy.to_u64()),
            config,
        }
    }
}

impl DurableQueue for MsQueue {
    fn enqueue(&self, tid: usize, item: u64) {
        crate::instruments::ENQUEUES.incr();
        self.nodes.pin(tid);
        let new = self.nodes.alloc(tid);
        let p = &self.pool;
        p.store_u64(new.offset() + f::ITEM, item);
        p.store_u64(new.offset() + f::NEXT, 0);
        loop {
            let tail = self.tail.load(Ordering::Acquire);
            let tail_ref = PRef::from_u64(tail);
            let tail_next = p.load_u64(tail_ref.offset() + f::NEXT);
            if tail != self.tail.load(Ordering::Acquire) {
                continue;
            }
            if tail_next == 0 {
                if p.cas_u64(tail_ref.offset() + f::NEXT, 0, new.to_u64())
                    .is_ok()
                {
                    let _ = self.tail.compare_exchange(
                        tail,
                        new.to_u64(),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    break;
                }
            } else {
                let _ = self.tail.compare_exchange(
                    tail,
                    tail_next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
        }
        self.nodes.unpin(tid);
    }

    fn dequeue(&self, tid: usize) -> Option<u64> {
        crate::instruments::DEQUEUES.incr();
        self.nodes.pin(tid);
        let p = &self.pool;
        let result = loop {
            let head = self.head.load(Ordering::Acquire);
            let head_ref = PRef::from_u64(head);
            let next = p.load_u64(head_ref.offset() + f::NEXT);
            if next == 0 {
                break None;
            }
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Reading the item after the CAS is safe because the old
                // dummy (and hence its successor) cannot be reclaimed while
                // this thread is pinned.
                let item = p.load_u64(PRef::from_u64(next).offset() + f::ITEM);
                self.nodes.retire(tid, head_ref);
                break Some(item);
            }
        };
        self.nodes.unpin(tid);
        result
    }

    fn name(&self) -> &'static str {
        "MSQ (volatile)"
    }

    fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    fn config(&self) -> QueueConfig {
        self.config
    }

    fn is_durable(&self) -> bool {
        false
    }
}

impl RecoverableQueue for MsQueue {
    fn create(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        Self::init(pool, config)
    }

    /// The queue is volatile: recovery produces an empty queue.
    fn recover(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        Self::init(pool, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn sequential_fifo() {
        testkit::check_sequential_fifo::<MsQueue>();
    }

    #[test]
    fn interleaved_matches_model() {
        testkit::check_against_model::<MsQueue>(0xA1);
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        testkit::check_concurrent_integrity::<MsQueue>(4, 500);
    }

    #[test]
    fn concurrent_per_producer_fifo_order() {
        testkit::check_concurrent_fifo_per_producer::<MsQueue>(2, 2, 400);
    }

    #[test]
    fn issues_no_persistence_operations() {
        let (q, pool) = testkit::fresh::<MsQueue>();
        for i in 0..100 {
            q.enqueue(0, i);
        }
        for _ in 0..100 {
            q.dequeue(0);
        }
        let s = pool.stats();
        assert_eq!(s.fences, 0);
        assert_eq!(s.flushes, 0);
        assert_eq!(s.post_flush_accesses, 0);
    }

    #[test]
    fn recover_returns_empty_queue() {
        testkit::check_volatile_recovery_is_empty::<MsQueue>();
    }
}
