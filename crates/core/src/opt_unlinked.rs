//! OptUnlinkedQ — the second amendment applied to UnlinkedQ (Section 6.1,
//! Appendix B, Figure 4).
//!
//! OptUnlinkedQ keeps UnlinkedQ's single blocking persist per operation and
//! additionally performs **zero accesses to explicitly flushed cache
//! lines** — the guideline the paper introduces for platforms whose flush
//! instructions invalidate the flushed line. Two changes achieve this:
//!
//! 1. **Split nodes.** Each logical node is split into a `Persistent` object
//!    (item, index, linked — flushed once by the enqueuer, then only ever
//!    read again by a recovery) and a `Volatile` object (item, index, next,
//!    pointer to the `Persistent` — never flushed, used by all normal-path
//!    reads). The queue's head and tail point to `Volatile` objects.
//! 2. **Per-thread head indices written with non-temporal stores.** Instead
//!    of flushing and re-reading a global head index, a dequeuer writes the
//!    index of the new dummy to its own persistent slot with `movnti`
//!    (bypassing the cache) followed by the operation's single fence.
//!    Recovery takes the maximum over all threads.

use crate::api::{DurableQueue, QueueConfig, RecoverableQueue};
use crate::node;
use crate::root;
use crossbeam_utils::CachePadded;
use pmem::{PRef, PmemPool, MAX_THREADS};
use ssmem::{Ssmem, SsmemConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Field offsets within a `Persistent` object (one 64-byte slot).
mod p {
    pub const ITEM: u32 = 0;
    pub const INDEX: u32 = 8;
    pub const LINKED: u32 = 16;
}

/// Field offsets within a `Volatile` object (one 64-byte slot, never flushed).
mod v {
    pub const ITEM: u32 = 0;
    pub const NEXT: u32 = 8;
    pub const INDEX: u32 = 16;
    pub const PERSISTENT: u32 = 24;
}

/// Stride of one thread's persistent local data (just the head index, on its
/// own cache line).
const LOCAL_STRIDE: u32 = 64;

/// The OptUnlinkedQ durable queue. See the [module docs](self).
pub struct OptUnlinkedQueue {
    pool: Arc<PmemPool>,
    /// Durable allocator for `Persistent` objects (scanned by recovery).
    pnodes: Ssmem,
    /// Volatile allocator for `Volatile` objects (invisible to recovery).
    vnodes: Ssmem,
    /// Queue head: a `Volatile` reference. Purely volatile state.
    head: AtomicU64,
    /// Queue tail: a `Volatile` reference. Purely volatile state.
    tail: AtomicU64,
    /// Pool offset of the per-thread persistent head-index array.
    local_data: u32,
    /// Per-thread volatile record of the dummy to retire on the next
    /// successful dequeue.
    node_to_retire: Box<[CachePadded<AtomicU64>]>,
    config: QueueConfig,
}

impl OptUnlinkedQueue {
    fn ssmem_config(config: &QueueConfig) -> SsmemConfig {
        SsmemConfig {
            obj_size: node::NODE_SIZE,
            area_size: config.area_size,
            max_threads: config.max_threads,
        }
    }

    fn retire_slots(config: &QueueConfig) -> Box<[CachePadded<AtomicU64>]> {
        (0..config.max_threads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect()
    }

    #[inline]
    fn head_index_slot(&self, tid: usize) -> u32 {
        root::local_data_slot(self.local_data, LOCAL_STRIDE, tid)
    }

    /// Allocates and initialises a `Volatile` object.
    fn alloc_volatile(&self, tid: usize, item: u64, index: u64, persistent: PRef) -> PRef {
        let vv = self.vnodes.alloc(tid);
        let o = vv.offset();
        self.pool.store_u64(o + v::ITEM, item);
        self.pool.store_u64(o + v::NEXT, 0);
        self.pool.store_u64(o + v::INDEX, index);
        self.pool.store_u64(o + v::PERSISTENT, persistent.to_u64());
        vv
    }
}

impl DurableQueue for OptUnlinkedQueue {
    fn enqueue(&self, tid: usize, item: u64) {
        crate::instruments::ENQUEUES.incr();
        let pl = &self.pool;
        self.pnodes.pin(tid);
        let pnew = self.pnodes.alloc(tid);
        pl.store_u64(pnew.offset() + p::ITEM, item);
        pl.store_u64(pnew.offset() + p::LINKED, 0);
        let vnew = self.alloc_volatile(tid, item, 0, pnew);
        loop {
            let tail = PRef::from_u64(self.tail.load(Ordering::Acquire));
            let tail_next = pl.load_u64(tail.offset() + v::NEXT);
            if tail_next == 0 {
                let index = pl.load_u64(tail.offset() + v::INDEX) + 1;
                pl.store_u64(pnew.offset() + p::INDEX, index);
                pl.store_u64(vnew.offset() + v::INDEX, index);
                if pl
                    .cas_u64(tail.offset() + v::NEXT, 0, vnew.to_u64())
                    .is_ok()
                {
                    pl.store_u64(pnew.offset() + p::LINKED, 1);
                    // The single blocking persist: the Persistent object is
                    // flushed once and never accessed again outside recovery.
                    pl.flush(tid, pnew.offset());
                    pl.sfence(tid);
                    let _ = self.tail.compare_exchange(
                        tail.to_u64(),
                        vnew.to_u64(),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    break;
                }
            } else {
                let _ = self.tail.compare_exchange(
                    tail.to_u64(),
                    tail_next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
            }
        }
        self.pnodes.unpin(tid);
    }

    fn dequeue(&self, tid: usize) -> Option<u64> {
        crate::instruments::DEQUEUES.incr();
        let pl = &self.pool;
        self.pnodes.pin(tid);
        let result = loop {
            let head = PRef::from_u64(self.head.load(Ordering::Acquire));
            let head_next = pl.load_u64(head.offset() + v::NEXT);
            if head_next == 0 {
                // Persist the dequeues that emptied the queue through this
                // thread's head-index slot, without touching any flushed line.
                let index = pl.load_u64(head.offset() + v::INDEX);
                pl.nt_store_u64(tid, self.head_index_slot(tid), index);
                pl.sfence(tid);
                break None;
            }
            if self
                .head
                .compare_exchange(
                    head.to_u64(),
                    head_next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                let next = PRef::from_u64(head_next);
                let item = pl.load_u64(next.offset() + v::ITEM);
                let index = pl.load_u64(next.offset() + v::INDEX);
                // The single blocking persist of the dequeue: a non-temporal
                // write of the per-thread head index plus a fence.
                pl.nt_store_u64(tid, self.head_index_slot(tid), index);
                pl.sfence(tid);
                let previous = self.node_to_retire[tid].swap(head.to_u64(), Ordering::Relaxed);
                if previous != 0 {
                    let prev = PRef::from_u64(previous);
                    let prev_persistent =
                        PRef::from_u64(pl.load_u64(prev.offset() + v::PERSISTENT));
                    self.pnodes.retire(tid, prev_persistent);
                    self.vnodes.retire(tid, prev);
                }
                break Some(item);
            }
        };
        self.pnodes.unpin(tid);
        result
    }

    fn name(&self) -> &'static str {
        "OptUnlinkedQ"
    }

    fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    fn config(&self) -> QueueConfig {
        self.config
    }
}

impl RecoverableQueue for OptUnlinkedQueue {
    fn create(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        let pnodes = Ssmem::new(Arc::clone(&pool), Self::ssmem_config(&config));
        let vnodes = Ssmem::new_volatile(
            Arc::clone(&pool),
            Self::ssmem_config(&config),
            Arc::clone(pnodes.epoch()),
        );
        let local_data = root::create_local_data(&pool, LOCAL_STRIDE);
        // The initial dummy: index 0 in both halves; its Persistent object is
        // never resurrected (index 0 is never greater than any head index).
        let pdummy = pnodes.alloc(0);
        pool.store_u64(pdummy.offset() + p::ITEM, 0);
        pool.store_u64(pdummy.offset() + p::INDEX, 0);
        pool.store_u64(pdummy.offset() + p::LINKED, 0);
        let vdummy = vnodes.alloc(0);
        pool.store_u64(vdummy.offset() + v::ITEM, 0);
        pool.store_u64(vdummy.offset() + v::NEXT, 0);
        pool.store_u64(vdummy.offset() + v::INDEX, 0);
        pool.store_u64(vdummy.offset() + v::PERSISTENT, pdummy.to_u64());
        OptUnlinkedQueue {
            pool,
            pnodes,
            vnodes,
            head: AtomicU64::new(vdummy.to_u64()),
            tail: AtomicU64::new(vdummy.to_u64()),
            local_data,
            node_to_retire: Self::retire_slots(&config),
            config,
        }
    }

    fn recover(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        let pnodes = Ssmem::recover(Arc::clone(&pool), Self::ssmem_config(&config));
        let vnodes = Ssmem::new_volatile(
            Arc::clone(&pool),
            Self::ssmem_config(&config),
            Arc::clone(pnodes.epoch()),
        );
        let (local_data, stride) = root::read_local_data(&pool);
        assert_eq!(stride, LOCAL_STRIDE);

        // The recovered head index is the maximum of the per-thread indices.
        let head_index = (0..MAX_THREADS)
            .map(|tid| pool.load_u64(root::local_data_slot(local_data, stride, tid)))
            .max()
            .unwrap_or(0);

        // Classify every Persistent slot.
        let mut live: Vec<(u64, PRef)> = Vec::new();
        let mut dead: Vec<PRef> = Vec::new();
        pnodes.for_each_object(|obj| {
            let linked = pool.load_u64(obj.offset() + p::LINKED);
            let index = pool.load_u64(obj.offset() + p::INDEX);
            if linked == 1 && index > head_index {
                live.push((index, obj));
            } else {
                dead.push(obj);
            }
        });
        live.sort_unstable_by_key(|&(index, _)| index);
        for (i, obj) in dead.into_iter().enumerate() {
            pnodes.free_immediate(i % config.max_threads, obj);
        }

        // Rebuild the volatile queue over the resurrected Persistent objects.
        let pdummy = pnodes.alloc(0);
        pool.store_u64(pdummy.offset() + p::ITEM, 0);
        pool.store_u64(pdummy.offset() + p::INDEX, head_index);
        pool.store_u64(pdummy.offset() + p::LINKED, 0);
        let vdummy = vnodes.alloc(0);
        pool.store_u64(vdummy.offset() + v::ITEM, 0);
        pool.store_u64(vdummy.offset() + v::NEXT, 0);
        pool.store_u64(vdummy.offset() + v::INDEX, head_index);
        pool.store_u64(vdummy.offset() + v::PERSISTENT, pdummy.to_u64());

        let mut prev = vdummy;
        for &(index, pobj) in &live {
            let item = pool.load_u64(pobj.offset() + p::ITEM);
            let vobj = vnodes.alloc(0);
            pool.store_u64(vobj.offset() + v::ITEM, item);
            pool.store_u64(vobj.offset() + v::NEXT, 0);
            pool.store_u64(vobj.offset() + v::INDEX, index);
            pool.store_u64(vobj.offset() + v::PERSISTENT, pobj.to_u64());
            pool.store_u64(prev.offset() + v::NEXT, vobj.to_u64());
            prev = vobj;
        }

        OptUnlinkedQueue {
            pool,
            pnodes,
            vnodes,
            head: AtomicU64::new(vdummy.to_u64()),
            tail: AtomicU64::new(prev.to_u64()),
            local_data,
            node_to_retire: Self::retire_slots(&config),
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn sequential_fifo() {
        testkit::check_sequential_fifo::<OptUnlinkedQueue>();
    }

    #[test]
    fn interleaved_matches_model() {
        testkit::check_against_model::<OptUnlinkedQueue>(0x91);
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        testkit::check_concurrent_integrity::<OptUnlinkedQueue>(4, 300);
    }

    #[test]
    fn concurrent_per_producer_fifo_order() {
        testkit::check_concurrent_fifo_per_producer::<OptUnlinkedQueue>(2, 2, 300);
    }

    #[test]
    fn recovery_preserves_completed_operations() {
        testkit::check_recovery_preserves_completed_ops::<OptUnlinkedQueue>(100, 41);
    }

    #[test]
    fn recovery_of_emptied_queue_is_empty() {
        testkit::check_recovery_of_emptied_queue::<OptUnlinkedQueue>();
    }

    #[test]
    fn repeated_crashes_keep_surviving_state() {
        testkit::check_repeated_crashes::<OptUnlinkedQueue>(5, 40);
    }

    #[test]
    fn crash_under_concurrency_is_durably_linearizable() {
        testkit::check_crash_during_concurrent_ops::<OptUnlinkedQueue>(4, 300, 0x9191);
    }

    #[test]
    fn crash_with_eviction_adversary_is_durably_linearizable() {
        testkit::check_crash_with_evictions::<OptUnlinkedQueue>(3, 200, 0x9292);
    }

    #[test]
    fn optimal_persistence_profile() {
        // The theoretical optimum (Section 2.1): one blocking persist per
        // update operation AND zero accesses to flushed content.
        let counts = testkit::persist_counts::<OptUnlinkedQueue>(1000);
        assert!(
            (counts.enqueue.fences - 1.0).abs() < 0.05,
            "enqueue fences {}",
            counts.enqueue.fences
        );
        assert!(
            (counts.dequeue.fences - 1.0).abs() < 0.05,
            "dequeue fences {}",
            counts.dequeue.fences
        );
        assert!(
            (counts.enqueue.flushes - 1.0).abs() < 0.05,
            "enqueue flushes {}",
            counts.enqueue.flushes
        );
        assert!(
            (counts.dequeue.nt_stores - 1.0).abs() < 0.05,
            "dequeue nt stores {}",
            counts.dequeue.nt_stores
        );
        assert_eq!(
            counts.total.post_flush_accesses, 0.0,
            "OptUnlinkedQ must never touch flushed content"
        );
    }
}
