//! LinkedQ — the first amendment, linked flavour (Section 5.2, Appendix A,
//! Figure 3).
//!
//! LinkedQ also executes a single blocking persist operation per queue
//! operation, but — unlike [`crate::UnlinkedQueue`] — it does persist the
//! `next` links and recovers by walking them from the head. Its key
//! ingredients:
//!
//! * an `initialized` flag in every node tells recovery whether the node's
//!   content is guaranteed valid in NVRAM. The flag is written after the
//!   node's data (same cache line, so Assumption 1 preserves the order), and
//!   nodes are always *allocated* with the flag persistently unset — achieved
//!   without extra fences by piggybacking the clearing flush of a dequeued
//!   node on the fence of the same thread's next successful dequeue;
//! * a **backward link** (`pred`) lets an enqueuer persist exactly the suffix
//!   of nodes that might not be persistent yet (everything before the first
//!   node with a null `pred` is already persistent), then publish the lot
//!   with one fence;
//! * recovery resurrects the path of consecutive `initialized` nodes
//!   reachable from the persisted head.

use crate::api::{DurableQueue, QueueConfig, RecoverableQueue};
use crate::node;
use crate::root::{ROOT_HEAD, ROOT_TAIL};
use crossbeam_utils::CachePadded;
use pmem::{PRef, PmemPool};
use ssmem::{Ssmem, SsmemConfig};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Field offsets within a node (one 64-byte slot).
mod f {
    pub const ITEM: u32 = 0;
    pub const NEXT: u32 = 8;
    pub const PRED: u32 = 16;
    pub const INITIALIZED: u32 = 24;
}

/// The LinkedQ durable queue. See the [module docs](self).
pub struct LinkedQueue {
    pool: Arc<PmemPool>,
    nodes: Ssmem,
    /// Per-thread slot holding the dummy node whose `initialized` flag must
    /// still be persisted (piggybacked on this thread's next successful
    /// dequeue) before the node can be handed back to the allocator.
    node_to_persist_and_retire: Box<[CachePadded<AtomicU64>]>,
    config: QueueConfig,
}

impl LinkedQueue {
    fn ssmem_config(config: &QueueConfig) -> SsmemConfig {
        SsmemConfig {
            obj_size: node::NODE_SIZE,
            area_size: config.area_size,
            max_threads: config.max_threads,
        }
    }

    fn retire_slots(config: &QueueConfig) -> Box<[CachePadded<AtomicU64>]> {
        (0..config.max_threads)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect()
    }

    /// Flushes the suffix of nodes, ending at `from` and walking backward
    /// links, that is not yet guaranteed persistent (Figure 3, lines 59–63).
    fn flush_not_persisted_suffix(&self, tid: usize, from: PRef) {
        let p = &self.pool;
        let mut cur = from;
        loop {
            p.flush(tid, cur.offset());
            let pred = p.load_u64(cur.offset() + f::PRED);
            if pred == 0 {
                return;
            }
            cur = PRef::from_u64(pred);
        }
    }
}

impl DurableQueue for LinkedQueue {
    fn enqueue(&self, tid: usize, item: u64) {
        crate::instruments::ENQUEUES.incr();
        let p = &self.pool;
        self.nodes.pin(tid);
        let new = self.nodes.alloc(tid);
        p.store_u64(new.offset() + f::ITEM, item);
        p.store_u64(new.offset() + f::NEXT, 0);
        // Written after the data: recovery trusts the node only if this flag
        // reached NVRAM, which (by Assumption 1) implies the data did too.
        p.store_u64(new.offset() + f::INITIALIZED, 1);
        loop {
            let tail = PRef::from_u64(p.load_u64(ROOT_TAIL));
            if p.load_u64(tail.offset() + f::NEXT) == 0 {
                p.store_u64(new.offset() + f::PRED, tail.to_u64());
                if p.cas_u64(tail.offset() + f::NEXT, 0, new.to_u64()).is_ok() {
                    // Persist every node that might not be persistent yet,
                    // then publish with the operation's single fence.
                    self.flush_not_persisted_suffix(tid, new);
                    p.sfence(tid);
                    let _ = p.cas_u64(ROOT_TAIL, tail.to_u64(), new.to_u64());
                    // Everything up to and including `new` is persistent now:
                    // cut the backward chain so later enqueues stop here.
                    p.store_u64(new.offset() + f::PRED, 0);
                    break;
                }
            } else {
                let next = p.load_u64(tail.offset() + f::NEXT);
                let _ = p.cas_u64(ROOT_TAIL, tail.to_u64(), next);
            }
        }
        self.nodes.unpin(tid);
    }

    fn dequeue(&self, tid: usize) -> Option<u64> {
        crate::instruments::DEQUEUES.incr();
        let p = &self.pool;
        self.nodes.pin(tid);
        let result = loop {
            let head = PRef::from_u64(p.load_u64(ROOT_HEAD));
            let head_next = p.load_u64(head.offset() + f::NEXT);
            if head_next == 0 {
                // Persist the head so previous dequeues that emptied the
                // queue are linearized before this failing dequeue.
                p.flush(tid, ROOT_HEAD);
                p.sfence(tid);
                break None;
            }
            if p.cas_u64(ROOT_HEAD, head.to_u64(), head_next).is_ok() {
                let next = PRef::from_u64(head_next);
                let item = p.load_u64(next.offset() + f::ITEM);
                let pending = self.node_to_persist_and_retire[tid].load(Ordering::Relaxed);
                if pending != 0 {
                    // Piggyback the pending initialized-flag clearing on this
                    // operation's fence.
                    p.flush(tid, pending as u32 + f::INITIALIZED);
                }
                p.flush(tid, ROOT_HEAD);
                p.sfence(tid);
                // The new dummy will never need to be walked backwards from:
                // everything before it is persistent.
                p.store_u64(next.offset() + f::PRED, 0);
                if pending != 0 {
                    self.nodes.retire(tid, PRef::from_u64(pending));
                }
                // Clear the old dummy's flag now; its flush rides on this
                // thread's *next* successful dequeue.
                p.store_u64(head.offset() + f::INITIALIZED, 0);
                self.node_to_persist_and_retire[tid].store(head.to_u64(), Ordering::Relaxed);
                break Some(item);
            }
        };
        self.nodes.unpin(tid);
        result
    }

    fn name(&self) -> &'static str {
        "LinkedQ"
    }

    fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    fn config(&self) -> QueueConfig {
        self.config
    }
}

impl RecoverableQueue for LinkedQueue {
    fn create(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        let nodes = Ssmem::new(Arc::clone(&pool), Self::ssmem_config(&config));
        let dummy = nodes.alloc(0);
        pool.store_u64(dummy.offset() + f::ITEM, 0);
        pool.store_u64(dummy.offset() + f::NEXT, 0);
        pool.store_u64(dummy.offset() + f::PRED, 0);
        pool.store_u64(dummy.offset() + f::INITIALIZED, 1);
        pool.flush(0, dummy.offset());
        pool.store_u64(ROOT_HEAD, dummy.to_u64());
        pool.store_u64(ROOT_TAIL, dummy.to_u64());
        pool.flush(0, ROOT_HEAD);
        pool.flush(0, ROOT_TAIL);
        pool.sfence(0);
        LinkedQueue {
            pool,
            nodes,
            node_to_persist_and_retire: Self::retire_slots(&config),
            config,
        }
    }

    fn recover(pool: Arc<PmemPool>, config: QueueConfig) -> Self {
        let nodes = Ssmem::recover(Arc::clone(&pool), Self::ssmem_config(&config));
        let head = PRef::from_u64(pool.load_u64(ROOT_HEAD));
        let mut live: Vec<PRef> = vec![head];
        let tail;
        if pool.load_u64(head.offset() + f::INITIALIZED) != 1 {
            // The dummy itself was never persisted as initialized: the
            // persistent queue is empty. Reset the dummy (next before
            // initialized, relying on Assumption 1 for crash-during-recovery).
            pool.store_u64(head.offset() + f::NEXT, 0);
            pool.store_u64(head.offset() + f::INITIALIZED, 1);
            pool.flush(0, head.offset());
            tail = head;
        } else {
            // Walk the persisted chain of initialized nodes.
            let mut cur = head;
            loop {
                let next = pool.load_u64(cur.offset() + f::NEXT);
                if next == 0 {
                    tail = cur;
                    break;
                }
                let next = PRef::from_u64(next);
                if live.contains(&next) {
                    // A stale link closing a cycle (possible only under the
                    // eviction adversary): terminate the queue here, durably.
                    pool.store_u64(cur.offset() + f::NEXT, 0);
                    pool.flush(0, cur.offset());
                    tail = cur;
                    break;
                }
                if pool.load_u64(next.offset() + f::INITIALIZED) != 1 {
                    // The successor was linked but its content never became
                    // persistent: terminate the queue here, durably.
                    pool.store_u64(cur.offset() + f::NEXT, 0);
                    pool.flush(0, cur.offset());
                    tail = cur;
                    break;
                }
                live.push(next);
                cur = next;
            }
        }
        // The last node needs no backward link: everything before it is
        // persistent by construction of the recovery.
        pool.store_u64(tail.offset() + f::PRED, 0);
        pool.store_u64(ROOT_TAIL, tail.to_u64());
        pool.flush(0, ROOT_TAIL);

        // Reclaim every other node; those still carrying a set initialized
        // flag are cleared and flushed first so that reallocating them is
        // safe (a single fence at the end covers all these flushes).
        let live_set: HashSet<PRef> = live.iter().copied().collect();
        let mut rr = 0usize;
        nodes.for_each_object(|obj| {
            if !live_set.contains(&obj) {
                if pool.load_u64(obj.offset() + f::INITIALIZED) == 1 {
                    pool.store_u64(obj.offset() + f::INITIALIZED, 0);
                    pool.flush(0, obj.offset() + f::INITIALIZED);
                }
                nodes.free_immediate(rr % config.max_threads, obj);
                rr += 1;
            }
        });
        pool.sfence(0);

        LinkedQueue {
            pool,
            nodes,
            node_to_persist_and_retire: Self::retire_slots(&config),
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn sequential_fifo() {
        testkit::check_sequential_fifo::<LinkedQueue>();
    }

    #[test]
    fn interleaved_matches_model() {
        testkit::check_against_model::<LinkedQueue>(0x71);
    }

    #[test]
    fn concurrent_no_loss_no_duplication() {
        testkit::check_concurrent_integrity::<LinkedQueue>(4, 300);
    }

    #[test]
    fn concurrent_per_producer_fifo_order() {
        testkit::check_concurrent_fifo_per_producer::<LinkedQueue>(2, 2, 300);
    }

    #[test]
    fn recovery_preserves_completed_operations() {
        testkit::check_recovery_preserves_completed_ops::<LinkedQueue>(100, 37);
    }

    #[test]
    fn recovery_of_emptied_queue_is_empty() {
        testkit::check_recovery_of_emptied_queue::<LinkedQueue>();
    }

    #[test]
    fn repeated_crashes_keep_surviving_state() {
        testkit::check_repeated_crashes::<LinkedQueue>(5, 40);
    }

    #[test]
    fn crash_under_concurrency_is_durably_linearizable() {
        testkit::check_crash_during_concurrent_ops::<LinkedQueue>(4, 300, 0x7171);
    }

    #[test]
    fn crash_with_eviction_adversary_is_durably_linearizable() {
        testkit::check_crash_with_evictions::<LinkedQueue>(3, 200, 0x7272);
    }

    #[test]
    fn one_blocking_persist_per_operation() {
        let counts = testkit::persist_counts::<LinkedQueue>(1000);
        assert!(
            (counts.enqueue.fences - 1.0).abs() < 0.05,
            "enqueue fences {}",
            counts.enqueue.fences
        );
        assert!(
            (counts.dequeue.fences - 1.0).abs() < 0.05,
            "dequeue fences {}",
            counts.dequeue.fences
        );
        // Like UnlinkedQ, the first amendment still touches flushed lines.
        assert!(counts.total.post_flush_accesses > 0.5);
    }

    #[test]
    fn backward_links_bound_the_flush_suffix() {
        // In a single-threaded run every enqueue finds its predecessor's
        // backward link already cut after at most one hop, so the suffix walk
        // flushes exactly two nodes (the new node and the previous tail) —
        // crucially independent of the queue length, unlike the naive
        // flush-everything-from-the-head alternative (bench E10).
        let counts = testkit::persist_counts::<LinkedQueue>(500);
        assert!(
            counts.enqueue.flushes <= 2.05,
            "suffix flushing is not bounded: {}",
            counts.enqueue.flushes
        );
    }
}
