//! # durable_queues — durably linearizable lock-free FIFO queues for NVRAM
//!
//! A from-scratch Rust implementation of the queue family of *"Durable
//! Queues: The Second Amendment"* (Sela & Petrank, SPAA 2021), together with
//! the baselines the paper evaluates against. All queues share one public
//! interface ([`DurableQueue`] / [`RecoverableQueue`]), operate on a
//! simulated persistent-memory pool ([`pmem::PmemPool`]) and allocate their
//! nodes through the durable epoch-based allocator of the [`ssmem`] crate.
//!
//! | Queue | Paper section | Blocking persists per update | Accesses to flushed content |
//! |---|---|---|---|
//! | [`MsQueue`] | §3.1 (volatile baseline) | 0 (not durable) | 0 |
//! | [`DurableMsQueue`] | §10 baseline (Friedman et al., thinned) | ≥2 per enqueue, 1 per dequeue | several per op |
//! | [`IzraelevitzQueue`] | §10 baseline (general transform) | one per shared access | several per op |
//! | [`NvTraverseQueue`] | §10 baseline | one per shared write | several per op |
//! | [`UnlinkedQueue`] | §5.1 (first amendment) | **1 per op** (lower bound) | several per op |
//! | [`LinkedQueue`] | §5.2 / App. A (first amendment) | **1 per op** | several per op |
//! | [`OptUnlinkedQueue`] | §6.1 / App. B (second amendment) | **1 per op** | **0** |
//! | [`OptLinkedQueue`] | §6.2 / App. C (second amendment) | **1 per op** | **0** |
//!
//! ## Scaling out
//!
//! Every queue above is a single head/tail pair and therefore serialized on
//! its central persist point. The workspace's `shard` crate composes any
//! [`RecoverableQueue`] into a `ShardedQueue` — N independent shards, each
//! with its own pool and inner queue — routed per-thread (round-robin),
//! per-key (via the [`KeyedQueue`] extension trait defined here), or by
//! load, with parallel crash recovery across a thread pool:
//!
//! | Layer | Crate | Guarantee |
//! |---|---|---|
//! | single queue | `durable_queues` (this crate) | global FIFO, durably linearizable |
//! | sharded queue | `shard` | per-shard FIFO (per-key FIFO under key-hash routing), per-shard durable linearizability, parallel recovery |
//!
//! ## Quick start
//!
//! ```
//! use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue};
//! use pmem::{PmemPool, PoolConfig};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(PmemPool::new(PoolConfig::small_test()));
//! let queue = OptUnlinkedQueue::create(Arc::clone(&pool), QueueConfig::small_test());
//! queue.enqueue(0, 7);
//! queue.enqueue(0, 8);
//!
//! // A crash wipes caches; the recovery procedure rebuilds the queue from
//! // what had persistently reached the (simulated) NVRAM.
//! let recovered_pool = Arc::new(pool.simulate_crash());
//! let recovered = OptUnlinkedQueue::recover(recovered_pool, QueueConfig::small_test());
//! assert_eq!(recovered.dequeue(0), Some(7));
//! assert_eq!(recovered.dequeue(0), Some(8));
//! assert_eq!(recovered.dequeue(0), None);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod api;
pub mod chain;
pub mod durable_msq;
mod instruments;
pub mod izraelevitz;
pub mod linked;
pub mod msq;
pub mod node;
pub mod opt_linked;
pub mod opt_unlinked;
pub mod root;
pub mod testkit;
pub mod unlinked;

pub use api::{DurableQueue, KeyedQueue, QueueConfig, RecoverableQueue};
pub use durable_msq::DurableMsQueue;
pub use izraelevitz::{IzraelevitzQueue, NvTraverseQueue};
pub use linked::LinkedQueue;
pub use msq::MsQueue;
pub use opt_linked::OptLinkedQueue;
pub use opt_unlinked::OptUnlinkedQueue;
pub use unlinked::UnlinkedQueue;
