//! Node sizing shared by every queue implementation.
//!
//! Every queue node (and every `Persistent`/`Volatile` half of the split
//! nodes used by the Opt queues) occupies exactly one 64-byte slot, so that a
//! node never spans cache lines. This is the pre-condition for Assumption 1
//! of the paper (whole-node persistence ordering within a line) and it also
//! prevents false sharing between nodes.

/// Size in bytes of every queue node / node half.
pub const NODE_SIZE: u32 = 64;

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::CACHE_LINE;

    #[test]
    fn node_fits_exactly_one_cache_line() {
        assert_eq!(NODE_SIZE as usize, CACHE_LINE);
    }
}
