//! A tour of every durable queue in the crate: each one runs the same
//! workload, is crashed at the same point, recovers, and reports both the
//! recovered content and its persistence profile — making the difference
//! between the first and second amendments visible directly.
//!
//! Run with:
//! ```text
//! cargo run -p durable_queues --release --example crash_recovery_tour
//! ```

use durable_queues::{
    DurableMsQueue, IzraelevitzQueue, LinkedQueue, NvTraverseQueue, OptLinkedQueue,
    OptUnlinkedQueue, QueueConfig, RecoverableQueue, UnlinkedQueue,
};
use pmem::{PmemPool, PoolConfig};
use std::sync::Arc;

fn tour<Q: RecoverableQueue>() {
    let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(32 << 20)));
    let queue = Q::create(Arc::clone(&pool), QueueConfig::small_test());

    // 60 completed enqueues, 20 completed dequeues ...
    for i in 1..=60u64 {
        queue.enqueue(0, i);
    }
    for _ in 0..20 {
        queue.dequeue(0);
    }
    let stats = pool.stats();

    // ... then the machine dies.
    let recovered_pool = Arc::new(pool.simulate_crash());
    let recovered = Q::recover(Arc::clone(&recovered_pool), QueueConfig::small_test());
    let mut surviving = Vec::new();
    while let Some(v) = recovered.dequeue(0) {
        surviving.push(v);
    }

    println!(
        "{:<14} recovered {:>2} items ({}..{}) | per-80-ops: fences={:<4} flushes={:<4} post-flush accesses={}",
        recovered.name(),
        surviving.len(),
        surviving.first().unwrap(),
        surviving.last().unwrap(),
        stats.fences,
        stats.flushes,
        stats.post_flush_accesses,
    );
    assert_eq!(
        surviving,
        (21..=60).collect::<Vec<_>>(),
        "completed operations must survive"
    );
}

fn main() {
    println!("every queue performs 60 enqueues and 20 dequeues, then crashes:\n");
    tour::<DurableMsQueue>();
    tour::<IzraelevitzQueue>();
    tour::<NvTraverseQueue>();
    tour::<UnlinkedQueue>();
    tour::<LinkedQueue>();
    tour::<OptUnlinkedQueue>();
    tour::<OptLinkedQueue>();
    println!("\nall queues recovered exactly the 40 surviving items — only their persistence cost differs.");
}
