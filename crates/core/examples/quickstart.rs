//! Quickstart: create a durable queue, use it, crash, recover.
//!
//! Run with:
//! ```text
//! cargo run -p durable_queues --release --example quickstart
//! ```

use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue};
use pmem::{PmemPool, PoolConfig};
use std::sync::Arc;

fn main() {
    // A 16 MiB simulated persistent-memory pool with Optane-like latencies.
    let pool = Arc::new(PmemPool::new(PoolConfig::bench(16 << 20)));

    // OptUnlinkedQ: one blocking persist per operation, zero accesses to
    // flushed cache lines — the paper's headline queue.
    let queue = OptUnlinkedQueue::create(Arc::clone(&pool), QueueConfig::small_test());

    for order_id in 1..=5u64 {
        queue.enqueue(0, order_id);
        println!("enqueued order {order_id}");
    }
    println!("dequeued order {:?}", queue.dequeue(0));

    // Power failure: caches are lost, NVRAM survives.
    println!("\n-- simulating a full-system crash --\n");
    let recovered_pool = Arc::new(pool.simulate_crash());
    let recovered = OptUnlinkedQueue::recover(recovered_pool, QueueConfig::small_test());

    print!("recovered queue still holds:");
    while let Some(order_id) = recovered.dequeue(0) {
        print!(" {order_id}");
    }
    println!();

    let stats = pool.stats();
    println!(
        "\npersistence profile of the original run: {} fences, {} flushes, {} post-flush accesses",
        stats.fences, stats.flushes, stats.post_flush_accesses
    );
}
