//! Property-based tests of the queue family.
//!
//! Two kinds of properties are checked for every durable queue:
//!
//! 1. **Sequential equivalence** — an arbitrary interleaving of enqueues and
//!    dequeues behaves exactly like `VecDeque`.
//! 2. **Crash-point durability** — for an arbitrary operation prefix and an
//!    arbitrary crash point, the recovered queue contains exactly the items
//!    that the completed operations left in the queue (all operations are
//!    completed at the crash point in this single-threaded setting, so the
//!    recovered state must equal the model exactly), in FIFO order.

use durable_queues::{
    DurableMsQueue, LinkedQueue, OptLinkedQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue,
    UnlinkedQueue,
};
use pmem::{PmemPool, PoolConfig};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Op {
    Enqueue(u64),
    Dequeue,
}

fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![(1..1_000_000u64).prop_map(Op::Enqueue), Just(Op::Dequeue),],
        1..max_len,
    )
}

fn run_sequential_equivalence<Q: RecoverableQueue>(ops: &[Op]) -> Result<(), TestCaseError> {
    let pool = Arc::new(PmemPool::new(PoolConfig::test_with_size(8 << 20)));
    let q = Q::create(Arc::clone(&pool), QueueConfig::small_test());
    let mut model: VecDeque<u64> = VecDeque::new();
    for op in ops {
        match op {
            Op::Enqueue(v) => {
                q.enqueue(0, *v);
                model.push_back(*v);
            }
            Op::Dequeue => prop_assert_eq!(q.dequeue(0), model.pop_front()),
        }
    }
    while let Some(expect) = model.pop_front() {
        prop_assert_eq!(q.dequeue(0), Some(expect));
    }
    prop_assert_eq!(q.dequeue(0), None);
    Ok(())
}

fn run_crash_point<Q: RecoverableQueue>(
    ops: &[Op],
    crash_at: usize,
    eviction_probability: f64,
) -> Result<(), TestCaseError> {
    let crash_at = crash_at % (ops.len() + 1);
    let pool_cfg = PoolConfig::test_with_size(8 << 20).with_evictions(eviction_probability, 0xE51);
    let pool = Arc::new(PmemPool::new(pool_cfg));
    let q = Q::create(Arc::clone(&pool), QueueConfig::small_test());
    let mut model: VecDeque<u64> = VecDeque::new();
    for op in &ops[..crash_at] {
        match op {
            Op::Enqueue(v) => {
                q.enqueue(0, *v);
                model.push_back(*v);
            }
            Op::Dequeue => {
                let got = q.dequeue(0);
                prop_assert_eq!(got, model.pop_front());
            }
        }
    }
    // Crash exactly here; every operation so far has completed, so recovery
    // must reproduce the model exactly.
    let recovered_pool = Arc::new(pool.simulate_crash_with_evictions(eviction_probability, 0x51));
    let recovered = Q::recover(Arc::clone(&recovered_pool), QueueConfig::small_test());
    let mut survivors = Vec::new();
    while let Some(v) = recovered.dequeue(0) {
        survivors.push(v);
    }
    prop_assert_eq!(survivors, model.into_iter().collect::<Vec<_>>());
    Ok(())
}

macro_rules! queue_properties {
    ($module:ident, $queue:ty) => {
        mod $module {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(48))]

                #[test]
                fn sequential_equivalence(ops in ops_strategy(120)) {
                    run_sequential_equivalence::<$queue>(&ops)?;
                }

                #[test]
                fn crash_at_any_point_recovers_the_completed_state(
                    ops in ops_strategy(80),
                    crash_at in 0usize..80,
                ) {
                    run_crash_point::<$queue>(&ops, crash_at, 0.0)?;
                }

                #[test]
                fn crash_with_eviction_adversary_recovers_the_completed_state(
                    ops in ops_strategy(60),
                    crash_at in 0usize..60,
                    evictions in 0.0f64..0.3,
                ) {
                    run_crash_point::<$queue>(&ops, crash_at, evictions)?;
                }
            }
        }
    };
}

queue_properties!(durable_msq, DurableMsQueue);
queue_properties!(unlinked, UnlinkedQueue);
queue_properties!(linked, LinkedQueue);
queue_properties!(opt_unlinked, OptUnlinkedQueue);
queue_properties!(opt_linked, OptLinkedQueue);
