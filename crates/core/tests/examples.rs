//! Smoke test: the two examples must build and exit successfully.
//!
//! The examples double as executable documentation of the crash/recovery
//! story; CI runs this so they can never silently rot. The test shells out
//! to the `cargo` that is running it (the build-directory lock is released
//! before test binaries execute, so the nested invocation is safe).

use std::path::Path;
use std::process::Command;

fn run_example(name: &str) {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("Cargo.toml");
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--manifest-path"])
        .arg(&manifest)
        .args(["--example", name])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn quickstart_example_runs() {
    run_example("quickstart");
}

#[test]
fn crash_recovery_tour_example_runs() {
    run_example("crash_recovery_tour");
}
