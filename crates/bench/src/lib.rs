//! Shared machinery for the Criterion benchmark targets.
//!
//! Every `fig2_*` bench regenerates one panel of the paper's Figure 2 using
//! the same workload generators and thread sweep as the `harness` binary,
//! but under Criterion's statistical sampling, so the series can be compared
//! run-over-run. The benches report throughput in elements/second; the
//! paper's "Million ops per second" axis is the same quantity scaled by 1e6,
//! and the ratio-to-DurableMSQ graphs follow by dividing the series.

use criterion::{BenchmarkId, Criterion, Throughput};
use durable_queues::QueueConfig;
use harness::algorithms::Algorithm;
use harness::runner::algorithm_runs_workload;
use harness::workloads::{run_workload, RunConfig, Workload};
use pmem::{LatencyModel, PmemPool, PoolConfig};
use std::sync::Arc;
use std::time::Duration;

/// Thread counts swept by the benchmark targets (kept small so a full
/// `cargo bench` completes in minutes; the harness binary sweeps 1–16).
pub const BENCH_THREADS: &[usize] = &[1, 2, 4];

/// Operations per thread per Criterion iteration.
pub const BENCH_OPS: u64 = 2_000;

/// Builds a fresh queue for one measurement iteration.
pub fn build_queue(
    alg: Algorithm,
    threads: usize,
    latency: LatencyModel,
) -> Arc<dyn durable_queues::DurableQueue> {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size: 96 << 20,
        latency,
        deferred_persist: true,
        eviction_probability: 0.0,
        eviction_seed: 0xBE7C,
    }));
    alg.create(
        pool,
        QueueConfig {
            max_threads: threads.max(1),
            area_size: 1 << 20,
        },
    )
}

/// Times `iters` runs of `workload` on a fresh queue of `alg`.
pub fn time_workload(
    alg: Algorithm,
    workload: Workload,
    threads: usize,
    latency: LatencyModel,
    iters: u64,
) -> Duration {
    let mut total = Duration::ZERO;
    for i in 0..iters {
        let queue = build_queue(alg, threads, latency);
        let cfg = RunConfig {
            threads,
            ops_per_thread: BENCH_OPS,
            initial_size: workload.default_initial_size(threads, BENCH_OPS),
            seed: 0xBE7C ^ i,
        };
        total += run_workload(&queue, workload, &cfg).elapsed;
    }
    total
}

/// Registers one Figure 2 panel as a Criterion benchmark group: one series
/// per (algorithm, thread count), throughput in operations per second.
pub fn fig2_panel(c: &mut Criterion, workload: Workload) {
    let mut group = c.benchmark_group(format!("fig2/{}", workload.key()));
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));
    for &threads in BENCH_THREADS {
        for alg in Algorithm::figure2_set() {
            if !algorithm_runs_workload(alg, workload) {
                continue;
            }
            group.throughput(Throughput::Elements(threads as u64 * BENCH_OPS));
            group.bench_with_input(
                BenchmarkId::new(alg.name(), threads),
                &threads,
                |b, &threads| {
                    b.iter_custom(|iters| {
                        time_workload(alg, workload, threads, LatencyModel::optane_like(), iters)
                    })
                },
            );
        }
    }
    group.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_workload_produces_a_nonzero_duration() {
        let d = time_workload(
            Algorithm::OptUnlinked,
            Workload::Pairs,
            1,
            LatencyModel::ZERO,
            1,
        );
        assert!(d > Duration::ZERO);
    }
}
