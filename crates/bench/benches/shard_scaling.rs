//! Shard-scaling benchmarks: throughput of `ShardedQueue<OptUnlinkedQ>` at
//! 1/2/4/8 shards under the pairs workload, and the latency of parallel
//! crash recovery of all shards.
//!
//! The throughput series is the Criterion-sampled counterpart of
//! `harness shards`; run-over-run comparisons show whether a change moved
//! the sharded hot path. The recovery series times the parallel recovery of
//! a crashed image per shard count (the snapshot fan-out happens outside
//! the measured region — a real crash costs nothing at restart time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig};
use harness::workloads::{run_workload, RunConfig, Workload};
use pmem::{LatencyModel, PoolConfig};
use shard::{RecoveryOrchestrator, RoutePolicy, ShardConfig, ShardedQueue};
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 4;
const OPS: u64 = 2_000;
const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];

fn shard_config(shards: usize) -> ShardConfig {
    ShardConfig {
        shards,
        queue: QueueConfig {
            max_threads: THREADS,
            area_size: 1 << 20,
        },
        pool: PoolConfig {
            size: 32 << 20,
            latency: LatencyModel::optane_like(),
            deferred_persist: true,
            eviction_probability: 0.0,
            eviction_seed: 0x5CA1,
        },
        policy: RoutePolicy::RoundRobin,
    }
}

fn throughput_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling/pairs");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));
    for &shards in SHARD_COUNTS {
        group.throughput(Throughput::Elements(THREADS as u64 * OPS));
        group.bench_with_input(
            BenchmarkId::new("OptUnlinkedQ", shards),
            &shards,
            |b, &shards| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for i in 0..iters {
                        let queue: Arc<dyn DurableQueue> = Arc::new(
                            ShardedQueue::<OptUnlinkedQueue>::create(shard_config(shards)),
                        );
                        let cfg = RunConfig {
                            threads: THREADS,
                            ops_per_thread: OPS,
                            initial_size: Workload::Pairs.default_initial_size(THREADS, OPS),
                            seed: 0x5CA1 ^ i,
                        };
                        total += run_workload(&queue, Workload::Pairs, &cfg).elapsed;
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

fn parallel_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling/recovery");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));
    for &shards in SHARD_COUNTS {
        // One pre-loaded queue per shard count; crash() leaves it intact, so
        // every iteration recovers the same 8k-item image.
        let queue = ShardedQueue::<OptUnlinkedQueue>::create(shard_config(shards));
        for i in 0..8_192u64 {
            queue.enqueue(0, i + 1);
        }
        let orchestrator = RecoveryOrchestrator::new(shards);
        group.bench_with_input(
            BenchmarkId::new("parallel_recover", shards),
            &shards,
            |b, _| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let images = orchestrator.crash(&queue);
                        let config = *queue.shard_config();
                        let started = std::time::Instant::now();
                        let (recovered, _report) =
                            orchestrator.recover::<OptUnlinkedQueue>(images, config);
                        total += started.elapsed();
                        std::hint::black_box(recovered);
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, throughput_scaling, parallel_recovery);
criterion_main!(benches);
