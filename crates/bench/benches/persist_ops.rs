//! Experiments E7/E8 as latency microbenchmarks: the cost of a single
//! enqueue and a single dequeue for every queue, plus the cost of the raw
//! persistence primitives (simulated and, on x86-64, the real intrinsics
//! against DRAM-backed memory).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use durable_queues::{DurableQueue, QueueConfig};
use harness::algorithms::Algorithm;
use pmem::{LatencyModel, PmemPool, PoolConfig};
use std::sync::Arc;
use std::time::Duration;

fn queue_for(alg: Algorithm) -> Arc<dyn DurableQueue> {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size: 64 << 20,
        latency: LatencyModel::optane_like(),
        deferred_persist: true,
        eviction_probability: 0.0,
        eviction_seed: 1,
    }));
    alg.create(
        pool,
        QueueConfig {
            max_threads: 1,
            area_size: 4 << 20,
        },
    )
}

fn per_operation_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist_ops/queue_ops");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for alg in Algorithm::all() {
        let queue = queue_for(alg);
        // Keep the queue non-empty so dequeues in the pair always succeed.
        for i in 0..1024u64 {
            queue.enqueue(0, i);
        }
        group.bench_function(BenchmarkId::new("enqueue_dequeue_pair", alg.name()), |b| {
            b.iter(|| {
                queue.enqueue(0, 7);
                std::hint::black_box(queue.dequeue(0));
            })
        });
    }
    group.finish();
}

fn persistence_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist_ops/primitives");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    // Simulated primitives (with the Optane-like latency model).
    let pool = PmemPool::new(PoolConfig::bench(1 << 20));
    let off = pool.alloc_raw(64, 64);
    group.bench_function("sim/flush+sfence", |b| {
        b.iter(|| {
            pool.store_u64(off, 1);
            pool.flush(0, off);
            pool.sfence(0);
        })
    });
    group.bench_function("sim/nt_store+sfence", |b| {
        b.iter(|| {
            pool.nt_store_u64(0, off, 2);
            pool.sfence(0);
        })
    });
    group.bench_function("sim/post_flush_read", |b| {
        b.iter(|| {
            pool.flush(0, off);
            pool.sfence(0);
            std::hint::black_box(pool.load_u64(off));
        })
    });

    // Real intrinsics against ordinary DRAM (the production code path).
    let mut buf = vec![0u64; 1024];
    group.bench_function("hw/clflush+sfence", |b| {
        b.iter(|| {
            buf[0] = buf[0].wrapping_add(1);
            // SAFETY: `buf` is valid owned memory.
            unsafe { pmem::hw::clflush(buf.as_ptr() as *const u8) };
            pmem::hw::sfence();
        })
    });
    group.bench_function("hw/nt_store+sfence", |b| {
        b.iter(|| {
            // SAFETY: `buf` is valid, 8-byte aligned owned memory.
            unsafe { pmem::hw::nt_store_u64(buf.as_mut_ptr(), 42) };
            pmem::hw::sfence();
        })
    });
    group.finish();
}

criterion_group!(benches, per_operation_latency, persistence_primitives);
criterion_main!(benches);
