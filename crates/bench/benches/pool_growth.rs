//! What elastic pool growth costs: enqueue throughput on a pool that must
//! grow mid-run (`ftruncate` + journaled header commit + `mremap` and
//! epoch retirement per growth event) versus the same workload on a
//! pre-sized pool.
//!
//! Three file-pool variants push the same enqueue burst:
//!
//! * `pre-sized` — the pool is created big enough up front (the paper's
//!   assumption); no growth events, the baseline,
//! * `grow-coarse` — created deliberately tiny with a large growth step, so
//!   a handful of growth events land inside the run,
//! * `grow-fine` — created tiny with a small step, so the run pays many
//!   growth events; the worst case for the growth protocol (readers never
//!   pause — growth serializes only against other growths).
//!
//! The throughput gap between `pre-sized` and the `grow-*` variants is the
//! amortised cost of growth (each variant ends the burst holding the same
//! data); the `grow-fine` vs `grow-coarse` gap shows how the step size
//! trades pause count against over-allocation.
//!
//! ```bash
//! cargo bench --bench pool_growth           # full run
//! cargo bench --bench pool_growth -- --test # CI smoke mode
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig, RecoverableQueue};
use std::time::{Duration, Instant};
use store::{FileConfig, FilePool};

/// Enqueues per measured burst; sized so the tiny variants grow several
/// times (~64 B of heap per resident item).
const BURST: u64 = 40_000;

fn queue_config() -> QueueConfig {
    QueueConfig {
        max_threads: 2,
        area_size: 1 << 20,
    }
}

struct Variant {
    tag: &'static str,
    base: usize,
    step: usize,
}

const VARIANTS: [Variant; 3] = [
    Variant {
        tag: "pre-sized",
        base: 64 << 20,
        step: 0,
    },
    Variant {
        tag: "grow-coarse",
        base: 2 << 20,
        step: 8 << 20,
    },
    Variant {
        tag: "grow-fine",
        base: 2 << 20,
        step: 1 << 20,
    },
];

/// One timed burst on a fresh pool file; returns (elapsed, growth epochs).
fn run_burst(variant: &Variant, round: u64) -> (Duration, u32) {
    let path = std::env::temp_dir().join(format!(
        "bench-pool-growth-{}-{}-{round}.pool",
        variant.tag,
        std::process::id()
    ));
    let pool = FilePool::create(
        &path,
        FileConfig::with_size(variant.base).with_growth(variant.step),
    )
    .expect("create bench pool file")
    .into_pool();
    // Unlink immediately: the mapping keeps the file alive for the burst and
    // nothing is left behind in $TMPDIR.
    #[cfg(unix)]
    let _ = std::fs::remove_file(&path);
    let queue = OptUnlinkedQueue::create(std::sync::Arc::clone(&pool), queue_config());
    let start = Instant::now();
    for seq in 1..=BURST {
        queue.enqueue(0, seq);
    }
    let elapsed = start.elapsed();
    let growths = pool.growth_epoch();
    #[cfg(not(unix))]
    let _ = std::fs::remove_file(&path);
    (elapsed, growths)
}

fn enqueue_across_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_growth/enqueue_burst");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(BURST));
    for variant in &VARIANTS {
        // The shape every variant must satisfy: pre-sized never grows, the
        // elastic ones always do (otherwise the bench measures nothing).
        let (_, growths) = run_burst(variant, u64::MAX);
        if variant.step == 0 {
            assert_eq!(growths, 0, "{}: must not grow", variant.tag);
        } else {
            assert!(growths >= 1, "{}: must grow during the burst", variant.tag);
        }
        group.bench_function(BenchmarkId::new("enqueue", variant.tag), |b| {
            let mut round = 0u64;
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let (elapsed, _) = run_burst(variant, round);
                    round += 1;
                    total += elapsed;
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, enqueue_across_growth);
criterion_main!(benches);
