//! Reshard wall-clock vs. resident item count: what splitting and merging
//! a file-backed shard directory costs as the data set grows.
//!
//! Each measured iteration is one full `RecoveryOrchestrator::reshard_dir`
//! (intent write, scratch copies, recover + drain + rebuild, manifest
//! commit, cleanup) alternating 4 -> 8 -> 4, so split and merge are
//! averaged over the same directory and the shard count returns to its
//! starting point between samples.
//!
//! ```bash
//! cargo bench --bench reshard           # full run
//! cargo bench --bench reshard -- --test # CI smoke mode
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use durable_queues::{DurableQueue, OptUnlinkedQueue, QueueConfig};
use shard::{RecoveryOrchestrator, RoutePolicy, ShardConfig, ShardedQueue};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use store::FileConfig;

fn queue_config() -> QueueConfig {
    QueueConfig {
        max_threads: 4,
        area_size: 1 << 20,
    }
}

/// Creates a 4-shard round-robin directory seeded with `items` items.
fn seeded_dir(items: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-reshard-{items}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let orch = RecoveryOrchestrator::available_parallelism();
    let queue: ShardedQueue<OptUnlinkedQueue> = orch
        .create_dir(
            &dir,
            ShardConfig {
                shards: 4,
                queue: queue_config(),
                pool: pmem::PoolConfig::test_with_size(16 << 20),
                policy: RoutePolicy::RoundRobin,
            },
            FileConfig::with_size(16 << 20),
        )
        .expect("create bench dir");
    for v in 1..=items {
        queue.enqueue(0, v);
    }
    dir
}

fn reshard_wall_clock(c: &mut Criterion) {
    let mut group = c.benchmark_group("reshard/wall_clock");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_secs(2));
    for items in [1_000u64, 10_000, 50_000] {
        group.throughput(Throughput::Elements(items));
        let dir = seeded_dir(items);
        let orch = RecoveryOrchestrator::available_parallelism();
        // Alternate 4 -> 8 -> 4 so every iteration is a real structural
        // rewrite and the directory's shard count is restored pairwise.
        let mut next = 8usize;
        group.bench_function(BenchmarkId::new("split_merge_4_8", items), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let begun = Instant::now();
                    let report = orch
                        .reshard_dir::<OptUnlinkedQueue>(&dir, next, queue_config())
                        .expect("bench reshard");
                    total += begun.elapsed();
                    assert_eq!(report.items_moved, items, "bench lost items");
                    next = if next == 8 { 4 } else { 8 };
                }
                total
            })
        });
        std::fs::remove_dir_all(&dir).expect("clean bench dir");
    }
    group.finish();
}

criterion_group!(benches, reshard_wall_clock);
criterion_main!(benches);
