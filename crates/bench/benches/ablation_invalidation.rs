//! Experiment E9 — ablation of the flush-invalidation penalty.
//!
//! The paper's key observation is that the first-amendment queues
//! (UnlinkedQ/LinkedQ) do not beat DurableMSQ *because* flushed lines are
//! invalidated and re-read from NVRAM, and that on a hypothetical platform
//! whose flushes retain lines in the cache they would shine thanks to their
//! minimal fence count. This bench runs the random-operations workload under
//! both latency models (with and without the post-flush read penalty) so the
//! two regimes can be compared directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harness::algorithms::Algorithm;
use harness::workloads::Workload;
use pmem::LatencyModel;
use std::time::Duration;

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/flush_invalidation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let threads = 2;
    let models = [
        ("invalidating-flush", LatencyModel::optane_like()),
        ("retaining-flush", LatencyModel::no_invalidation_penalty()),
    ];
    for alg in [
        Algorithm::DurableMsq,
        Algorithm::Unlinked,
        Algorithm::Linked,
        Algorithm::OptUnlinked,
        Algorithm::OptLinked,
    ] {
        for (label, latency) in models {
            group.bench_function(BenchmarkId::new(alg.name(), label), |b| {
                b.iter_custom(|iters| {
                    bench::time_workload(alg, Workload::RandomOps, threads, latency, iters)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
