//! Experiment E10 — ablation of LinkedQ's backward-link suffix flushing.
//!
//! LinkedQ must ensure, before an enqueue completes, that every node from the
//! head to the new node is persistent. The naive way is to flush the whole
//! chain from the head (cost grows with the queue length); the backward-link
//! scheme flushes only the un-persisted suffix, whose length is independent
//! of the queue size. This bench measures enqueue cost on pre-filled queues
//! of increasing sizes: flat lines confirm the suffix scheme is O(1) per
//! enqueue, for LinkedQ as well as for OptLinkedQ (which inherits it). Each
//! measured iteration pairs the enqueue with a dequeue so the queue keeps its
//! pre-filled length throughout the measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use durable_queues::{DurableQueue, QueueConfig};
use harness::algorithms::Algorithm;
use pmem::{LatencyModel, PmemPool, PoolConfig};
use std::sync::Arc;
use std::time::Duration;

fn prefilled(alg: Algorithm, size: u64) -> Arc<dyn DurableQueue> {
    let pool = Arc::new(PmemPool::new(PoolConfig {
        size: 128 << 20,
        latency: LatencyModel::optane_like(),
        deferred_persist: true,
        eviction_probability: 0.0,
        eviction_seed: 1,
    }));
    let q = alg.create(
        pool,
        QueueConfig {
            max_threads: 1,
            area_size: 4 << 20,
        },
    );
    for i in 0..size {
        q.enqueue(0, i + 1);
    }
    q
}

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/suffix_flush");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for alg in [
        Algorithm::Linked,
        Algorithm::OptLinked,
        Algorithm::DurableMsq,
    ] {
        for size in [10u64, 1_000, 100_000] {
            let q = prefilled(alg, size);
            group.bench_function(
                BenchmarkId::new(alg.name(), format!("prefill-{size}")),
                |b| {
                    // An enqueue immediately followed by a dequeue keeps the
                    // queue at its pre-filled size, so the measurement can run
                    // for arbitrarily many iterations without growing the pool
                    // while still being dominated by the enqueue's suffix walk.
                    b.iter(|| {
                        q.enqueue(0, 7);
                        std::hint::black_box(q.dequeue(0));
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
