//! Regenerates the "dequeues" panel of the paper's Figure 2 (experiment E-dequeues).

use criterion::{criterion_group, criterion_main, Criterion};
use harness::workloads::Workload;

fn panel(c: &mut Criterion) {
    bench::fig2_panel(c, Workload::DequeueOnly);
}

criterion_group!(benches, panel);
criterion_main!(benches);
